//! Universality, end to end: wait-free queues and counters built from
//! consensus, checked for linearizability under randomized hybrid
//! schedules, including property-based operation mixes.

use hybrid_wf::oracle::{check_linearizable, QueueOp, QueueSpec, TimedOp};
use hybrid_wf::universal::{op_machine, replay_final_state, CounterSpec, UniversalMem};
use proptest::prelude::*;
use sched_sim::{Kernel, ProcessId, ProcessorId, Priority, SeededRandom, SystemSpec};

fn run_queue(
    seed: u64,
    q: u32,
    plans: &[(u32, Vec<QueueOp>)],
) -> Result<(), String> {
    let n = plans.len() as u32;
    let cap = 4 * plans.iter().map(|(_, o)| o.len()).sum::<usize>() + 4;
    let mut k = Kernel::new(
        UniversalMem::<QueueSpec>::new(n, cap),
        SystemSpec::hybrid(q).with_adversarial_alignment(),
    );
    for (pid, (prio, ops)) in plans.iter().enumerate() {
        k.add_process(
            ProcessorId(0),
            Priority(*prio),
            Box::new(op_machine(QueueSpec, pid as u32, n, ops.clone())),
        );
    }
    k.run(&mut SeededRandom::new(seed), 2_000_000);
    if !k.all_finished() {
        return Err("did not finish".into());
    }
    let timed: Vec<TimedOp<QueueOp>> = k
        .ops()
        .iter()
        .map(|r| TimedOp {
            start: r.start,
            end: r.t,
            op: plans[r.pid.index()].1[r.inv_index as usize],
            result: r.output.unwrap(),
        })
        .collect();
    check_linearizable(&QueueSpec, &timed)
}

#[test]
fn queue_mixed_priorities_many_seeds() {
    let plans = vec![
        (1, vec![QueueOp::Enq(1), QueueOp::Enq(2)]),
        (2, vec![QueueOp::Deq, QueueOp::Deq]),
        (3, vec![QueueOp::Enq(9), QueueOp::Deq]),
    ];
    for seed in 0..40 {
        run_queue(seed, 8, &plans).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary small op mixes at arbitrary priorities stay linearizable.
    #[test]
    fn prop_queue_linearizable(
        seed in 0u64..1000,
        quantum in 1u32..32,
        ops0 in proptest::collection::vec(0u8..3, 1..4),
        ops1 in proptest::collection::vec(0u8..3, 1..4),
        prio0 in 1u32..4,
        prio1 in 1u32..4,
    ) {
        let decode = |v: &Vec<u8>, base: u64| -> Vec<QueueOp> {
            v.iter()
                .enumerate()
                .map(|(i, &x)| if x == 0 { QueueOp::Deq } else { QueueOp::Enq(base + i as u64) })
                .collect()
        };
        let plans = vec![(prio0, decode(&ops0, 100)), (prio1, decode(&ops1, 200))];
        prop_assert!(run_queue(seed, quantum, &plans).is_ok());
    }

    /// Counter total is exact under arbitrary schedules: no lost or
    /// duplicated increments, whatever the quantum.
    #[test]
    fn prop_counter_exact(
        seed in 0u64..1000,
        quantum in 1u32..32,
        n in 1u32..5,
        per in 1u32..5,
    ) {
        let mut k = Kernel::new(
            UniversalMem::<CounterSpec>::new(n, 4 * (n * per) as usize + 4),
            SystemSpec::hybrid(quantum).with_adversarial_alignment(),
        );
        let mut total = 0u64;
        for pid in 0..n {
            let ops: Vec<u64> = (1..=u64::from(per)).collect();
            total += ops.iter().sum::<u64>();
            k.add_process(
                ProcessorId(0),
                Priority(1 + pid % 3),
                Box::new(op_machine(CounterSpec, pid, n, ops)),
            );
        }
        k.run(&mut SeededRandom::new(seed), 2_000_000);
        prop_assert!(k.all_finished());
        prop_assert_eq!(replay_final_state(&CounterSpec, &k.mem), total);
        let _ = k.output(ProcessId(0));
    }
}
