//! Universality, end to end: wait-free queues and counters built from
//! consensus, checked for linearizability under randomized hybrid
//! schedules, including generated operation mixes.
//!
//! The generated sweeps use the workspace's own `SplitMix64` so they are
//! deterministic and dependency-free; failures print the full parameter
//! tuple needed to reproduce them.

use hybrid_wf::oracle::{check_linearizable_traced, QueueOp, QueueSpec, TimedOp};
use hybrid_wf::universal::{op_machine, replay_final_state, CounterSpec, UniversalMem};
use sched_sim::rng::SplitMix64;
use sched_sim::{ProcessorId, Priority, Scenario, SystemSpec};

fn run_queue(
    seed: u64,
    q: u32,
    plans: &[(u32, Vec<QueueOp>)],
) -> Result<(), String> {
    let n = plans.len() as u32;
    let cap = 4 * plans.iter().map(|(_, o)| o.len()).sum::<usize>() + 4;
    let mut s = Scenario::new(
        UniversalMem::<QueueSpec>::new(n, cap),
        SystemSpec::hybrid(q).with_adversarial_alignment(),
    )
    // Capture the run so a failing check leaves a replayable artifact
    // behind (see crates/core/src/oracle.rs and EXPERIMENTS.md).
    .with_obs()
    .step_budget(2_000_000);
    for (pid, (prio, ops)) in plans.iter().enumerate() {
        s.add_process(
            ProcessorId(0),
            Priority(*prio),
            Box::new(op_machine(QueueSpec, pid as u32, n, ops.clone())),
        );
    }
    let mut r = s.run_seeded(seed);
    if !r.all_finished {
        return Err("did not finish".into());
    }
    let timed: Vec<TimedOp<QueueOp>> = r
        .ops()
        .iter()
        .map(|rec| TimedOp {
            start: rec.start,
            end: rec.t,
            op: plans[rec.pid.index()].1[rec.inv_index as usize],
            result: rec.output.unwrap(),
        })
        .collect();
    let trace = r.take_trace().expect("obs attached");
    check_linearizable_traced(&QueueSpec, &timed, &trace, &format!("queue-seed{seed}-q{q}"))
}

#[test]
fn queue_mixed_priorities_many_seeds() {
    let plans = vec![
        (1, vec![QueueOp::Enq(1), QueueOp::Enq(2)]),
        (2, vec![QueueOp::Deq, QueueOp::Deq]),
        (3, vec![QueueOp::Enq(9), QueueOp::Deq]),
    ];
    for seed in 0..40 {
        run_queue(seed, 8, &plans).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Arbitrary small op mixes at arbitrary priorities stay linearizable.
#[test]
fn generated_queue_mixes_linearizable() {
    let mut gen = SplitMix64::new(0x11bea12);
    for case in 0..48u32 {
        let seed = gen.next_u64() % 1000;
        let quantum = gen.range_u32(1, 32);
        let decode = |gen: &mut SplitMix64, base: u64| -> Vec<QueueOp> {
            let len = gen.range_u32(1, 4) as usize;
            (0..len)
                .map(|i| {
                    if gen.range_u32(0, 3) == 0 {
                        QueueOp::Deq
                    } else {
                        QueueOp::Enq(base + i as u64)
                    }
                })
                .collect()
        };
        let ops0 = decode(&mut gen, 100);
        let ops1 = decode(&mut gen, 200);
        let prio0 = gen.range_u32(1, 4);
        let prio1 = gen.range_u32(1, 4);
        let plans = vec![(prio0, ops0), (prio1, ops1)];
        run_queue(seed, quantum, &plans).unwrap_or_else(|e| {
            panic!("case {case}: seed={seed} quantum={quantum} plans={plans:?}: {e}")
        });
    }
}

/// Counter total is exact under arbitrary schedules: no lost or
/// duplicated increments, whatever the quantum.
#[test]
fn generated_counter_totals_exact() {
    let mut gen = SplitMix64::new(0xc0117e4);
    for case in 0..48u32 {
        let seed = gen.next_u64() % 1000;
        let quantum = gen.range_u32(1, 32);
        let n = gen.range_u32(1, 5);
        let per = gen.range_u32(1, 5);
        let mut s = Scenario::new(
            UniversalMem::<CounterSpec>::new(n, 4 * (n * per) as usize + 4),
            SystemSpec::hybrid(quantum).with_adversarial_alignment(),
        )
        .step_budget(2_000_000);
        let mut total = 0u64;
        for pid in 0..n {
            let ops: Vec<u64> = (1..=u64::from(per)).collect();
            total += ops.iter().sum::<u64>();
            s.add_process(
                ProcessorId(0),
                Priority(1 + pid % 3),
                Box::new(op_machine(CounterSpec, pid, n, ops)),
            );
        }
        let r = s.run_seeded(seed);
        let ctx = format!("case {case}: seed={seed} quantum={quantum} n={n} per={per}");
        assert!(r.all_finished, "not all finished — {ctx}");
        assert_eq!(replay_final_state(&CounterSpec, r.mem()), total, "{ctx}");
    }
}
