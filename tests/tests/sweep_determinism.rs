//! The sweep engine's core guarantee, pinned across crates: the same grid
//! run with 1 worker and with 8 workers produces **identical merged
//! results** — outputs, scheduler counters, algorithm counters, statement
//! counts, verdicts — cell for cell. (Wall time is metadata and excluded;
//! see `sched_sim::scenario::RunResult::wall`.)
//!
//! This is exactly what lets `experiments --table1 --jobs N` publish the
//! same `BENCH_table1.json` no matter the machine's core count.

use hybrid_wf::multi::consensus::LocalMode;
use hybrid_wf::multi::failures::{lemma3_bound_holds, summarize};
use hybrid_wf::uni::consensus::{decide_machine, UniConsensusMem, MIN_QUANTUM};
use hybrid_wf::universal::{op_machine, CounterSpec, UniversalMem};
use lowerbound::adversary::{adversary_for_seed, fig7_scenario};
use sched_sim::obs::{ObsCounters, Trace};
use sched_sim::sweep::{cross, run_cells};
use sched_sim::{ProcessorId, Priority, Scenario, SystemSpec};

/// Everything a Fig. 7 adversary cell produces that determinism covers.
#[derive(Debug, PartialEq)]
struct Fig7Cell {
    q: u32,
    seed: u64,
    outputs: Vec<Option<u64>>,
    counters: ObsCounters,
    steps: u64,
    access_failures: u32,
    lemma3: bool,
    finished: bool,
}

fn fig7_cell(q: u32, seed: u64) -> Fig7Cell {
    let s = fig7_scenario(2, 2, 2, 1, q, LocalMode::Modeled);
    let r = s.run(&mut *adversary_for_seed(seed));
    let sm = summarize(r.mem());
    Fig7Cell {
        q,
        seed,
        outputs: r.outputs.clone(),
        counters: r.counters,
        steps: r.steps,
        access_failures: sm.same + sm.diff,
        lemma3: lemma3_bound_holds(r.mem()),
        finished: r.all_finished,
    }
}

/// The adversarial Fig. 7 grid — the cell type behind Table 1 — merges
/// bit-identically at `jobs = 1` and `jobs = 8`, across multiple seeds
/// and quanta, counters included.
#[test]
fn fig7_grid_parallel_equals_serial() {
    let grid = cross(&[1u32, 4, 16], &[0u64, 1, 2, 3, 4, 5]);
    let serial = run_cells(&grid, 1, |_, &(q, seed)| fig7_cell(q, seed));
    let parallel = run_cells(&grid, 8, |_, &(q, seed)| fig7_cell(q, seed));
    assert_eq!(serial.len(), grid.len());
    assert_eq!(serial, parallel);
    // The grid is not trivially uniform: different seeds really do produce
    // different schedules (otherwise this test proves nothing).
    assert!(
        serial.windows(2).any(|w| w[0].counters != w[1].counters),
        "expected schedule diversity across the grid"
    );
}

/// Algorithm-level counters (helping, retries — read from the final
/// memory) are part of the determinism contract too: a universal-
/// construction workload swept in parallel reports the identical
/// `AlgCounters` per cell.
#[test]
fn universal_counter_sweep_identical_alg_counters() {
    fn cell(n: u32, seed: u64) -> (String, Vec<Option<u64>>, ObsCounters, u64) {
        let per = 3u32;
        let mut s = Scenario::new(
            UniversalMem::<CounterSpec>::new(n, 4 * (n * per) as usize + 4),
            SystemSpec::hybrid(8).with_adversarial_alignment(),
        )
        .step_budget(2_000_000);
        for pid in 0..n {
            s.add_process(
                ProcessorId(0),
                Priority(1 + pid % 2),
                Box::new(op_machine(CounterSpec, pid, n, vec![1; per as usize])),
            );
        }
        let r = s.run_seeded(seed);
        assert!(r.all_finished, "n={n} seed={seed}");
        (r.mem().counters.to_string(), r.outputs.clone(), r.counters, r.steps)
    }

    let grid = cross(&[2u32, 3, 4], &[7u64, 8]);
    for jobs in [1usize, 8] {
        let got = run_cells(&grid, jobs, |_, &(n, seed)| cell(n, seed));
        let reference = run_cells(&grid, 1, |_, &(n, seed)| cell(n, seed));
        assert_eq!(got, reference, "jobs={jobs}");
    }
}

/// A seeded Fig. 3 consensus run reproduces its observability trace
/// **byte for byte** against a golden file captured at the parent commit
/// (before the interned-label / copy-on-write history rework of PR 3).
///
/// This pins two things at once: that seeded runs stay deterministic
/// across refactors, and that interning statement labels changed nothing
/// about the serialized trace — `Sym` resolves back to the same strings
/// the old `String`-carrying events produced.
#[test]
fn fig3_seeded_trace_is_byte_identical_to_golden() {
    const GOLDEN: &str = include_str!("../golden/fig3_seed42_trace.txt");

    let mut s = Scenario::new(
        UniConsensusMem::default(),
        SystemSpec::hybrid(MIN_QUANTUM).with_adversarial_alignment().with_history(),
    )
    .with_obs()
    .step_budget(10_000);
    s.add_process(ProcessorId(0), Priority(1), Box::new(decide_machine(1)));
    s.add_process(ProcessorId(0), Priority(1), Box::new(decide_machine(2)));
    let mut r = s.run_seeded(42);
    assert!(r.all_finished);

    let trace = r.take_trace().expect("obs was attached");
    let text = trace.to_text();
    assert_eq!(text, GOLDEN, "seeded Fig. 3 trace diverged from the golden capture");

    // And the golden text round-trips through the parser back to the
    // in-memory trace, label resolution included.
    let reparsed = Trace::from_text(GOLDEN).expect("golden trace parses");
    assert_eq!(reparsed, trace);
}
