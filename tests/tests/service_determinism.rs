//! The service engine's headline guarantee, pinned across crates: the
//! full (object, arrival) grid behind `experiments --service` produces
//! **bit-identical canonical artifact lines** for every `--jobs` value.
//!
//! The canonical payload is everything `write_artifact` commits — kind,
//! cell, steps, requests, `steps_per_request`, latency percentiles,
//! per-priority splits — with only the `wall_ms` timing metadata stripped
//! (`sched_sim::report::split_timing`), exactly as the artifact writer
//! does. This is what lets a `BENCH_service.json` regenerated on any
//! machine at any parallelism match the committed artifact byte for byte.

use lowerbound::service::{grid, run_grid};
use sched_sim::prelude::{split_timing, Json};

/// Renders lines the way the artifact writer commits them: canonical
/// payload only, wall times stripped.
fn canonical(lines: &[Json]) -> Vec<String> {
    lines.iter().map(|l| split_timing(l).0.to_string()).collect()
}

#[test]
fn service_grid_is_bit_identical_across_jobs() {
    let serial = run_grid(1, true);

    // The payload is non-trivial: every config contributes its shard lines
    // plus a total, and the totals really carry latency distributions.
    let configs = grid(true);
    let shard_lines: usize = configs.iter().map(|c| c.shards as usize).sum();
    assert_eq!(serial.len(), shard_lines + configs.len());
    let totals: Vec<&Json> = serial
        .iter()
        .filter(|l| l.get("kind").and_then(Json::as_str) == Some("service_total"))
        .collect();
    assert_eq!(totals.len(), configs.len());
    for t in &totals {
        assert!(t.get("p99").and_then(Json::as_u64).is_some(), "{t}");
        assert_eq!(t.get("all_finished"), Some(&Json::Bool(true)), "{t}");
    }

    // The guarantee itself: jobs = 2 and jobs = 4 merge to the same bytes.
    let one = canonical(&serial);
    for jobs in [2usize, 4] {
        assert_eq!(one, canonical(&run_grid(jobs, true)), "jobs = {jobs} diverged from serial");
    }
}
