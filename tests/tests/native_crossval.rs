//! Native-backend cross-validation: the backend-generic algorithms on
//! real OS threads, checked by the simulator's own oracles.
//!
//! The split under test (see BACKENDS.md): `hybrid_wf::generic` is written
//! once against `wfmem::backend::MemBackend` and runs unchanged on the
//! simulator cells ([`wfmem::SimBackend`]) and on the cache-padded atomic
//! cells of the `native` crate. The native harness records every
//! operation in the simulator's `OpRecord` format, so one oracle
//! (`hybrid_wf::oracle`) judges both worlds:
//!
//! * lockstep pacing at `Q ≥ 8` must reproduce Theorem 1's agreement on
//!   real threads, and the pinned sub-threshold seeds
//!   ([`lowerbound::native::Q1_SPLIT_SEEDS`]) must keep splitting the
//!   decision — deterministically;
//! * free pacing must keep every CAS-backed algorithm linearizable at any
//!   interleaving the hardware produces (C&S has consensus number ∞),
//!   while Fig. 3 agreement is only *validity*-checked (no commodity
//!   scheduler promises Axiom 2 — see EXPERIMENTS.md, "Native execution").

use hybrid_wf::generic::Universal;
use hybrid_wf::oracle::{check_linearizable, timed_ops};
use hybrid_wf::uni::consensus::MIN_QUANTUM;
use hybrid_wf::universal::CounterSpec;
use lowerbound::native::Q1_SPLIT_SEEDS;
use native::harness::{
    cas_run_ok, check_run_linearizable, counter_plans, counter_run_ok, fig3_agreement,
    queue_run_ok, run_fig3, run_universal, Pacing,
};
use sched_sim::ids::ProcessId;
use sched_sim::kernel::OpRecord;
use sched_sim::report::{validate_cells, Json, NATIVE_SCHEMA};
use wfmem::SimBackend;

fn fig3_inputs(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 10 * (i + 1)).collect()
}

/// Theorem 1 on real threads: at the legal quantum, every deterministic
/// lockstep schedule agrees, across seeds and process counts.
#[test]
fn fig3_lockstep_agrees_at_legal_quantum() {
    for n in [2usize, 3, 4, 5] {
        let inputs = fig3_inputs(n);
        for seed in 0..16u64 {
            let run = run_fig3(&inputs, Pacing::Lockstep { seed, quantum: MIN_QUANTUM });
            fig3_agreement(&run)
                .unwrap_or_else(|outs| panic!("n={n} seed={seed}: split decision {outs:?}"));
        }
    }
}

/// The lower-bound half, pinned: at `Q = 1` the known seeds split the
/// decision — and do so deterministically (two runs, identical outputs),
/// while every decided value is still one that was proposed (validity
/// survives even when agreement falls).
#[test]
fn fig3_lockstep_q1_pinned_seeds_disagree_deterministically() {
    for (n, seeds) in Q1_SPLIT_SEEDS {
        let inputs = fig3_inputs(n);
        for seed in seeds {
            let run = run_fig3(&inputs, Pacing::Lockstep { seed, quantum: 1 });
            let outs = match fig3_agreement(&run) {
                Ok(v) => panic!("n={n} seed={seed}: expected a split, got agreement on {v}"),
                Err(outs) => outs,
            };
            for &o in &outs {
                assert!(inputs.contains(&o), "n={n} seed={seed}: decided never-proposed {o}");
            }
            let again = run_fig3(&inputs, Pacing::Lockstep { seed, quantum: 1 });
            assert_eq!(
                again.outputs(),
                run.outputs(),
                "n={n} seed={seed}: lockstep schedule is not deterministic"
            );
        }
    }
}

/// Free pacing: Fig. 3 stays wait-free and valid at every thread count
/// (agreement is a measurement here, not an assertion).
#[test]
fn fig3_free_is_valid_across_thread_counts() {
    for n in [2usize, 4, 8] {
        let inputs = fig3_inputs(n);
        let run = run_fig3(&inputs, Pacing::Free);
        assert_eq!(run.records.len(), n, "n={n}: an operation never completed");
        for o in run.outputs() {
            assert!(inputs.contains(&o), "n={n}: decided never-proposed {o}");
        }
    }
}

/// The universal construction is CAS-backed, so it must stay linearizable
/// on the native backend under *any* pacing — free hardware races,
/// lockstep at the legal quantum, and even lockstep at `Q = 1`, where the
/// read/write algorithm above fails: hardware C&S has consensus number ∞,
/// so Theorem 1's quantum hypothesis is simply not needed.
#[test]
fn universal_counter_linearizable_under_every_pacing() {
    for n in [2usize, 3, 4] {
        for seed in 0..3u64 {
            counter_run_ok(n, 3, seed, Pacing::Free)
                .unwrap_or_else(|e| panic!("free n={n} seed={seed}: {e}"));
        }
    }
    for quantum in [1u32, MIN_QUANTUM] {
        for seed in 0..3u64 {
            counter_run_ok(3, 3, seed, Pacing::Lockstep { seed, quantum })
                .unwrap_or_else(|e| panic!("lockstep q={quantum} seed={seed}: {e}"));
        }
    }
}

/// Queue and C&S-register histories from free-running threads pass the
/// same linearizability oracle the simulator's fuzzer uses.
#[test]
fn queue_and_cas_linearizable_free() {
    for n in [2usize, 4] {
        queue_run_ok(n, 3, Pacing::Free).unwrap_or_else(|e| panic!("queue n={n}: {e}"));
        for seed in 0..3u64 {
            cas_run_ok(n, 4, seed, Pacing::Free)
                .unwrap_or_else(|e| panic!("cas n={n} seed={seed}: {e}"));
        }
    }
}

/// Backend cross-validation proper: the *same* workload plans run on the
/// native backend (threaded, free pacing) and on the simulator backend
/// (sequential), and one oracle judges both histories. The sim run also
/// pins the step accounting: every cell access is exactly one counted
/// statement, on either backend.
#[test]
fn same_workload_same_oracle_on_both_backends() {
    let n = 3usize;
    let per = 3usize;
    let plans = counter_plans(n, per, 42);

    // Native: real threads, real atomics.
    let native_run = run_universal(CounterSpec, plans.clone(), Pacing::Free);
    check_run_linearizable(&CounterSpec, &native_run).expect("native history linearizable");
    assert_eq!(native_run.records.len(), n * per);

    // Simulator backend: the identical generic code, applied sequentially.
    let b = SimBackend::new();
    let obj = Universal::<SimBackend, CounterSpec>::new(&b, CounterSpec, n as u32, per as u32);
    let mut records = Vec::new();
    let mut clock = 0u64;
    for (pid, ops) in plans.iter().enumerate() {
        let mut s = obj.session(pid as u32);
        for (inv, op) in ops.iter().enumerate() {
            let start = clock;
            let out = obj.apply(&mut s, op);
            clock += 2;
            records.push(OpRecord {
                start,
                t: start + 1,
                pid: ProcessId(pid as u32),
                inv_index: inv as u32,
                output: Some(out),
            });
        }
    }
    assert!(b.steps() > 0, "sim backend counted no statements");
    let ops = timed_ops(&records, |pid, inv| plans[pid as usize][inv as usize]);
    check_linearizable(&CounterSpec, &ops).expect("sim history linearizable");

    // Sequential application is one total order, so the last fetch-and-add
    // returns the sum of everything before it: the spec-level ground truth
    // both backends' histories must be consistent with.
    let total: u64 = plans.iter().flatten().sum();
    let last = records.last().and_then(|r| r.output).expect("sequential run completed");
    let last_addend = *plans[n - 1].last().expect("nonempty plan");
    assert_eq!(last + last_addend, total);
}

/// The committed `BENCH_native.json` artifact validates against its schema
/// and carries no gated failure: every cell's verdict matches the paper's
/// prediction for its backend and pacing.
#[test]
fn committed_native_artifact_is_schema_valid_and_gate_clean() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../BENCH_native.json");
    let text = std::fs::read_to_string(path).expect("committed BENCH_native.json exists");
    let cells = validate_cells(&text, NATIVE_SCHEMA).expect("artifact matches NATIVE_SCHEMA");
    assert!(cells > 0);
    let mut predicted = 0u32;
    for line in text.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#')) {
        let v = Json::parse(line).expect("artifact line parses");
        match v.get("verdict") {
            Some(Json::Str(s)) => {
                assert!(
                    !matches!(s.as_str(), "BUG" | "MISSING"),
                    "committed artifact carries a gated failure: {line}"
                );
                if s == "predicted" {
                    predicted += 1;
                }
            }
            other => panic!("verdict missing or non-string: {other:?}"),
        }
    }
    // The pinned sub-threshold cells must be present and firing.
    assert!(predicted >= 6, "expected the pinned Q = 1 cells to be 'predicted'");
}
