//! Pinned exploration statistics for the paper's canonical workloads.
//!
//! The explorer's fork/dedup machinery was restructured in PR 3 (in-place
//! stepping, fixed-array scripts, identity-hashed visited set, tracked
//! incremental state hashes). These pins assert that none of it changed
//! *what* is explored: terminals, total steps and dedup hits for the
//! Fig. 3 consensus exploration, and the bivalent-chain depths of the
//! Fig. 10 valency probe, must stay bit-identical to the pre-optimisation
//! values captured at the parent commit.

use hybrid_wf::uni::consensus::{decide_machine, UniConsensusMem, MIN_QUANTUM};
use lowerbound::valency::bivalent_chain_depth;
use sched_sim::explore::{explore, ExploreBounds, ExploreStats, Truncation, Verdict};
use sched_sim::{Kernel, ProcessorId, Priority, Scenario, SystemSpec};

/// The Fig. 3 configuration used throughout the experiments: all processes
/// on one processor, adversarial quantum alignment.
fn fig3_kernel(q: u32, inputs: &[(u64, u32)]) -> Kernel<UniConsensusMem> {
    let mut s = Scenario::new(
        UniConsensusMem::default(),
        SystemSpec::hybrid(q).with_adversarial_alignment(),
    );
    for &(v, pr) in inputs {
        s.add_process(ProcessorId(0), Priority(pr), Box::new(decide_machine(v)));
    }
    s.into_kernel()
}

fn stats_of(q: u32, inputs: &[(u64, u32)]) -> ExploreStats {
    explore(&fig3_kernel(q, inputs), ExploreBounds::default(), |_| Verdict::KeepGoing)
}

/// Fig. 3, Q = 8, two equal-priority processes: the workload behind the
/// `fig3_q8_2p` throughput cell.
#[test]
fn fig3_q8_two_procs_stats_pinned() {
    assert_eq!(
        stats_of(MIN_QUANTUM, &[(1, 1), (2, 1)]),
        ExploreStats {
            terminals: 14,
            steps: 1514,
            deduped: 226,
            por_pruned: 0,
            peak_visited: 1289, // 1 + steps - deduped
            truncation: Truncation::None,
        }
    );
}

/// Fig. 3, Q = 8, three processes with a higher-priority third: priority
/// scheduling collapses the schedule tree to a single terminal.
#[test]
fn fig3_q8_three_procs_stats_pinned() {
    assert_eq!(
        stats_of(MIN_QUANTUM, &[(1, 1), (2, 1), (3, 2)]),
        ExploreStats {
            terminals: 1,
            steps: 1328,
            deduped: 246,
            por_pruned: 0,
            peak_visited: 1083,
            truncation: Truncation::None,
        }
    );
}

/// Fig. 3 under a too-small quantum (Q = 1 < the paper's bound): far more
/// interleavings survive, and the explorer must still visit them all.
#[test]
fn fig3_q1_two_procs_stats_pinned() {
    assert_eq!(
        stats_of(1, &[(1, 1), (2, 1)]),
        ExploreStats {
            terminals: 32,
            steps: 912,
            deduped: 322,
            por_pruned: 0,
            peak_visited: 591,
            truncation: Truncation::None,
        }
    );
}

/// Fig. 10 valency probe: the bivalent-chain depth for the two-process
/// Fig. 3 consensus object, per quantum. Larger quanta resolve the
/// decision sooner (shorter chains), pinning the FLP-style argument the
/// lower-bound section builds on.
#[test]
fn fig10_bivalent_chain_depths_pinned() {
    let depths: Vec<(u32, u32)> = [1u32, 2, 4, 8]
        .into_iter()
        .map(|q| {
            let k = fig3_kernel(q, &[(1, 1), (2, 1)]);
            (q, bivalent_chain_depth(&k, 16, ExploreBounds::default()))
        })
        .collect();
    assert_eq!(depths, vec![(1, 13), (2, 10), (4, 10), (8, 6)]);
}
