//! The paper's unification claim, tested across crates: "any wait-free
//! algorithm that is correct in a system with hybrid scheduling is also
//! correct in a system that is either purely priority-based or purely
//! quantum-based." Every core algorithm is run under all three scheduler
//! degenerations with well-formedness checked on the recorded histories.

use hybrid_wf::oracle::{check_linearizable, CasRegOp, CasRegisterSpec, TimedOp};
use hybrid_wf::uni::cas::{op_machine, CasMem, CasOp};
use hybrid_wf::uni::consensus::{decide_machine, UniConsensusMem};
use sched_sim::history::check_well_formed;
use sched_sim::{ProcessorId, Priority, Scenario, SystemSpec};

const INIT: u64 = 100;

fn scheduler_matrix() -> Vec<(&'static str, SystemSpec, Vec<u32>)> {
    vec![
        // (label, spec, priorities for 4 processes)
        ("hybrid", SystemSpec::hybrid(128).with_history(), vec![1, 1, 2, 2]),
        ("pure-quantum", SystemSpec::pure_quantum(128).with_history(), vec![1, 1, 1, 1]),
        ("pure-priority", SystemSpec::pure_priority().with_history(), vec![1, 2, 3, 4]),
    ]
}

#[test]
fn fig3_consensus_correct_under_all_schedulers() {
    for (label, spec, prios) in scheduler_matrix() {
        let mut s = Scenario::new(UniConsensusMem::default(), spec).step_budget(100_000);
        for (i, &pr) in prios.iter().enumerate() {
            s.add_process(
                ProcessorId(0),
                Priority(pr),
                Box::new(decide_machine(i as u64 + 1)),
            );
        }
        for seed in 0..25 {
            let r = s.run_seeded(seed);
            assert!(r.all_finished, "{label} seed {seed}");
            let first = r.outputs[0].unwrap();
            for (p, out) in r.outputs.iter().enumerate() {
                assert_eq!(*out, Some(first), "{label} seed {seed} p{p}");
            }
            assert!((1..=4).contains(&first), "{label}: invalid {first}");
            check_well_formed(r.history())
                .unwrap_or_else(|v| panic!("{label} seed {seed}: {v}"));
        }
    }
}

#[test]
fn fig5_cas_linearizable_under_all_schedulers() {
    let plans: Vec<Vec<CasOp>> = vec![
        vec![CasOp::Cas { old: INIT, new: 1 }, CasOp::Read],
        vec![CasOp::Cas { old: INIT, new: 2 }],
        vec![CasOp::Read, CasOp::Cas { old: 1, new: 3 }],
        vec![CasOp::Read],
    ];
    for (label, spec, prios) in scheduler_matrix() {
        let v = *prios.iter().max().unwrap();
        let n = prios.len() as u32;
        let mut s = Scenario::new(CasMem::new(v, &prios, INIT), spec).step_budget(1_000_000);
        for (pid, ops) in plans.iter().enumerate() {
            s.add_process(
                ProcessorId(0),
                Priority(prios[pid]),
                Box::new(op_machine(pid as u32, prios[pid], n, v, ops.clone())),
            );
        }
        for seed in 0..20 {
            let r = s.run_seeded(seed);
            assert!(r.all_finished, "{label} seed {seed}");
            let timed: Vec<TimedOp<CasRegOp>> = r
                .ops()
                .iter()
                .map(|rec| TimedOp {
                    start: rec.start,
                    end: rec.t,
                    op: match plans[rec.pid.index()][rec.inv_index as usize] {
                        CasOp::Cas { old, new } => CasRegOp::Cas { old, new },
                        CasOp::Read => CasRegOp::Read,
                    },
                    result: rec.output.unwrap(),
                })
                .collect();
            check_linearizable(&CasRegisterSpec { init: INIT }, &timed)
                .unwrap_or_else(|e| panic!("{label} seed {seed}: {e}"));
            check_well_formed(r.history())
                .unwrap_or_else(|v| panic!("{label} seed {seed}: {v}"));
        }
    }
}
