//! The paper's unification claim, tested across crates: "any wait-free
//! algorithm that is correct in a system with hybrid scheduling is also
//! correct in a system that is either purely priority-based or purely
//! quantum-based." Every core algorithm is run under all three scheduler
//! degenerations with well-formedness checked on the recorded histories.

use hybrid_wf::oracle::{check_linearizable, CasRegOp, CasRegisterSpec, TimedOp};
use hybrid_wf::uni::cas::{op_machine, CasMem, CasOp};
use hybrid_wf::uni::consensus::{decide_machine, UniConsensusMem};
use sched_sim::history::check_well_formed;
use sched_sim::{Kernel, ProcessId, ProcessorId, Priority, SeededRandom, SystemSpec};

const INIT: u64 = 100;

fn scheduler_matrix() -> Vec<(&'static str, SystemSpec, Vec<u32>)> {
    vec![
        // (label, spec, priorities for 4 processes)
        ("hybrid", SystemSpec::hybrid(128).with_history(), vec![1, 1, 2, 2]),
        ("pure-quantum", SystemSpec::pure_quantum(128).with_history(), vec![1, 1, 1, 1]),
        ("pure-priority", SystemSpec::pure_priority().with_history(), vec![1, 2, 3, 4]),
    ]
}

#[test]
fn fig3_consensus_correct_under_all_schedulers() {
    for (label, spec, prios) in scheduler_matrix() {
        for seed in 0..25 {
            let mut k = Kernel::new(UniConsensusMem::default(), spec);
            for (i, &pr) in prios.iter().enumerate() {
                k.add_process(
                    ProcessorId(0),
                    Priority(pr),
                    Box::new(decide_machine(i as u64 + 1)),
                );
            }
            k.run(&mut SeededRandom::new(seed), 100_000);
            assert!(k.all_finished(), "{label} seed {seed}");
            let first = k.output(ProcessId(0)).unwrap();
            for p in 0..prios.len() as u32 {
                assert_eq!(k.output(ProcessId(p)), Some(first), "{label} seed {seed}");
            }
            assert!((1..=4).contains(&first), "{label}: invalid {first}");
            check_well_formed(k.history())
                .unwrap_or_else(|v| panic!("{label} seed {seed}: {v}"));
        }
    }
}

#[test]
fn fig5_cas_linearizable_under_all_schedulers() {
    let plans: Vec<Vec<CasOp>> = vec![
        vec![CasOp::Cas { old: INIT, new: 1 }, CasOp::Read],
        vec![CasOp::Cas { old: INIT, new: 2 }],
        vec![CasOp::Read, CasOp::Cas { old: 1, new: 3 }],
        vec![CasOp::Read],
    ];
    for (label, spec, prios) in scheduler_matrix() {
        let v = *prios.iter().max().unwrap();
        for seed in 0..20 {
            let n = prios.len() as u32;
            let mut k = Kernel::new(CasMem::new(v, &prios, INIT), spec);
            for (pid, ops) in plans.iter().enumerate() {
                k.add_process(
                    ProcessorId(0),
                    Priority(prios[pid]),
                    Box::new(op_machine(pid as u32, prios[pid], n, v, ops.clone())),
                );
            }
            k.run(&mut SeededRandom::new(seed), 1_000_000);
            assert!(k.all_finished(), "{label} seed {seed}");
            let timed: Vec<TimedOp<CasRegOp>> = k
                .ops()
                .iter()
                .map(|r| TimedOp {
                    start: r.start,
                    end: r.t,
                    op: match plans[r.pid.index()][r.inv_index as usize] {
                        CasOp::Cas { old, new } => CasRegOp::Cas { old, new },
                        CasOp::Read => CasRegOp::Read,
                    },
                    result: r.output.unwrap(),
                })
                .collect();
            check_linearizable(&CasRegisterSpec { init: INIT }, &timed)
                .unwrap_or_else(|e| panic!("{label} seed {seed}: {e}"));
            check_well_formed(k.history())
                .unwrap_or_else(|v| panic!("{label} seed {seed}: {v}"));
        }
    }
}
