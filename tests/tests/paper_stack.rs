//! End-to-end integration across the workspace: upper bound (Fig. 7),
//! lower bound (Fig. 6), ablation equivalence, and the native port all
//! telling one consistent story.

use hybrid_wf::multi::consensus::LocalMode;
use lowerbound::adversary::{fig7_kernel, find_violation, MaxPreempt};
use lowerbound::fig6;
use sched_sim::{Decider, ProcessId, SeededRandom};

/// Modeled and expanded local elections produce the same decision value on
/// identical seeds and configurations (the DESIGN.md §6.2 ablation, run
/// end to end).
#[test]
fn local_mode_ablation_same_decisions() {
    for seed in 0..15u64 {
        let decide = |mode| {
            let mut k = fig7_kernel(2, 3, 2, 2, 128, mode);
            let mut d = SeededRandom::new(seed);
            k.run(&mut d, 20_000_000);
            assert!(k.all_finished());
            k.output(ProcessId(0)).unwrap()
        };
        // Note: the two modes consume scheduler decisions differently, so
        // schedules diverge; both must still be valid decisions drawn from
        // the same input set, and all processes agree within each run.
        let a = decide(LocalMode::Modeled);
        let b = decide(LocalMode::Expanded);
        let inputs: Vec<u64> = (0..4).map(|p| 10 + p).collect();
        assert!(inputs.contains(&a), "seed {seed}: {a}");
        assert!(inputs.contains(&b), "seed {seed}: {b}");
    }
}

/// The upper and lower bounds bracket reality: at a generous quantum the
/// adversary never wins; at the Theorem 3 quantum the Fig. 6 construction
/// proves no algorithm could have won.
#[test]
fn bounds_bracket_reality() {
    // Upper side: Fig. 7 withstands the adversary at large Q.
    assert_eq!(find_violation(2, 2, 2, 1, 128, LocalMode::Modeled, 10), None);
    assert_eq!(find_violation(3, 4, 2, 1, 128, LocalMode::Modeled, 5), None);
    // Lower side: the impossibility witness at Q = 2P − C.
    for (p, c) in [(2, 2), (2, 3), (3, 3), (3, 5)] {
        assert!(fig6::construct(p, c).contradiction(), "P={p} C={c}");
    }
}

/// The native (real threads, real atomics) port and the simulator agree in
/// kind: both always reach agreement on valid inputs for the same (P, C,
/// M) configurations.
#[test]
fn native_port_matches_simulated_semantics() {
    for (p, c, m) in [(2u32, 2u32, 2u32), (2, 4, 2), (3, 3, 2)] {
        // Simulated:
        let mut k = fig7_kernel(p, c, m, 1, 64, LocalMode::Modeled);
        let mut d = MaxPreempt::new(9);
        k.run(&mut d, 50_000_000);
        assert!(k.all_finished());
        let sim_dec = k.output(ProcessId(0)).unwrap();
        let n = p * m;
        for pid in 0..n {
            assert_eq!(k.output(ProcessId(pid)), Some(sim_dec));
        }
        // Native:
        for _ in 0..10 {
            let outs = native::fig7::run_native(p, c, m);
            assert!(outs.windows(2).all(|w| w[0] == w[1]), "P={p} C={c}: {outs:?}");
        }
    }
}

/// Exercising Theorem 3's quantitative side across crates: access-failure
/// pressure at the Theorem 3 quantum exceeds pressure at the Theorem 4
/// quantum.
#[test]
fn quantum_governs_access_failures() {
    use hybrid_wf::multi::failures::summarize;
    let af = |q: u32| {
        let mut total = 0;
        for seed in 0..30 {
            let mut k = fig7_kernel(2, 2, 3, 1, q, LocalMode::Modeled);
            let mut mp = MaxPreempt::new(seed);
            let mut sr = SeededRandom::new(seed);
            let d: &mut dyn Decider = if seed % 2 == 0 { &mut mp } else { &mut sr };
            k.run(d, 50_000_000);
            let s = summarize(&k.mem);
            total += s.same + s.diff;
        }
        total
    };
    let (lo, hi) = (af(2), af(128));
    assert!(lo > 2 * hi, "AF at Q=2 ({lo}) should dwarf AF at Q=128 ({hi})");
}
