//! Parallel exploration is bit-identical to serial, and state-space
//! reduction is sound.
//!
//! The frontier-sharded parallel explorer claims *determinism*: because
//! every state is claimed exactly once in the sharded global dedup table,
//! each of `terminals`, `steps`, `deduped`, `por_pruned` and
//! `peak_visited` is independent of visit order whenever no bound
//! truncates the run — so the parallel stats must equal the serial ones
//! **exactly**, at every worker count, and the multiset of quiescent
//! states must match too. These tests pin that claim, then pin the two
//! reduction soundness theorems the explorer relies on:
//!
//! * **POR** preserves the quiescent-state set exactly (a singleton ample
//!   set defers only commuting statements, and a deferred process's next
//!   step stays enabled and independent until taken), so the terminal
//!   multiset of a reduced run equals the unreduced one.
//! * **Symmetry** merges states identical up to a priority-preserving
//!   process/processor permutation; over a permutation-invariant property
//!   (agreement + validity), verifying one orbit representative verifies
//!   the orbit.

use std::collections::BTreeMap;
use std::sync::Mutex;

use hybrid_wf::uni::consensus::{decide_machine, UniConsensusMem, MIN_QUANTUM};
use lowerbound::explore_grid::{fig3_kernel, pair_kernel, PairMem};
use sched_sim::explore::{explore_parallel, ExploreBounds, ExploreStats, Truncation, Verdict};
use sched_sim::ids::{ProcessId, ProcessorId, Priority};
use sched_sim::kernel::{Kernel, SystemSpec};
use sched_sim::scenario::Scenario;

/// The multiset of quiescent states, fingerprinted by every process's
/// output. Collected under a mutex so the parallel explorer can report
/// from any worker; sorted so visit order cancels out.
fn terminal_multiset<M: Clone + std::hash::Hash + Send>(
    k: &Kernel<M>,
    bounds: ExploreBounds,
    jobs: usize,
) -> (ExploreStats, Vec<Vec<Option<u64>>>) {
    let terminals = Mutex::new(Vec::new());
    let stats = explore_parallel(k, bounds, jobs, |t| {
        let outs: Vec<Option<u64>> =
            (0..t.n_processes()).map(|p| t.output(ProcessId(p as u32))).collect();
        terminals.lock().expect("terminal collector poisoned").push(outs);
        Verdict::KeepGoing
    });
    let mut terminals = terminals.into_inner().expect("terminal collector poisoned");
    terminals.sort();
    (stats, terminals)
}

/// Parallel exploration at every worker count returns the serial stats
/// bit-for-bit and the same terminal multiset — narrow and wide hashes
/// alike.
#[test]
fn parallel_matches_serial_stats_and_terminals() {
    let k = fig3_kernel(MIN_QUANTUM, &[1, 2, 3]);
    for wide in [false, true] {
        let bounds = ExploreBounds { wide_hash: wide, ..ExploreBounds::default() };
        let (serial, serial_terms) = terminal_multiset(&k, bounds, 1);
        assert_eq!(serial.truncation, Truncation::None);
        for jobs in [2, 4] {
            let (par, par_terms) = terminal_multiset(&k, bounds, jobs);
            assert_eq!(serial, par, "stats diverged at jobs={jobs} wide={wide}");
            assert_eq!(serial_terms, par_terms, "terminals diverged at jobs={jobs} wide={wide}");
        }
    }
}

/// POR soundness on the fuzz-grid Fig. 3 configuration (three processes,
/// legal quantum) and on the sharded pair workload where POR actually
/// fires: the reduced run's terminal multiset — counted per distinct
/// output vector — must equal the unreduced one exactly.
#[test]
fn por_preserves_terminal_multiset() {
    fn counted(terms: Vec<Vec<Option<u64>>>) -> BTreeMap<Vec<Option<u64>>, usize> {
        let mut m = BTreeMap::new();
        for t in terms {
            *m.entry(t).or_insert(0) += 1;
        }
        m
    }
    let por = ExploreBounds { por: true, ..ExploreBounds::default() };

    // Fig. 3: every process touches the same cell, so POR must prune
    // nothing — and therefore change nothing.
    let k = fig3_kernel(MIN_QUANTUM, &[1, 2, 3]);
    let (plain, plain_terms) = terminal_multiset(&k, ExploreBounds::default(), 1);
    let (red, red_terms) = terminal_multiset(&k, por, 1);
    assert_eq!(red.por_pruned, 0, "same-cell statements never commute");
    assert_eq!(plain, red);
    assert_eq!(plain_terms, red_terms);

    // Sharded pair: POR prunes heavily; distinct outputs and their
    // multiplicities must still survive, though each distinct quiescent
    // state may be reached along fewer interleavings (`terminals` counts
    // arrivals at quiescence, which reduction is allowed to shrink only
    // by merging identical states — the distinct set is what must hold).
    let k = pair_kernel(MIN_QUANTUM, 1);
    let (plain, plain_terms) = terminal_multiset(&k, ExploreBounds::default(), 1);
    let (red, red_terms) = terminal_multiset(&k, por, 1);
    assert!(red.por_pruned > 0, "disjoint shards must commute");
    assert_eq!(plain.terminals, red.terminals, "POR must preserve quiescent arrivals");
    assert_eq!(counted(plain_terms), counted(red_terms));
}

/// Symmetry + POR on the symmetric four-proposer workload: ≥ 5× fewer
/// visited states, same distinct decisions. With identical proposals the
/// only decision value is the proposal itself, so the reduced run proves
/// exactly what the unreduced one does.
#[test]
fn symmetry_shrinks_symmetric_workload_five_fold() {
    let k = fig3_kernel(MIN_QUANTUM, &[7, 7, 7, 7]);
    let plain = explore_parallel(&k, ExploreBounds::default(), 1, |t| {
        assert!((0..4).all(|p| t.output(ProcessId(p)) == Some(7)));
        Verdict::KeepGoing
    });
    let reduced = ExploreBounds::default().reduced();
    let sym = explore_parallel(&k, reduced, 1, |t| {
        assert!((0..4).all(|p| t.output(ProcessId(p)) == Some(7)));
        Verdict::KeepGoing
    });
    assert_eq!(plain.truncation, Truncation::None);
    assert_eq!(sym.truncation, Truncation::None);
    assert!(
        sym.peak_visited * 5 <= plain.peak_visited,
        "expected ≥ 5× shrink: {} vs {}",
        plain.peak_visited,
        sym.peak_visited
    );
}

/// Early-stop on a violating workload: Fig. 3 below the paper's quantum
/// bound (Q = 1 < 8) admits disagreeing terminals, and both the serial
/// and the parallel explorer must find one and stop with
/// [`Truncation::VisitorStop`].
#[test]
fn early_stop_finds_sub_threshold_violation_in_both_modes() {
    let mut s = Scenario::new(
        UniConsensusMem::default(),
        SystemSpec::hybrid(1).with_adversarial_alignment(),
    );
    for v in [1u64, 2] {
        s.add_process(ProcessorId(0), Priority(1), Box::new(decide_machine(v)));
    }
    let k = s.into_kernel();
    for jobs in [1usize, 4] {
        let stats = explore_parallel(&k, ExploreBounds::default(), jobs, |t| {
            if t.output(ProcessId(0)) != t.output(ProcessId(1)) {
                Verdict::Stop
            } else {
                Verdict::KeepGoing
            }
        });
        assert_eq!(
            stats.truncation,
            Truncation::VisitorStop,
            "jobs={jobs}: exhaustive search below the bound must hit a disagreement"
        );
    }
}

/// The pair workload's memory type stays permutation-*sensitive* (two
/// distinct shards), so the grid keeps symmetry off for it; this pin
/// documents that POR alone already collapses the cross-object product.
#[test]
fn pair_workload_reduces_by_por_alone() {
    let k: Kernel<PairMem> = pair_kernel(MIN_QUANTUM, 1);
    let plain = explore_parallel(&k, ExploreBounds::default(), 1, |_| Verdict::KeepGoing);
    let por = explore_parallel(
        &k,
        ExploreBounds { por: true, ..ExploreBounds::default() },
        1,
        |_| Verdict::KeepGoing,
    );
    assert_eq!(plain.terminals, por.terminals);
    assert!(por.peak_visited * 5 <= plain.peak_visited);
}
