//! Adversarial-fuzz integration: a seeded smoke pass over every algorithm
//! family at legal quantum, the full detect → shrink → artifact → replay
//! pipeline at sub-threshold quantum, and a corpus runner that replays
//! every committed counterexample in `golden/fuzz/` and asserts the
//! original verdict reproduces byte-for-byte.

use lowerbound::fuzz::{
    case_specs, fuzz_cell, replay_artifact, shrink_and_capture, CaseSpec, CounterExample, Expect,
    Family, DECIDERS,
};

/// The committed counterexample corpus, resolved against the package root
/// so the test works regardless of the runner's working directory.
const CORPUS_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/fuzz");

/// One bounded, seeded case per family at its legal quantum: the safety
/// oracles must stay silent under a hostile decider when the paper's
/// hypothesis holds.
#[test]
fn every_family_is_clean_at_legal_q() {
    for family in Family::ALL {
        let spec = CaseSpec {
            family,
            q: family.legal_q(),
            regime: "legal",
            expect: Expect::Clean,
        };
        let rep = fuzz_cell(&spec, "storm", 2);
        assert_eq!(rep.runs, 2);
        assert!(rep.steps > 0, "{}: no statements executed", family.name());
        assert_eq!(
            rep.violations,
            0,
            "{} at legal Q={} violated its oracle: {:?}",
            family.name(),
            spec.q,
            rep.first.map(|f| f.verdict)
        );
    }
}

/// Every `Expect::Violation` spec in the grid must actually produce a
/// violation within the smoke seed budget, and the shrunk artifact must
/// replay deterministically to the same verdict.
#[test]
fn predicted_violations_fire_shrink_and_replay() {
    let predicted: Vec<CaseSpec> = case_specs()
        .into_iter()
        .filter(|s| matches!(s.expect, Expect::Violation))
        .collect();
    assert!(!predicted.is_empty(), "the grid must predict at least one violation");
    for spec in predicted {
        let mut found = None;
        'outer: for decider in DECIDERS {
            let rep = fuzz_cell(&spec, decider, 8);
            if let Some(first) = rep.first {
                found = Some((decider, first));
                break 'outer;
            }
        }
        let (decider, first) = found.unwrap_or_else(|| {
            panic!("{} at sub Q={} must violate within 8 seeds", spec.family.name(), spec.q)
        });
        let ce = shrink_and_capture(&spec, decider, first.seed, &first.script);
        assert!(ce.forced <= first.script.len(), "shrinking must not grow the script");
        let msg = replay_artifact(&ce.to_text()).expect("shrunk artifact must replay");
        assert!(msg.contains("violation reproduced"), "{msg}");
    }
}

/// Replays every committed artifact in `golden/fuzz/`, asserting that the
/// recorded verdict reproduces and the re-captured trace is byte-identical
/// (both checked inside `replay_artifact`).
#[test]
fn committed_corpus_reproduces_every_verdict() {
    let mut paths: Vec<_> = std::fs::read_dir(CORPUS_DIR)
        .expect("golden/fuzz corpus dir exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "trace"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 2,
        "corpus must hold at least the fig3 and fig7 counterexamples, found {paths:?}"
    );
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("read corpus artifact");
        let ce = CounterExample::from_text(&text)
            .unwrap_or_else(|e| panic!("{}: malformed artifact: {e}", path.display()));
        let msg = replay_artifact(&text)
            .unwrap_or_else(|e| panic!("{}: replay failed: {e}", path.display()));
        assert!(
            msg.contains("violation reproduced"),
            "{}: expected the {} violation to reproduce, got: {msg}",
            path.display(),
            ce.family.name()
        );
    }
}
