//! The zero-allocation contract extended to the request-serving engine:
//! once a service shard's kernel is built (`Service::shard_kernel`), its
//! steady-state inner loop — kernel step path *plus* the session machine's
//! announce/decide/apply statements and the kernel's invocation-record
//! append — performs **no heap allocation at all**.
//!
//! This is what makes the flagship `--service` runs (a million-plus
//! invocations) allocation-free after setup: `session_mem` pre-sizes the
//! shared log and per-process op arenas, and the engine pre-reserves the
//! kernel's invocation log (`Kernel::reserve_ops`) for the plan's expected
//! invocation count. The counter object is used because its replica state
//! is a plain word (`CounterSpec::apply` is arithmetic); the queue's
//! `Vec`-cloning replay is an intentional, documented exception.
//!
//! This file deliberately holds a single test: the `#[global_allocator]`
//! counts process-wide, so a second concurrently-running test would
//! pollute the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hybrid_wf::service::{session_mem, OpGen, SessionMachine};
use hybrid_wf::universal::{CounterSpec, UniversalMem};
use sched_sim::prelude::{Kernel, RoundRobin, Scenario, Service, ServiceSpec, SystemSpec};

/// Wraps the system allocator, counting every allocation (alloc, realloc,
/// alloc_zeroed). Deallocations are not counted — the contract is about
/// acquiring memory on the hot path.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One shard of a closed-loop counter service, exactly as the engine
/// builds it: pre-sized shared memory, four session workers multiplexing
/// 64 clients, and the kernel's invocation log pre-reserved for the whole
/// request volume. The request count is far beyond what the measurement
/// windows consume, so the workload never quiesces mid-window.
fn counter_shard_kernel() -> Kernel<UniversalMem<CounterSpec>> {
    let spec = ServiceSpec::new(1, 64, 1 << 16).workers_per_shard(4);
    let service = Service::new(spec, |plan| {
        let reqs: Vec<u64> = (0..plan.workers).map(|w| plan.worker_requests(w)).collect();
        let mut s = Scenario::new(session_mem::<CounterSpec>(&reqs), SystemSpec::hybrid(8));
        for w in 0..plan.workers {
            let gen: OpGen<CounterSpec> = Arc::new(|client, _seq| (client % 7) + 1);
            let m = SessionMachine::new(
                CounterSpec,
                w,
                plan.workers,
                plan.worker_requests(w),
                plan.think(),
                plan.worker_clients(w),
                gen,
            );
            plan.add_worker(&mut s, w, Box::new(m));
        }
        s
    });
    service.shard_kernel(0)
}

/// Warmup, then three retry windows of 1000 steps each: a stray one-shot
/// lazy init (the test harness's result-channel park) is absorbed by the
/// next clean window, while a real inner-loop regression allocates in
/// every window and still fails. Same discipline as `alloc_free_step.rs`.
#[test]
fn service_inner_loop_does_not_allocate() {
    let mut k = counter_shard_kernel();
    let mut decider = RoundRobin::new();

    // Warmup: scratch buffers, decider state, and any first-invocation
    // paths reach steady state.
    for _ in 0..200 {
        assert!(k.step(&mut decider).is_some(), "service workload must never quiesce here");
    }

    let mut allocated = 0;
    for _attempt in 0..3 {
        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..1_000 {
            assert!(k.step(&mut decider).is_some(), "service workload must never quiesce here");
        }
        allocated = ALLOCS.load(Ordering::Relaxed) - before;
        if allocated == 0 {
            break;
        }
    }

    assert_eq!(
        allocated, 0,
        "service inner loop allocated {allocated} times over 1000 steps \
         (in three consecutive windows)"
    );
    // The windows really served requests: the kernel recorded completed
    // invocations, and the replica advanced.
    // ~3–4 statements per closed-loop counter request ⇒ well over 200
    // completions in the 1200+ steps driven above.
    assert!(k.ops().len() >= 200, "only {} invocations completed", k.ops().len());
}
