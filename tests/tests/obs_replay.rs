//! Deterministic replay, end to end: any captured run — seeded-random or
//! adversary-driven — replays bit-identically from its recorded decision
//! script, and a failing-oracle trace artifact dumped by
//! [`hybrid_wf::oracle::check_linearizable_traced`] reproduces the failure
//! after a disk round trip.
//!
//! The capture/replay precondition — "build the system identically on
//! every attempt" — is exactly what a [`Scenario`] provides: capture with
//! [`Scenario::run_seeded`], replay against a fresh [`Scenario::kernel`].

use hybrid_wf::multi::consensus::LocalMode;
use hybrid_wf::oracle::{check_linearizable, check_linearizable_traced, SeqSpec, TimedOp};
use hybrid_wf::universal::{op_machine, CounterSpec, UniversalMem};
use lowerbound::adversary::{fig7_scenario, MaxPreempt};
use sched_sim::machine::{FnMachine, StepOutcome};
use sched_sim::obs::Trace;
use sched_sim::rng::SplitMix64;
use sched_sim::{ProcessorId, Priority, Scenario, SystemSpec};
use wfmem::Val;

/// A universal-construction counter scenario; every kernel built from it
/// is identical, so a captured run can be replayed against a fresh one.
fn counter_scenario(n: u32, per: u32, q: u32) -> Scenario<UniversalMem<CounterSpec>> {
    let mut s = Scenario::new(
        UniversalMem::<CounterSpec>::new(n, 4 * (n * per) as usize + 4),
        SystemSpec::hybrid(q).with_adversarial_alignment().with_history(),
    )
    .with_obs()
    .step_budget(1_000_000);
    for pid in 0..n {
        s.add_process(
            ProcessorId(0),
            Priority(1 + pid % 2),
            Box::new(op_machine(CounterSpec, pid, n, vec![1; per as usize])),
        );
    }
    s
}

/// Capture → replay across many random seeds and shapes: the replayed
/// history and the final shared memory are bit-identical to the recording.
#[test]
fn seeded_random_runs_replay_bit_identical() {
    let mut gen = SplitMix64::new(0x0b5_0b5);
    for case in 0..24u32 {
        let seed = gen.next_u64();
        let n = gen.range_u32(2, 5);
        let per = gen.range_u32(1, 4);
        let q = gen.range_u32(1, 16);

        let s = counter_scenario(n, per, q);
        let mut captured = s.run_seeded(seed);
        assert!(captured.all_finished, "case {case}: seed {seed} did not finish");
        let trace = captured.take_trace().expect("obs attached");

        let mut r = s.kernel();
        r.run(&mut trace.scripted(), s.budget());
        assert_eq!(
            r.history(),
            captured.history(),
            "case {case}: seed={seed} n={n} per={per} q={q}"
        );
        assert_eq!(&r.mem, captured.mem(), "case {case}: final memory diverged");
        assert_eq!(r.counters(), captured.counters, "case {case}: counters diverged");
    }
}

/// The text serialization is lossless: a trace that goes to text and back
/// still replays to the identical history.
#[test]
fn replay_survives_text_round_trip() {
    let s = counter_scenario(3, 2, 4);
    let mut captured = s.run_seeded(99);
    assert!(captured.all_finished);
    let trace = captured.take_trace().unwrap();

    let text = trace.to_text();
    let reloaded = Trace::from_text(&text).expect("parses");
    assert_eq!(reloaded, trace);

    let mut r = s.kernel();
    r.run(&mut reloaded.scripted(), s.budget());
    assert_eq!(r.history(), captured.history());
    assert_eq!(&r.mem, captured.mem());
}

/// Adversary runs are replayable too: the preemption-maximizing
/// `MaxPreempt` decider from the lower-bound experiments records through
/// the same decision stream as any other decider.
#[test]
fn adversary_run_replays_bit_identical() {
    for seed in [0u64, 3, 11] {
        let s = fig7_scenario(2, 2, 3, 1, 8, LocalMode::Modeled).with_obs();
        let mut captured = s.run(&mut MaxPreempt::new(seed));
        assert!(captured.all_finished, "seed {seed}");
        let trace = captured.take_trace().unwrap();

        let mut r = s.kernel();
        let steps = r.run(&mut trace.scripted(), s.budget());
        let replay = sched_sim::RunResult::from_kernel(r, steps, std::time::Duration::ZERO);
        assert!(replay.all_finished, "seed {seed} replay");
        assert_eq!(replay.outputs, captured.outputs, "seed {seed}");
        assert_eq!(replay.counters, captured.counters, "seed {seed}");
    }
}

/// Fetch-and-increment sequential spec for the lost-update regression.
#[derive(Clone, Copy, Debug)]
struct FaiSpec;

impl SeqSpec for FaiSpec {
    type Op = ();
    type State = Val;

    fn init(&self) -> Val {
        0
    }

    fn apply(&self, state: &Val, _op: &()) -> (Val, Val) {
        (state + 1, *state)
    }
}

/// Shared memory for the racy counter: the counter itself plus one private
/// register per process (the machine closure must be `Fn`, so the "local"
/// read stash lives here — only its owner ever touches it).
type RacyMem = (u64, Vec<u64>);

/// A deliberately racy fetch-and-increment: read the counter in one
/// statement, write it back incremented in the next. Correct in isolation,
/// loses updates whenever a quantum boundary splits the two statements —
/// exactly the failure mode the paper's `Q ≥ c` hypotheses exclude.
fn racy_fai_machine(me: usize, rounds: u32) -> Box<dyn sched_sim::StepMachine<RacyMem>> {
    Box::new(FnMachine::new(move |mem: &mut RacyMem, calls| {
        if calls % 2 == 0 {
            mem.1[me] = mem.0;
            (StepOutcome::Continue, None)
        } else {
            mem.0 = mem.1[me] + 1;
            let done = (calls + 1) / 2 >= rounds;
            (
                if done { StepOutcome::Finished } else { StepOutcome::InvocationEnd },
                Some(mem.1[me]),
            )
        }
    }))
}

fn racy_scenario() -> Scenario<RacyMem> {
    // Q = 1: every window is a single statement, so the read/write pair is
    // always separable.
    let mut s = Scenario::new(
        (0u64, vec![0u64; 2]),
        SystemSpec::hybrid(1).with_adversarial_alignment().with_history(),
    )
    .with_obs()
    .step_budget(10_000);
    for me in 0..2 {
        s.add_process(ProcessorId(0), Priority(1), racy_fai_machine(me, 2));
    }
    s
}

fn timed_fai_ops(ops: &[sched_sim::kernel::OpRecord]) -> Vec<TimedOp<()>> {
    ops.iter()
        .map(|r| TimedOp { start: r.start, end: r.t, op: (), result: r.output.unwrap() })
        .collect()
}

/// A failing linearizability check dumps a trace artifact; reloading that
/// artifact from disk and replaying it reproduces the identical failing
/// history — the debugging loop the observability layer exists for.
#[test]
fn dumped_failing_oracle_trace_reproduces_failure() {
    let s = racy_scenario();
    // Find a seed whose schedule loses an update (Q = 1 makes this easy).
    let mut failing = None;
    for seed in 0..100u64 {
        let mut captured = s.run_seeded(seed);
        assert!(captured.all_finished, "seed {seed}");
        let trace = captured.take_trace().unwrap();
        let err = check_linearizable_traced(
            &FaiSpec,
            &timed_fai_ops(captured.ops()),
            &trace,
            "racy-fai-regression",
        );
        if let Err(e) = err {
            failing = Some((seed, captured, e));
            break;
        }
    }
    let (seed, captured, err) =
        failing.expect("Q = 1 must admit a lost update within 100 seeds");

    // The error carries the artifact path; the artifact round-trips.
    let path = err
        .lines()
        .find_map(|l| l.strip_prefix("replayable trace dumped to "))
        .unwrap_or_else(|| panic!("no artifact path in error: {err}"));
    let text = std::fs::read_to_string(path).expect("artifact readable");
    let reloaded = Trace::from_text(&text).expect("artifact parses");

    // Replaying the artifact reproduces the same failing history, and the
    // oracle rejects it again.
    let mut r = s.kernel();
    r.run(&mut reloaded.scripted(), s.budget());
    assert!(r.all_finished());
    assert_eq!(r.history(), captured.history(), "seed {seed}: replay diverged");
    assert_eq!(&r.mem, captured.mem());
    assert!(
        check_linearizable(&FaiSpec, &timed_fai_ops(r.ops())).is_err(),
        "seed {seed}: replayed run must still violate linearizability"
    );
}
