//! Deterministic replay, end to end: any captured run — seeded-random or
//! adversary-driven — replays bit-identically from its recorded decision
//! script, and a failing-oracle trace artifact dumped by
//! [`hybrid_wf::oracle::check_linearizable_traced`] reproduces the failure
//! after a disk round trip.

use hybrid_wf::multi::consensus::LocalMode;
use hybrid_wf::oracle::{check_linearizable, check_linearizable_traced, SeqSpec, TimedOp};
use hybrid_wf::universal::{op_machine, CounterSpec, UniversalMem};
use lowerbound::adversary::{fig7_kernel, MaxPreempt};
use sched_sim::machine::{FnMachine, StepOutcome};
use sched_sim::obs::Trace;
use sched_sim::rng::SplitMix64;
use sched_sim::{Kernel, ProcessId, ProcessorId, Priority, SeededRandom, SystemSpec};
use wfmem::Val;

/// A universal-construction counter kernel, built identically on every
/// call so a captured run can be replayed against a fresh instance.
fn counter_kernel(n: u32, per: u32, q: u32) -> Kernel<UniversalMem<CounterSpec>> {
    let mut k = Kernel::new(
        UniversalMem::<CounterSpec>::new(n, 4 * (n * per) as usize + 4),
        SystemSpec::hybrid(q).with_adversarial_alignment().with_history(),
    );
    for pid in 0..n {
        k.add_process(
            ProcessorId(0),
            Priority(1 + pid % 2),
            Box::new(op_machine(CounterSpec, pid, n, vec![1; per as usize])),
        );
    }
    k
}

/// Capture → replay across many random seeds and shapes: the replayed
/// history and the final shared memory are bit-identical to the recording.
#[test]
fn seeded_random_runs_replay_bit_identical() {
    let mut gen = SplitMix64::new(0x0b5_0b5);
    for case in 0..24u32 {
        let seed = gen.next_u64();
        let n = gen.range_u32(2, 5);
        let per = gen.range_u32(1, 4);
        let q = gen.range_u32(1, 16);

        let mut k = counter_kernel(n, per, q);
        k.attach_obs();
        k.run(&mut SeededRandom::new(seed), 1_000_000);
        assert!(k.all_finished(), "case {case}: seed {seed} did not finish");
        let trace = k.take_obs().expect("obs attached");

        let mut r = counter_kernel(n, per, q);
        r.run(&mut trace.scripted(), 1_000_000);
        assert_eq!(
            r.history(),
            k.history(),
            "case {case}: seed={seed} n={n} per={per} q={q}"
        );
        assert_eq!(r.mem, k.mem, "case {case}: final memory diverged");
        assert_eq!(r.counters(), k.counters(), "case {case}: counters diverged");
    }
}

/// The text serialization is lossless: a trace that goes to text and back
/// still replays to the identical history.
#[test]
fn replay_survives_text_round_trip() {
    let mut k = counter_kernel(3, 2, 4);
    k.attach_obs();
    k.run(&mut SeededRandom::new(99), 1_000_000);
    assert!(k.all_finished());
    let trace = k.take_obs().unwrap();

    let text = trace.to_text();
    let reloaded = Trace::from_text(&text).expect("parses");
    assert_eq!(reloaded, trace);

    let mut r = counter_kernel(3, 2, 4);
    r.run(&mut reloaded.scripted(), 1_000_000);
    assert_eq!(r.history(), k.history());
    assert_eq!(r.mem, k.mem);
}

/// Adversary runs are replayable too: the preemption-maximizing
/// `MaxPreempt` decider from the lower-bound experiments records through
/// the same decision stream as any other decider.
#[test]
fn adversary_run_replays_bit_identical() {
    for seed in [0u64, 3, 11] {
        let mk = || {
            let mut k = fig7_kernel(2, 2, 3, 1, 8, LocalMode::Modeled);
            k.attach_obs();
            k
        };
        let mut k = mk();
        k.run(&mut MaxPreempt::new(seed), 50_000_000);
        assert!(k.all_finished(), "seed {seed}");
        let trace = k.take_obs().unwrap();

        let mut r = mk();
        r.run(&mut trace.scripted(), 50_000_000);
        assert!(r.all_finished(), "seed {seed} replay");
        let outs = |k: &Kernel<_>| {
            (0..k.n_processes() as u32)
                .map(|p| k.output(ProcessId(p)))
                .collect::<Vec<_>>()
        };
        assert_eq!(outs(&r), outs(&k), "seed {seed}");
        assert_eq!(r.counters(), k.counters(), "seed {seed}");
    }
}

/// Fetch-and-increment sequential spec for the lost-update regression.
#[derive(Clone, Copy, Debug)]
struct FaiSpec;

impl SeqSpec for FaiSpec {
    type Op = ();
    type State = Val;

    fn init(&self) -> Val {
        0
    }

    fn apply(&self, state: &Val, _op: &()) -> (Val, Val) {
        (state + 1, *state)
    }
}

/// Shared memory for the racy counter: the counter itself plus one private
/// register per process (the machine closure must be `Fn`, so the "local"
/// read stash lives here — only its owner ever touches it).
type RacyMem = (u64, Vec<u64>);

/// A deliberately racy fetch-and-increment: read the counter in one
/// statement, write it back incremented in the next. Correct in isolation,
/// loses updates whenever a quantum boundary splits the two statements —
/// exactly the failure mode the paper's `Q ≥ c` hypotheses exclude.
fn racy_fai_machine(me: usize, rounds: u32) -> Box<dyn sched_sim::StepMachine<RacyMem>> {
    Box::new(FnMachine::new(move |mem: &mut RacyMem, calls| {
        if calls % 2 == 0 {
            mem.1[me] = mem.0;
            (StepOutcome::Continue, None)
        } else {
            mem.0 = mem.1[me] + 1;
            let done = (calls + 1) / 2 >= rounds;
            (
                if done { StepOutcome::Finished } else { StepOutcome::InvocationEnd },
                Some(mem.1[me]),
            )
        }
    }))
}

fn racy_kernel() -> Kernel<RacyMem> {
    // Q = 1: every window is a single statement, so the read/write pair is
    // always separable.
    let mut k = Kernel::new(
        (0u64, vec![0u64; 2]),
        SystemSpec::hybrid(1).with_adversarial_alignment().with_history(),
    );
    for me in 0..2 {
        k.add_process(ProcessorId(0), Priority(1), racy_fai_machine(me, 2));
    }
    k
}

fn timed_fai_ops(k: &Kernel<RacyMem>) -> Vec<TimedOp<()>> {
    k.ops()
        .iter()
        .map(|r| TimedOp { start: r.start, end: r.t, op: (), result: r.output.unwrap() })
        .collect()
}

/// A failing linearizability check dumps a trace artifact; reloading that
/// artifact from disk and replaying it reproduces the identical failing
/// history — the debugging loop the observability layer exists for.
#[test]
fn dumped_failing_oracle_trace_reproduces_failure() {
    // Find a seed whose schedule loses an update (Q = 1 makes this easy).
    let mut failing = None;
    for seed in 0..100u64 {
        let mut k = racy_kernel();
        k.attach_obs();
        k.run(&mut SeededRandom::new(seed), 10_000);
        assert!(k.all_finished(), "seed {seed}");
        let trace = k.take_obs().unwrap();
        let err = check_linearizable_traced(
            &FaiSpec,
            &timed_fai_ops(&k),
            &trace,
            "racy-fai-regression",
        );
        if let Err(e) = err {
            failing = Some((seed, k, e));
            break;
        }
    }
    let (seed, k, err) = failing.expect("Q = 1 must admit a lost update within 100 seeds");

    // The error carries the artifact path; the artifact round-trips.
    let path = err
        .lines()
        .find_map(|l| l.strip_prefix("replayable trace dumped to "))
        .unwrap_or_else(|| panic!("no artifact path in error: {err}"));
    let text = std::fs::read_to_string(path).expect("artifact readable");
    let reloaded = Trace::from_text(&text).expect("artifact parses");

    // Replaying the artifact reproduces the same failing history, and the
    // oracle rejects it again.
    let mut r = racy_kernel();
    r.run(&mut reloaded.scripted(), 10_000);
    assert!(r.all_finished());
    assert_eq!(r.history(), k.history(), "seed {seed}: replay diverged");
    assert_eq!(r.mem, k.mem);
    assert!(
        check_linearizable(&FaiSpec, &timed_fai_ops(&r)).is_err(),
        "seed {seed}: replayed run must still violate linearizability"
    );
}
