//! The profiler sweep's determinism contract, pinned at the artifact
//! layer: `experiments --profile --jobs N` publishes a byte-identical
//! `BENCH_profile.json` for any `N`.
//!
//! `lowerbound::profile` has an internal test that the *profiles* are
//! equal; this test goes one level up and compares the **canonical report
//! lines** — the exact JSON that lands in the committed artifact after
//! `split_timing` strips the nondeterministic `wall_ms` into the timing
//! sidecar. Histogram buckets, per-priority tables, merged family
//! metrics: all of it must serialize identically regardless of worker
//! count, or the artifact would churn with the machine's core count.

use lowerbound::profile::{report_lines, run_grid};
use sched_sim::report::split_timing;

/// Renders the grid the way the artifact writer does: canonical lines
/// only, `wall_ms` split off.
fn canonical_artifact(jobs: usize) -> Vec<String> {
    report_lines(&run_grid(jobs, true))
        .iter()
        .map(|line| split_timing(line).0.to_string())
        .collect()
}

#[test]
fn profile_artifact_parallel_equals_serial() {
    let serial = canonical_artifact(1);
    let parallel = canonical_artifact(4);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
        assert_eq!(s, p, "canonical report line {i} diverged between jobs=1 and jobs=4");
    }
    // The merged family lines carry the full histogram payload; make sure
    // they are actually present (the comparison above would pass vacuously
    // on an empty grid).
    assert!(
        serial.iter().any(|l| l.contains("\"kind\":\"profile_family\"")),
        "expected merged per-family lines in the artifact"
    );
    assert!(
        serial.iter().any(|l| l.contains("\"buckets\":")),
        "expected histogram payloads in the merged metrics"
    );
}
