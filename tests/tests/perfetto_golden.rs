//! Byte-pins the Perfetto/Chrome-trace exporter against a golden capture:
//! rendering the committed Fig. 3 fuzz counterexample's trace must
//! reproduce `golden/fuzz_fig3_q1_storm_s5.perfetto.json` exactly.
//!
//! This freezes every formatting decision the exporter makes — event
//! ordering, fixed JSON key order, the two-rows-per-process track layout,
//! timestamp attribution for untimed decision events, and the `"open"`
//! marker for spans still in flight at end of trace. Any change to the
//! export format must consciously regenerate the golden (via
//! `experiments --profile-trace tests/golden/fuzz/fuzz_fig3_q1_storm_s5.trace`).

use sched_sim::obs::Trace;
use sched_sim::prof::chrome_trace_text;
use sched_sim::report::Json;

const TRACE: &str = include_str!("../golden/fuzz/fuzz_fig3_q1_storm_s5.trace");
const GOLDEN: &str = include_str!("../golden/fuzz_fig3_q1_storm_s5.perfetto.json");

#[test]
fn fig3_counterexample_perfetto_export_matches_golden() {
    let trace = Trace::from_text(TRACE).expect("committed counterexample parses as a trace");
    let rendered = chrome_trace_text(&trace);
    assert_eq!(
        rendered, GOLDEN,
        "Perfetto export of the Fig. 3 counterexample diverged from the golden capture"
    );

    // The golden itself must be a well-formed Chrome Trace Format
    // document — ui.perfetto.dev's contract, not just ours.
    let v = Json::parse(GOLDEN).expect("golden parses as JSON");
    let Some(Json::Arr(events)) = v.get("traceEvents") else {
        panic!("golden must carry a traceEvents array");
    };
    assert!(!events.is_empty());
    for ev in events {
        for key in ["name", "ph", "pid", "tid", "ts"] {
            assert!(ev.get(key).is_some(), "event missing required key {key}: {ev}");
        }
    }
}
