//! The PR 3 zero-allocation contract, enforced by a counting allocator:
//! with history recording, observability, and profiling all off, the
//! kernel's steady-state step loop performs **no heap allocation at all**.
//!
//! This is the acceptance criterion for the allocation-free step path:
//! labels are discarded without materialisation (`StepCtx` in discarding
//! mode), the cpu/candidate scans reuse the kernel's scratch buffers, and
//! nothing on the statement path touches `String` or grows a `Vec` once
//! the warmup has sized every reusable buffer.
//!
//! This file deliberately holds a single test: the `#[global_allocator]`
//! counts process-wide, so a second concurrently-running test would
//! pollute the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sched_sim::program::{Flow, ProgMachine, ProgramBuilder};
use sched_sim::{Kernel, ProcessorId, Priority, RoundRobin, SystemSpec};

/// Wraps the system allocator, counting every allocation (alloc, realloc,
/// alloc_zeroed). Deallocations are not counted — the contract is about
/// acquiring memory on the hot path.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A nonterminating two-process workload on one processor: each process
/// spins on a labelled counted statement, so every kernel step runs the
/// full path — cpu scan, holder scan, quantum accounting, machine step
/// with a statement label offered to the context — forever.
fn spinning_kernel() -> Kernel<u64> {
    let mut b = ProgramBuilder::<(), u64>::new();
    let main = b.proc("spin");
    let top = b.here(main);
    b.stmt(main, "1: mem := mem + 1", move |_l, mem| {
        *mem = mem.wrapping_add(1);
        Flow::Goto(top)
    });
    let prog = b.build();

    let mut k = Kernel::new(0u64, SystemSpec::hybrid(8).with_adversarial_alignment());
    for _ in 0..2 {
        k.add_process(
            ProcessorId(0),
            Priority(1),
            Box::new(ProgMachine::single_shot(&prog, (), main)),
        );
    }
    k
}

/// Warms `k` up, then measures 1000 steady-state steps and asserts the
/// step loop acquired no heap memory at all.
///
/// The allocation counter is process-wide, and the process is not
/// perfectly quiet: the test harness's main thread parks in its
/// result-channel `recv()` at a scheduler-determined moment, and that
/// first park lazily allocates (observed as exactly two allocations, 48
/// and 96 bytes, landing at an arbitrary point under host load). Such
/// exogenous allocations are one-shot, so the window is retried: a real
/// step-loop regression allocates in *every* window and still fails,
/// while a stray lazy init is absorbed by the next clean window.
fn assert_steady_state_alloc_free(k: &mut Kernel<u64>, what: &str) {
    let mut decider = RoundRobin::new();

    // Warmup: lets the kernel's scratch buffers and the decider's
    // round-robin memory reach their steady-state capacities.
    for _ in 0..200 {
        assert!(k.step(&mut decider).is_some(), "spin workload must never quiesce");
    }

    let mut allocated = 0;
    for _attempt in 0..3 {
        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..1_000 {
            assert!(k.step(&mut decider).is_some(), "spin workload must never quiesce");
        }
        allocated = ALLOCS.load(Ordering::Relaxed) - before;
        if allocated == 0 {
            break;
        }
    }

    assert_eq!(
        allocated, 0,
        "kernel step loop allocated {allocated} times over 1000 steps with {what} \
         (in three consecutive windows)"
    );
    assert!(k.mem >= 1_000, "statements must actually have executed");
}

#[test]
fn steady_state_step_loop_does_not_allocate() {
    let mut k = spinning_kernel();
    assert_steady_state_alloc_free(&mut k, "obs and history off");

    // The PR 5 extension of the contract: a kernel that *had* a streaming
    // profiler attached and then detached (`take_prof`) must be just as
    // allocation-free — the profiler being compiled in, and even having
    // been used, costs nothing once it is off.
    let mut k = spinning_kernel();
    k.attach_prof();
    let mut decider = RoundRobin::new();
    for _ in 0..50 {
        assert!(k.step(&mut decider).is_some(), "spin workload must never quiesce");
    }
    let profile = k.take_prof().expect("profiler was attached");
    assert!(profile.total_stmts() > 0, "profiler must have observed the warmup");
    assert_steady_state_alloc_free(&mut k, "profiler detached after use");
}
