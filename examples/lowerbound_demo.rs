//! Theorem 3 / Fig. 6: why the quantum must be large — a concrete
//! impossibility witness.
//!
//! Builds the paper's two histories for a `C`-consensus object on `P`
//! processors with `Q = 2P − C`: the adversary exhausts the object with
//! `2P − Q = C` invocations, so the distinguished process `p_x` receives
//! `⊥` in both histories, cannot tell them apart, and answers the same —
//! contradicting the different decisions the two histories reached.
//!
//! ```sh
//! cargo run -p examples --bin lowerbound_demo
//! ```

use lowerbound::fig6;
use sched_sim::trace::{render, TraceStyle};

fn main() {
    let f = fig6::construct(2, 2);
    println!("{}", f.narrative());

    println!("branch X history (first invoker proposes x = 1000):");
    print!("{}", render(&f.x_branch.history, TraceStyle::default()));
    println!(
        "  O decided {}, invoked {} times before p_x\n",
        f.x_branch.decided, f.x_branch.invocations_before_px
    );

    println!("branch Y history (first invoker proposes y = 2000):");
    print!("{}", render(&f.y_branch.history, TraceStyle::default()));
    println!(
        "  O decided {}, invoked {} times before p_x\n",
        f.y_branch.decided, f.y_branch.invocations_before_px
    );

    println!(
        "p_x returned {} in branch X and {} in branch Y — identical, as it must be,\n\
         since ⊥ carries no information. Agreement is violated in at least one branch.",
        f.x_branch.px_returned, f.y_branch.px_returned
    );
    assert!(f.contradiction());

    println!("\nThe same construction across the P ≤ C < 2P regime:");
    for p in 2..=4 {
        for c in p..2 * p {
            let f = fig6::construct(p, c);
            println!(
                "  P = {p}, C = {c}: Q = {} insufficient (contradiction = {})",
                f.q,
                f.contradiction()
            );
        }
    }
}
