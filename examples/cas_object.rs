//! Fig. 5: the O(V) compare-and-swap object from reads and writes, driven
//! by a mixed-priority workload with live preemption.
//!
//! ```sh
//! cargo run -p examples --bin cas_object
//! ```

use hybrid_wf::oracle::{check_linearizable, CasRegOp, CasRegisterSpec, TimedOp};
use hybrid_wf::uni::cas::{op_machine, CasMem, CasOp};
use sched_sim::prelude::{Kernel, ProcessId, ProcessorId, Priority, SeededRandom, SystemSpec};

fn main() {
    const INIT: u64 = 100;
    let v = 3u32; // three priority levels
    let prios = [1u32, 1, 2, 3];
    let plans: Vec<Vec<CasOp>> = vec![
        vec![CasOp::Cas { old: INIT, new: 1 }, CasOp::Read],
        vec![CasOp::Cas { old: INIT, new: 2 }, CasOp::Cas { old: 2, new: 5 }],
        vec![CasOp::Read, CasOp::Cas { old: 1, new: 6 }],
        vec![CasOp::Read],
    ];

    let n = prios.len() as u32;
    let mut k = Kernel::new(
        CasMem::new(v, &prios, INIT),
        SystemSpec::hybrid(128).with_adversarial_alignment(),
    );
    for (pid, ops) in plans.iter().enumerate() {
        k.add_process(
            ProcessorId(0),
            Priority(prios[pid]),
            Box::new(op_machine(pid as u32, prios[pid], n, v, ops.clone())),
        );
    }
    let steps = k.run(&mut SeededRandom::new(42), 1_000_000);
    println!("quiescent after {steps} statements; completed operations:\n");

    let timed: Vec<TimedOp<CasRegOp>> = k
        .ops()
        .iter()
        .map(|r| {
            let op = plans[r.pid.index()][r.inv_index as usize];
            let (desc, oracle_op) = match op {
                CasOp::Cas { old, new } => (
                    format!("C&S({old} → {new}) = {}", r.output.unwrap() == 1),
                    CasRegOp::Cas { old, new },
                ),
                CasOp::Read => (
                    format!("Read() = {}", r.output.unwrap()),
                    CasRegOp::Read,
                ),
            };
            println!(
                "  [{:>4},{:>4}]  p{} (prio {}): {desc}",
                r.start,
                r.t,
                r.pid.index(),
                prios[r.pid.index()]
            );
            TimedOp { start: r.start, end: r.t, op: oracle_op, result: r.output.unwrap() }
        })
        .collect();

    check_linearizable(&CasRegisterSpec { init: INIT }, &timed)
        .expect("Fig. 5 object is linearizable");
    println!("\nlinearizable against a sequential CAS register ✓");
    println!("final object value (via list ground truth): {}", k.mem.current_value());
    for pid in 0..n {
        println!(
            "  p{pid}: {} own-statements across {} ops — O(V) each, wait-free",
            k.stats(ProcessId(pid)).own_steps,
            plans[pid as usize].len()
        );
    }
}
