//! Figs. 7 and 8: wait-free consensus for many processes on `P` processors
//! built from `C`-consensus objects, with the level/port structure printed.
//!
//! ```sh
//! cargo run -p examples --bin multicore_consensus
//! ```

use hybrid_wf::multi::consensus::{decide_machine, LocalMode, MultiMem};
use hybrid_wf::multi::failures::summarize;
use hybrid_wf::multi::ports::PortLayout;
use sched_sim::prelude::{Kernel, ProcessId, ProcessorId, Priority, SeededRandom, SystemSpec};

fn main() {
    // Three processors; objects of consensus number 4 (so K = 1: cpu0 gets
    // two ports per level); up to 2 processes per processor, 2 priority
    // levels.
    let (p, c, m, v) = (3u32, 4u32, 2u32, 2u32);
    let layout = PortLayout::new(p, c, m);
    println!("{layout}");

    let cpu_of = [0u32, 0, 1, 1, 2, 2];
    let prio_of = [1u32, 2, 1, 2, 1, 2];
    let mem = MultiMem::new(layout, v, &prio_of, &cpu_of);
    let mut k = Kernel::new(mem, SystemSpec::hybrid(64).with_adversarial_alignment());

    println!("six processes, inputs 100+pid, adversarial first-window alignment:\n");
    for pid in 0..6u32 {
        k.add_process(
            ProcessorId(cpu_of[pid as usize]),
            Priority(prio_of[pid as usize]),
            Box::new(decide_machine(
                pid,
                cpu_of[pid as usize],
                prio_of[pid as usize],
                100 + u64::from(pid),
                LocalMode::Modeled,
            )),
        );
    }
    let steps = k.run(&mut SeededRandom::new(7), 1_000_000);
    println!("quiescent after {steps} statements:");
    for pid in 0..6u32 {
        println!(
            "  p{pid} on cpu{} prio{}: decided {}",
            cpu_of[pid as usize],
            prio_of[pid as usize],
            k.output(ProcessId(pid)).expect("decided")
        );
    }
    let s = summarize(&k.mem);
    println!(
        "\naccess failures: same-priority {} / different-priority {}; {} of {} levels clean",
        s.same,
        s.diff,
        s.clean_levels.len(),
        k.mem.layout.l
    );
    println!(
        "C-consensus invocations per level never exceed C = {}: max observed = {}",
        c,
        k.mem.cons.iter().skip(1).map(wfmem::CConsensus::invocations).max().unwrap()
    );
}
