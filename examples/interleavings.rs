//! Figs. 1 and 2 of the paper: how quantum-based and priority-based
//! schedulers interleave object invocations on one processor.
//!
//! Fig. 1(a): three *equal-priority* processes under quantum scheduling —
//! invocations are chopped at quantum boundaries, and a preempting process
//! need not finish its own invocation before the preempted one resumes.
//!
//! Fig. 1(b): three *distinct-priority* processes — a preemptor always
//! completes its invocation before the preempted process resumes, which is
//! the insight behind priority-based wait-free constructions.
//!
//! ```sh
//! cargo run -p examples --bin interleavings
//! ```

use sched_sim::prelude::{
    FnMachine, Kernel, ProcessorId, Priority, RoundRobin, StepOutcome, SystemSpec,
};
use sched_sim::trace::{render, TraceStyle};

/// A process performing `invocations` object invocations of `len`
/// statements each.
fn worker(len: u32, invocations: u32) -> Box<dyn sched_sim::StepMachine<()>> {
    Box::new(FnMachine::new(move |_mem: &mut (), calls| {
        let done_in_inv = (calls + 1) % len == 0;
        if done_in_inv && (calls + 1) / len >= invocations {
            (StepOutcome::Finished, None)
        } else if done_in_inv {
            (StepOutcome::InvocationEnd, None)
        } else {
            (StepOutcome::Continue, None)
        }
    }))
}

fn main() {
    println!("Fig. 1(a) — quantum-based: three equal-priority processes, Q = 3");
    println!("(invocations in brackets; '.' = preempted mid-invocation)\n");
    let mut k = Kernel::new((), SystemSpec::pure_quantum(3).with_history());
    for _ in 0..3 {
        k.add_process(ProcessorId(0), Priority(1), worker(5, 2));
    }
    k.run(&mut RoundRobin::new(), 1_000);
    print!("{}", render(k.history(), TraceStyle { quantum_ruler: false, max_cols: 120 }));

    println!("\nFig. 2 — the same run with quantum boundaries made visible:\n");
    print!("{}", render(k.history(), TraceStyle { quantum_ruler: true, max_cols: 120 }));

    println!("\nFig. 1(b) — priority-based: r > q > p; a preemptor runs to completion");
    println!("before the preempted process resumes:\n");
    let mut k = Kernel::new((), SystemSpec::pure_priority().with_history());
    let _p = k.add_process(ProcessorId(0), Priority(1), worker(6, 2));
    let q = k.add_held_process(ProcessorId(0), Priority(2), worker(4, 2));
    let r = k.add_held_process(ProcessorId(0), Priority(3), worker(3, 1));
    let mut d = RoundRobin::new();
    // p starts; q arrives mid-invocation; r arrives during q's invocation.
    for _ in 0..2 {
        k.step(&mut d);
    }
    k.release(q);
    for _ in 0..2 {
        k.step(&mut d);
    }
    k.release(r);
    k.run(&mut d, 1_000);
    print!("{}", render(k.history(), TraceStyle::default()));
    println!(
        "\nIn (b), when p resumes, every invocation of the higher-priority q and r\n\
         has completed — their operations appear atomic to p 'for free'."
    );
}
