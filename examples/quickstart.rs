//! Quickstart: wait-free consensus from reads and writes on a
//! hybrid-scheduled uniprocessor (Fig. 3 / Theorem 1 of Anderson & Moir,
//! PODC 1999), set up through the [`Scenario`] front door.
//!
//! ```sh
//! cargo run -p examples --bin quickstart
//! ```

use hybrid_wf::uni::consensus::{decide_machine, UniConsensusMem, MIN_QUANTUM};
use sched_sim::history::check_well_formed;
use sched_sim::prelude::{ProcessorId, Priority, Scenario, SystemSpec};

fn main() {
    // A hybrid-scheduled uniprocessor with quantum Q = 8 statements.
    let spec = SystemSpec::hybrid(MIN_QUANTUM).with_history();
    let mut scenario = Scenario::new(UniConsensusMem::default(), spec).step_budget(10_000);

    // Five processes at three priority levels, each proposing a value.
    let proposals = [(10u64, 1u32), (20, 1), (30, 2), (40, 2), (50, 3)];
    for &(value, priority) in &proposals {
        scenario.add_process(
            ProcessorId(0),
            Priority(priority),
            Box::new(decide_machine(value)),
        );
    }

    // Run under the fair round-robin scheduler until everyone decides.
    // (The scenario is reusable: `run_fair()` again — or `run_seeded(s)`
    // for a randomized schedule — replays from the same initial state.)
    let result = scenario.run_fair();
    println!("system quiescent after {} atomic statements\n", result.steps);

    for (pid, &(value, priority)) in proposals.iter().enumerate() {
        let out = result.outputs[pid].expect("decided");
        println!("  p{pid} (prio {priority}) proposed {value:>2} → decided {out}");
    }

    let decision = result.agreed_output().expect("agreement");
    assert!(proposals.iter().any(|&(v, _)| v == decision), "validity");
    check_well_formed(result.history()).expect("history satisfies Axioms 1 and 2");
    println!("\nagreement ✓  validity ✓  wait-free ({} own-statements max) ✓", result.max_own_steps());
    println!("history is well-formed w.r.t. the paper's Axiom 1 (priority) and Axiom 2 (quantum)");
}
