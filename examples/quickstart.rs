//! Quickstart: wait-free consensus from reads and writes on a
//! hybrid-scheduled uniprocessor (Fig. 3 / Theorem 1 of Anderson & Moir,
//! PODC 1999).
//!
//! ```sh
//! cargo run -p examples --bin quickstart
//! ```

use hybrid_wf::uni::consensus::{decide_machine, UniConsensusMem, MIN_QUANTUM};
use sched_sim::history::check_well_formed;
use sched_sim::{Kernel, ProcessId, ProcessorId, Priority, RoundRobin, SystemSpec};

fn main() {
    // A hybrid-scheduled uniprocessor with quantum Q = 8 statements.
    let spec = SystemSpec::hybrid(MIN_QUANTUM).with_history();
    let mut kernel = Kernel::new(UniConsensusMem::default(), spec);

    // Five processes at three priority levels, each proposing a value.
    let proposals = [(10u64, 1u32), (20, 1), (30, 2), (40, 2), (50, 3)];
    for &(value, priority) in &proposals {
        kernel.add_process(
            ProcessorId(0),
            Priority(priority),
            Box::new(decide_machine(value)),
        );
    }

    // Run under the fair round-robin scheduler until everyone decides.
    let steps = kernel.run(&mut RoundRobin::new(), 10_000);
    println!("system quiescent after {steps} atomic statements\n");

    for (pid, &(value, priority)) in proposals.iter().enumerate() {
        let out = kernel.output(ProcessId(pid as u32)).expect("decided");
        println!("  p{pid} (prio {priority}) proposed {value:>2} → decided {out}");
    }

    let decision = kernel.output(ProcessId(0)).unwrap();
    assert!(
        (0..proposals.len()).all(|p| kernel.output(ProcessId(p as u32)) == Some(decision)),
        "agreement"
    );
    check_well_formed(kernel.history()).expect("history satisfies Axioms 1 and 2");
    println!("\nagreement ✓  validity ✓  wait-free (8 own-statements each) ✓");
    println!("history is well-formed w.r.t. the paper's Axiom 1 (priority) and Axiom 2 (quantum)");
}
