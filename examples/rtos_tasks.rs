//! The paper's motivation, end to end: mixed-priority real-time tasks
//! (QNX/IRIX-REACT/VxWorks-style hybrid scheduling) sharing a queue.
//!
//! A lock-based queue livelocks under priority inversion; the wait-free
//! universal-construction queue — built from the consensus objects the
//! paper implements from reads and writes — keeps every task running.
//!
//! ```sh
//! cargo run -p examples --bin rtos_tasks
//! ```

use hybrid_wf::baseline::locks::{inc_machine, LockMem};
use hybrid_wf::oracle::QueueOp;
use hybrid_wf::universal::{consumer_ops, op_machine, producer_ops, QueueSpec, UniversalMem};
use sched_sim::prelude::{Kernel, ProcessId, ProcessorId, Priority, RoundRobin, SystemSpec};

fn main() {
    println!("Scenario: a sensor task (prio 1) feeds a control task (prio 3)");
    println!("through a shared queue; a watchdog (prio 2) also enqueues.\n");

    // ---- Attempt 1: a lock-based shared object -------------------------
    println!("1) lock-based object under hybrid scheduling:");
    let mut k = Kernel::new(LockMem::default(), SystemSpec::hybrid(8));
    let sensor = k.add_process(ProcessorId(0), Priority(1), Box::new(inc_machine(0, 1, 12)));
    let control = k.add_held_process(ProcessorId(0), Priority(3), Box::new(inc_machine(1, 1, 0)));
    let mut d = RoundRobin::new();
    k.step(&mut d); // sensor acquires the lock…
    k.step(&mut d);
    k.release(control); // …and the control task preempts and spins.
    let steps = k.run(&mut d, 30_000);
    println!(
        "   after {steps} statements: sensor finished = {}, control finished = {} — \
         PRIORITY-INVERSION LIVELOCK ({} failed lock acquisitions)\n",
        k.is_finished(sensor),
        k.is_finished(control),
        k.mem.spins
    );
    assert!(!k.is_finished(control));

    // ---- Attempt 2: the wait-free queue --------------------------------
    println!("2) wait-free queue (universal construction over consensus):");
    let n = 3u32;
    let plans: Vec<(u32, Vec<QueueOp>)> = vec![
        (1, producer_ops(&[101, 102, 103, 104])), // sensor readings
        (2, producer_ops(&[900])),                // watchdog event
        (3, consumer_ops(5)),                     // control loop
    ];
    let mut k = Kernel::new(
        UniversalMem::<QueueSpec>::new(n, 64),
        SystemSpec::hybrid(8).with_history(),
    );
    for (pid, (prio, ops)) in plans.iter().enumerate() {
        k.add_process(
            ProcessorId(0),
            Priority(*prio),
            Box::new(op_machine(QueueSpec, pid as u32, n, ops.clone())),
        );
    }
    let steps = k.run(&mut RoundRobin::new(), 100_000);
    println!("   all tasks complete after {steps} statements:");
    for r in k.ops() {
        let (prio, ops) = &plans[r.pid.index()];
        let desc = match ops[r.inv_index as usize] {
            QueueOp::Enq(v) => format!("enq({v})"),
            QueueOp::Deq => format!("deq() → {}", fmt_deq(r.output.unwrap())),
        };
        println!("     t={:>4}  p{} (prio {prio}): {desc}", r.t, r.pid.index());
    }
    for pid in 0..n {
        assert!(k.is_finished(ProcessId(pid)));
        let own = k.stats(ProcessId(pid)).own_steps;
        println!("   p{pid}: {own} own-statements total (bounded — wait-free)");
    }
    println!("\nEvery task met its deadline: no lock, no inversion, no starvation.");
}

fn fmt_deq(v: u64) -> String {
    if v == hybrid_wf::oracle::EMPTY {
        "EMPTY".into()
    } else {
        v.to_string()
    }
}
