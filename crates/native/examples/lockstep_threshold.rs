//! The Theorem 1 threshold on real threads: sweep lockstep seeds at
//! `Q = 1` (disagreement possible — sub-threshold) and `Q = 8` (agreement
//! guaranteed), printing the seeds whose deterministic schedules split
//! the decision. Compare `cargo run -p examples --bin quickstart`.
use native::harness::{fig3_agreement, run_fig3, Pacing};

fn main() {
    for n in [2usize, 3, 4, 5] {
        let inputs: Vec<u64> = (0..n as u64).map(|i| 10 * (i + 1)).collect();
        let mut bad = Vec::new();
        for seed in 0..64u64 {
            let run = run_fig3(&inputs, Pacing::Lockstep { seed, quantum: 1 });
            if fig3_agreement(&run).is_err() {
                bad.push(seed);
            }
        }
        println!("n={n} q=1 disagreeing seeds: {bad:?}");
    }
    // And double-check q=8 stays clean across the same grid.
    for n in [2usize, 3, 4, 5] {
        let inputs: Vec<u64> = (0..n as u64).map(|i| 10 * (i + 1)).collect();
        let bad: Vec<u64> = (0..64u64)
            .filter(|&seed| {
                fig3_agreement(&run_fig3(&inputs, Pacing::Lockstep { seed, quantum: 8 }))
                    .is_err()
            })
            .collect();
        println!("n={n} q=8 disagreeing seeds: {bad:?}");
    }
}
