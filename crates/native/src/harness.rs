//! The native run harness: executes the backend-generic algorithms on OS
//! threads and records per-operation outcomes in the simulator's own
//! [`OpRecord`] format, so native runs are checked by the **same**
//! linearizability/agreement oracles (`hybrid_wf::oracle`) the fuzzer
//! uses.
//!
//! Timestamps come from one global ticket clock (an `AtomicU64` bumped
//! with `SeqCst` `fetch_add` at every operation start and end): if
//! operation `a` completes before operation `b` begins in real time, then
//! `a`'s end ticket precedes `b`'s start ticket, which is exactly the
//! partial order [`hybrid_wf::oracle::check_linearizable`] requires —
//! `oracle::timed_ops` consumes these records unchanged.
//!
//! Every workload runs **one OS thread per process**. In free mode that
//! makes the process count the thread count (the contention knob); in
//! lockstep mode the threads take turns one statement at a time under the
//! deterministic scheduler, so "thread count" means "process count on one
//! emulated hybrid processor".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use hybrid_wf::generic::{fig3_decide, CasObject, Fig3Cell, Universal, WordOp};
use hybrid_wf::oracle::{CasRegOp, CasRegisterSpec, QueueOp, QueueSpec};
use hybrid_wf::universal::CounterSpec;
use sched_sim::kernel::OpRecord;
use sched_sim::ids::ProcessId;
use sched_sim::rng::SplitMix64;
use wfmem::Val;

use crate::backend::NativeBackend;

/// How the backend paces statements (see [`crate::backend`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pacing {
    /// Real races: no statement scheduler.
    Free,
    /// Deterministic token-passing hybrid scheduler.
    Lockstep {
        /// Tie-breaking seed.
        seed: u64,
        /// Quantum in counted statements (the paper's `Q`).
        quantum: u32,
    },
}

impl Pacing {
    fn backend(self, n: usize) -> NativeBackend {
        match self {
            Pacing::Free => NativeBackend::free(),
            Pacing::Lockstep { seed, quantum } => {
                NativeBackend::lockstep_equal(n, quantum, seed)
            }
        }
    }
}

/// The outcome of one native workload run over `n` processes.
pub struct FamilyRun<O> {
    /// Per-operation records in the simulator's format, ready for
    /// `oracle::timed_ops`.
    pub records: Vec<OpRecord>,
    /// The per-process operation plans (`plans[pid][inv]` is the op behind
    /// the record with that `pid`/`inv_index`).
    pub plans: Vec<Vec<O>>,
    /// Counted statements (cell accesses + explicit steps) across the run.
    pub accesses: u64,
    /// Workload-specific retries: failed C&S attempts, or universal-log
    /// duplicate slots skipped during replay.
    pub retries: u64,
    /// Wall-clock duration of the threaded section.
    pub wall: Duration,
}

impl<O> FamilyRun<O> {
    /// The completed operations' outputs, in record order.
    pub fn outputs(&self) -> Vec<Val> {
        self.records.iter().filter_map(|r| r.output).collect()
    }
}

/// Spawns one thread per plan, runs `work` on each, and collects the
/// per-operation records stamped through the shared ticket clock.
fn run_threads<O, F>(backend: &NativeBackend, plans: Vec<Vec<O>>, work: F) -> FamilyRun<O>
where
    O: Clone + Send + Sync + 'static,
    F: Fn(&NativeBackend, u32, &O) -> (Val, u64) + Send + Sync + 'static,
{
    let n = plans.len();
    let clock = Arc::new(AtomicU64::new(0));
    let work = Arc::new(work);
    let shared_plans = Arc::new(plans);
    let start = Instant::now();
    let handles: Vec<_> = (0..n as u32)
        .map(|pid| {
            let backend = backend.clone();
            let clock = Arc::clone(&clock);
            let work = Arc::clone(&work);
            let plans = Arc::clone(&shared_plans);
            thread::spawn(move || {
                backend.register(pid);
                let mut records = Vec::new();
                let mut retries = 0;
                for (inv, op) in plans[pid as usize].iter().enumerate() {
                    let t0 = clock.fetch_add(1, Ordering::SeqCst);
                    let (out, r) = work(&backend, pid, op);
                    let t1 = clock.fetch_add(1, Ordering::SeqCst);
                    retries += r;
                    records.push(OpRecord {
                        start: t0,
                        t: t1,
                        pid: ProcessId(pid),
                        inv_index: inv as u32,
                        output: Some(out),
                    });
                }
                backend.finish(pid);
                (records, retries)
            })
        })
        .collect();
    let mut records = Vec::new();
    let mut retries = 0;
    for h in handles {
        let (r, rt) = h.join().expect("native worker thread panicked");
        records.extend(r);
        retries += rt;
    }
    let wall = start.elapsed();
    records.sort_by_key(|r| (r.start, r.pid.0));
    let plans = Arc::try_unwrap(shared_plans).unwrap_or_else(|a| (*a).clone());
    FamilyRun { records, plans, accesses: backend.accesses(), retries, wall }
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// Fig. 3 consensus: `inputs.len()` processes, one `decide(input)` each.
///
/// Agreement holds by Theorem 1 under `Pacing::Lockstep` with
/// `quantum >= MIN_QUANTUM`; under `Pacing::Free` (or sub-threshold
/// quanta) disagreement is possible and reported by
/// [`fig3_agreement`].
pub fn run_fig3(inputs: &[Val], pacing: Pacing) -> FamilyRun<Val> {
    let n = inputs.len();
    let backend = pacing.backend(n);
    let cell = Arc::new(Fig3Cell::new(&backend));
    let plans: Vec<Vec<Val>> = inputs.iter().map(|&v| vec![v]).collect();
    run_threads(&backend, plans, move |b, _pid, &input| {
        (fig3_decide(b, &cell, input), 0)
    })
}

/// Checks agreement + validity of a Fig. 3 run: `Ok(decision)` when every
/// process decided the same proposed value, `Err(outputs)` otherwise.
pub fn fig3_agreement(run: &FamilyRun<Val>) -> Result<Val, Vec<Val>> {
    let outputs = run.outputs();
    let inputs: Vec<Val> = run.plans.iter().flatten().copied().collect();
    let Some(&first) = outputs.first() else {
        return Err(outputs);
    };
    if outputs.iter().all(|&o| o == first) && inputs.contains(&first) {
        Ok(first)
    } else {
        Err(outputs)
    }
}

/// The universal construction applied to spec `S`: `plans[pid]` is the
/// operation sequence of process `pid`. Retries count duplicate log slots
/// (the helping overhead of the simulator's `AlgCounters`).
pub fn run_universal<S>(spec: S, plans: Vec<Vec<S::Op>>, pacing: Pacing) -> FamilyRun<S::Op>
where
    S: WordOp + Clone + Send + Sync + 'static,
    S::Op: Clone + Send + Sync + 'static,
    S::State: Send + 'static,
{
    let n = plans.len();
    let per = plans.iter().map(Vec::len).max().unwrap_or(0) as u32;
    let backend = pacing.backend(n);
    let obj = Arc::new(Universal::<NativeBackend, S>::new(&backend, spec, n as u32, per));
    let sessions: Vec<_> = (0..n as u32)
        .map(|p| std::sync::Mutex::new(obj.session(p)))
        .collect();
    let sessions = Arc::new(sessions);
    run_threads(&backend, plans, move |_b, pid, op| {
        // Each session is only ever touched by its own thread; the mutex
        // is uncontended and exists to keep the closure `Fn`.
        let mut s = sessions[pid as usize].lock().unwrap();
        let before = s.duplicate_retries;
        let out = obj.apply(&mut s, op);
        (out, s.duplicate_retries - before)
    })
}

/// A counter workload for [`run_universal`]: every process performs `per`
/// fetch-and-adds of distinct addends (seeded), so the final total is
/// checkable and every intermediate result distinct.
pub fn counter_plans(n: usize, per: usize, seed: u64) -> Vec<Vec<Val>> {
    let mut rng = SplitMix64::new(seed ^ 0xc0ffee);
    (0..n).map(|_| (0..per).map(|_| 1 + rng.next_u64() % 9).collect()).collect()
}

/// A queue workload: even pids enqueue distinct values, odd pids dequeue.
pub fn queue_plans(n: usize, per: usize) -> Vec<Vec<QueueOp>> {
    (0..n)
        .map(|p| {
            if p % 2 == 0 {
                (0..per).map(|i| QueueOp::Enq((100 * (p as u64 + 1)) + i as u64)).collect()
            } else {
                vec![QueueOp::Deq; per]
            }
        })
        .collect()
}

/// The Fig. 5 object interface (C&S + Read) hammered directly on the
/// backend C&S cell: each process alternates `Read` with a seeded `C&S`
/// against a value it previously observed. Retries count failed C&S.
pub fn run_cas(n: usize, per: usize, seed: u64, pacing: Pacing) -> FamilyRun<CasRegOp> {
    let backend = pacing.backend(n);
    let obj = Arc::new(CasObject::<NativeBackend>::new(&backend, 0));
    // Plans carry only the op *kind*; C&S operands are chosen live from
    // observed values (old = last read), which keeps success rates high
    // enough to be interesting. The record stores the resolved op.
    let plans: Vec<Vec<CasRegOp>> = (0..n)
        .map(|p| {
            let mut rng = SplitMix64::new(seed.wrapping_add(p as u64 * 0x9e37));
            (0..per)
                .map(|i| {
                    if i % 2 == 0 {
                        CasRegOp::Read
                    } else {
                        // Placeholder `old`; resolved against the last
                        // read at run time, then patched into the plan.
                        CasRegOp::Cas { old: 0, new: 1 + rng.next_u64() % ((1 << 31) - 2) }
                    }
                })
                .collect()
        })
        .collect();
    let last_read: Vec<std::sync::Mutex<Val>> =
        (0..n).map(|_| std::sync::Mutex::new(0)).collect();
    let resolved: Vec<std::sync::Mutex<Vec<CasRegOp>>> =
        (0..n).map(|_| std::sync::Mutex::new(Vec::new())).collect();
    let last_read = Arc::new(last_read);
    let resolved = Arc::new(resolved);
    let obj2 = Arc::clone(&obj);
    let (lr, rs) = (Arc::clone(&last_read), Arc::clone(&resolved));
    let mut run = run_threads(&backend, plans, move |_b, pid, op| {
        let op = match *op {
            CasRegOp::Read => CasRegOp::Read,
            CasRegOp::Cas { new, .. } => {
                CasRegOp::Cas { old: *lr[pid as usize].lock().unwrap(), new }
            }
        };
        let out = obj2.apply(&op);
        if let CasRegOp::Read = op {
            *lr[pid as usize].lock().unwrap() = out;
        }
        rs[pid as usize].lock().unwrap().push(op);
        let retry = matches!(op, CasRegOp::Cas { .. }) && out == 0;
        (out, u64::from(retry))
    });
    // Replace the placeholder plans with the operands actually used, so
    // the linearizability oracle sees the real history.
    run.plans = resolved.iter().map(|m| m.lock().unwrap().clone()).collect();
    run
}

// ---------------------------------------------------------------------------
// Oracle bridges
// ---------------------------------------------------------------------------

/// Runs the linearizability oracle over a [`FamilyRun`] whose op type
/// matches spec `S` (at most 63 operations — the oracle's DFS bound).
pub fn check_run_linearizable<S>(spec: &S, run: &FamilyRun<S::Op>) -> Result<(), String>
where
    S: hybrid_wf::oracle::SeqSpec,
{
    let ops = hybrid_wf::oracle::timed_ops(&run.records, |pid, inv| {
        run.plans[pid as usize][inv as usize].clone()
    });
    hybrid_wf::oracle::check_linearizable(spec, &ops)
}

/// Convenience: a small universal-queue run checked for linearizability.
pub fn queue_run_ok(n: usize, per: usize, pacing: Pacing) -> Result<(), String> {
    let run = run_universal(QueueSpec, queue_plans(n, per), pacing);
    check_run_linearizable(&QueueSpec, &run)
}

/// Convenience: a small universal-counter run checked for linearizability.
pub fn counter_run_ok(n: usize, per: usize, seed: u64, pacing: Pacing) -> Result<(), String> {
    let run = run_universal(CounterSpec, counter_plans(n, per, seed), pacing);
    check_run_linearizable(&CounterSpec, &run)
}

/// Convenience: a small C&S-object run checked for linearizability against
/// [`CasRegisterSpec`].
pub fn cas_run_ok(n: usize, per: usize, seed: u64, pacing: Pacing) -> Result<(), String> {
    let run = run_cas(n, per, seed, pacing);
    check_run_linearizable(&CasRegisterSpec { init: 0 }, &run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_wf::uni::consensus::MIN_QUANTUM;

    #[test]
    fn fig3_lockstep_legal_quantum_agrees() {
        for seed in 0..8 {
            let run = run_fig3(
                &[10, 20, 30],
                Pacing::Lockstep { seed, quantum: MIN_QUANTUM },
            );
            fig3_agreement(&run).unwrap_or_else(|o| panic!("seed {seed}: split {o:?}"));
        }
    }

    #[test]
    fn fig3_free_runs_complete_and_are_valid() {
        // Free mode guarantees wait-freedom and validity; agreement is a
        // measurement, not an assertion, here (see EXPERIMENTS.md).
        let run = run_fig3(&[7, 8, 9, 10], Pacing::Free);
        assert_eq!(run.records.len(), 4);
        let inputs = [7, 8, 9, 10];
        for out in run.outputs() {
            assert!(inputs.contains(&out), "decided a never-proposed value");
        }
    }

    #[test]
    fn universal_counter_linearizable_both_pacings() {
        counter_run_ok(3, 2, 5, Pacing::Free).unwrap();
        counter_run_ok(3, 2, 5, Pacing::Lockstep { seed: 1, quantum: 8 }).unwrap();
    }

    #[test]
    fn universal_queue_linearizable_free() {
        queue_run_ok(4, 2, Pacing::Free).unwrap();
    }

    #[test]
    fn cas_object_linearizable_free() {
        cas_run_ok(4, 4, 11, Pacing::Free).unwrap();
    }

    #[test]
    fn ticket_clock_orders_records() {
        let run = run_fig3(&[1, 2], Pacing::Free);
        for r in &run.records {
            assert!(r.start < r.t, "start ticket must precede end ticket");
        }
    }
}
