//! Real-atomics, real-threads port of the paper's multiprocessor consensus.
//!
//! The simulator (`sched-sim`) is the paper's own execution model and
//! carries all correctness experiments; this crate shows the same code
//! shapes running on **actual hardware concurrency**: one OS thread per
//! simulated *processor*, shared memory in `std::sync::atomic`, and the
//! processes of each processor executed on their processor's thread.
//!
//! Running a processor's processes sequentially (each `decide` runs to
//! completion before the next starts) is a *legal hybrid schedule* — one
//! with no preemptions at all — so Theorem 4's agreement guarantee applies
//! verbatim, while the **cross-processor** interleaving through the
//! `C`-consensus objects is genuinely racy and exercises the atomics.
//!
//! What cannot be ported to a commodity OS is the *quantum guarantee*
//! itself: no mainstream kernel promises `Q` statements between
//! equal-priority preemptions (the paper's motivating RTOSes — QNX, IRIX
//! REACT, VxWorks — do). The closest commodity analogue is the `SCHED_RR`
//! real-time class; [`rt`] models the request for it as an API that
//! reports a clean [`rt::RtOutcome::Denied`] outcome (the workspace
//! builds with no OS bindings — see the module docs for the rationale),
//! so callers exercise exactly the degraded path they would hit without
//! RT privileges. The statement-level experiments stay in the simulator.
//! This split is documented in DESIGN.md as system S16.
//!
//! Crate tour:
//!
//! * [`objects`] — lock-free `C`-consensus and election objects over
//!   `std::sync::atomic`, invocation-counted like their simulated
//!   counterparts in `wfmem`.
//! * [`fig7`] — the Fig. 7 consensus driver: spawns one thread per
//!   processor, runs that processor's processes sequentially on it, and
//!   checks cross-thread agreement.
//! * [`rt`] — the degraded-outcome real-time scheduling request API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig7;
pub mod objects;
pub mod rt;
