//! Native memory backends: the paper's algorithms on **real hardware
//! concurrency**, cross-validated by the simulator's own oracles.
//!
//! The simulator (`sched-sim`) is the paper's execution model and carries
//! the statement-level correctness experiments. This crate is the other
//! half of the backend split (see `BACKENDS.md` at the repository root):
//! it implements the [`wfmem::backend::MemBackend`] cell vocabulary over
//! cache-line-padded `std::sync::atomic` words and drives the
//! backend-generic algorithms of `hybrid_wf::generic` — Fig. 3 consensus,
//! the Fig. 5 C&S + Read interface, the universal construction — on one
//! OS thread per process, in two pacing modes:
//!
//! * **free** — genuine races under the commodity scheduler. This mode
//!   measures throughput, and it is where the paper's quantum axiom does
//!   *not* hold: no mainstream kernel promises `Q` statements between
//!   equal-priority preemptions (the motivating RTOSes — QNX, IRIX REACT,
//!   VxWorks — do). Fig. 3 agreement is therefore a *measurement* here,
//!   not a theorem; CAS-backed algorithms (the universal construction,
//!   the C&S object) stay correct because hardware C&S has consensus
//!   number ∞.
//! * **lockstep** — a deterministic token-passing scheduler
//!   ([`backend::NativeBackend::lockstep`]) grants one counted statement
//!   at a time, enforcing Axiom 1 (strict priorities) and Axiom 2
//!   (quantum windows of `Q` statements) with seeded tie-breaking. The
//!   same generic code, scheduled per the paper's model on real threads:
//!   `Q ≥ 8` reproduces Theorem 1's agreement, `Q = 1` reproduces the
//!   disagreements the simulator's explorer finds.
//!
//! The [`harness`] records every operation in the simulator's
//! [`sched_sim::kernel::OpRecord`] format, so native runs are checked by
//! the *same* `hybrid_wf::oracle` linearizability/agreement machinery the
//! fuzzer uses (`tests/tests/native_crossval.rs`;
//! `experiments --native` sweeps the grid into `BENCH_native.json`).
//!
//! Crate tour:
//!
//! * [`cells`] — `#[repr(align(64))]` padded atomic cells (register, C&S,
//!   first-wins consensus) and the const-generic striped counter the
//!   accounting runs on.
//! * [`backend`] — [`backend::NativeBackend`]: the `MemBackend`
//!   implementation, free and lockstep pacing, and the deterministic
//!   statement scheduler.
//! * [`harness`] — thread-per-process workload runners emitting
//!   `OpRecord`s through a global ticket clock, plus oracle bridges.
//! * [`objects`] — the original lock-free `C`-consensus and election
//!   objects over `std::sync::atomic` (Fig. 7's building blocks),
//!   invocation-counted like their `wfmem` counterparts.
//! * [`fig7`] — the Fig. 7 multiprocessor-consensus driver: one thread
//!   per *processor*, that processor's processes run sequentially on it
//!   (a legal hybrid schedule with no preemptions, so Theorem 4 applies
//!   verbatim).
//! * [`rt`] — the degraded-outcome real-time scheduling request API (the
//!   hook where a privileged host would request `SCHED_RR`).
//!
//! Which backend to use when — and which paper guarantees survive on
//! which backend — is tabulated in `BACKENDS.md`; the worked native
//! experiment and its honest caveats live in EXPERIMENTS.md ("Native
//! execution").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cells;
pub mod fig7;
pub mod harness;
pub mod objects;
pub mod rt;
