//! Real-atomics, real-threads port of the paper's multiprocessor consensus.
//!
//! The simulator (`sched-sim`) is the paper's own execution model and
//! carries all correctness experiments; this crate shows the same code
//! shapes running on **actual hardware concurrency**: one OS thread per
//! simulated *processor*, shared memory in `std::sync::atomic`, and the
//! processes of each processor executed on their processor's thread.
//!
//! Running a processor's processes sequentially (each `decide` runs to
//! completion before the next starts) is a *legal hybrid schedule* — one
//! with no preemptions at all — so Theorem 4's agreement guarantee applies
//! verbatim, while the **cross-processor** interleaving through the
//! `C`-consensus objects is genuinely racy and exercises the atomics.
//!
//! What cannot be ported to a commodity OS is the *quantum guarantee*
//! itself: no mainstream kernel promises `Q` statements between
//! equal-priority preemptions (the paper's motivating RTOSes — QNX, IRIX
//! REACT, VxWorks — do). [`rt`] requests `SCHED_FIFO` where the host
//! allows, degrading gracefully (and reporting it) where it doesn't; the
//! statement-level experiments stay in the simulator. This split is
//! documented in DESIGN.md as substitution S16.

#![warn(missing_docs)]

pub mod fig7;
pub mod objects;
pub mod rt;
