//! Best-effort real-time scheduling bindings: request the fixed-priority
//! round-robin policy the paper's motivating RTOSes provide.
//!
//! `SCHED_RR` **is** a hybrid scheduler in the paper's sense: strict
//! priorities across levels (Axiom 1) plus a time-slice among
//! equal-priority threads (Axiom 2, with the quantum measured in time
//! rather than statements). Requesting it requires privileges
//! (`CAP_SYS_NICE` on Linux); in unprivileged environments the request
//! fails with `EPERM` and callers proceed under the default scheduler,
//! which preserves correctness of the lock-free objects (they are
//! scheduler-independent on real CAS hardware) but not the RTOS timing
//! model. All experiments that depend on the quantum semantics live in the
//! simulator for exactly this reason.

use std::io;

/// The scheduling policy applied by [`set_realtime_rr`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtOutcome {
    /// `SCHED_RR` at the given priority was applied to this thread.
    Applied {
        /// The RT priority granted.
        priority: i32,
    },
    /// The host denied the request (typically `EPERM` in containers);
    /// execution continues under the default scheduler.
    Denied {
        /// The OS error encountered.
        errno: i32,
    },
}

/// Requests `SCHED_RR` at `priority` (clamped to the valid range) for the
/// calling thread. Never fails hard: a denial is reported, not raised.
pub fn set_realtime_rr(priority: i32) -> RtOutcome {
    let min = unsafe { libc::sched_get_priority_min(libc::SCHED_RR) };
    let max = unsafe { libc::sched_get_priority_max(libc::SCHED_RR) };
    let prio = priority.clamp(min, max);
    let param = libc::sched_param { sched_priority: prio };
    let rc = unsafe { libc::sched_setscheduler(0, libc::SCHED_RR, &param) };
    if rc == 0 {
        RtOutcome::Applied { priority: prio }
    } else {
        RtOutcome::Denied {
            errno: io::Error::last_os_error().raw_os_error().unwrap_or(0),
        }
    }
}

/// The round-robin time slice the kernel would grant (`sched_rr_get_interval`),
/// in nanoseconds — the OS analogue of the paper's quantum `Q`. Returns
/// `None` where unsupported.
pub fn rr_quantum_ns() -> Option<u64> {
    let mut ts = libc::timespec { tv_sec: 0, tv_nsec: 0 };
    let rc = unsafe { libc::sched_rr_get_interval(0, &mut ts) };
    if rc == 0 {
        Some(ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rt_request_reports_cleanly() {
        // In CI containers this is almost always Denied(EPERM); on a
        // configured RT host it is Applied. Both are valid outcomes — the
        // point is it never panics or corrupts the thread.
        match set_realtime_rr(10) {
            RtOutcome::Applied { priority } => assert!(priority >= 1),
            RtOutcome::Denied { errno } => assert!(errno != 0),
        }
    }

    #[test]
    fn quantum_query_is_harmless() {
        // May be Some(0) under SCHED_OTHER; must not error out violently.
        let _ = rr_quantum_ns();
    }
}
