//! Best-effort real-time scheduling requests: the hook where a privileged
//! host would apply the fixed-priority round-robin policy the paper's
//! motivating RTOSes provide.
//!
//! `SCHED_RR` **is** a hybrid scheduler in the paper's sense: strict
//! priorities across levels (Axiom 1) plus a time-slice among
//! equal-priority threads (Axiom 2, with the quantum measured in time
//! rather than statements). This workspace builds offline with zero
//! external dependencies, so the raw `sched_setscheduler(2)` /
//! `sched_rr_get_interval(2)` bindings (previously via `libc`) are not
//! linked; the request path is kept as a stub that reports
//! [`RtOutcome::Denied`] with `ENOSYS`, exactly the degraded path callers
//! already had to handle (unprivileged containers return `EPERM` the same
//! way).
//!
//! Since the backend refactor, the statement-granular quantum semantics
//! *are* available on real threads without any privilege: the lockstep
//! pacing mode of [`crate::backend::NativeBackend`] enforces both axioms
//! deterministically in user space. This module remains the hook for the
//! complementary path — asking the host kernel for its own (time-based,
//! non-deterministic) hybrid scheduling of the *free* pacing mode.
//! EXPERIMENTS.md ("Native execution") spells out what each option does
//! and does not guarantee.

/// `ENOSYS`: the functionality is not available in this build.
const ENOSYS: i32 = 38;

/// The result of a scheduling-policy request made by [`set_realtime_rr`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtOutcome {
    /// `SCHED_RR` at the given priority was applied to this thread.
    Applied {
        /// The RT priority granted.
        priority: i32,
    },
    /// The host denied the request (`ENOSYS` in this dependency-free
    /// build; typically `EPERM` in containers when the syscall is made);
    /// execution continues under the default scheduler.
    Denied {
        /// The OS error encountered.
        errno: i32,
    },
}

/// Requests `SCHED_RR` at `priority` for the calling thread. Never fails
/// hard: a denial is reported, not raised. In this build the syscall is
/// not linked, so the request is always [`RtOutcome::Denied`].
pub fn set_realtime_rr(_priority: i32) -> RtOutcome {
    RtOutcome::Denied { errno: ENOSYS }
}

/// The round-robin time slice the kernel would grant
/// (`sched_rr_get_interval`), in nanoseconds — the OS analogue of the
/// paper's quantum `Q`. Returns `None` where unsupported, which includes
/// this syscall-free build.
pub fn rr_quantum_ns() -> Option<u64> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rt_request_reports_cleanly() {
        // On a configured RT host with real bindings this would be
        // Applied; in this build (and in CI containers generally) it is
        // Denied with a nonzero errno. Both are valid outcomes — the
        // point is it never panics or corrupts the thread.
        match set_realtime_rr(10) {
            RtOutcome::Applied { priority } => assert!(priority >= 1),
            RtOutcome::Denied { errno } => assert!(errno != 0),
        }
    }

    #[test]
    fn quantum_query_is_harmless() {
        // Must not error out violently; None is the documented fallback.
        assert_eq!(rr_quantum_ns(), None);
    }
}
