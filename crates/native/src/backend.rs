//! The native [`MemBackend`]: real OS threads over the padded atomic
//! cells, in two pacing modes.
//!
//! * **Free** ([`NativeBackend::free`]) — the step hook only counts
//!   accesses (into a [`StripedCounter`], so the accounting itself is
//!   contention-free). Threads interleave however the hardware and the
//!   commodity scheduler let them. This is the throughput backend, and the
//!   one where the paper's quantum axiom does **not** hold: Fig. 3 may
//!   disagree here, and that disagreement is a *measurement* (see
//!   EXPERIMENTS.md, "Native execution").
//! * **Lockstep** ([`NativeBackend::lockstep`]) — the step hook parks the
//!   calling thread until a deterministic token-passing scheduler grants
//!   it the next atomic statement. The scheduler enforces the paper's
//!   hybrid axioms at statement granularity — always run a
//!   maximal-priority parked process (Axiom 1), switch between
//!   equal-priority processes only at quantum boundaries of `Q` counted
//!   statements (Axiom 2) — with ties broken by a seeded in-tree
//!   [`SplitMix64`]. Same seed, same configuration ⇒ bit-identical
//!   schedule and outcome, on any platform: the scheduler only decides
//!   when **no** thread is running (all live threads are parked at their
//!   step hooks), so OS timing can change *nothing* about the
//!   interleaving. This is how the generic algorithms are run under the
//!   paper's model on real threads — `Q ≥ 8` must make Fig. 3 agree
//!   (Theorem 1), `Q = 1` admits the same disagreements the simulator's
//!   explorer finds.
//!
//! The lockstep rendezvous costs a mutex/condvar handoff per statement —
//! it is a *model checker on real threads*, not a benchmark mode; free
//! mode is the one that measures hardware speed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use sched_sim::rng::SplitMix64;
use wfmem::backend::{CasCell, ConsCell, MemBackend, RegCell};
use wfmem::{OptVal, Val};

use crate::cells::{NativeCasCell, NativeConsCell, NativeRegCell, StripedCounter};

/// Lanes in the access counter: enough for the thread counts the harness
/// drives (beyond this, counting is contended but still exact).
const COUNTER_LANES: usize = 16;

thread_local! {
    // The registered process id of the current thread (lockstep mode), and
    // a cheap per-thread lane for the striped access counter (free mode).
    static CURRENT_PID: std::cell::Cell<Option<u32>> = const { std::cell::Cell::new(None) };
    static COUNTER_LANE: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

static NEXT_LANE: AtomicUsize = AtomicUsize::new(0);

fn my_lane() -> usize {
    COUNTER_LANE.with(|l| {
        let v = l.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
        l.set(v);
        v
    })
}

// ---------------------------------------------------------------------------
// The lockstep scheduler
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PState {
    /// Registered but not yet parked at its first statement.
    NotStarted,
    /// Parked at its step hook, waiting for a grant.
    Parked,
    /// Granted a statement and executing it (at most one process at a
    /// time).
    Running,
    /// Finished its workload.
    Done,
}

struct LsState {
    status: Vec<PState>,
    prio: Vec<u32>,
    /// Pending grant: the process allowed to take its next statement.
    grant: Option<u32>,
    /// The most recently granted process (quantum continuity).
    last: Option<u32>,
    /// Statements left in the current quantum window.
    ticks_left: u32,
    quantum: u32,
    rng: SplitMix64,
    /// Processes that have parked at least once; scheduling starts only
    /// when all of them have (so thread spawn order cannot leak into the
    /// schedule).
    started: usize,
    /// Total granted statements.
    statements: u64,
    /// Equal-priority preemptions taken at quantum expiry.
    preemptions: u64,
}

impl LsState {
    /// Picks the next process to grant among the parked ones, enforcing
    /// Axiom 1 (maximal priority) and Axiom 2 (continue the current
    /// process until its quantum of `Q` statements is exhausted, then
    /// rotate — seeded-randomly — among its equal-priority peers).
    fn schedule(&mut self) -> Option<u32> {
        let parked: Vec<u32> = (0..self.status.len() as u32)
            .filter(|&p| self.status[p as usize] == PState::Parked)
            .collect();
        if parked.is_empty() {
            return None;
        }
        let top = parked.iter().map(|&p| self.prio[p as usize]).max().unwrap();
        let eligible: Vec<u32> =
            parked.into_iter().filter(|&p| self.prio[p as usize] == top).collect();
        let continuing = self.last.filter(|&l| {
            self.status[l as usize] == PState::Parked && self.prio[l as usize] == top
        });
        if let Some(last) = continuing {
            if self.ticks_left > 0 {
                self.ticks_left -= 1;
                return Some(last);
            }
        }
        // Fresh quantum window for a (possibly) different process.
        let pick = eligible[self.rng.index(eligible.len())];
        if continuing.is_some_and(|l| l != pick) {
            self.preemptions += 1;
        }
        self.ticks_left = self.quantum - 1;
        Some(pick)
    }
}

struct Lockstep {
    m: Mutex<LsState>,
    cv: Condvar,
    n: usize,
}

impl Lockstep {
    /// Parks `pid` until the scheduler grants it one statement.
    fn step(&self, pid: u32) {
        let mut st = self.m.lock().unwrap();
        if st.status[pid as usize] == PState::NotStarted {
            st.started += 1;
        }
        st.status[pid as usize] = PState::Parked;
        self.cv.notify_all();
        loop {
            if st.grant == Some(pid) {
                st.grant = None;
                st.status[pid as usize] = PState::Running;
                st.last = Some(pid);
                st.statements += 1;
                return;
            }
            let idle = st.grant.is_none()
                && st.started == self.n
                && !st.status.contains(&PState::Running);
            if idle {
                // The caller itself is parked, so the candidate set is
                // never empty here.
                let next = st.schedule().expect("a parked process exists");
                st.grant = Some(next);
                self.cv.notify_all();
                continue;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Marks `pid` finished and lets the scheduler move on.
    fn finish(&self, pid: u32) {
        let mut st = self.m.lock().unwrap();
        if st.status[pid as usize] == PState::NotStarted {
            st.started += 1; // a process may finish without ever stepping
        }
        st.status[pid as usize] = PState::Done;
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// The backend
// ---------------------------------------------------------------------------

struct NbInner {
    accesses: StripedCounter<COUNTER_LANES>,
    lockstep: Option<Lockstep>,
}

impl NbInner {
    fn step(&self) {
        self.accesses.add(my_lane(), 1);
        if let Some(ls) = &self.lockstep {
            let pid = CURRENT_PID
                .with(|p| p.get())
                .expect("lockstep threads must call NativeBackend::register first");
            ls.step(pid);
        }
    }
}

/// The native memory backend (see the [module docs](self) for the two
/// pacing modes).
///
/// Cheap to clone (an [`Arc`] handle); cells hold their own handle so they
/// can report accesses and park at the scheduler.
///
/// # Examples
///
/// ```
/// use native::backend::NativeBackend;
/// use wfmem::backend::{MemBackend, RegCell};
///
/// let b = NativeBackend::free();
/// let r = b.reg();
/// r.write(7);
/// assert_eq!(r.read(), Some(7));
/// assert_eq!(b.accesses(), 2);
/// ```
#[derive(Clone)]
pub struct NativeBackend {
    inner: Arc<NbInner>,
    mode: &'static str,
}

impl NativeBackend {
    /// A freely-scheduled backend: no statement scheduler, accesses
    /// counted.
    pub fn free() -> Self {
        NativeBackend {
            inner: Arc::new(NbInner {
                accesses: StripedCounter::new(),
                lockstep: None,
            }),
            mode: "native-free",
        }
    }

    /// A lockstep backend scheduling `n` processes with the given static
    /// priorities (larger = higher, matching `sched_sim::Priority`),
    /// quantum `quantum` (statements), and tie-breaking seed `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `quantum == 0` or `prio.len() != n`.
    pub fn lockstep(n: usize, prio: &[u32], quantum: u32, seed: u64) -> Self {
        assert!(quantum > 0, "quantum must be at least 1 statement");
        assert_eq!(prio.len(), n, "one priority per process");
        NativeBackend {
            inner: Arc::new(NbInner {
                accesses: StripedCounter::new(),
                lockstep: Some(Lockstep {
                    m: Mutex::new(LsState {
                        status: vec![PState::NotStarted; n],
                        prio: prio.to_vec(),
                        grant: None,
                        last: None,
                        ticks_left: 0,
                        quantum,
                        rng: SplitMix64::new(seed),
                        started: 0,
                        statements: 0,
                        preemptions: 0,
                    }),
                    cv: Condvar::new(),
                    n,
                }),
            }),
            mode: "native-lockstep",
        }
    }

    /// Lockstep with all `n` processes at equal priority — the pure
    /// quantum-scheduling regime Lemma 1 and Theorem 1 address.
    pub fn lockstep_equal(n: usize, quantum: u32, seed: u64) -> Self {
        Self::lockstep(n, &vec![1; n], quantum, seed)
    }

    /// Binds the calling thread to process `pid` (required before any
    /// cell access on a lockstep backend; harmless in free mode).
    pub fn register(&self, pid: u32) {
        CURRENT_PID.with(|p| p.set(Some(pid)));
    }

    /// Marks process `pid` finished (lockstep: releases its scheduler
    /// slot; must be called by each registered thread when its workload
    /// returns).
    pub fn finish(&self, pid: u32) {
        if let Some(ls) = &self.inner.lockstep {
            ls.finish(pid);
        }
    }

    /// Total counted statements (cell accesses + explicit `step`s) so far.
    pub fn accesses(&self) -> u64 {
        self.inner.accesses.sum()
    }

    /// Lockstep only: `(granted statements, equal-priority preemptions)`.
    pub fn lockstep_stats(&self) -> Option<(u64, u64)> {
        self.inner.lockstep.as_ref().map(|ls| {
            let st = ls.m.lock().unwrap();
            (st.statements, st.preemptions)
        })
    }
}

/// Native register cell bound to its backend's step hook.
pub struct NativeReg {
    hook: Arc<NbInner>,
    cell: NativeRegCell,
}

impl RegCell for NativeReg {
    fn read(&self) -> OptVal {
        self.hook.step();
        self.cell.load()
    }

    fn write(&self, v: Val) {
        self.hook.step();
        self.cell.store(v);
    }
}

/// Native C&S cell bound to its backend's step hook.
pub struct NativeCas {
    hook: Arc<NbInner>,
    cell: NativeCasCell,
}

impl CasCell for NativeCas {
    fn cas(&self, old: Val, new: Val) -> bool {
        self.hook.step();
        self.cell.compare_and_swap(old, new)
    }

    fn read(&self) -> Val {
        self.hook.step();
        self.cell.load()
    }
}

/// Native consensus cell bound to its backend's step hook.
pub struct NativeCons {
    hook: Arc<NbInner>,
    cell: NativeConsCell,
}

impl ConsCell for NativeCons {
    fn decide(&self, v: Val) -> Val {
        self.hook.step();
        self.cell.propose(v)
    }

    fn read(&self) -> OptVal {
        self.hook.step();
        self.cell.load()
    }
}

impl MemBackend for NativeBackend {
    type Reg = NativeReg;
    type Cas = NativeCas;
    type Cons = NativeCons;

    fn reg(&self) -> NativeReg {
        NativeReg { hook: self.inner.clone(), cell: NativeRegCell::new() }
    }

    fn cas(&self, init: Val) -> NativeCas {
        NativeCas { hook: self.inner.clone(), cell: NativeCasCell::new(init) }
    }

    fn cons(&self) -> NativeCons {
        NativeCons { hook: self.inner.clone(), cell: NativeConsCell::new() }
    }

    fn step(&self) {
        self.inner.step();
    }

    fn name(&self) -> &'static str {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn free_backend_counts_accesses() {
        let b = NativeBackend::free();
        let r = b.reg();
        let c = b.cons();
        r.write(1);
        r.read();
        c.decide(2);
        b.step();
        assert_eq!(b.accesses(), 4);
        assert_eq!(b.name(), "native-free");
    }

    /// Runs `n` lockstep threads, each performing `per` counted
    /// statements; every statement appends the process id to a shared
    /// trace through *raw* (uncounted) cells, so the returned slot trace
    /// is exactly the statement interleaving the scheduler granted.
    fn lockstep_trace(n: usize, quantum: u32, seed: u64, per: usize) -> Vec<u64> {
        let b = NativeBackend::lockstep_equal(n, quantum, seed);
        let slots: Arc<Vec<crate::cells::NativeRegCell>> =
            Arc::new((0..n * per).map(|_| crate::cells::NativeRegCell::new()).collect());
        let cursor = Arc::new(crate::cells::NativeCasCell::new(0));
        let handles: Vec<_> = (0..n as u32)
            .map(|pid| {
                let b = b.clone();
                let slots = Arc::clone(&slots);
                let cursor = Arc::clone(&cursor);
                thread::spawn(move || {
                    b.register(pid);
                    for _ in 0..per {
                        // One counted statement; the claim-then-write runs
                        // while this process holds the statement grant, so
                        // it cannot race.
                        b.step();
                        let k = cursor.load();
                        cursor.compare_and_swap(k, k + 1);
                        slots[k as usize].store(u64::from(pid) + 1);
                    }
                    b.finish(pid);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        slots.iter().map(|s| s.load().unwrap_or(0)).collect()
    }

    #[test]
    fn lockstep_schedule_is_deterministic_across_runs() {
        let a = lockstep_trace(3, 4, 42, 6);
        let b = lockstep_trace(3, 4, 42, 6);
        assert_eq!(a, b, "same seed must give bit-identical interleaving");
        let c = lockstep_trace(3, 4, 43, 6);
        // Different seeds *may* coincide for tiny traces, but across 18
        // slots the rotation order virtually always differs; assert only
        // that all three are complete (every slot written).
        assert!(c.iter().all(|&v| v != 0));
        assert!(a.iter().all(|&v| v != 0));
    }

    #[test]
    fn lockstep_respects_quantum_windows() {
        // Q = 4, 2 processes, 8 single-statement iterations each: every
        // process's work is a whole number of quantum windows, so the
        // writer trace must consist of runs whose lengths are multiples
        // of 4 (consecutive windows may land on the same process, merging
        // runs, but a window can never be cut short — Axiom 2).
        let trace = lockstep_trace(2, 4, 7, 8);
        assert!(trace.iter().all(|&v| v != 0), "incomplete trace {trace:?}");
        let mut runs: Vec<(u64, usize)> = Vec::new();
        for &v in &trace {
            match runs.last_mut() {
                Some((w, len)) if *w == v => *len += 1,
                _ => runs.push((v, 1)),
            }
        }
        for &(_, len) in &runs {
            assert_eq!(len % 4, 0, "mid-window preemption in {runs:?}");
        }
        assert!(runs.len() >= 2, "two processes must both appear: {runs:?}");
    }

    #[test]
    fn lockstep_priorities_run_to_completion_first() {
        // Priorities 2,1: the high-priority process must own a full prefix
        // of the statement trace (Axiom 1), regardless of seed.
        for seed in 0..4 {
            let b = NativeBackend::lockstep(2, &[2, 1], 4, seed);
            let slots: Arc<Vec<crate::cells::NativeRegCell>> =
                Arc::new((0..8).map(|_| crate::cells::NativeRegCell::new()).collect());
            let cursor = Arc::new(crate::cells::NativeCasCell::new(0));
            let handles: Vec<_> = (0..2u32)
                .map(|pid| {
                    let b = b.clone();
                    let slots = Arc::clone(&slots);
                    let cursor = Arc::clone(&cursor);
                    thread::spawn(move || {
                        b.register(pid);
                        for _ in 0..4 {
                            b.step();
                            let k = cursor.load();
                            cursor.compare_and_swap(k, k + 1);
                            slots[k as usize].store(u64::from(pid) + 1);
                        }
                        b.finish(pid);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let trace: Vec<u64> = slots.iter().map(|s| s.load().unwrap()).collect();
            assert_eq!(trace, vec![1, 1, 1, 1, 2, 2, 2, 2], "Axiom 1 violated: {trace:?}");
        }
    }

    #[test]
    fn lockstep_statements_accounted() {
        let b = NativeBackend::lockstep_equal(2, 8, 1);
        let handles: Vec<_> = (0..2u32)
            .map(|pid| {
                let b = b.clone();
                thread::spawn(move || {
                    b.register(pid);
                    for _ in 0..5 {
                        b.step();
                    }
                    b.finish(pid);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (stmts, _) = b.lockstep_stats().unwrap();
        assert_eq!(stmts, 10);
        assert_eq!(b.accesses(), 10);
    }
}
