//! Cache-line-padded atomic cells: the native implementations of the
//! [`wfmem::backend`] cell traits.
//!
//! Each cell owns one `AtomicU64` wrapped in [`Padded`], a
//! `#[repr(align(64))]` box that rounds the cell up to a full x86-64/ARM
//! cache line. Shared cells that the algorithms hammer from many threads
//! (the Fig. 3 slots, the universal log) would otherwise false-share a
//! line and serialize on the coherence protocol; padding makes contention
//! a property of the *algorithm*, not of allocator adjacency — the
//! discipline the ROADMAP's `waitfree-sync` exemplar follows.
//!
//! `⊥` is represented by the same [`EMPTY`] sentinel (`u64::MAX`) the
//! [`crate::objects`] module and the simulator's queue spec already use;
//! register and consensus cells therefore cannot store `u64::MAX` itself
//! (asserted). Memory orderings are chosen per cell and justified in
//! `BACKENDS.md`: registers are `SeqCst` (the read/write algorithms'
//! correctness arguments assume sequentially consistent registers),
//! C&S and consensus cells are `AcqRel`/`Acquire` (values synchronize
//! through the cell itself).

use std::sync::atomic::{AtomicU64, Ordering};

/// `⊥` for value-carrying atomic words (shared with [`crate::objects`]).
pub const EMPTY: u64 = u64::MAX;

/// Pads (and aligns) `T` to a 64-byte cache line to prevent false sharing.
///
/// # Examples
///
/// ```
/// use native::cells::Padded;
/// use std::sync::atomic::AtomicU64;
///
/// let p = Padded::new(AtomicU64::new(0));
/// assert_eq!(std::mem::align_of_val(&p), 64);
/// assert!(std::mem::size_of_val(&p) >= 64);
/// ```
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct Padded<T> {
    value: T,
}

impl<T> Padded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        Padded { value }
    }

    /// The padded value.
    pub fn get(&self) -> &T {
        &self.value
    }
}

/// A striped event counter: `LANES` cache-line-padded `u64` lanes, each
/// thread incrementing its own lane, summed once at the end of a run.
///
/// Counting retries or accesses through a single shared counter would put
/// one hot line on every fast path and distort exactly the contention
/// being measured; striping (const-generic, so the lane array is inline
/// with no allocation) makes the accounting itself contention-free for up
/// to `LANES` concurrent threads and merely contended — never wrong —
/// beyond that.
///
/// # Examples
///
/// ```
/// use native::cells::StripedCounter;
///
/// let c: StripedCounter<4> = StripedCounter::new();
/// c.add(0, 2);
/// c.add(7, 3); // lane index wraps modulo LANES
/// assert_eq!(c.sum(), 5);
/// ```
#[derive(Debug)]
pub struct StripedCounter<const LANES: usize> {
    lanes: [Padded<AtomicU64>; LANES],
}

impl<const LANES: usize> StripedCounter<LANES> {
    /// A zeroed counter.
    pub fn new() -> Self {
        StripedCounter { lanes: std::array::from_fn(|_| Padded::new(AtomicU64::new(0))) }
    }

    /// Adds `n` to lane `lane % LANES` (relaxed; the total is read only
    /// after threads join, which synchronizes).
    pub fn add(&self, lane: usize, n: u64) {
        self.lanes[lane % LANES].get().fetch_add(n, Ordering::Relaxed);
    }

    /// The sum over all lanes.
    pub fn sum(&self) -> u64 {
        self.lanes.iter().map(|l| l.get().load(Ordering::Relaxed)).sum()
    }
}

impl<const LANES: usize> Default for StripedCounter<LANES> {
    fn default() -> Self {
        Self::new()
    }
}

/// The native atomic register cell: one padded `AtomicU64`, `⊥` as
/// [`EMPTY`].
///
/// All accesses are `SeqCst`: the read/write consensus algorithms (Fig. 3,
/// the universal construction's announce/publish protocol) are argued
/// under sequentially consistent registers, and a relaxed register here
/// would make any observed disagreement ambiguous between "scheduler
/// admitted it" (the interesting measurement) and "store buffer reordered
/// it" (an artifact). See `BACKENDS.md` for the full argument.
#[derive(Debug)]
pub struct NativeRegCell {
    slot: Padded<AtomicU64>,
}

impl NativeRegCell {
    /// A register initialized to `⊥`.
    pub fn new() -> Self {
        NativeRegCell { slot: Padded::new(AtomicU64::new(EMPTY)) }
    }

    /// Atomically reads the register (`None` is `⊥`).
    pub fn load(&self) -> Option<u64> {
        match self.slot.get().load(Ordering::SeqCst) {
            EMPTY => None,
            v => Some(v),
        }
    }

    /// Atomically writes `v` (`v != u64::MAX`, the `⊥` sentinel).
    pub fn store(&self, v: u64) {
        assert_ne!(v, EMPTY, "u64::MAX is the ⊥ sentinel");
        self.slot.get().store(v, Ordering::SeqCst);
    }
}

impl Default for NativeRegCell {
    fn default() -> Self {
        Self::new()
    }
}

/// The native compare-and-swap cell: one padded `AtomicU64`.
///
/// `compare_exchange(old, new, AcqRel, Acquire)` + `load(Acquire)`: every
/// value written is released by the successful CAS and acquired by the
/// load or CAS that observes it, so data published before a CAS is
/// visible to whoever reads its value — the only ordering the C&S object
/// interface promises.
#[derive(Debug)]
pub struct NativeCasCell {
    word: Padded<AtomicU64>,
}

impl NativeCasCell {
    /// A word holding `init`.
    pub fn new(init: u64) -> Self {
        NativeCasCell { word: Padded::new(AtomicU64::new(init)) }
    }

    /// Atomically: if the word equals `old`, set it to `new` and return
    /// `true`.
    pub fn compare_and_swap(&self, old: u64, new: u64) -> bool {
        self.word.get().compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }

    /// Atomically reads the word.
    pub fn load(&self) -> u64 {
        self.word.get().load(Ordering::Acquire)
    }
}

/// The native first-wins consensus cell: a padded `AtomicU64` decided by
/// a single `compare_exchange` from `⊥`.
///
/// Hardware C&S has consensus number ∞, so — unlike the simulator's
/// [`wfmem::LocalConsensus`], which Theorem 1 has to *justify* on a
/// hybrid uniprocessor — the unbounded first-wins semantics holds
/// unconditionally on any multiprocessor. Success ordering `AcqRel`,
/// failure/read `Acquire`: whoever learns the decided value also sees
/// everything the winner published before proposing (the universal
/// construction's replay depends on exactly this edge).
#[derive(Debug)]
pub struct NativeConsCell {
    decided: Padded<AtomicU64>,
}

impl NativeConsCell {
    /// An undecided cell.
    pub fn new() -> Self {
        NativeConsCell { decided: Padded::new(AtomicU64::new(EMPTY)) }
    }

    /// Atomically proposes `v` (`v != u64::MAX`); returns the decided
    /// value.
    pub fn propose(&self, v: u64) -> u64 {
        assert_ne!(v, EMPTY, "u64::MAX is the ⊥ sentinel");
        match self.decided.get().compare_exchange(EMPTY, v, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => v,
            Err(current) => current,
        }
    }

    /// Reads the decided value without proposing (`None` if undecided).
    pub fn load(&self) -> Option<u64> {
        match self.decided.get().load(Ordering::Acquire) {
            EMPTY => None,
            v => Some(v),
        }
    }
}

impl Default for NativeConsCell {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn padded_cells_occupy_distinct_cache_lines() {
        assert_eq!(std::mem::align_of::<Padded<AtomicU64>>(), 64);
        assert_eq!(std::mem::size_of::<Padded<AtomicU64>>(), 64);
        let cells: Vec<NativeRegCell> = (0..4).map(|_| NativeRegCell::new()).collect();
        for w in cells.windows(2) {
            let a = w[0].slot.get() as *const AtomicU64 as usize;
            let b = w[1].slot.get() as *const AtomicU64 as usize;
            assert!(b.abs_diff(a) >= 64, "cells share a cache line");
        }
    }

    #[test]
    fn reg_cell_roundtrip() {
        let r = NativeRegCell::new();
        assert_eq!(r.load(), None);
        r.store(9);
        assert_eq!(r.load(), Some(9));
    }

    #[test]
    fn cas_cell_semantics() {
        let w = NativeCasCell::new(1);
        assert!(!w.compare_and_swap(0, 5));
        assert!(w.compare_and_swap(1, 5));
        assert_eq!(w.load(), 5);
    }

    #[test]
    fn cons_cell_first_proposal_wins() {
        let c = NativeConsCell::new();
        assert_eq!(c.load(), None);
        assert_eq!(c.propose(4), 4);
        assert_eq!(c.propose(6), 4);
        assert_eq!(c.load(), Some(4));
    }

    // Seeded stress loops (the in-tree-deps substitute for loom): hammer
    // each cell from several threads across many rounds and assert the
    // single-winner / monotone invariants that must hold under *any*
    // interleaving. Seeds vary the per-thread work pattern so repeated CI
    // runs explore different timings.
    #[test]
    fn stress_cons_cell_single_winner() {
        for round in 0..50u64 {
            let c = Arc::new(NativeConsCell::new());
            let winners: Vec<u64> = (0..4u64)
                .map(|t| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        // Seed-dependent spin varies arrival order.
                        for _ in 0..((round * 7 + t * 13) % 32) {
                            std::hint::spin_loop();
                        }
                        c.propose(t + 1)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect();
            let first = winners[0];
            assert!(winners.iter().all(|&w| w == first), "round {round}: split decision");
            assert!((1..=4).contains(&first));
            assert_eq!(c.load(), Some(first));
        }
    }

    #[test]
    fn stress_cas_cell_counter_loses_no_increments() {
        for _round in 0..20 {
            let w = Arc::new(NativeCasCell::new(0));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let w = Arc::clone(&w);
                    thread::spawn(move || {
                        for _ in 0..100 {
                            loop {
                                let v = w.load();
                                if w.compare_and_swap(v, v + 1) {
                                    break;
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(w.load(), 400);
        }
    }

    #[test]
    fn stress_striped_counter_exact_under_contention() {
        let c = Arc::new(StripedCounter::<8>::new());
        let handles: Vec<_> = (0..6)
            .map(|t| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for i in 0..500u64 {
                        c.add(t, i % 3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Per thread: sum of i % 3 for i in 0..500 = 166 * 3 + 0 + 1.
        assert_eq!(c.sum(), 6 * 499);
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn reg_rejects_sentinel() {
        NativeRegCell::new().store(u64::MAX);
    }
}
