//! The Fig. 7 multiprocessor consensus on real threads: one OS thread per
//! processor, each running its processes' `decide` invocations; shared
//! state entirely in atomics.
//!
//! Within a thread the processes run without preemption (a legal hybrid
//! schedule), so the uniprocessor `local-*` objects reduce to plain
//! per-thread operations; the cross-processor structure — levels, ports,
//! `C`-consensus objects, published values — is the paper's, raced for
//! real.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use hybrid_wf::multi::ports::PortLayout;

use crate::objects::{AtomicCConsensus, AtomicElection, AtomicOptVal};

/// Shared state of a native Fig. 7 instance.
pub struct NativeConsensus {
    layout: PortLayout,
    /// One `C`-consensus object per level (index 1..=L).
    cons: Vec<AtomicCConsensus>,
    /// `Outval[cpu][level]`.
    outval: Vec<Vec<AtomicOptVal>>,
    /// Per-processor port counter (single priority level in the native
    /// port: each processor thread serializes its own processes).
    port: Vec<AtomicU64>,
    /// Per-(cpu, port) elections.
    elections: Vec<Vec<AtomicElection>>,
}

impl NativeConsensus {
    /// Allocates an instance for the given layout.
    pub fn new(layout: PortLayout) -> Arc<Self> {
        let p = layout.p as usize;
        let l = layout.l as usize;
        let ports_len = 2 * l + 3 * layout.m as usize + 4;
        Arc::new(NativeConsensus {
            layout,
            cons: (0..=l).map(|_| AtomicCConsensus::new(layout.c())).collect(),
            outval: (0..p).map(|_| (0..=l).map(|_| AtomicOptVal::default()).collect()).collect(),
            port: (0..p).map(|_| AtomicU64::new(1)).collect(),
            elections: (0..p)
                .map(|_| (0..ports_len).map(|_| AtomicElection::new()).collect())
                .collect(),
        })
    }

    /// One process's `decide(val)` on processor `cpu`. `me` must be unique
    /// and nonzero across all processes.
    ///
    /// Follows Fig. 7 lines 14–36 (single priority level per processor, so
    /// the lines 5–13 lower-priority merge is vacuous).
    pub fn decide(&self, cpu: u32, me: u64, val: u64) -> u64 {
        let l_max = self.layout.l;
        let numports = u64::from(self.layout.ports_per_level(cpu));
        let cpu_us = cpu as usize;
        let mut input = val;
        let mut level;
        let mut prevlevel = 0u32;
        let mut publevel = 0u32;
        loop {
            // 15–16: someone finished?
            if let Some(v) = self.outval[cpu_us][l_max as usize].get() {
                return v;
            }
            // 17–26: claim a port.
            let port = self.port[cpu_us].fetch_add(1, Ordering::AcqRel);
            level = ((port - 1) / numports + 1) as u32;
            // Skip the sibling port of a level we already visited.
            if level == prevlevel {
                prevlevel = level;
                continue;
            }
            if level > l_max {
                break;
            }
            // 27–28: freshest published input on this processor.
            if publevel != 0 {
                if let Some(v) = self.outval[cpu_us][publevel as usize].get() {
                    input = v;
                }
            }
            // 30: the port election.
            if self.elections[cpu_us][port as usize].decide(me) == me {
                // 31–33: invoke the level's C-consensus object, publish.
                let out = self.cons[level as usize].invoke(input).unwrap_or(input);
                self.outval[cpu_us][level as usize].set(out);
                publevel = publevel.max(level);
            }
            prevlevel = level;
        }
        // 35–36.
        if publevel != 0 {
            if let Some(v) = self.outval[cpu_us][publevel as usize].get() {
                return v;
            }
        }
        // Fall back to the highest published level on this processor.
        for l in (1..=l_max).rev() {
            if let Some(v) = self.outval[cpu_us][l as usize].get() {
                return v;
            }
        }
        input
    }
}

/// Runs `m` processes per processor across `p` OS threads, each proposing
/// a distinct value; returns every process's decision.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_native(p: u32, c: u32, m: u32) -> Vec<u64> {
    let layout = PortLayout::new(p, c, m);
    let shared = NativeConsensus::new(layout);
    let mut handles = Vec::new();
    for cpu in 0..p {
        let shared = shared.clone();
        handles.push(thread::spawn(move || {
            let mut outs = Vec::new();
            for j in 0..m {
                let pid = u64::from(cpu * m + j) + 1;
                outs.push(shared.decide(cpu, pid, 100 + pid));
            }
            outs
        }));
    }
    handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_decides_own_value() {
        let shared = NativeConsensus::new(PortLayout::new(1, 1, 1));
        assert_eq!(shared.decide(0, 1, 42), 42);
    }

    #[test]
    fn sequential_processes_agree() {
        let shared = NativeConsensus::new(PortLayout::new(1, 1, 3));
        let a = shared.decide(0, 1, 10);
        let b = shared.decide(0, 2, 20);
        let c = shared.decide(0, 3, 30);
        assert_eq!((a, b, c), (10, 10, 10));
    }

    #[test]
    fn concurrent_threads_agree_many_rounds() {
        for p in [2u32, 3] {
            for c in [p, 2 * p] {
                for _round in 0..30 {
                    let outs = run_native(p, c, 2);
                    assert!(
                        outs.windows(2).all(|w| w[0] == w[1]),
                        "P={p} C={c}: disagreement {outs:?}"
                    );
                    let v = outs[0];
                    assert!((101..=100 + u64::from(2 * p)).contains(&v), "invalid {v}");
                }
            }
        }
    }

    #[test]
    fn heavy_contention_round() {
        for _ in 0..5 {
            let outs = run_native(4, 4, 4);
            assert!(outs.windows(2).all(|w| w[0] == w[1]), "{outs:?}");
        }
    }

    #[test]
    fn c_consensus_objects_never_over_invoked() {
        let layout = PortLayout::new(2, 3, 2);
        let shared = NativeConsensus::new(layout);
        let s2 = shared.clone();
        let h = thread::spawn(move || {
            (s2.decide(1, 10, 1000), s2.decide(1, 11, 1001))
        });
        let a = shared.decide(0, 1, 500);
        let b = shared.decide(0, 2, 501);
        let (c, d) = h.join().unwrap();
        assert!(a == b && b == c && c == d, "{a} {b} {c} {d}");
        for o in shared.cons.iter().skip(1) {
            assert!(o.invocations() <= shared.layout.c() + 0, "over-invoked");
        }
    }
}
