//! Lock-free shared objects on real atomics: the `C`-consensus primitive
//! and the one-shot election cell the native Fig. 7 port uses.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Sentinel for "undecided" — proposals must not equal it.
const EMPTY: u64 = u64::MAX;

/// A `C`-consensus object on real atomics: the first `C` invocations agree
/// on the first proposal to land; later invocations return `None` (the
/// paper's `⊥`), exactly like the simulator's model.
///
/// # Examples
///
/// ```
/// use native::objects::AtomicCConsensus;
///
/// let o = AtomicCConsensus::new(2);
/// assert_eq!(o.invoke(5), Some(5));
/// assert_eq!(o.invoke(9), Some(5));
/// assert_eq!(o.invoke(1), None); // exhausted
/// ```
#[derive(Debug)]
pub struct AtomicCConsensus {
    cap: u32,
    decided: AtomicU64,
    invocations: AtomicU32,
}

impl AtomicCConsensus {
    /// Creates an undecided object with consensus number `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: u32) -> Self {
        assert!(cap > 0);
        AtomicCConsensus {
            cap,
            decided: AtomicU64::new(EMPTY),
            invocations: AtomicU32::new(0),
        }
    }

    /// Invokes the object with proposal `v` (`v != u64::MAX`).
    ///
    /// Lock-free: one `fetch_add` to claim an invocation slot, one
    /// `compare_exchange` to decide, one load to read the decision.
    pub fn invoke(&self, v: u64) -> Option<u64> {
        debug_assert_ne!(v, EMPTY, "u64::MAX is the ⊥ sentinel");
        let ticket = self.invocations.fetch_add(1, Ordering::AcqRel);
        if ticket >= self.cap {
            return None;
        }
        let _ = self
            .decided
            .compare_exchange(EMPTY, v, Ordering::AcqRel, Ordering::Acquire);
        Some(self.decided.load(Ordering::Acquire))
    }

    /// The decided value, if any (does not consume an invocation).
    pub fn read(&self) -> Option<u64> {
        match self.decided.load(Ordering::Acquire) {
            EMPTY => None,
            v => Some(v),
        }
    }

    /// Invocations so far.
    pub fn invocations(&self) -> u32 {
        self.invocations.load(Ordering::Acquire)
    }
}

/// A one-shot consensus cell (unbounded invocations): first
/// `compare_exchange` wins. Used for the native port's per-port elections
/// — on real hardware CAS has infinite consensus number, so this is the
/// `C = ∞` rung of Herlihy's hierarchy standing in for the read/write
/// election that the quantum guarantee would otherwise enable.
#[derive(Debug)]
pub struct AtomicElection {
    decided: AtomicU64,
}

impl Default for AtomicElection {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicElection {
    /// Creates an undecided cell.
    pub fn new() -> Self {
        AtomicElection { decided: AtomicU64::new(EMPTY) }
    }

    /// Proposes `v`; returns the winner's value.
    pub fn decide(&self, v: u64) -> u64 {
        debug_assert_ne!(v, EMPTY);
        let _ = self
            .decided
            .compare_exchange(EMPTY, v, Ordering::AcqRel, Ordering::Acquire);
        self.decided.load(Ordering::Acquire)
    }

    /// The winner, if decided.
    pub fn read(&self) -> Option<u64> {
        match self.decided.load(Ordering::Acquire) {
            EMPTY => None,
            v => Some(v),
        }
    }
}

/// An optional-value atomic register (`⊥` = `u64::MAX`), used for the
/// native `Outval` array.
#[derive(Debug)]
pub struct AtomicOptVal {
    v: AtomicU64,
}

impl Default for AtomicOptVal {
    fn default() -> Self {
        AtomicOptVal { v: AtomicU64::new(EMPTY) }
    }
}

impl AtomicOptVal {
    /// Reads the register.
    pub fn get(&self) -> Option<u64> {
        match self.v.load(Ordering::Acquire) {
            EMPTY => None,
            x => Some(x),
        }
    }

    /// Writes the register.
    pub fn set(&self, x: u64) {
        debug_assert_ne!(x, EMPTY);
        self.v.store(x, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn c_consensus_first_proposal_wins_sequential() {
        let o = AtomicCConsensus::new(3);
        assert_eq!(o.invoke(7), Some(7));
        assert_eq!(o.invoke(8), Some(7));
        assert_eq!(o.invoke(9), Some(7));
        assert_eq!(o.invoke(10), None);
    }

    #[test]
    fn c_consensus_concurrent_agreement() {
        for _round in 0..50 {
            let o = Arc::new(AtomicCConsensus::new(8));
            let handles: Vec<_> = (0..8u64)
                .map(|i| {
                    let o = o.clone();
                    thread::spawn(move || o.invoke(i + 1))
                })
                .collect();
            let outs: Vec<Option<u64>> =
                handles.into_iter().map(|h| h.join().unwrap()).collect();
            let first = outs[0].expect("within cap");
            assert!(outs.iter().all(|&x| x == Some(first)));
            assert!((1..=8).contains(&first));
        }
    }

    #[test]
    fn c_consensus_exhaustion_under_contention() {
        let o = Arc::new(AtomicCConsensus::new(2));
        let handles: Vec<_> = (0..6u64)
            .map(|i| {
                let o = o.clone();
                thread::spawn(move || o.invoke(i + 1))
            })
            .collect();
        let outs: Vec<Option<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let bots = outs.iter().filter(|x| x.is_none()).count();
        assert_eq!(bots, 4, "exactly cap invocations succeed: {outs:?}");
    }

    #[test]
    fn election_single_winner_concurrent() {
        for _ in 0..50 {
            let e = Arc::new(AtomicElection::new());
            let handles: Vec<_> = (0..4u64)
                .map(|i| {
                    let e = e.clone();
                    thread::spawn(move || e.decide(i + 1))
                })
                .collect();
            let outs: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(outs.windows(2).all(|w| w[0] == w[1]), "{outs:?}");
        }
    }

    #[test]
    fn optval_roundtrip() {
        let r = AtomicOptVal::default();
        assert_eq!(r.get(), None);
        r.set(5);
        assert_eq!(r.get(), Some(5));
    }
}
