//! Theorem 2 / Fig. 5: C&S latency is O(V) in the number of priority
//! levels (statement counts grow linearly; see also `experiments --thm2`
//! for the exact series 42 + 14(V−1)).

use bench::group;
use hybrid_wf::uni::cas::{op_machine, CasMem, CasOp};
use sched_sim::{Kernel, ProcessorId, Priority, RoundRobin, SystemSpec};

fn one_cas_at_v(v: u32) -> u64 {
    let n = 2;
    let mut k = Kernel::new(CasMem::new(v, &[v, v], 100), SystemSpec::hybrid(4096));
    k.add_process(
        ProcessorId(0),
        Priority(v),
        Box::new(op_machine(
            0,
            v,
            n,
            v,
            vec![
                CasOp::Cas { old: 100, new: 1 },
                CasOp::Cas { old: 1, new: 2 },
                CasOp::Cas { old: 2, new: 3 },
            ],
        )),
    );
    let p1 = k.add_held_process(
        ProcessorId(0),
        Priority(v),
        Box::new(op_machine(1, v, n, v, vec![CasOp::Cas { old: 3, new: 4 }])),
    );
    let mut d = RoundRobin::new();
    k.run(&mut d, 1_000_000);
    k.release(p1);
    k.run(&mut d, 1_000_000)
}

fn main() {
    let mut g = group("fig5_cas_vs_v");
    for v in [1u32, 2, 4, 8] {
        g.bench(&format!("v{v}"), || one_cas_at_v(v));
    }
}
