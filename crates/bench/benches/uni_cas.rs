//! Theorem 2 / Fig. 5: C&S latency is O(V) in the number of priority
//! levels (statement counts grow linearly; see also `experiments --thm2`
//! for the exact series 42 + 14(V−1)).

use bench::group;
use hybrid_wf::uni::cas::{op_machine, CasMem, CasOp};
use sched_sim::{ProcessId, ProcessorId, Priority, RoundRobin, Scenario, SystemSpec};

fn cas_scenario(v: u32) -> (Scenario<CasMem>, ProcessId) {
    let n = 2;
    let mut s = Scenario::new(CasMem::new(v, &[v, v], 100), SystemSpec::hybrid(4096));
    s.add_process(
        ProcessorId(0),
        Priority(v),
        Box::new(op_machine(
            0,
            v,
            n,
            v,
            vec![
                CasOp::Cas { old: 100, new: 1 },
                CasOp::Cas { old: 1, new: 2 },
                CasOp::Cas { old: 2, new: 3 },
            ],
        )),
    );
    let p1 = s.add_held_process(
        ProcessorId(0),
        Priority(v),
        Box::new(op_machine(1, v, n, v, vec![CasOp::Cas { old: 3, new: 4 }])),
    );
    (s, p1)
}

fn main() {
    let mut g = group("fig5_cas_vs_v");
    for v in [1u32, 2, 4, 8] {
        let (s, p1) = cas_scenario(v);
        // Mid-run choreography (release after the stale heads pile up), so
        // build a fresh kernel per iteration and drive it directly.
        g.bench(&format!("v{v}"), || {
            let mut k = s.kernel();
            let mut d = RoundRobin::new();
            k.run(&mut d, 1_000_000);
            k.release(p1);
            k.run(&mut d, 1_000_000)
        });
    }
}
