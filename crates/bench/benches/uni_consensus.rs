//! Theorem 1 / Fig. 3: uniprocessor consensus latency is constant in the
//! number of processes (the paper's constant-time claim).

use bench::criterion;
use criterion::BenchmarkId;
use hybrid_wf::uni::consensus::{decide_machine, UniConsensusMem, MIN_QUANTUM};
use sched_sim::{Kernel, ProcessorId, Priority, RoundRobin, SystemSpec};

fn bench(c: &mut criterion::Criterion) {
    let mut g = c.benchmark_group("fig3_consensus_vs_n");
    for n in [1u32, 4, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut k =
                    Kernel::new(UniConsensusMem::default(), SystemSpec::hybrid(MIN_QUANTUM));
                for i in 0..n {
                    k.add_process(
                        ProcessorId(0),
                        Priority(1 + i % 3),
                        Box::new(decide_machine(u64::from(i))),
                    );
                }
                k.run(&mut RoundRobin::new(), 1_000_000)
            });
        });
    }
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
