//! Theorem 1 / Fig. 3: uniprocessor consensus latency is constant in the
//! number of processes (the paper's constant-time claim).

use bench::group;
use hybrid_wf::uni::consensus::{decide_machine, UniConsensusMem, MIN_QUANTUM};
use sched_sim::{Kernel, ProcessorId, Priority, RoundRobin, SystemSpec};

fn main() {
    let mut g = group("fig3_consensus_vs_n");
    for n in [1u32, 4, 16, 64] {
        g.bench(&format!("n{n}"), || {
            let mut k = Kernel::new(UniConsensusMem::default(), SystemSpec::hybrid(MIN_QUANTUM));
            for i in 0..n {
                k.add_process(
                    ProcessorId(0),
                    Priority(1 + i % 3),
                    Box::new(decide_machine(u64::from(i))),
                );
            }
            k.run(&mut RoundRobin::new(), 1_000_000)
        });
    }
}
