//! Theorem 1 / Fig. 3: uniprocessor consensus latency is constant in the
//! number of processes (the paper's constant-time claim).

use bench::group;
use hybrid_wf::uni::consensus::{decide_machine, UniConsensusMem, MIN_QUANTUM};
use sched_sim::{ProcessorId, Priority, Scenario, SystemSpec};

fn main() {
    let mut g = group("fig3_consensus_vs_n");
    for n in [1u32, 4, 16, 64] {
        let mut s = Scenario::new(UniConsensusMem::default(), SystemSpec::hybrid(MIN_QUANTUM))
            .step_budget(1_000_000);
        for i in 0..n {
            s.add_process(
                ProcessorId(0),
                Priority(1 + i % 3),
                Box::new(decide_machine(u64::from(i))),
            );
        }
        g.bench(&format!("n{n}"), || s.run_fair().steps);
    }
}
