//! Theorem 4 / Fig. 7: multiprocessor consensus — polynomial scaling in
//! (P, M), plus the modeled-vs-expanded local-election ablation
//! (DESIGN.md §6.2).

use bench::group;
use hybrid_wf::multi::consensus::LocalMode;
use lowerbound::adversary::fig7_scenario;

fn main() {
    let mut g = group("fig7_consensus");
    for (p, m) in [(1u32, 2u32), (2, 2), (3, 2), (2, 4)] {
        let s = fig7_scenario(p, p, m, 1, 64, LocalMode::Modeled).step_budget(100_000_000);
        g.bench(&format!("modeled_P{p}_M{m}"), || s.run_fair().steps);
    }
    // Ablation: expanded Fig. 3 port elections (8 statements each) vs
    // modeled-atomic ones.
    for mode in [LocalMode::Modeled, LocalMode::Expanded] {
        let s = fig7_scenario(2, 3, 2, 2, 64, mode).step_budget(100_000_000);
        g.bench(&format!("ablation_local_mode_{mode:?}"), || s.run_fair().steps);
    }
}
