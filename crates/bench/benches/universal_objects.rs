//! Universality in practice: throughput of the wait-free universal-
//! construction queue vs the lock-based baseline (both simulated at
//! statement granularity) under an equal-priority workload where locks are
//! safe — the wait-free object pays a bounded, predictable cost.

use bench::group;
use hybrid_wf::baseline::locks::{inc_machine, LockMem};
use hybrid_wf::universal::{op_machine, CounterSpec, UniversalMem};
use sched_sim::{ProcessorId, Priority, Scenario, SystemSpec};

fn universal_counter(n: u32, per: u32) -> Scenario<UniversalMem<CounterSpec>> {
    let mut s = Scenario::new(
        UniversalMem::<CounterSpec>::new(n, 4 * (n * per) as usize + 4),
        SystemSpec::hybrid(8),
    )
    .step_budget(10_000_000);
    for pid in 0..n {
        s.add_process(
            ProcessorId(0),
            Priority(1),
            Box::new(op_machine(CounterSpec, pid, n, vec![1; per as usize])),
        );
    }
    s
}

fn locked_counter(n: u32, per: u32) -> Scenario<LockMem> {
    let mut s = Scenario::new(LockMem::default(), SystemSpec::hybrid(8)).step_budget(10_000_000);
    for pid in 0..n {
        s.add_process(ProcessorId(0), Priority(1), Box::new(inc_machine(pid, per, 2)));
    }
    s
}

fn main() {
    let mut g = group("universal_vs_lock_counter");
    for n in [2u32, 4, 8] {
        let wf = universal_counter(n, 8);
        g.bench(&format!("wait_free_universal_n{n}"), || wf.run_fair().steps);
        let lk = locked_counter(n, 8);
        g.bench(&format!("lock_based_n{n}"), || lk.run_fair().steps);
    }
}
