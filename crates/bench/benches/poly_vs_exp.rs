//! The paper's complexity claim: Fig. 7 is polynomial where the prior
//! priority-based construction is exponential. Sweeps N and measures both
//! (statement counts are reported by `experiments --poly-vs-exp`; this
//! bench tracks wall time, which follows the same curves).

use bench::group;
use hybrid_wf::baseline::exponential::{decide_machine as exp_machine, ExpMem};
use hybrid_wf::multi::consensus::LocalMode;
use lowerbound::adversary::fig7_scenario;
use sched_sim::{ProcessorId, Priority, Scenario, SystemSpec};

fn main() {
    let mut g = group("poly_vs_exp");
    for n in [2u32, 6, 10] {
        let s7 = fig7_scenario(1, 1, n, 1, 64, LocalMode::Modeled).step_budget(100_000_000);
        g.bench(&format!("fig7_polynomial_n{n}"), || s7.run_fair().steps);

        let mut se = Scenario::new(ExpMem::new(n), SystemSpec::hybrid(4))
            .step_budget(500_000_000);
        for pid in 0..n {
            se.add_process(
                ProcessorId(0),
                Priority(pid + 1),
                Box::new(exp_machine(pid, u64::from(pid) + 1)),
            );
        }
        g.bench(&format!("exponential_baseline_n{n}"), || se.run_fair().steps);
    }
}
