//! Fig. 9: fair-scheduler consensus with a constant quantum, compared with
//! the Fig. 7 algorithm at its full Theorem 4 quantum.

use bench::group;
use hybrid_wf::multi::consensus::{LocalMode, MultiMem};
use hybrid_wf::multi::fair::{decide_machine, FairMem};
use hybrid_wf::multi::ports::PortLayout;
use lowerbound::adversary::fig7_scenario;
use sched_sim::{ProcessorId, Priority, Scenario, SystemSpec};

fn fair_scenario(q: u32) -> Scenario<FairMem> {
    let (p, v) = (2u32, 2u32);
    let cpu_of = [0u32, 0, 1, 1];
    let prio_of = [1u32, 2, 1, 2];
    let layout = PortLayout::new(p, 2 * p, v);
    let mem = FairMem::new(MultiMem::new(layout, v, &prio_of, &cpu_of));
    let mut s = Scenario::new(mem, SystemSpec::hybrid(q)).step_budget(10_000_000);
    for pid in 0..4u32 {
        s.add_process(
            ProcessorId(cpu_of[pid as usize]),
            Priority(prio_of[pid as usize]),
            Box::new(decide_machine(
                pid,
                cpu_of[pid as usize],
                prio_of[pid as usize],
                u64::from(pid) + 1,
                LocalMode::Modeled,
            )),
        );
    }
    s
}

fn main() {
    let mut g = group("fig9_fair");
    for q in [2u32, 4, 8] {
        let s = fair_scenario(q);
        g.bench(&format!("fair_constant_q{q}"), || s.run_fair().steps);
    }
    let s = fig7_scenario(2, 4, 2, 2, 64, LocalMode::Modeled).step_budget(10_000_000);
    g.bench("fig7_reference_q64", || s.run_fair().steps);
}
