//! Fig. 9: fair-scheduler consensus with a constant quantum, compared with
//! the Fig. 7 algorithm at its full Theorem 4 quantum.

use bench::group;
use hybrid_wf::multi::consensus::{LocalMode, MultiMem};
use hybrid_wf::multi::fair::{decide_machine, FairMem};
use hybrid_wf::multi::ports::PortLayout;
use lowerbound::adversary::fig7_kernel;
use sched_sim::{Kernel, ProcessorId, Priority, RoundRobin, SystemSpec};

fn fair_run(q: u32) -> u64 {
    let (p, v) = (2u32, 2u32);
    let cpu_of = [0u32, 0, 1, 1];
    let prio_of = [1u32, 2, 1, 2];
    let layout = PortLayout::new(p, 2 * p, v);
    let mem = FairMem::new(MultiMem::new(layout, v, &prio_of, &cpu_of));
    let mut k = Kernel::new(mem, SystemSpec::hybrid(q));
    for pid in 0..4u32 {
        k.add_process(
            ProcessorId(cpu_of[pid as usize]),
            Priority(prio_of[pid as usize]),
            Box::new(decide_machine(
                pid,
                cpu_of[pid as usize],
                prio_of[pid as usize],
                u64::from(pid) + 1,
                LocalMode::Modeled,
            )),
        );
    }
    k.run(&mut RoundRobin::new(), 10_000_000)
}

fn main() {
    let mut g = group("fig9_fair");
    for q in [2u32, 4, 8] {
        g.bench(&format!("fair_constant_q{q}"), || fair_run(q));
    }
    g.bench("fig7_reference_q64", || {
        let mut k = fig7_kernel(2, 4, 2, 2, 64, LocalMode::Modeled);
        k.run(&mut RoundRobin::new(), 10_000_000)
    });
}
