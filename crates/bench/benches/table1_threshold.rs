//! Table 1: the cost of running Fig. 7 at the quantum the paper's upper
//! bound prescribes, across the (P, C) grid. The *threshold* itself is
//! located by `cargo run -p experiments --release -- --table1`; this bench
//! tracks the runtime cost along the C axis (weaker objects ⇒ more levels
//! ⇒ more work).

use bench::group;
use hybrid_wf::multi::consensus::LocalMode;
use lowerbound::adversary::fig7_scenario;

fn main() {
    let mut g = group("table1_cost_along_c");
    let p = 3u32;
    for cc in p..=2 * p {
        // Paper upper bound shape: Q ∝ (2P + 1 − C); c ≈ 16 covers the
        // implementation's constant.
        let q = 16 * (2 * p + 1 - cc);
        let s = fig7_scenario(p, cc, 2, 1, q, LocalMode::Modeled).step_budget(100_000_000);
        g.bench(&format!("P{p}_C{cc}_Q{q}"), || s.run_fair().steps);
    }
}
