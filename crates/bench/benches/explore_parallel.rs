//! The frontier-sharded explorer: serial vs parallel throughput and the
//! payoff of symmetry / partial-order reduction.
//!
//! Three cases per workload: the serial DFS, the sharded parallel DFS at
//! 4 workers (on a single hardware thread this measures coordination
//! overhead — the determinism tests guarantee the *answers* are
//! bit-identical, so any multi-core speedup comes free), and the reduced
//! search, whose win is algorithmic (fewer states) rather than mechanical
//! and therefore shows up even on one core.

use bench::group;
use lowerbound::explore_grid::{fig3_kernel, pair_kernel};
use sched_sim::explore::{explore_parallel, ExploreBounds, Verdict};

fn main() {
    let mut g = group("explore_parallel");
    let fig3 = fig3_kernel(8, &[1, 2, 3]);
    g.bench("fig3_3p/serial", || {
        explore_parallel(&fig3, ExploreBounds::default(), 1, |_| Verdict::KeepGoing).steps
    });
    g.bench("fig3_3p/jobs4", || {
        explore_parallel(&fig3, ExploreBounds::default(), 4, |_| Verdict::KeepGoing).steps
    });

    let sym = fig3_kernel(8, &[7, 7, 7, 7]);
    g.bench("fig3_4p_sym/serial", || {
        explore_parallel(&sym, ExploreBounds::default(), 1, |_| Verdict::KeepGoing).steps
    });
    g.bench("fig3_4p_sym/sym+por", || {
        explore_parallel(&sym, ExploreBounds::default().reduced(), 1, |_| Verdict::KeepGoing)
            .steps
    });

    let pair = pair_kernel(8, 2);
    g.bench("fig3_pair_2x2/serial", || {
        explore_parallel(&pair, ExploreBounds::default(), 1, |_| Verdict::KeepGoing).steps
    });
    g.bench("fig3_pair_2x2/por", || {
        explore_parallel(
            &pair,
            ExploreBounds { por: true, ..ExploreBounds::default() },
            1,
            |_| Verdict::KeepGoing,
        )
        .steps
    });
}
