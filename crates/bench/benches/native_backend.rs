//! The backend split, timed: the same backend-generic algorithms
//! (`hybrid_wf::generic`) on the simulator cells and on the native
//! cache-padded atomic cells, in both pacing modes.
//!
//! The interesting comparisons (see BACKENDS.md for the decision table):
//!
//! * sim vs native-free — the cost of real threads + real atomics against
//!   single-threaded `RefCell` bookkeeping; free mode also measures actual
//!   hardware contention on the padded cells.
//! * native-free vs native-lockstep — the price of deterministic
//!   statement-granular scheduling (one condvar round-trip per counted
//!   statement), which is why lockstep is a *correctness* instrument, not
//!   a throughput one.

use bench::group;
use hybrid_wf::generic::{fig3_decide, Fig3Cell};
use hybrid_wf::universal::CounterSpec;
use native::harness::{counter_plans, run_cas, run_fig3, run_universal, Pacing};
use wfmem::SimBackend;

fn main() {
    let mut g = group("native_backend");
    g.bench("fig3_sim_4_decides", || {
        let b = SimBackend::new();
        let cell = Fig3Cell::new(&b);
        (1..=4u64).map(|v| fig3_decide(&b, &cell, 10 * v)).sum::<u64>()
    });
    g.bench("fig3_native_free_n4", || {
        run_fig3(&[10, 20, 30, 40], Pacing::Free).records.len()
    });
    g.bench("fig3_native_lockstep_q8_n4", || {
        run_fig3(&[10, 20, 30, 40], Pacing::Lockstep { seed: 0, quantum: 8 }).records.len()
    });
    g.bench("universal_counter_free_n4", || {
        run_universal(CounterSpec, counter_plans(4, 8, 7), Pacing::Free).records.len()
    });
    g.bench("universal_counter_lockstep_q8_n4", || {
        run_universal(
            CounterSpec,
            counter_plans(4, 8, 7),
            Pacing::Lockstep { seed: 0, quantum: 8 },
        )
        .records
        .len()
    });
    g.bench("cas_native_free_n8_per100", || run_cas(8, 100, 3, Pacing::Free).retries);
}
