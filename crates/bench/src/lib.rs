//! A small, self-contained timing harness for the benchmarks that
//! regenerate the paper's tables and figures.
//!
//! The workspace builds offline, so the benches use this ~100-line harness
//! instead of an external framework. The statement counts the benchmarks
//! exercise are fixed by the algorithms, so wall-clock time tracks the
//! algorithmic work directly (the simulator costs a near-constant factor
//! per statement); a median over a modest number of iterations is plenty
//! to expose the curves (flat in N, linear in V, exponential baseline…).
//!
//! Run with `cargo bench --workspace`. Each bench binary prints one line
//! per case: `group/case  median  (min .. max, iters)`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target measurement time per case. Small enough that the full suite
/// stays CI-friendly, large enough for a stable median.
const TARGET: Duration = Duration::from_millis(400);
/// Minimum timed iterations per case.
const MIN_ITERS: usize = 5;
/// Maximum timed iterations per case.
const MAX_ITERS: usize = 200;

/// A named group of benchmark cases (one per table/figure).
pub struct Group {
    name: String,
}

/// Creates a benchmark group. Cases print as `name/case`.
pub fn group(name: &str) -> Group {
    println!("== {name} ==");
    Group { name: name.to_string() }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl Group {
    /// Times `f`, printing the median (and min/max) per iteration. The
    /// return value is passed through [`black_box`] so the work is not
    /// optimized away.
    pub fn bench<R>(&mut self, case: &str, mut f: impl FnMut() -> R) {
        // Warm-up: one untimed call (fills allocator caches, faults pages).
        black_box(f());
        let mut samples: Vec<Duration> = Vec::new();
        let begun = Instant::now();
        while samples.len() < MIN_ITERS
            || (begun.elapsed() < TARGET && samples.len() < MAX_ITERS)
        {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed());
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!(
            "{}/{case:<28} {:>12}  ({} .. {}, {} iters)",
            self.name,
            fmt_dur(median),
            fmt_dur(samples[0]),
            fmt_dur(*samples.last().expect("nonempty")),
            samples.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_respects_bounds() {
        let mut g = group("selftest");
        let mut calls = 0u64;
        g.bench("counting", || {
            calls += 1;
            calls
        });
        // warm-up + at least MIN_ITERS timed iterations
        assert!(calls >= 1 + MIN_ITERS as u64);
        assert!(calls <= 1 + MAX_ITERS as u64);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_dur(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_dur(Duration::from_micros(5)), "5.000 µs");
        assert_eq!(fmt_dur(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_dur(Duration::from_secs(5)), "5.000 s");
    }
}
