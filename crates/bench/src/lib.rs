//! Shared helpers for the criterion benchmarks that regenerate the paper's
//! tables and figures. The benchmarks measure *simulated statement counts
//! are fixed by the algorithms*, so wall-clock time here tracks the
//! algorithmic work directly (the simulator costs a near-constant factor
//! per statement).

use criterion::Criterion;

/// A criterion instance tuned for simulation benchmarks: modest sampling
/// so the full suite stays in CI-friendly time.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}
