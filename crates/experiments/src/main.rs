//! Experiment harness: regenerates every table and figure of Anderson &
//! Moir (PODC 1999) from the implementations in this workspace.
//!
//! Run `cargo run -p experiments --release` for the full report, or pass a
//! subset of flags:
//!
//! * `--table1`    — Table 1: universality thresholds across (P, C)
//! * `--thm1`      — Theorem 1: Fig. 3 constant time + Q ≥ 8 tightness
//! * `--thm2`      — Theorem 2: Fig. 5 O(V) time
//! * `--thm3`      — Theorem 3: Fig. 6 impossibility witnesses
//! * `--thm4`      — Theorem 4: Fig. 7 polynomial time/space
//! * `--failures`  — Lemmas 2/3: access-failure pressure vs Q
//! * `--lemma1`    — Lemma 1: exhaustive schedule enumeration for Fig. 3
//! * `--valency`   — Fig. 10: bivalent chain depths
//! * `--fig8`      — Fig. 8: the level/port layout
//! * `--poly-vs-exp` — polynomial Fig. 7 vs exponential baseline
//! * `--obs`       — observability: per-run counters + capture/replay demo
//! * `--perf`      — throughput sweep (steps/sec) → `BENCH_perf.json`
//! * `--fuzz`      — adversarial schedule fuzz over every algorithm family
//!                   → `BENCH_fuzz.json` (never part of the default `--all`
//!                   run; must be requested explicitly)
//! * `--profile`   — schedule profiler sweep over the central families
//!                   → `BENCH_profile.json` + `profile_<family>.perfetto.json`
//!                   timelines (like `--fuzz`, explicit-only)
//! * `--native`    — the native-backend grid: the backend-generic
//!                   algorithms on real OS threads, cross-validated by the
//!                   simulator oracles → `BENCH_native.json` (explicit-only;
//!                   `--smoke` shrinks it for the `check.sh` gate)
//! * `--crash`     — the crash-and-restart grid: crash/recover lifecycle
//!                   plans over Fig. 3 / universal / Fig. 7 under noisy
//!                   schedules, scored by recovery-safe oracles, plus a
//!                   churn-surviving service cell → `BENCH_crash.json`
//!                   (explicit-only; `--smoke` shrinks it for the
//!                   `check.sh` gate)
//! * `--service`   — the request-serving workload engine: long-lived
//!                   sharded universal-object services under thousands of
//!                   multiplexed clients → `BENCH_service.json` with
//!                   per-shard throughput and request-latency percentiles
//!                   (explicit-only; `--smoke` shrinks it;
//!                   `--service-baseline FILE` gates per-request cost
//!                   against a committed artifact)
//!
//! `--profile` runs Fig. 3 / Fig. 5 / universal / Fig. 7 at their legal
//! quanta under storm and random deciders with a streaming profiler
//! attached (`sched_sim::prof`), reporting quantum-window utilization,
//! preemption counts, dispatch latency, and per-invocation step/retry
//! histograms, merged per family. `--profile-trace FILE` instead profiles
//! a committed `.trace` artifact offline and writes its Perfetto timeline
//! next to the current directory.
//!
//! `--perf` accepts two modifiers: `--smoke` shrinks the workloads for CI,
//! and `--perf-baseline FILE` compares the fresh rates against a committed
//! `BENCH_perf.json`, exiting nonzero on a > 30% per-kind regression.
//!
//! `--fuzz` drives hostile deciders (`sched_sim::fuzz`) against every
//! family at legal and sub-threshold quanta, checking each family's safety
//! oracle (`lowerbound::fuzz`). Violations are delta-debugged to minimal
//! replayable counterexample artifacts under `--fuzz-dir DIR` (default
//! `tests/golden/fuzz`); `--smoke` shrinks the seed count for CI. Exits
//! nonzero on a violation at legal Q (a bug) or a missing violation where
//! the paper predicts impossibility.
//!
//! Sweep-shaped experiments (`--table1 --thm1 --thm4 --failures --fuzz`)
//! run over the `sched_sim::sweep` worker pool; `--jobs N` sets the worker
//! count (default: available parallelism). Results are **bit-identical for
//! every jobs value** — only wall time changes. They also emit
//! line-oriented JSON artifacts: `BENCH_table1.json` (the Table 1 grid)
//! and `BENCH_sweeps.json` (the other sweeps). Canonical artifacts carry
//! only deterministic payloads; wall times go to a `*.timing.json` sidecar
//! so regeneration never dirties a committed artifact. `--validate FILE`
//! checks either kind of artifact against its schema and exits.

use std::time::{Duration, Instant};

use hybrid_wf::multi::consensus::LocalMode;
use hybrid_wf::multi::failures::{lemma2_holds, lemma3_bound_holds, summarize};
use hybrid_wf::multi::ports::PortLayout;
use hybrid_wf::uni::cas::{op_machine as cas_machine, CasMem, CasOp};
use hybrid_wf::uni::consensus::{decide_machine, UniConsensusMem, MIN_QUANTUM};
use hybrid_wf::universal::{op_machine as universal_machine, CounterSpec, UniversalMem};
use lowerbound::adversary::{adversary_for_seed, fig7_scenario};
use lowerbound::fig6;
use lowerbound::fuzz::{case_specs, fuzz_cell, shrink_and_capture, CaseSpec, Expect, DECIDERS};
use lowerbound::profile::{
    family_timeline, n_seeds, profile_trace_text, report_lines, run_grid, FAMILIES,
    PROFILE_DECIDERS,
};
use lowerbound::valency::{bivalent_chain_depth, bivalent_chain_probe};
use sched_sim::decision::RoundRobin;
use sched_sim::explore::{check_all_schedules, explore, explore_parallel, ExploreBounds, Verdict};
use sched_sim::ids::{ProcessId, ProcessorId, Priority};
use sched_sim::kernel::SystemSpec;
use sched_sim::report::{
    schema_for_path, split_timing, validate_cells, Json, TIMING_SCHEMA,
};
use sched_sim::scenario::{RunResult, Scenario};
use sched_sim::sweep::{cross, default_jobs, run_cells};

/// The shared run options every subcommand draws from: one parse, one
/// source of truth for which `--flags` are option-carrying (and so must
/// not be mistaken for experiment selectors).
struct RunArgs {
    /// Sweep worker count (`--jobs N`; default: available parallelism).
    jobs: usize,
    /// CI-scale workloads (`--smoke`).
    smoke: bool,
    /// Committed `BENCH_perf.json` to gate `--perf` against.
    perf_baseline: Option<String>,
    /// Committed `BENCH_service.json` to gate `--service` against.
    service_baseline: Option<String>,
    /// Committed `BENCH_explore.json` to gate `--explore` against.
    explore_baseline: Option<String>,
    /// Directory for shrunk fuzz counterexamples (`--fuzz-dir DIR`).
    fuzz_dir: String,
}

impl RunArgs {
    /// Options (flags that consume the next argument, plus `--smoke`);
    /// everything else starting with `--` selects an experiment.
    const OPTS: [&'static str; 6] = [
        "--jobs",
        "--smoke",
        "--perf-baseline",
        "--service-baseline",
        "--explore-baseline",
        "--fuzz-dir",
    ];

    fn parse(args: &[String]) -> Self {
        let value_of = |flag: &str| {
            args.iter().position(|a| a == flag).map(|i| {
                args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2);
                })
            })
        };
        RunArgs {
            jobs: value_of("--jobs")
                .map(|n| n.parse::<usize>().expect("--jobs needs an integer"))
                .unwrap_or_else(default_jobs),
            smoke: args.iter().any(|a| a == "--smoke"),
            perf_baseline: value_of("--perf-baseline"),
            service_baseline: value_of("--service-baseline"),
            explore_baseline: value_of("--explore-baseline"),
            fuzz_dir: value_of("--fuzz-dir").unwrap_or_else(|| "tests/golden/fuzz".to_string()),
        }
    }

    /// The experiment-selector flags: `--`-prefixed arguments that are not
    /// run options.
    fn mode_flags(args: &[String]) -> Vec<&String> {
        args.iter()
            .filter(|a| a.starts_with("--") && !Self::OPTS.contains(&a.as_str()))
            .collect()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Standalone artifact validation: `--validate FILE`. The schema is
    // picked from the file's final path component only
    // (`report::schema_for_path`), so absolute paths and odd parent
    // directories cannot misroute the choice.
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let path = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("--validate needs a file path");
            std::process::exit(2);
        });
        let schema = schema_for_path(std::path::Path::new(path));
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| validate_cells(&text, schema))
        {
            Ok(cells) => {
                println!("{path}: OK ({cells} cells)");
                return;
            }
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                std::process::exit(1);
            }
        }
    }

    // Standalone offline profiling: `--profile-trace FILE` loads any
    // serialized trace (e.g. a committed fuzz counterexample), prints its
    // derived schedule metrics, and writes a Perfetto timeline next to the
    // current directory.
    if let Some(i) = args.iter().position(|a| a == "--profile-trace") {
        let path = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("--profile-trace needs a file path");
            std::process::exit(2);
        });
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        });
        match profile_trace_text(&text) {
            Ok((profile, perfetto)) => {
                let stem = std::path::Path::new(path)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("trace");
                let out = format!("{stem}.perfetto.json");
                std::fs::write(&out, perfetto).expect("write perfetto export");
                println!("{path}:");
                println!("{}", indent(&profile.to_string(), "  "));
                println!("  [timeline] wrote {out} (open in ui.perfetto.dev)");
                return;
            }
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                std::process::exit(1);
            }
        }
    }

    let run = RunArgs::parse(&args);
    let flags = RunArgs::mode_flags(&args);
    let all = flags.is_empty() || flags.iter().any(|a| *a == "--all");
    let want = |flag: &str| all || flags.iter().any(|a| *a == flag);

    println!("hybrid-wf experiment harness — Anderson & Moir, PODC 1999");
    println!("===========================================================\n");
    let mut sweeps: Vec<Json> = Vec::new();
    if want("--lemma1") {
        lemma1();
    }
    if want("--thm1") {
        sweeps.extend(thm1(run.jobs));
    }
    if want("--thm2") {
        thm2();
    }
    if want("--fig8") {
        fig8();
    }
    if want("--thm4") {
        sweeps.extend(thm4(run.jobs));
    }
    if want("--failures") {
        sweeps.extend(failures(run.jobs));
    }
    if want("--thm3") {
        thm3();
    }
    if want("--valency") {
        valency();
    }
    if want("--table1") {
        let cells = table1(run.jobs);
        write_artifact("BENCH_table1.json", &cells);
    }
    if want("--poly-vs-exp") {
        poly_vs_exp();
    }
    if want("--obs") {
        obs();
    }
    let want_fuzz = flags.iter().any(|a| *a == "--fuzz");
    let mut fuzz_ok = true;
    if want_fuzz {
        let (cells, ok) = fuzz(run.jobs, run.smoke, &run.fuzz_dir);
        write_artifact("BENCH_fuzz.json", &cells);
        fuzz_ok = ok;
    }
    // Like --fuzz, the profiler sweep is explicit-only: it re-runs four
    // full families and writes timeline artifacts, which the default
    // `--all` report does not need.
    if flags.iter().any(|a| *a == "--profile") {
        let lines = profile_sweep(run.jobs, run.smoke);
        write_artifact("BENCH_profile.json", &lines);
    }
    // The native grid spawns real OS threads per cell, so it is also
    // explicit-only (and ignores `--jobs`: nesting thread-per-process
    // cells under a worker pool would oversubscribe the machine).
    let mut native_ok = true;
    if flags.iter().any(|a| *a == "--native") {
        let (lines, ok) = native_grid(run.smoke);
        write_artifact("BENCH_native.json", &lines);
        native_ok = ok;
    }
    // The request-serving workload engine: long-lived universal-object
    // service runs. Explicit-only like --profile (it streams millions of
    // invocations at full scale).
    let mut service_ok = true;
    if flags.iter().any(|a| *a == "--service") {
        let (lines, ok) = service(run.jobs, run.smoke, run.service_baseline.as_deref());
        write_artifact("BENCH_service.json", &lines);
        service_ok = ok;
    }
    // The crash-and-restart grid: explicit-only like --fuzz (it exists for
    // its artifact and its gate, not for the default report).
    let mut crash_ok = true;
    if flags.iter().any(|a| *a == "--crash") {
        let (lines, ok) = crash_grid(run.jobs, run.smoke);
        write_artifact("BENCH_crash.json", &lines);
        crash_ok = ok;
    }
    // Exhaustive exploration at scale: the parallel/reduced explorer grid.
    // Explicit-only (the full grid model-checks multi-million-state trees);
    // gated against the committed baseline like --perf.
    if flags.iter().any(|a| *a == "--explore") {
        let (cells, ok) = explore_grid_report(run.jobs, run.smoke);
        write_artifact("BENCH_explore.json", &cells);
        if !ok {
            std::process::exit(1);
        }
        if let Some(base) = &run.explore_baseline {
            if !perf_gate(&cells, base) {
                std::process::exit(1);
            }
        }
    }
    if want("--perf") {
        let cells = perf(run.smoke, run.jobs);
        write_artifact("BENCH_perf.json", &cells);
        if let Some(base) = &run.perf_baseline {
            if !perf_gate(&cells, base) {
                std::process::exit(1);
            }
        }
    }
    if !sweeps.is_empty() {
        write_artifact("BENCH_sweeps.json", &sweeps);
    }
    if !fuzz_ok || !native_ok || !service_ok || !crash_ok {
        std::process::exit(1);
    }
}

/// Writes a line-oriented JSON artifact (one cell per line), self-checking
/// it against the standard cell schema first.
///
/// Wall times are split out of every cell (`report::split_timing`) into a
/// `<stem>.timing.json` sidecar, so the canonical artifact is bit-identical
/// across regenerations and machines; the sidecar is gitignored.
fn write_artifact(path: &str, lines: &[Json]) {
    let mut out =
        String::from("# hybrid-wf sweep artifact: one JSON cell per line (see sched_sim::report)\n");
    let mut timing = String::from(
        "# hybrid-wf timing sidecar: nondeterministic wall times (gitignored; see sched_sim::report)\n",
    );
    let mut timed = 0usize;
    for line in lines {
        let (canonical, t) = split_timing(line);
        out.push_str(&canonical.to_string());
        out.push('\n');
        if let Some(t) = t {
            timing.push_str(&t.to_string());
            timing.push('\n');
            timed += 1;
        }
    }
    let schema = schema_for_path(std::path::Path::new(path));
    let cells = validate_cells(&out, schema).expect("artifact failed self-validation");
    std::fs::write(path, out).expect("write artifact");
    let sidecar = match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.timing.json"),
        None => format!("{path}.timing.json"),
    };
    validate_cells(&timing, TIMING_SCHEMA).expect("timing sidecar failed self-validation");
    std::fs::write(&sidecar, timing).expect("write timing sidecar");
    println!("  [artifact] wrote {path} ({cells} cells; {timed} wall times → {sidecar})\n");
}

fn wall_ms(d: Duration) -> f64 {
    // Round to 1 µs so artifacts stay compact; wall time is metadata and
    // never part of a determinism comparison.
    (d.as_secs_f64() * 1e3 * 1e3).round() / 1e3
}

/// `--fuzz`: adversarial schedule fuzz with shrinking counterexamples.
///
/// Runs every `(family, Q)` spec from [`lowerbound::fuzz::case_specs`]
/// under every hostile decider, checking the family's safety oracle on
/// each seeded run, and compares the per-spec outcome against the paper's
/// prediction: a violation at legal `Q` is a bug, and a quiet run where
/// Theorem 3 predicts impossibility means the adversaries lost their
/// teeth — both flip the returned flag to `false` (→ nonzero exit). The
/// first violation of each violating spec is delta-debugged to a minimal
/// script and written as a replayable artifact under `fuzz_dir`.
fn fuzz(jobs: usize, smoke: bool, fuzz_dir: &str) -> (Vec<Json>, bool) {
    // 8 seeds are enough for every Expect::Violation spec to fire (the
    // deepest known witness sits at seed 5); the full run triples that.
    let seeds: u64 = if smoke { 8 } else { 24 };
    let specs = case_specs();
    println!(
        "── Adversarial schedule fuzz: {} specs × {} deciders × {seeds} seeds ({jobs} jobs) ──",
        specs.len(),
        DECIDERS.len()
    );
    let cells: Vec<(CaseSpec, &'static str)> =
        specs.iter().flat_map(|s| DECIDERS.iter().map(|d| (*s, *d))).collect();
    let reports = run_cells(&cells, jobs, |_, (spec, d)| fuzz_cell(spec, d, seeds));
    let mut lines = Vec::new();
    let mut ok = true;
    println!("    family        Q  regime  expect      runs  violations  verdict");
    for (si, spec) in specs.iter().enumerate() {
        let group = &reports[si * DECIDERS.len()..(si + 1) * DECIDERS.len()];
        let viol: u64 = group.iter().map(|r| r.violations).sum();
        let runs: u64 = group.iter().map(|r| r.runs).sum();
        let verdict = match (spec.expect, viol > 0) {
            (Expect::Clean, true) => {
                ok = false;
                "BUG"
            }
            (Expect::Clean, false) => "clean",
            (Expect::Violation, true) => "predicted",
            (Expect::Violation, false) => {
                ok = false;
                "MISSING"
            }
            (Expect::Any, true) => "observed",
            (Expect::Any, false) => "quiet",
        };
        println!(
            "    {:<12} {:>4}  {:<6}  {:<9} {:>5} {:>11}  {verdict}",
            spec.family.name(),
            spec.q,
            spec.regime,
            spec.expect.name(),
            runs,
            viol,
        );
        for (di, rep) in group.iter().enumerate() {
            lines.push(Json::obj([
                ("kind", Json::from("fuzz")),
                (
                    "cell",
                    Json::obj([
                        ("family", Json::from(spec.family.name())),
                        ("q", Json::from(spec.q)),
                        ("regime", Json::from(spec.regime)),
                        ("decider", Json::from(DECIDERS[di])),
                        ("seeds", Json::from(seeds)),
                    ]),
                ),
                ("steps", Json::from(rep.steps)),
                ("wall_ms", Json::from(wall_ms(rep.wall))),
                ("violations", Json::from(rep.violations)),
                ("expect", Json::from(spec.expect.name())),
                ("verdict", Json::from(verdict)),
            ]));
        }
        if viol > 0 {
            let (di, rep) = group
                .iter()
                .enumerate()
                .find(|(_, r)| r.first.is_some())
                .expect("violations imply a first violating run");
            let first = rep.first.as_ref().expect("checked above");
            let ce = shrink_and_capture(spec, DECIDERS[di], first.seed, &first.script);
            std::fs::create_dir_all(fuzz_dir).expect("create fuzz artifact dir");
            let path = format!("{}/{}", fuzz_dir.trim_end_matches('/'), ce.file_name());
            std::fs::write(&path, ce.to_text()).expect("write fuzz artifact");
            println!(
                "      ↳ shrunk script {} → {} forced decisions ({}), artifact {path}",
                first.script.len(),
                ce.forced,
                ce.verdict
            );
        }
    }
    println!();
    (lines, ok)
}

/// `--profile`: the schedule profiler sweep (see `lowerbound::profile`).
///
/// Profiles the central algorithm families at legal quantum under storm
/// and random deciders, prints the per-cell and per-family derived
/// metrics, writes one Perfetto timeline artifact per family, and returns
/// the JSONL lines for `BENCH_profile.json`.
fn profile_sweep(jobs: usize, smoke: bool) -> Vec<Json> {
    let seeds = n_seeds(smoke);
    println!(
        "── Schedule profiler: {} families × {} deciders × {seeds} seeds at legal Q ({jobs} jobs) ──",
        FAMILIES.len(),
        PROFILE_DECIDERS.len(),
    );
    let cells = run_grid(jobs, smoke);
    let util = |u: Option<f64>| u.map_or("-".to_string(), |u| format!("{u:.3}"));
    println!(
        "    family       Q decider  seed     steps  windows   util  same  higher  retries"
    );
    for c in &cells {
        println!(
            "    {:<10} {:>3} {:<7} {:>5} {:>9} {:>8}  {:>5} {:>5} {:>7} {:>8}",
            c.family.name(),
            c.q,
            c.decider,
            c.seed,
            c.steps,
            c.profile.total_windows(),
            util(c.profile.utilization()),
            c.profile.total_preempt_same(),
            c.profile.total_preempt_higher(),
            c.profile.total_retries(),
        );
    }
    for family in FAMILIES {
        let fam: Vec<_> = cells.iter().filter(|c| c.family == family).collect();
        let mut merged = sched_sim::prof::Profile::new();
        for c in &fam {
            merged.merge(&c.profile);
        }
        println!(
            "  {} merged over {} runs: util {}, {} same / {} higher preemptions, \
             {} retries over {} invocations",
            family.name(),
            fam.len(),
            util(merged.utilization()),
            merged.total_preempt_same(),
            merged.total_preempt_higher(),
            merged.total_retries(),
            merged.total_invocations(),
        );
    }
    for family in FAMILIES {
        let path = format!("profile_{}.perfetto.json", family.name());
        std::fs::write(&path, family_timeline(family)).expect("write perfetto timeline");
        println!("  [timeline] wrote {path} (open in ui.perfetto.dev)");
    }
    println!();
    report_lines(&cells)
}

/// `--native`: the native-backend grid (see `lowerbound::native`).
///
/// Runs the backend-generic algorithms on real OS threads (free and
/// lockstep pacing), scores every cell against the simulator's
/// agreement/linearizability oracles, prints the grid, and returns the
/// JSONL lines for `BENCH_native.json` plus the gate flag: `false` — and
/// so a nonzero exit — on a `BUG` (violation on a backend that must be
/// clean) or a `MISSING` (a pinned sub-threshold seed that no longer
/// splits the Fig. 3 decision). Free-mode Fig. 3 disagreement is
/// *reported*, never gated: no commodity scheduler promises Axiom 2.
fn native_grid(smoke: bool) -> (Vec<Json>, bool) {
    use lowerbound::native as ng;
    let cells = ng::run_grid(smoke);
    println!(
        "── Native backend: {} OS-thread cells, oracle-checked ({}) ──",
        cells.len(),
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "    family             pacing     n   q  seed    ops    steps  retries  checked       viol  verdict"
    );
    for c in &cells {
        println!(
            "    {:<17} {:<8} {:>4} {:>3} {:>5} {:>6} {:>8} {:>8}  {:<12} {:>4}  {}",
            c.family.name(),
            c.pacing,
            c.threads,
            c.q,
            c.seed,
            c.ops,
            c.steps,
            c.retries,
            c.checked,
            c.violations,
            c.verdict(),
        );
    }
    let ok = ng::grid_ok(&cells);
    if !ok {
        println!("  NATIVE GATE FAILED: a gated cell diverged from the paper's prediction");
    }
    println!();
    (ng::report_lines(&cells), ok)
}

/// `--crash`: the crash-and-restart grid (see `lowerbound::crash`).
///
/// Runs every (family, noise, seed) crash cell — a deterministic
/// crash/recover lifecycle plan under a noisy schedule, scored by the
/// recovery-safe oracles — plus the churn service cell, prints the grid,
/// and returns the JSONL lines for `BENCH_crash.json` with the gate flag:
/// `false` (→ nonzero exit) if any cell's oracle reported a violation or a
/// planned crash failed to fire.
fn crash_grid(jobs: usize, smoke: bool) -> (Vec<Json>, bool) {
    let n_cells = lowerbound::crash::grid(smoke).len();
    println!(
        "── Crash-and-restart grid: {n_cells} crash cells + 1 churn cell ({}, {jobs} jobs) ──",
        if smoke { "smoke" } else { "full" }
    );
    let lines = lowerbound::crash::run_grid(jobs, smoke);
    let cell_val = |l: &Json, key: &str| {
        l.get("cell")
            .and_then(|c| c.get(key))
            .map_or("?".to_string(), |v| match v {
                Json::Str(s) => s.clone(),
                other => other.to_string(),
            })
    };
    println!("    family      q  noise  seed  victim  crash@  recover@     steps  crashes  recoveries  verdict");
    for l in &lines {
        let num = |key: &str| l.get(key).and_then(Json::as_u64).unwrap_or(0);
        let ok = l.get("ok") == Some(&Json::Bool(true));
        match l.get("kind").and_then(Json::as_str) {
            Some("crash") => println!(
                "    {:<9} {:>4}  {:>5} {:>5} {:>7} {:>7} {:>9} {:>9} {:>8} {:>11}  {}",
                cell_val(l, "family"),
                cell_val(l, "q"),
                cell_val(l, "noise"),
                cell_val(l, "seed"),
                cell_val(l, "victim"),
                cell_val(l, "crash_t"),
                cell_val(l, "recover_t"),
                num("steps"),
                num("crashes"),
                num("recoveries"),
                if ok { "ok" } else { "VIOLATION" },
            ),
            Some("crash_churn") => println!(
                "    churn: counter service, {} shards × {} workers, {} requests, {} crashes / {} recoveries — {}",
                cell_val(l, "shards"),
                cell_val(l, "workers"),
                num("requests_served"),
                num("crashes"),
                num("recoveries"),
                if ok { "ok" } else { "VIOLATION" },
            ),
            _ => {}
        }
        if !ok {
            eprintln!("    ^^ FAILED: {l}");
        }
    }
    let ok = lowerbound::crash::grid_ok(&lines);
    if !ok {
        println!("  CRASH GATE FAILED: a recovery-safe oracle reported a violation");
    }
    println!();
    (lines, ok)
}

/// `--service`: the request-serving workload engine (see
/// `lowerbound::service`).
///
/// Runs the (object, arrival) service grid — sharded universal objects
/// serving a multiplexed client population over the sweep worker pool —
/// prints the per-configuration summary, and returns the JSONL lines for
/// `BENCH_service.json` plus the gate flag: `false` if any configuration
/// failed to finish inside its step budget, or (with a baseline) if
/// per-request cost regressed past the threshold.
fn service(jobs: usize, smoke: bool, baseline: Option<&str>) -> (Vec<Json>, bool) {
    let cfgs = lowerbound::service::grid(smoke);
    println!(
        "── Service engine: {} (object, arrival) configurations ({}, {jobs} jobs) ──",
        cfgs.len(),
        if smoke { "smoke" } else { "full" }
    );
    let lines = lowerbound::service::run_grid(jobs, smoke);
    println!(
        "    object   arrival  shards  clients  workers   requests  steps/req     p50     p90     p99  finished"
    );
    let mut ok = true;
    let cell_str = |l: &Json, key: &str| {
        l.get("cell")
            .and_then(|c| c.get(key))
            .map_or("?".to_string(), |v| match v {
                Json::Str(s) => s.clone(),
                other => other.to_string(),
            })
    };
    for (cfg, l) in cfgs.iter().zip(
        lines.iter().filter(|l| l.get("kind").and_then(Json::as_str) == Some("service_total")),
    ) {
        let finished = l.get("all_finished") == Some(&Json::Bool(true));
        if !finished {
            ok = false;
        }
        let num = |key: &str| l.get(key).and_then(Json::as_u64).unwrap_or(0);
        println!(
            "    {:<8} {:<8} {:>6} {:>8} {:>8} {:>10}  {:>9} {:>7} {:>7} {:>7}  {}",
            cell_str(l, "object"),
            cell_str(l, "arrival"),
            cfg.shards,
            cell_str(l, "clients"),
            cell_str(l, "workers"),
            num("requests"),
            l.get("steps_per_request").and_then(Json::as_f64).unwrap_or(f64::NAN),
            num("p50"),
            num("p90"),
            num("p99"),
            if finished { "yes" } else { "NO (budget)" },
        );
    }
    if !ok {
        println!("  SERVICE GATE FAILED: a configuration exhausted its step budget");
    }
    if let Some(base) = baseline {
        if !service_gate(&lines, base) {
            ok = false;
        }
    }
    println!();
    (lines, ok)
}

/// Compares fresh service totals against a committed `BENCH_service.json`
/// by (object, arrival); returns `false` (→ nonzero exit) if any
/// configuration's per-request statement cost grew past 1/0.70× the
/// baseline. `steps_per_request` is fully deterministic (wall time never
/// enters it), so the gate is immune to machine speed — only an algorithmic
/// or scheduling change can trip it.
fn service_gate(fresh: &[Json], base_path: &str) -> bool {
    let text = match std::fs::read_to_string(base_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("  service baseline {base_path}: {e}");
            return false;
        }
    };
    let totals = |cells: &[Json]| -> Vec<(String, String, f64)> {
        cells
            .iter()
            .filter(|l| l.get("kind").and_then(Json::as_str) == Some("service_total"))
            .filter_map(|l| {
                let cell = l.get("cell")?;
                Some((
                    cell.get("object")?.as_str()?.to_string(),
                    cell.get("arrival")?.as_str()?.to_string(),
                    l.get("steps_per_request")?.as_f64()?,
                ))
            })
            .collect()
    };
    let base_cells: Vec<Json> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| Json::parse(l).ok())
        .collect();
    let base = totals(&base_cells);
    let now = totals(fresh);
    let mut ok = true;
    println!("  service gate vs {base_path} (fail above 1/0.70× baseline steps/request):");
    for (object, arrival, b) in &base {
        let Some((_, _, n)) =
            now.iter().find(|(o, a, _)| o == object && a == arrival)
        else {
            eprintln!("    {object}/{arrival}: missing from fresh run");
            ok = false;
            continue;
        };
        if *b <= 0.0 {
            println!("    {object}/{arrival}: baseline cost is zero — skipped");
            continue;
        }
        let ratio = n / b;
        let verdict = if ratio <= 1.0 / 0.70 { "ok" } else { "REGRESSED" };
        println!(
            "    {object}/{arrival}: {n:.3} vs baseline {b:.3} steps/request ({ratio:.2}×) {verdict}"
        );
        if ratio > 1.0 / 0.70 {
            ok = false;
        }
    }
    ok
}

fn lemma1() {
    println!("── Lemma 1 (Fig. 4): exhaustive schedule enumeration, Fig. 3 consensus ──");
    let mk = |q: u32, inputs: &[(u64, u32)]| {
        let mut s = Scenario::new(
            UniConsensusMem::default(),
            SystemSpec::hybrid(q).with_adversarial_alignment(),
        );
        for &(v, pr) in inputs {
            s.add_process(ProcessorId(0), Priority(pr), Box::new(decide_machine(v)));
        }
        s.into_kernel()
    };
    for (label, inputs) in [
        ("2 procs, same priority", vec![(1u64, 1u32), (2, 1)]),
        ("3 procs, two levels", vec![(1, 1), (2, 1), (3, 2)]),
    ] {
        let k = mk(MIN_QUANTUM, &inputs);
        let vals: Vec<u64> = inputs.iter().map(|&(v, _)| v).collect();
        let stats = check_all_schedules(&k, ExploreBounds::default(), |k| {
            let outs: Vec<u64> =
                (0..k.n_processes() as u32).filter_map(|p| k.output(ProcessId(p))).collect();
            if outs.windows(2).any(|w| w[0] != w[1]) {
                Some(format!("disagreement {outs:?}"))
            } else if !vals.contains(&outs[0]) {
                Some(format!("invalid {}", outs[0]))
            } else {
                None
            }
        });
        match stats {
            Ok(s) => println!(
                "  Q = 8, {label}: agreement in ALL {} terminal schedules ({} statements explored)",
                s.terminals, s.steps
            ),
            Err(e) => println!("  Q = 8, {label}: VIOLATION {e}"),
        }
    }
    // Tightness at Q = 1.
    let k = mk(1, &[(1, 1), (2, 1)]);
    let mut bad = 0u32;
    let mut total = 0u32;
    explore(&k, ExploreBounds::default(), |k| {
        total += 1;
        let a = k.output(ProcessId(0)).unwrap();
        let b = k.output(ProcessId(1)).unwrap();
        if a != b {
            bad += 1;
        }
        Verdict::KeepGoing
    });
    println!("  Q = 1, 2 procs: {bad} of {total} schedules DISAGREE — the Q ≥ 8 hypothesis is tight\n");
}

fn thm1(jobs: usize) -> Vec<Json> {
    println!("── Theorem 1: Fig. 3 consensus is constant-time (reads/writes only) ──");
    println!("  N processes on one processor, Q = 8, fair round-robin ({jobs} jobs):");
    let cells = [1u32, 2, 4, 8, 16, 32];
    let results = run_cells(&cells, jobs, |_, &n| {
        let mut s = Scenario::new(UniConsensusMem::default(), SystemSpec::hybrid(MIN_QUANTUM))
            .step_budget(10_000_000);
        for i in 0..n {
            s.add_process(
                ProcessorId(0),
                Priority(1 + i % 3),
                Box::new(decide_machine(u64::from(i))),
            );
        }
        s.run_fair()
    });
    let mut lines = Vec::new();
    for (&n, r) in cells.iter().zip(&results) {
        let max_steps = r.max_own_steps();
        println!("    N = {n:>2}: max own-statements per decide = {max_steps} (constant = 8)");
        lines.push(Json::obj([
            ("kind", Json::from("thm1")),
            ("cell", Json::obj([("n", Json::from(n))])),
            ("steps", Json::from(r.steps)),
            ("wall_ms", Json::from(wall_ms(r.wall))),
            ("max_own_steps", Json::from(max_steps)),
            ("agreed", Json::from(r.agreed_output().is_some())),
        ]));
    }
    println!();
    lines
}

fn thm2() {
    println!("── Theorem 2: Fig. 5 C&S is O(V) time ──");
    println!("  stale heads at V levels; measured: statements for one C&S:");
    for v in 1..=8u32 {
        let n = 2;
        let mut s = Scenario::new(CasMem::new(v, &[v, v], 100), SystemSpec::hybrid(4096));
        s.add_process(
            ProcessorId(0),
            Priority(v),
            Box::new(cas_machine(
                0,
                v,
                n,
                v,
                vec![
                    CasOp::Cas { old: 100, new: 1 },
                    CasOp::Cas { old: 1, new: 2 },
                    CasOp::Cas { old: 2, new: 3 },
                ],
            )),
        );
        let p1 = s.add_held_process(
            ProcessorId(0),
            Priority(v),
            Box::new(cas_machine(1, v, n, v, vec![CasOp::Cas { old: 3, new: 4 }])),
        );
        // Mid-run choreography (release after the stale heads pile up), so
        // drive the kernel directly.
        let mut k = s.into_kernel();
        let mut d = RoundRobin::new();
        k.run(&mut d, 1_000_000);
        k.release(p1);
        k.run(&mut d, 1_000_000);
        println!("    V = {v}: {} statements", k.stats(p1).own_steps);
    }
    println!();
}

fn fig8() {
    println!("── Fig. 8: consensus-level / port layout ──");
    print!("{}", PortLayout::new(3, 4, 2));
    println!();
}

fn thm4(jobs: usize) -> Vec<Json> {
    println!("── Theorem 4: Fig. 7 is polynomial — worst own-steps & space vs M, P ({jobs} jobs) ──");
    let cells = cross(&[1u32, 2, 3], &[1u32, 2, 3]); // (P, M); C = P (weakest objects)
    let results = run_cells(&cells, jobs, |_, &(p, m)| {
        let s = fig7_scenario(p, p, m, 1, 64, LocalMode::Modeled).step_budget(100_000_000);
        s.run_fair()
    });
    let mut lines = Vec::new();
    for (&(p, m), r) in cells.iter().zip(&results) {
        let c = p;
        let l = r.mem().layout.l;
        let n = r.outputs.len() as u32;
        let max_steps = r.max_own_steps();
        println!(
            "    P = {p}, C = {c}, M = {m}: L = {l:>3} levels, N = {n}, max own-steps = {max_steps}"
        );
        lines.push(Json::obj([
            ("kind", Json::from("thm4")),
            ("cell", Json::obj([
                ("p", Json::from(p)),
                ("c", Json::from(c)),
                ("m", Json::from(m)),
            ])),
            ("steps", Json::from(r.steps)),
            ("wall_ms", Json::from(wall_ms(r.wall))),
            ("levels", Json::from(l)),
            ("n", Json::from(n)),
            ("max_own_steps", Json::from(max_steps)),
        ]));
    }
    println!();
    lines
}

fn failures(jobs: usize) -> Vec<Json> {
    const QS: [u32; 8] = [1, 2, 4, 8, 16, 32, 64, 128];
    const SEEDS: u64 = 100;
    println!("── Lemmas 2/3: access failures vs quantum (P=2, C=2, M=3, V=1) ──");
    println!("  adversary: holder-rotating + random, {SEEDS} seeds per Q ({jobs} jobs)");
    println!("    Q    total-AF  worst-run  lemma2  lemma3-bound  deciding-level");
    let seeds: Vec<u64> = (0..SEEDS).collect();
    let cells = cross(&QS, &seeds);
    let per = run_cells(&cells, jobs, |_, &(q, seed)| {
        let s = fig7_scenario(2, 2, 3, 1, q, LocalMode::Modeled);
        let r = s.run(&mut *adversary_for_seed(seed));
        let sm = summarize(r.mem());
        (
            sm.same + sm.diff,
            lemma2_holds(r.mem()),
            lemma3_bound_holds(r.mem()),
            !sm.clean_levels.is_empty(),
            r.steps,
            r.wall,
        )
    });
    let mut lines = Vec::new();
    for (qi, &q) in QS.iter().enumerate() {
        let runs = &per[qi * SEEDS as usize..(qi + 1) * SEEDS as usize];
        let total: u32 = runs.iter().map(|r| r.0).sum();
        let worst: u32 = runs.iter().map(|r| r.0).max().unwrap_or(0);
        let l2 = runs.iter().all(|r| r.1);
        let l3 = runs.iter().all(|r| r.2);
        let dec = runs.iter().all(|r| r.3);
        let steps: u64 = runs.iter().map(|r| r.4).sum();
        let wall: Duration = runs.iter().map(|r| r.5).sum();
        println!("    {q:>3}  {total:>8}  {worst:>9}  {l2:>6}  {l3:>12}  {dec:>14}");
        lines.push(Json::obj([
            ("kind", Json::from("failures")),
            ("cell", Json::obj([("q", Json::from(q)), ("seeds", Json::from(SEEDS))])),
            ("steps", Json::from(steps)),
            ("wall_ms", Json::from(wall_ms(wall))),
            ("total_af", Json::from(total)),
            ("worst_af", Json::from(worst)),
            ("lemma2", Json::from(l2)),
            ("lemma3_bound", Json::from(l3)),
            ("deciding_level", Json::from(dec)),
        ]));
    }
    println!();
    lines
}

fn thm3() {
    println!("── Theorem 3 (Figs. 6/10): impossibility witnesses at Q = 2P − C ──");
    for p in 2..=4u32 {
        for c in p..2 * p {
            let f = fig6::construct(p, c);
            println!(
                "    P = {p}, C = {c}, Q = {}: decided x = {}, y = {}; p_x returned {} in BOTH → contradiction = {}",
                f.q,
                f.x_branch.decided,
                f.y_branch.decided,
                f.x_branch.px_returned,
                f.contradiction()
            );
        }
    }
    println!();
    println!("{}", fig6::construct(2, 2).narrative());
}

fn valency() {
    println!("── Fig. 10: bivalent chain depth (Fig. 3 consensus, 2 procs) ──");
    for q in [1u32, 2, 4, 8] {
        let k = Scenario::new(
            UniConsensusMem::default(),
            SystemSpec::hybrid(q).with_adversarial_alignment(),
        )
        .process(ProcessorId(0), Priority(1), Box::new(decide_machine(1)))
        .process(ProcessorId(0), Priority(1), Box::new(decide_machine(2)))
        .into_kernel();
        let d = bivalent_chain_depth(&k, 16, ExploreBounds::default());
        println!("    Q = {q}: adversary sustains bivalence for {d} statements (of 16 total)");
    }
    println!();
}

/// The Q axis of the Table 1 grid: every quantum probed at every (P, C).
/// The measured thresholds all sit well inside `1..=8`; 12 and 16 confirm
/// stability above the knee.
const TABLE1_QS: [u32; 10] = [1, 2, 3, 4, 5, 6, 7, 8, 12, 16];
const TABLE1_SEEDS: u64 = 60;

/// One probe of the Table 1 grid: does Fig. 7 at (p, c, q) survive all
/// adversary seeds? Early-exits on the first failing seed.
struct Probe {
    q: u32,
    ok: bool,
    seeds_run: u64,
    fail_seed: Option<u64>,
    steps: u64,
    wall: Duration,
}

fn probe_cell(p: u32, c: u32, q: u32) -> Probe {
    let m = 3;
    let scenario = fig7_scenario(p, c, m, 1, q, LocalMode::Modeled);
    let mut steps = 0u64;
    let mut wall = Duration::ZERO;
    for seed in 0..TABLE1_SEEDS {
        let r = scenario.run(&mut *adversary_for_seed(seed));
        steps += r.steps;
        wall += r.wall;
        let ok = r.agreed_output().is_some()
            && lemma3_bound_holds(r.mem())
            && !summarize(r.mem()).clean_levels.is_empty();
        if !ok {
            return Probe { q, ok: false, seeds_run: seed + 1, fail_seed: Some(seed), steps, wall };
        }
    }
    Probe { q, ok: true, seeds_run: TABLE1_SEEDS, fail_seed: None, steps, wall }
}

/// The headline: Table 1, swept in parallel over the (P, C) cells; each
/// cell probes the full Q axis.
fn table1(jobs: usize) -> Vec<Json> {
    println!("── Table 1: conditions for universality of a C-consensus object on P processors ──");
    println!("  paper upper bound: Q ≥ c(2P+1−C)·Tmax for P ≤ C ≤ 2P; Q ≥ c·Tmax for C ≥ 2P");
    println!("  paper lower bound: consensus impossible if Q ≤ max(1, 2P−C)");
    println!("  grid: Q ∈ {TABLE1_QS:?}, {TABLE1_SEEDS} adversary seeds per probe ({jobs} jobs)");
    println!();
    println!("   P  C | paper-upper-shape  measured-min-Q | paper-lower  Fig6-witness");
    println!("  ------+-----------------------------------+---------------------------");
    let mut pcs = Vec::new();
    for p in 1..=3u32 {
        for c in p..=2 * p {
            pcs.push((p, c));
        }
    }
    let probed: Vec<Vec<Probe>> = run_cells(&pcs, jobs, |_, &(p, c)| {
        TABLE1_QS.iter().map(|&q| probe_cell(p, c, q)).collect()
    });
    let mut lines = Vec::new();
    for (&(p, c), probes) in pcs.iter().zip(&probed) {
        let min_q = probes.iter().find(|pr| pr.ok).map(|pr| pr.q);
        let measured = min_q.map_or_else(|| format!(">{}", TABLE1_QS[9]), |q| q.to_string());
        let shape = if c >= 2 * p { "c".to_string() } else { format!("c·{}", 2 * p + 1 - c) };
        let lower = 1u32.max(2u32.saturating_mul(p).saturating_sub(c));
        let witness = if p >= 2 && c < 2 * p {
            if fig6::construct(p, c).contradiction() {
                "contradiction ✓"
            } else {
                "—"
            }
        } else if p == 1 {
            "n/a (P = 1)"
        } else {
            "n/a (C = 2P)"
        };
        println!("   {p}  {c} | {shape:>17}  {measured:>14} | {lower:>11}  {witness}");
        let mut cell_steps = 0u64;
        let mut cell_wall = Duration::ZERO;
        for pr in probes {
            cell_steps += pr.steps;
            cell_wall += pr.wall;
            let mut obj = vec![
                ("kind", Json::from("table1")),
                ("cell", Json::obj([
                    ("p", Json::from(p)),
                    ("c", Json::from(c)),
                    ("q", Json::from(pr.q)),
                ])),
                ("steps", Json::from(pr.steps)),
                ("wall_ms", Json::from(wall_ms(pr.wall))),
                ("verdict", Json::from(if pr.ok { "ok" } else { "violation" })),
                ("seeds_run", Json::from(pr.seeds_run)),
            ];
            if let Some(seed) = pr.fail_seed {
                obj.push(("fail_seed", Json::from(seed)));
            }
            lines.push(Json::obj(obj));
        }
        lines.push(Json::obj([
            ("kind", Json::from("table1_summary")),
            ("cell", Json::obj([("p", Json::from(p)), ("c", Json::from(c))])),
            ("steps", Json::from(cell_steps)),
            ("wall_ms", Json::from(wall_ms(cell_wall))),
            ("measured_min_q", min_q.map_or(Json::Null, Json::from)),
            ("paper_lower", Json::from(lower)),
            ("paper_upper_shape", Json::from(shape.as_str())),
        ]));
    }
    println!();
    println!("  measured-min-Q: smallest probed Q at which {TABLE1_SEEDS} adversary runs (M = 3, V = 1)");
    println!("  all (a) agree, (b) satisfy the Lemma 3 access-failure bound, and");
    println!("  (c) retain a deciding level. The series tracks the paper's");
    println!("  c(2P+1−C) shape: it shrinks as C grows toward 2P.");
    println!();
    lines
}

fn obs() {
    println!("── Observability: per-run counters and deterministic replay ──");

    // 1. Scheduler counters on Fig. 3 consensus: with aligned windows and
    //    Q ≥ 8 every decide fits inside one quantum window, so
    //    same-priority preemption vanishes (the Theorem 1 hypothesis).
    println!("  Fig. 3 consensus, 4 same-priority processes, seeded-random schedule:");
    for q in [4u32, MIN_QUANTUM] {
        let mut s = Scenario::new(UniConsensusMem::default(), SystemSpec::hybrid(q))
            .step_budget(1_000_000);
        for v in 1..=4u64 {
            s.add_process(ProcessorId(0), Priority(1), Box::new(decide_machine(v)));
        }
        let r = s.run_seeded(7);
        let c = &r.counters;
        println!(
            "    Q = {q}: same-prio preemptions = {}, mid-invocation expiries = {}, statements/op = {:.1}",
            c.same_prio_preemptions,
            c.quantum_expiries_mid_invocation,
            c.statements_per_op().unwrap_or(f64::NAN),
        );
    }

    // 2. Full counter report plus the algorithm-level helping counters on a
    //    universal-construction counter under an adversarial schedule.
    let n = 4u32;
    let per = 4u32;
    let mut scen = Scenario::new(
        UniversalMem::<CounterSpec>::new(n, 4 * (n * per) as usize + 4),
        SystemSpec::hybrid(8).with_adversarial_alignment().with_history(),
    )
    .with_obs()
    .step_budget(1_000_000);
    for pid in 0..n {
        scen.add_process(
            ProcessorId(0),
            Priority(1 + pid % 2),
            Box::new(universal_machine(CounterSpec, pid, n, vec![1; per as usize])),
        );
    }
    let mut r = scen.run_seeded(42);
    println!("\n  universal counter, N = {n}, {per} increments each, Q = 8, seed 42:");
    println!("{}", indent(&r.counters.to_string(), "    "));
    println!("  algorithm counters (universal construction, Fig. 7 helping):");
    println!("{}", indent(&r.mem().counters.to_string(), "    "));

    // 3. The same run captured and replayed from its decision script — a
    //    fresh kernel from the same scenario is the replay precondition.
    let trace = r.take_trace().expect("obs attached");
    let mut k = scen.kernel();
    let steps = k.run(&mut trace.scripted(), scen.budget());
    let replay = RunResult::from_kernel(k, steps, Duration::ZERO);
    println!(
        "  capture → replay: {} recorded events; history identical = {}, memory identical = {}",
        trace.events.len(),
        replay.history() == r.history(),
        replay.mem() == r.mem(),
    );
    println!();
}

/// Indents every line of a multi-line `Display` block for report nesting.
fn indent(s: &str, pad: &str) -> String {
    s.lines().map(|l| format!("{pad}{l}")).collect::<Vec<_>>().join("\n")
}

/// Throughput sweep: simulated statements per second on the three hot
/// workloads — the Fig. 3 exhaustive exploration (Lemma 1), the Fig. 10
/// valency probe, and the Table 1 (P, C) × Q grid. `smoke` shrinks every
/// workload for CI; rates stay comparable because the per-statement work is
/// identical.
/// Runs the exhaustive-exploration grid (`lowerbound::explore_grid`) and
/// prints the scaling summary: per-mode throughput plus each workload's
/// visited-state reduction factor (unreduced ÷ reduced). Returns the
/// artifact rows and whether verification held — every *reduced* row must
/// be verified (their budgets are sized to complete), and no row may
/// report a property violation (unverified without truncation). Unreduced
/// rows truncated at their step budget are expected on the largest
/// workload: that is the cell exhaustive verification newly reaches
/// through reduction.
fn explore_grid_report(jobs: usize, smoke: bool) -> (Vec<Json>, bool) {
    println!(
        "── Exhaustive exploration at scale ({} grid, {jobs} jobs) ──",
        if smoke { "smoke" } else { "full" }
    );
    let rows = lowerbound::explore_grid::run_grid(jobs, smoke);
    let mut ok = true;
    for row in &rows {
        let s = |k: &str| row.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
        let n = |k: &str| row.get(k).and_then(Json::as_u64).unwrap_or(0);
        let kind = s("kind");
        let workload = row
            .get("cell")
            .and_then(|c| c.get("workload"))
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let verified = row.get("verified") == Some(&Json::Bool(true));
        let truncation = s("truncation");
        let rate = row.get("steps_per_sec").and_then(Json::as_f64).unwrap_or(0.0);
        println!(
            "    {workload:>14} {kind:<19} {:>12} steps {:>10} visited  {:>11.0} steps/s  [{}]",
            n("steps"),
            n("visited"),
            rate,
            if verified { "verified" } else { &truncation }
        );
        let reduced_row = kind.starts_with("explore_reduced");
        let violation = truncation == "none" && !verified;
        if (reduced_row && !verified) || violation {
            eprintln!("    ^^ FAILED: {row}");
            ok = false;
        }
    }
    // Per-workload state-space reduction factor.
    for cfg in lowerbound::explore_grid::grid(smoke) {
        let visited = |kind: &str| {
            rows.iter()
                .find(|r| {
                    r.get("kind").and_then(Json::as_str) == Some(kind)
                        && r.get("cell").and_then(|c| c.get("workload")).and_then(Json::as_str)
                            == Some(cfg.name)
                })
                .and_then(|r| r.get("visited"))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        };
        let (u, r) = (visited("explore_serial"), visited("explore_reduced"));
        if r > 0 {
            println!(
                "    {:>14} reduction: {u} → {r} visited states ({:.1}×)",
                cfg.name,
                u as f64 / r as f64
            );
        }
    }
    println!();
    (rows, ok)
}

fn perf(smoke: bool, jobs: usize) -> Vec<Json> {
    println!(
        "── Throughput: simulated statements per second ({} workloads) ──",
        if smoke { "smoke" } else { "full" }
    );
    let mk = |q: u32, inputs: &[(u64, u32)]| {
        let mut s = Scenario::new(
            UniConsensusMem::default(),
            SystemSpec::hybrid(q).with_adversarial_alignment(),
        );
        for &(v, pr) in inputs {
            s.add_process(ProcessorId(0), Priority(pr), Box::new(decide_machine(v)));
        }
        s.into_kernel()
    };
    let mut lines = Vec::new();

    // 1. Exhaustive schedule exploration (the Lemma 1 model-checking path).
    //    Each workload runs through the serial path (`perf_explore`) and
    //    the frontier-sharded parallel path (`perf_explore_par`), as an
    //    A/B over the same schedule trees. Distinct kinds keep each mode's
    //    steps under its own wall time, so neither rate double-counts.
    let explore_reps = if smoke { 20u64 } else { 400 };
    let par_jobs = jobs.max(2);
    for (name, q, inputs) in [
        ("fig3_q8_2p", MIN_QUANTUM, vec![(1u64, 1u32), (2, 1)]),
        ("fig3_q8_3p", MIN_QUANTUM, vec![(1, 1), (2, 1), (3, 2)]),
        ("fig3_q1_2p", 1, vec![(1, 1), (2, 1)]),
    ] {
        let k = mk(q, &inputs);
        for (kind, mode_jobs) in [("perf_explore", 1usize), ("perf_explore_par", par_jobs)] {
            let mut steps = 0u64;
            let mut terminals = 0u64;
            let mut deduped = 0u64;
            let t0 = Instant::now();
            for _ in 0..explore_reps {
                let stats =
                    explore_parallel(&k, ExploreBounds::default(), mode_jobs, |_| Verdict::KeepGoing);
                steps += stats.steps;
                terminals = stats.terminals;
                deduped = stats.deduped;
            }
            let wall = t0.elapsed();
            println!(
                "    explore {name} (jobs {mode_jobs}): {steps} statements in {:.1} ms → {:.0} steps/s",
                wall.as_secs_f64() * 1e3,
                rate(steps, wall)
            );
            lines.push(Json::obj([
                ("kind", Json::from(kind)),
                ("cell", Json::obj([
                    ("workload", Json::from(name)),
                    ("reps", Json::from(explore_reps)),
                    ("jobs", Json::from(mode_jobs as u64)),
                ])),
                ("steps", Json::from(steps)),
                ("wall_ms", Json::from(wall_ms(wall))),
                ("steps_per_sec", Json::from(rate(steps, wall))),
                ("terminals", Json::from(terminals)),
                ("deduped", Json::from(deduped)),
            ]));
        }
    }

    // 2. The Fig. 10 valency probe (bivalent chain search).
    let valency_reps = if smoke { 1u64 } else { 10 };
    for q in [1u32, 2, 4, 8] {
        let k = mk(q, &[(1, 1), (2, 1)]);
        let mut steps = 0u64;
        let mut depth = 0u32;
        let t0 = Instant::now();
        for _ in 0..valency_reps {
            let p = bivalent_chain_probe(&k, 16, ExploreBounds::default());
            steps += p.steps;
            depth = p.depth;
        }
        let wall = t0.elapsed();
        println!(
            "    valency Q={q}: {steps} statements in {:.1} ms → {:.0} steps/s (depth {depth})",
            wall.as_secs_f64() * 1e3,
            rate(steps, wall)
        );
        lines.push(Json::obj([
            ("kind", Json::from("perf_valency")),
            ("cell", Json::obj([("q", Json::from(q)), ("reps", Json::from(valency_reps))])),
            ("steps", Json::from(steps)),
            ("wall_ms", Json::from(wall_ms(wall))),
            ("steps_per_sec", Json::from(rate(steps, wall))),
            ("depth", Json::from(depth)),
        ]));
    }

    // 3. The Table 1 grid: each (P, C) cell probes its Q axis serially, so
    //    the full mode times the same 99-probe grid `--table1` runs.
    let (pcs, qs): (Vec<(u32, u32)>, Vec<u32>) = if smoke {
        (vec![(1, 1), (2, 3)], vec![1, 8])
    } else {
        let mut pcs = Vec::new();
        for p in 1..=3u32 {
            for c in p..=2 * p {
                pcs.push((p, c));
            }
        }
        (pcs, TABLE1_QS.to_vec())
    };
    for &(p, c) in &pcs {
        let mut steps = 0u64;
        let t0 = Instant::now();
        for &q in &qs {
            steps += probe_cell(p, c, q).steps;
        }
        let wall = t0.elapsed();
        println!(
            "    table1 P={p} C={c}: {steps} statements in {:.1} ms → {:.0} steps/s",
            wall.as_secs_f64() * 1e3,
            rate(steps, wall)
        );
        lines.push(Json::obj([
            ("kind", Json::from("perf_table1")),
            ("cell", Json::obj([
                ("p", Json::from(p)),
                ("c", Json::from(c)),
                ("probes", Json::from(qs.len() as u64)),
            ])),
            ("steps", Json::from(steps)),
            ("wall_ms", Json::from(wall_ms(wall))),
            ("steps_per_sec", Json::from(rate(steps, wall))),
        ]));
    }
    println!();
    lines
}

/// Steps per second, rounded to a whole step.
fn rate(steps: u64, wall: Duration) -> f64 {
    let s = wall.as_secs_f64();
    if s > 0.0 { (steps as f64 / s).round() } else { 0.0 }
}

/// Aggregates per-kind throughput (sum of steps over sum of wall time) from
/// a slice of perf cells, preserving first-seen kind order.
fn kind_rates(cells: &[Json]) -> Vec<(String, f64)> {
    let mut kinds: Vec<(String, u64, f64)> = Vec::new();
    for v in cells {
        let kind = match v.get("kind") {
            Some(Json::Str(s)) => s.clone(),
            _ => continue,
        };
        let steps = match v.get("steps") {
            Some(Json::Int(n)) => *n,
            Some(Json::Float(f)) => *f as u64,
            _ => continue,
        };
        let wall = match v.get("wall_ms") {
            Some(Json::Int(n)) => *n as f64,
            Some(Json::Float(f)) => *f,
            // Canonical artifacts carry no wall_ms (it lives in the timing
            // sidecar); reconstruct the wall contribution from the cell's
            // own pinned rate so committed baselines stay comparable.
            _ => match v.get("steps_per_sec").and_then(Json::as_f64) {
                Some(r) if r > 0.0 => steps as f64 / r * 1e3,
                _ => continue,
            },
        };
        match kinds.iter_mut().find(|(k, _, _)| *k == kind) {
            Some(e) => {
                e.1 += steps;
                e.2 += wall;
            }
            None => kinds.push((kind, steps, wall)),
        }
    }
    kinds
        .into_iter()
        .map(|(k, s, w)| (k, if w > 0.0 { s as f64 / (w / 1e3) } else { 0.0 }))
        .collect()
}

/// Compares fresh perf cells against a committed `BENCH_perf.json`,
/// per kind; returns `false` (→ nonzero exit) if any kind's aggregate
/// steps/sec fell below 70% of the baseline.
fn perf_gate(fresh: &[Json], base_path: &str) -> bool {
    let text = match std::fs::read_to_string(base_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("  perf baseline {base_path}: {e}");
            return false;
        }
    };
    let base_cells: Vec<Json> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| Json::parse(l).ok())
        .collect();
    let base = kind_rates(&base_cells);
    let now = kind_rates(fresh);
    let mut ok = true;
    println!("  perf gate vs {base_path} (fail under 0.70× baseline):");
    for (kind, b) in &base {
        let Some((_, n)) = now.iter().find(|(k, _)| k == kind) else {
            eprintln!("    {kind}: missing from fresh run");
            ok = false;
            continue;
        };
        if *b <= 0.0 || *n <= 0.0 {
            // A sub-µs wall time rounds to zero and would read as a total
            // regression (rate 0); too small to rate either way, so skip.
            println!(
                "    {kind}: wall time too small to rate (fresh {n:.0}, baseline {b:.0} steps/s) — skipped"
            );
            continue;
        }
        let ratio = n / b;
        let verdict = if ratio >= 0.70 { "ok" } else { "REGRESSED" };
        println!("    {kind}: {n:.0} vs baseline {b:.0} steps/s ({ratio:.2}×) {verdict}");
        if ratio < 0.70 {
            ok = false;
        }
    }
    println!();
    ok
}

fn poly_vs_exp() {
    println!("── Polynomial (Fig. 7) vs exponential (priority-only baseline) ──");
    println!("    N  |  Fig. 7 steps  objects |  baseline steps  objects");
    for n in [2u32, 4, 6, 8, 10] {
        // Fig. 7 on one processor (C = 1, K = 0) with M = N processes.
        let r7 = fig7_scenario(1, 1, n, 1, 64, LocalMode::Modeled)
            .step_budget(100_000_000)
            .run_fair();
        let s7 = r7.max_own_steps();
        let o7 = r7.mem().layout.l; // one consensus object per level

        let mut se = Scenario::new(
            hybrid_wf::baseline::exponential::ExpMem::new(n),
            SystemSpec::hybrid(4),
        )
        .step_budget(500_000_000);
        for pid in 0..n {
            se.add_process(
                ProcessorId(0),
                Priority(pid + 1),
                Box::new(hybrid_wf::baseline::exponential::decide_machine(
                    pid,
                    u64::from(pid) + 1,
                )),
            );
        }
        let re = se.run_fair();
        let steps_e = re.max_own_steps();
        let oe = re.mem().objects();
        println!("   {n:>2}  |  {s7:>12}  {o7:>7} |  {steps_e:>14}  {oe:>7}");
    }
    println!();
}
