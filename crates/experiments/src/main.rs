//! Experiment harness: regenerates every table and figure of Anderson &
//! Moir (PODC 1999) from the implementations in this workspace.
//!
//! Run `cargo run -p experiments --release` for the full report, or pass a
//! subset of flags:
//!
//! * `--table1`    — Table 1: universality thresholds across (P, C)
//! * `--thm1`      — Theorem 1: Fig. 3 constant time + Q ≥ 8 tightness
//! * `--thm2`      — Theorem 2: Fig. 5 O(V) time
//! * `--thm3`      — Theorem 3: Fig. 6 impossibility witnesses
//! * `--thm4`      — Theorem 4: Fig. 7 polynomial time/space
//! * `--failures`  — Lemmas 2/3: access-failure pressure vs Q
//! * `--lemma1`    — Lemma 1: exhaustive schedule enumeration for Fig. 3
//! * `--valency`   — Fig. 10: bivalent chain depths
//! * `--fig8`      — Fig. 8: the level/port layout
//! * `--poly-vs-exp` — polynomial Fig. 7 vs exponential baseline
//! * `--obs`       — observability: per-run counters + capture/replay demo

use hybrid_wf::multi::consensus::LocalMode;
use hybrid_wf::multi::failures::{lemma2_holds, lemma3_bound_holds, summarize};
use hybrid_wf::multi::ports::PortLayout;
use hybrid_wf::uni::cas::{op_machine as cas_machine, CasMem, CasOp};
use hybrid_wf::uni::consensus::{decide_machine, UniConsensusMem, MIN_QUANTUM};
use hybrid_wf::universal::{op_machine as universal_machine, CounterSpec, UniversalMem};
use lowerbound::adversary::{fig7_kernel, MaxPreempt};
use lowerbound::fig6;
use lowerbound::valency::bivalent_chain_depth;
use sched_sim::decision::{Decider, RoundRobin, SeededRandom};
use sched_sim::explore::{check_all_schedules, explore, ExploreBounds, Verdict};
use sched_sim::ids::{ProcessId, ProcessorId, Priority};
use sched_sim::kernel::{Kernel, SystemSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "--all");
    let want = |flag: &str| all || args.iter().any(|a| a == flag);

    println!("hybrid-wf experiment harness — Anderson & Moir, PODC 1999");
    println!("===========================================================\n");
    if want("--lemma1") {
        lemma1();
    }
    if want("--thm1") {
        thm1();
    }
    if want("--thm2") {
        thm2();
    }
    if want("--fig8") {
        fig8();
    }
    if want("--thm4") {
        thm4();
    }
    if want("--failures") {
        failures();
    }
    if want("--thm3") {
        thm3();
    }
    if want("--valency") {
        valency();
    }
    if want("--table1") {
        table1();
    }
    if want("--poly-vs-exp") {
        poly_vs_exp();
    }
    if want("--obs") {
        obs();
    }
}

fn lemma1() {
    println!("── Lemma 1 (Fig. 4): exhaustive schedule enumeration, Fig. 3 consensus ──");
    let mk = |q: u32, inputs: &[(u64, u32)]| {
        let mut k = Kernel::new(
            UniConsensusMem::default(),
            SystemSpec::hybrid(q).with_adversarial_alignment(),
        );
        for &(v, pr) in inputs {
            k.add_process(ProcessorId(0), Priority(pr), Box::new(decide_machine(v)));
        }
        k
    };
    for (label, inputs) in [
        ("2 procs, same priority", vec![(1u64, 1u32), (2, 1)]),
        ("3 procs, two levels", vec![(1, 1), (2, 1), (3, 2)]),
    ] {
        let k = mk(MIN_QUANTUM, &inputs);
        let vals: Vec<u64> = inputs.iter().map(|&(v, _)| v).collect();
        let stats = check_all_schedules(&k, ExploreBounds::default(), |k| {
            let outs: Vec<u64> =
                (0..k.n_processes() as u32).filter_map(|p| k.output(ProcessId(p))).collect();
            if outs.windows(2).any(|w| w[0] != w[1]) {
                Some(format!("disagreement {outs:?}"))
            } else if !vals.contains(&outs[0]) {
                Some(format!("invalid {}", outs[0]))
            } else {
                None
            }
        });
        match stats {
            Ok(s) => println!(
                "  Q = 8, {label}: agreement in ALL {} terminal schedules ({} statements explored)",
                s.terminals, s.steps
            ),
            Err(e) => println!("  Q = 8, {label}: VIOLATION {e}"),
        }
    }
    // Tightness at Q = 1.
    let k = mk(1, &[(1, 1), (2, 1)]);
    let mut bad = 0u32;
    let mut total = 0u32;
    explore(&k, ExploreBounds::default(), |k| {
        total += 1;
        let a = k.output(ProcessId(0)).unwrap();
        let b = k.output(ProcessId(1)).unwrap();
        if a != b {
            bad += 1;
        }
        Verdict::KeepGoing
    });
    println!("  Q = 1, 2 procs: {bad} of {total} schedules DISAGREE — the Q ≥ 8 hypothesis is tight\n");
}

fn thm1() {
    println!("── Theorem 1: Fig. 3 consensus is constant-time (reads/writes only) ──");
    println!("  N processes on one processor, Q = 8, fair round-robin:");
    for n in [1u32, 2, 4, 8, 16, 32] {
        let mut k = Kernel::new(UniConsensusMem::default(), SystemSpec::hybrid(MIN_QUANTUM));
        for i in 0..n {
            k.add_process(
                ProcessorId(0),
                Priority(1 + i % 3),
                Box::new(decide_machine(u64::from(i))),
            );
        }
        k.run(&mut RoundRobin::new(), 10_000_000);
        let max_steps = (0..n).map(|p| k.stats(ProcessId(p)).own_steps).max().unwrap();
        println!("    N = {n:>2}: max own-statements per decide = {max_steps} (constant = 8)");
    }
    println!();
}

fn thm2() {
    println!("── Theorem 2: Fig. 5 C&S is O(V) time ──");
    println!("  stale heads at V levels; measured: statements for one C&S:");
    for v in 1..=8u32 {
        let n = 2;
        let mut k = Kernel::new(CasMem::new(v, &[v, v], 100), SystemSpec::hybrid(4096));
        k.add_process(
            ProcessorId(0),
            Priority(v),
            Box::new(cas_machine(
                0,
                v,
                n,
                v,
                vec![
                    CasOp::Cas { old: 100, new: 1 },
                    CasOp::Cas { old: 1, new: 2 },
                    CasOp::Cas { old: 2, new: 3 },
                ],
            )),
        );
        let p1 = k.add_held_process(
            ProcessorId(0),
            Priority(v),
            Box::new(cas_machine(1, v, n, v, vec![CasOp::Cas { old: 3, new: 4 }])),
        );
        let mut d = RoundRobin::new();
        k.run(&mut d, 1_000_000);
        k.release(p1);
        k.run(&mut d, 1_000_000);
        println!("    V = {v}: {} statements", k.stats(p1).own_steps);
    }
    println!();
}

fn fig8() {
    println!("── Fig. 8: consensus-level / port layout ──");
    print!("{}", PortLayout::new(3, 4, 2));
    println!();
}

fn thm4() {
    println!("── Theorem 4: Fig. 7 is polynomial — worst own-steps & space vs M, P ──");
    for p in 1..=3u32 {
        for m in 1..=3u32 {
            let c = p; // weakest objects: K = 0, largest L
            let mut k = fig7_kernel(p, c, m, 1, 64, LocalMode::Modeled);
            let l = k.mem.layout.l;
            let mut d = RoundRobin::new();
            k.run(&mut d, 100_000_000);
            let n = k.n_processes() as u32;
            let max_steps = (0..n).map(|q| k.stats(ProcessId(q)).own_steps).max().unwrap();
            println!(
                "    P = {p}, C = {c}, M = {m}: L = {l:>3} levels, N = {n}, max own-steps = {max_steps}"
            );
        }
    }
    println!();
}

fn failures() {
    println!("── Lemmas 2/3: access failures vs quantum (P=2, C=2, M=3, V=1) ──");
    println!("  adversary: holder-rotating + random, 100 seeds per Q");
    println!("    Q    total-AF  worst-run  lemma2  lemma3-bound  deciding-level");
    for q in [1u32, 2, 4, 8, 16, 32, 64, 128] {
        let mut total = 0u32;
        let mut worst = 0u32;
        let mut l2 = true;
        let mut l3 = true;
        let mut dec = true;
        for seed in 0..100u64 {
            let mut k = fig7_kernel(2, 2, 3, 1, q, LocalMode::Modeled);
            let mut mp = MaxPreempt::new(seed);
            let mut sr = SeededRandom::new(seed);
            let d: &mut dyn Decider = if seed % 2 == 0 { &mut mp } else { &mut sr };
            k.run(d, 50_000_000);
            let s = summarize(&k.mem);
            total += s.same + s.diff;
            worst = worst.max(s.same + s.diff);
            l2 &= lemma2_holds(&k.mem);
            l3 &= lemma3_bound_holds(&k.mem);
            dec &= !s.clean_levels.is_empty();
        }
        println!("    {q:>3}  {total:>8}  {worst:>9}  {l2:>6}  {l3:>12}  {dec:>14}");
    }
    println!();
}

fn thm3() {
    println!("── Theorem 3 (Figs. 6/10): impossibility witnesses at Q = 2P − C ──");
    for p in 2..=4u32 {
        for c in p..2 * p {
            let f = fig6::construct(p, c);
            println!(
                "    P = {p}, C = {c}, Q = {}: decided x = {}, y = {}; p_x returned {} in BOTH → contradiction = {}",
                f.q,
                f.x_branch.decided,
                f.y_branch.decided,
                f.x_branch.px_returned,
                f.contradiction()
            );
        }
    }
    println!();
    println!("{}", fig6::construct(2, 2).narrative());
}

fn valency() {
    println!("── Fig. 10: bivalent chain depth (Fig. 3 consensus, 2 procs) ──");
    for q in [1u32, 2, 4, 8] {
        let mut k = Kernel::new(
            UniConsensusMem::default(),
            SystemSpec::hybrid(q).with_adversarial_alignment(),
        );
        k.add_process(ProcessorId(0), Priority(1), Box::new(decide_machine(1)));
        k.add_process(ProcessorId(0), Priority(1), Box::new(decide_machine(2)));
        let d = bivalent_chain_depth(&k, 16, ExploreBounds::default());
        println!("    Q = {q}: adversary sustains bivalence for {d} statements (of 16 total)");
    }
    println!();
}

/// The headline: Table 1.
fn table1() {
    println!("── Table 1: conditions for universality of a C-consensus object on P processors ──");
    println!("  paper upper bound: Q ≥ c(2P+1−C)·Tmax for P ≤ C ≤ 2P; Q ≥ c·Tmax for C ≥ 2P");
    println!("  paper lower bound: consensus impossible if Q ≤ max(1, 2P−C)");
    println!();
    println!("   P  C | paper-upper-shape  measured-min-Q | paper-lower  Fig6-witness");
    println!("  ------+-----------------------------------+---------------------------");
    for p in 1..=3u32 {
        for c in p..=2 * p {
            let shape = if c >= 2 * p { "c".to_string() } else { format!("c·{}", 2 * p + 1 - c) };
            let measured = measured_min_q(p, c);
            let lower = 1u32.max(2u32.saturating_mul(p).saturating_sub(c));
            let witness = if p >= 2 && c < 2 * p {
                if fig6::construct(p, c).contradiction() {
                    "contradiction ✓"
                } else {
                    "—"
                }
            } else if p == 1 {
                "n/a (P = 1)"
            } else {
                "n/a (C = 2P)"
            };
            println!("   {p}  {c} | {shape:>17}  {measured:>14} | {lower:>11}  {witness}");
        }
    }
    println!();
    println!("  measured-min-Q: smallest Q at which 60 adversary runs (M = 3, V = 1)");
    println!("  all (a) agree, (b) satisfy the Lemma 3 access-failure bound, and");
    println!("  (c) retain a deciding level. The series tracks the paper's");
    println!("  c(2P+1−C) shape: it shrinks as C grows toward 2P.");
    println!();
}

fn measured_min_q(p: u32, c: u32) -> String {
    let m = 3;
    'q: for q in 1..=128u32 {
        for seed in 0..60u64 {
            let mut k = fig7_kernel(p, c, m, 1, q, LocalMode::Modeled);
            let mut mp = MaxPreempt::new(seed);
            let mut sr = SeededRandom::new(seed);
            let d: &mut dyn Decider = if seed % 2 == 0 { &mut mp } else { &mut sr };
            k.run(d, 50_000_000);
            if !k.all_finished() {
                continue 'q;
            }
            let n = k.n_processes() as u32;
            let mut outs: Vec<Option<u64>> = (0..n).map(|x| k.output(ProcessId(x))).collect();
            outs.sort_unstable();
            outs.dedup();
            if outs.len() != 1 || outs[0].is_none() {
                continue 'q;
            }
            if !lemma3_bound_holds(&k.mem) || summarize(&k.mem).clean_levels.is_empty() {
                continue 'q;
            }
        }
        return q.to_string();
    }
    ">128".into()
}

fn obs() {
    println!("── Observability: per-run counters and deterministic replay ──");

    // 1. Scheduler counters on Fig. 3 consensus: with aligned windows and
    //    Q ≥ 8 every decide fits inside one quantum window, so
    //    same-priority preemption vanishes (the Theorem 1 hypothesis).
    println!("  Fig. 3 consensus, 4 same-priority processes, seeded-random schedule:");
    for q in [4u32, MIN_QUANTUM] {
        let mut k = Kernel::new(UniConsensusMem::default(), SystemSpec::hybrid(q));
        for v in 1..=4u64 {
            k.add_process(ProcessorId(0), Priority(1), Box::new(decide_machine(v)));
        }
        k.run(&mut SeededRandom::new(7), 1_000_000);
        let c = k.counters();
        println!(
            "    Q = {q}: same-prio preemptions = {}, mid-invocation expiries = {}, statements/op = {:.1}",
            c.same_prio_preemptions,
            c.quantum_expiries_mid_invocation,
            c.statements_per_op().unwrap_or(f64::NAN),
        );
    }

    // 2. Full counter report plus the algorithm-level helping counters on a
    //    universal-construction counter under an adversarial schedule.
    let n = 4u32;
    let per = 4u32;
    let mk = || {
        let mut k = Kernel::new(
            UniversalMem::<CounterSpec>::new(n, 4 * (n * per) as usize + 4),
            SystemSpec::hybrid(8).with_adversarial_alignment().with_history(),
        );
        for pid in 0..n {
            k.add_process(
                ProcessorId(0),
                Priority(1 + pid % 2),
                Box::new(universal_machine(CounterSpec, pid, n, vec![1; per as usize])),
            );
        }
        k
    };
    let mut k = mk();
    k.attach_obs();
    k.run(&mut SeededRandom::new(42), 1_000_000);
    println!("\n  universal counter, N = {n}, {per} increments each, Q = 8, seed 42:");
    println!("{}", indent(&k.counters().to_string(), "    "));
    println!("  algorithm counters (universal construction, Fig. 7 helping):");
    println!("{}", indent(&k.mem.counters.to_string(), "    "));

    // 3. The same run captured and replayed from its decision script.
    let trace = k.take_obs().expect("obs attached");
    let mut r = mk();
    r.run(&mut trace.scripted(), 1_000_000);
    println!(
        "  capture → replay: {} recorded events; history identical = {}, memory identical = {}",
        trace.events.len(),
        r.history() == k.history(),
        r.mem == k.mem,
    );
    println!();
}

/// Indents every line of a multi-line `Display` block for report nesting.
fn indent(s: &str, pad: &str) -> String {
    s.lines().map(|l| format!("{pad}{l}")).collect::<Vec<_>>().join("\n")
}

fn poly_vs_exp() {
    println!("── Polynomial (Fig. 7) vs exponential (priority-only baseline) ──");
    println!("    N  |  Fig. 7 steps  objects |  baseline steps  objects");
    for n in [2u32, 4, 6, 8, 10] {
        // Fig. 7 on one processor (C = 1, K = 0) with M = N processes.
        let mut k7 = fig7_kernel(1, 1, n, 1, 64, LocalMode::Modeled);
        let l = k7.mem.layout.l;
        k7.run(&mut RoundRobin::new(), 100_000_000);
        let s7 = (0..n).map(|p| k7.stats(ProcessId(p)).own_steps).max().unwrap();
        let o7 = l; // one consensus object per level

        let mut ke = Kernel::new(
            hybrid_wf::baseline::exponential::ExpMem::new(n),
            SystemSpec::hybrid(4),
        );
        for pid in 0..n {
            ke.add_process(
                ProcessorId(0),
                Priority(pid + 1),
                Box::new(hybrid_wf::baseline::exponential::decide_machine(
                    pid,
                    u64::from(pid) + 1,
                )),
            );
        }
        ke.run(&mut RoundRobin::new(), 500_000_000);
        let se = (0..n).map(|p| ke.stats(ProcessId(p)).own_steps).max().unwrap();
        let oe = ke.mem.objects();
        println!("   {n:>2}  |  {s7:>12}  {o7:>7} |  {se:>14}  {oe:>7}");
    }
    println!();
}
