//! Property test: every history the kernel produces — for arbitrary
//! process shapes, priorities, quanta, and random schedules — satisfies
//! the paper's well-formedness condition (Axioms 1 and 2), as judged by
//! the independent checker.

use proptest::prelude::*;
use sched_sim::history::check_well_formed;
use sched_sim::machine::{FnMachine, StepOutcome};
use sched_sim::{Kernel, ProcessorId, Priority, SeededRandom, SystemSpec};

fn worker(len: u32, invs: u32) -> Box<dyn sched_sim::StepMachine<u64>> {
    Box::new(FnMachine::new(move |mem: &mut u64, calls| {
        *mem += 1;
        let end = (calls + 1) % len == 0;
        if end && (calls + 1) / len >= invs {
            (StepOutcome::Finished, Some(*mem))
        } else if end {
            (StepOutcome::InvocationEnd, Some(*mem))
        } else {
            (StepOutcome::Continue, None)
        }
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_runs_are_well_formed(
        seed in 0u64..10_000,
        quantum in 1u32..12,
        adversarial in any::<bool>(),
        procs in proptest::collection::vec(
            (0u32..3, 1u32..4, 1u32..6, 1u32..4), // (cpu, prio, len, invs)
            1..7
        ),
    ) {
        let mut spec = SystemSpec::hybrid(quantum).with_history();
        if adversarial {
            spec = spec.with_adversarial_alignment();
        }
        let mut k = Kernel::new(0u64, spec);
        for &(cpu, prio, len, invs) in &procs {
            k.add_process(ProcessorId(cpu), Priority(prio), worker(len, invs));
        }
        k.run(&mut SeededRandom::new(seed), 50_000);
        prop_assert!(k.all_finished());
        // Total statements = sum of len·invs.
        let expected: u64 = procs.iter().map(|&(_, _, l, i)| u64::from(l * i)).sum();
        prop_assert_eq!(k.mem, expected);
        if let Err(v) = check_well_formed(k.history()) {
            return Err(TestCaseError::fail(format!("ill-formed: {v}")));
        }
    }
}
