//! The [`Scenario`] builder: the front door for setting up and running
//! simulations.
//!
//! Every experiment in this workspace used to hand-roll the same wiring —
//! construct a [`Kernel`], loop over processes adding priorities and
//! processors, optionally attach an observability trace, run to completion
//! under a step budget, then pick outputs, counters, and statistics back
//! out of the kernel. A `Scenario` captures that wiring once, declaratively:
//!
//! * the [`SystemSpec`] (quantum, first-window policy, history recording),
//! * the shared memory's initial state,
//! * the process table (processor, priority, machine, held/ready),
//! * whether to capture an observability [`Trace`],
//! * the run-to-completion step budget.
//!
//! Because a scenario owns its *initial* state rather than a live kernel,
//! it can be **run many times** — each [`Scenario::run`] builds a fresh,
//! identical kernel, which is exactly the contract deterministic replay
//! and seed sweeps need (see [`crate::sweep`] for fanning runs of one
//! scenario grid out over worker threads). Runs yield a [`RunResult`]:
//! outputs, scheduler counters, per-process statistics, completed
//! operations, wall time, and the final memory (from which algorithm-level
//! counters can be read).
//!
//! # Example
//!
//! ```
//! use sched_sim::scenario::Scenario;
//! use sched_sim::machine::{FnMachine, StepOutcome};
//! use sched_sim::ids::{ProcessorId, Priority};
//! use sched_sim::kernel::SystemSpec;
//!
//! let mut s = Scenario::new(0u64, SystemSpec::hybrid(4));
//! for _ in 0..2 {
//!     s.add_process(ProcessorId(0), Priority(1), Box::new(FnMachine::new(
//!         |mem: &mut u64, calls| {
//!             *mem += 1;
//!             if calls == 2 { (StepOutcome::Finished, Some(*mem)) }
//!             else { (StepOutcome::Continue, None) }
//!         })));
//! }
//! let a = s.run_seeded(7);
//! let b = s.run_seeded(7);          // same seed → bit-identical rerun
//! assert!(a.all_finished);
//! assert_eq!(a.mem(), &6);
//! assert_eq!(a.outputs, b.outputs);
//! assert_eq!(a.counters, b.counters);
//! ```

use std::time::{Duration, Instant};

use crate::decision::{Decider, RoundRobin, SeededRandom};
use crate::history::History;
use crate::ids::{ProcessId, ProcessorId, Priority};
use crate::kernel::{Kernel, OpRecord, ProcStats, SystemSpec};
use crate::machine::StepMachine;
use crate::obs::{ObsCounters, Trace};
use crate::prof::Profile;

/// Default run-to-completion step budget: generous enough for every
/// workload in this workspace (the largest adversarial Fig. 7 grids finish
/// well under it), small enough that a livelocked run fails fast.
pub const DEFAULT_STEP_BUDGET: u64 = 50_000_000;

/// One process in a scenario's process table.
struct ProcSpec<M> {
    cpu: ProcessorId,
    prio: Priority,
    machine: Box<dyn StepMachine<M>>,
    held: bool,
}

impl<M> Clone for ProcSpec<M> {
    fn clone(&self) -> Self {
        ProcSpec {
            cpu: self.cpu,
            prio: self.prio,
            machine: self.machine.box_clone(),
            held: self.held,
        }
    }
}

/// A reusable, declarative simulation setup. See the [module docs](self).
pub struct Scenario<M> {
    spec: SystemSpec,
    mem: M,
    procs: Vec<ProcSpec<M>>,
    obs: bool,
    prof: bool,
    budget: u64,
    crashes: Vec<(u64, ProcessId)>,
    recovers: Vec<(u64, ProcessId)>,
}

impl<M: Clone> Clone for Scenario<M> {
    fn clone(&self) -> Self {
        Scenario {
            spec: self.spec,
            mem: self.mem.clone(),
            procs: self.procs.clone(),
            obs: self.obs,
            prof: self.prof,
            budget: self.budget,
            crashes: self.crashes.clone(),
            recovers: self.recovers.clone(),
        }
    }
}

impl<M> Scenario<M> {
    /// A scenario over initial shared memory `mem` with the given spec and
    /// the [`DEFAULT_STEP_BUDGET`].
    pub fn new(mem: M, spec: SystemSpec) -> Self {
        Scenario {
            spec,
            mem,
            procs: Vec::new(),
            obs: false,
            prof: false,
            budget: DEFAULT_STEP_BUDGET,
            crashes: Vec::new(),
            recovers: Vec::new(),
        }
    }

    /// Adds a ready process pinned to `cpu` at priority `prio`; returns its
    /// [`ProcessId`] (assigned densely from 0, in insertion order —
    /// identical to [`Kernel::add_process`]).
    pub fn add_process(
        &mut self,
        cpu: ProcessorId,
        prio: Priority,
        machine: Box<dyn StepMachine<M>>,
    ) -> ProcessId {
        let pid = ProcessId(self.procs.len() as u32);
        self.procs.push(ProcSpec { cpu, prio, machine, held: false });
        pid
    }

    /// Adds a *held* process (ineligible until
    /// [`Kernel::release`] is called on the built kernel).
    pub fn add_held_process(
        &mut self,
        cpu: ProcessorId,
        prio: Priority,
        machine: Box<dyn StepMachine<M>>,
    ) -> ProcessId {
        let pid = ProcessId(self.procs.len() as u32);
        self.procs.push(ProcSpec { cpu, prio, machine, held: true });
        pid
    }

    /// Chainable [`Scenario::add_process`].
    pub fn process(
        mut self,
        cpu: ProcessorId,
        prio: Priority,
        machine: Box<dyn StepMachine<M>>,
    ) -> Self {
        self.add_process(cpu, prio, machine);
        self
    }

    /// Chainable [`Scenario::add_held_process`].
    pub fn held_process(
        mut self,
        cpu: ProcessorId,
        prio: Priority,
        machine: Box<dyn StepMachine<M>>,
    ) -> Self {
        self.add_held_process(cpu, prio, machine);
        self
    }

    /// Captures an observability [`Trace`] on every run (the kernel is
    /// built with [`Kernel::attach_obs`]; the capture lands in
    /// [`RunResult::take_trace`]).
    pub fn with_obs(mut self) -> Self {
        self.obs = true;
        self
    }

    /// Streams every run through a [`Profile`] (the kernel is built with
    /// [`Kernel::attach_prof`]; the derived metrics land in
    /// [`RunResult::take_profile`]). Independent of [`Scenario::with_obs`]
    /// — profiling alone retains no event log.
    pub fn with_prof(mut self) -> Self {
        self.prof = true;
        self
    }

    /// Overrides the run-to-completion step budget.
    pub fn step_budget(mut self, max_steps: u64) -> Self {
        self.budget = max_steps;
        self
    }

    /// Schedules a crash of `pid` at clock instant `t` on every run (the
    /// kernel is built with [`Kernel::schedule_crash`], which also enables
    /// invocation snapshotting). Crash instants are scenario *data*, not
    /// decider choices, so seeded/parallel runs stay deterministic.
    pub fn crash_at(mut self, t: u64, pid: ProcessId) -> Self {
        self.crashes.push((t, pid));
        self
    }

    /// Schedules a recovery of `pid` at clock instant `t` on every run
    /// (the restarted process re-runs its interrupted invocation from the
    /// start — for the paper's algorithms, the copy-chain re-read).
    pub fn recover_at(mut self, t: u64, pid: ProcessId) -> Self {
        self.recovers.push((t, pid));
        self
    }

    /// Non-chainable [`Scenario::crash_at`]/[`Scenario::recover_at`]: one
    /// crash-and-restart cycle for `pid` (crash at `t_crash`, recovery at
    /// `t_recover`).
    pub fn add_crash_cycle(&mut self, pid: ProcessId, t_crash: u64, t_recover: u64) {
        self.crashes.push((t_crash, pid));
        self.recovers.push((t_recover, pid));
    }

    /// Whether any lifecycle (crash/recovery) events are scheduled.
    pub fn has_lifecycle(&self) -> bool {
        !self.crashes.is_empty() || !self.recovers.is_empty()
    }

    /// The configured step budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The configured system spec.
    pub fn spec(&self) -> SystemSpec {
        self.spec
    }

    /// Number of processes in the table.
    pub fn n_processes(&self) -> usize {
        self.procs.len()
    }

    /// Consumes the scenario into a fresh kernel (for callers that need
    /// mid-run choreography — releases, manual stepping, the exhaustive
    /// explorer — or a non-`Clone` memory type).
    pub fn into_kernel(self) -> Kernel<M> {
        let mut k = Kernel::new(self.mem, self.spec);
        for p in self.procs {
            if p.held {
                k.add_held_process(p.cpu, p.prio, p.machine);
            } else {
                k.add_process(p.cpu, p.prio, p.machine);
            }
        }
        for &(t, pid) in &self.crashes {
            k.schedule_crash(t, pid);
        }
        for &(t, pid) in &self.recovers {
            k.schedule_recover(t, pid);
        }
        if self.obs {
            k.attach_obs();
        }
        if self.prof {
            k.attach_prof();
        }
        k
    }
}

impl<M: Clone> Scenario<M> {
    /// Builds a fresh kernel from the scenario's initial state. Every call
    /// yields an identically constructed kernel (same memory, machines,
    /// spec, and process order) — the precondition for deterministic
    /// replay ([`Trace::scripted`]).
    pub fn kernel(&self) -> Kernel<M> {
        self.clone().into_kernel()
    }

    /// Builds a fresh kernel and runs it to quiescence (or the step
    /// budget) under `decider`.
    pub fn run(&self, decider: &mut dyn Decider) -> RunResult<M> {
        let mut k = self.kernel();
        let t0 = Instant::now();
        let steps = k.run(decider, self.budget);
        RunResult::from_kernel(k, steps, t0.elapsed())
    }

    /// Runs under the fair [`RoundRobin`] decider.
    pub fn run_fair(&self) -> RunResult<M> {
        self.run(&mut RoundRobin::new())
    }

    /// Runs under [`SeededRandom`] with the given seed.
    pub fn run_seeded(&self, seed: u64) -> RunResult<M> {
        self.run(&mut SeededRandom::new(seed))
    }
}

/// The outcome of running a [`Scenario`] (or any kernel — see
/// [`RunResult::from_kernel`]) to quiescence.
///
/// Owns the finished kernel, so everything a caller might want is
/// available without copying: outputs and scheduler counters as plain
/// fields, and the final memory (algorithm counters live there), history,
/// op records, and per-process statistics through accessors. Wall time is
/// metadata — it is *not* part of any determinism comparison.
pub struct RunResult<M> {
    kernel: Kernel<M>,
    /// Atomic statements executed.
    pub steps: u64,
    /// Wall-clock time of the run (metadata; never compare for equality).
    pub wall: Duration,
    /// Per-process final outputs, indexed by [`ProcessId`].
    pub outputs: Vec<Option<u64>>,
    /// The run's aggregate scheduler counters.
    pub counters: ObsCounters,
    /// Whether every process finished within the step budget.
    pub all_finished: bool,
}

impl<M> RunResult<M> {
    /// Collects a result from a kernel that has been driven to completion
    /// by other means (`steps` statements in `wall` time). This is the
    /// escape hatch for runs with mid-run choreography (releases, manual
    /// stepping) that still want the uniform result surface.
    pub fn from_kernel(kernel: Kernel<M>, steps: u64, wall: Duration) -> Self {
        let outputs =
            (0..kernel.n_processes() as u32).map(|p| kernel.output(ProcessId(p))).collect();
        RunResult {
            steps,
            wall,
            outputs,
            counters: kernel.counters(),
            all_finished: kernel.all_finished(),
            kernel,
        }
    }

    /// The final shared memory (algorithm-level counters, e.g.
    /// `hybrid_wf::counters::AlgCounters`, are read from here).
    pub fn mem(&self) -> &M {
        &self.kernel.mem
    }

    /// The finished kernel.
    pub fn kernel(&self) -> &Kernel<M> {
        &self.kernel
    }

    /// Consumes the result, returning the finished kernel.
    pub fn into_kernel(self) -> Kernel<M> {
        self.kernel
    }

    /// The recorded history (empty unless the spec enabled recording).
    pub fn history(&self) -> &History {
        self.kernel.history()
    }

    /// Completed invocations, in completion order.
    pub fn ops(&self) -> &[OpRecord] {
        self.kernel.ops()
    }

    /// Statistics for one process.
    pub fn stats(&self, pid: ProcessId) -> ProcStats {
        self.kernel.stats(pid)
    }

    /// Statistics for every process, indexed by [`ProcessId`].
    pub fn all_stats(&self) -> Vec<ProcStats> {
        (0..self.kernel.n_processes() as u32)
            .map(|p| self.kernel.stats(ProcessId(p)))
            .collect()
    }

    /// The largest own-statement count over all processes (the wait-freedom
    /// metric of Theorems 1/2/4), or 0 with no processes.
    pub fn max_own_steps(&self) -> u64 {
        self.all_stats().iter().map(|s| s.own_steps).max().unwrap_or(0)
    }

    /// The common decided value, if **all** processes finished with the
    /// same `Some` output (the agreement oracle of the consensus
    /// experiments); `None` on any disagreement, `⊥` output, or unfinished
    /// process.
    pub fn agreed_output(&self) -> Option<u64> {
        if !self.all_finished {
            return None;
        }
        let first = *self.outputs.first()?;
        self.outputs.iter().all(|&o| o == first && o.is_some()).then(|| first)?
    }

    /// Mean statements per completed operation.
    pub fn statements_per_op(&self) -> Option<f64> {
        self.counters.statements_per_op()
    }

    /// Borrows the captured observability trace, if the scenario ran
    /// [`Scenario::with_obs`].
    pub fn trace(&self) -> Option<&Trace> {
        self.kernel.obs()
    }

    /// Detaches and returns the captured observability trace, if any.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.kernel.take_obs()
    }

    /// Borrows the streamed profile, if the scenario ran
    /// [`Scenario::with_prof`].
    pub fn profile(&self) -> Option<&Profile> {
        self.kernel.prof()
    }

    /// Detaches and returns the streamed profile, if any.
    pub fn take_profile(&mut self) -> Option<Profile> {
        self.kernel.take_prof()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{FnMachine, StepOutcome};

    fn logger(tag: u64, len: u32, invs: u32) -> Box<dyn StepMachine<Vec<u64>>> {
        Box::new(FnMachine::new(move |mem: &mut Vec<u64>, calls| {
            mem.push(tag);
            let done_in_inv = (calls + 1) % len == 0;
            if done_in_inv && (calls + 1) / len >= invs {
                (StepOutcome::Finished, Some(u64::from(calls + 1)))
            } else if done_in_inv {
                (StepOutcome::InvocationEnd, Some(u64::from(calls + 1)))
            } else {
                (StepOutcome::Continue, None)
            }
        }))
    }

    fn two_logger_scenario(q: u32) -> Scenario<Vec<u64>> {
        Scenario::new(Vec::new(), SystemSpec::hybrid(q))
            .process(ProcessorId(0), Priority(1), logger(1, 4, 1))
            .process(ProcessorId(0), Priority(1), logger(2, 4, 1))
    }

    #[test]
    fn scenario_matches_hand_built_kernel() {
        // The builder must produce exactly the kernel the call sites used
        // to build by hand: same memory, same schedule, same counters.
        let s = two_logger_scenario(2);
        let r = s.run_fair();

        let mut k = Kernel::new(Vec::new(), SystemSpec::hybrid(2));
        k.add_process(ProcessorId(0), Priority(1), logger(1, 4, 1));
        k.add_process(ProcessorId(0), Priority(1), logger(2, 4, 1));
        let steps = k.run(&mut RoundRobin::new(), DEFAULT_STEP_BUDGET);

        assert_eq!(r.steps, steps);
        assert_eq!(r.mem(), &k.mem);
        assert_eq!(r.counters, k.counters());
        assert_eq!(r.outputs, vec![Some(4), Some(4)]);
        assert!(r.all_finished);
    }

    #[test]
    fn scenario_is_reusable_and_deterministic() {
        let s = two_logger_scenario(3);
        let a = s.run_seeded(11);
        let b = s.run_seeded(11);
        let c = s.run_seeded(12);
        assert_eq!(a.mem(), b.mem());
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.steps, b.steps);
        // A different seed is allowed to (and here does) interleave
        // differently, but the run still completes.
        assert!(c.all_finished);
    }

    #[test]
    fn held_processes_and_from_kernel_roundtrip() {
        let mut s = Scenario::new(Vec::new(), SystemSpec::hybrid(10));
        s.add_process(ProcessorId(0), Priority(1), logger(1, 6, 1));
        let hi = s.add_held_process(ProcessorId(0), Priority(2), logger(2, 2, 1));

        let mut k = s.kernel();
        let mut d = RoundRobin::new();
        let t0 = std::time::Instant::now();
        let mut steps = k.run(&mut d, 2);
        k.release(hi);
        steps += k.run(&mut d, 1_000);
        let r = RunResult::from_kernel(k, steps, t0.elapsed());
        assert_eq!(r.mem(), &vec![1, 1, 2, 2, 1, 1, 1, 1]);
        assert_eq!(r.stats(ProcessId(0)).priority_preemptions, 1);
        assert_eq!(r.max_own_steps(), 6);
    }

    #[test]
    fn step_budget_truncates() {
        let r = two_logger_scenario(2).step_budget(3).run_fair();
        assert_eq!(r.steps, 3);
        assert!(!r.all_finished);
        assert_eq!(r.agreed_output(), None);
    }

    #[test]
    fn agreed_output_oracle() {
        // Equal outputs → agreement; the loggers both return 4.
        let r = two_logger_scenario(2).run_fair();
        assert_eq!(r.agreed_output(), Some(4));
        // Differing outputs → None.
        let s = Scenario::new(Vec::new(), SystemSpec::hybrid(2))
            .process(ProcessorId(0), Priority(1), logger(1, 4, 1))
            .process(ProcessorId(0), Priority(1), logger(2, 6, 1));
        assert_eq!(s.run_fair().agreed_output(), None);
    }

    #[test]
    fn with_obs_captures_replayable_trace() {
        let s = two_logger_scenario(3).with_obs();
        let mut r = s.run_seeded(5);
        let trace = r.take_trace().expect("obs attached");
        // Replaying the capture against a fresh kernel from the same
        // scenario reproduces the run bit-identically.
        let mut k = s.kernel();
        k.run(&mut trace.scripted(), DEFAULT_STEP_BUDGET);
        assert_eq!(&k.mem, r.mem());
        assert_eq!(k.counters(), r.counters);
    }
}
