//! Machine-readable sweep reports: a minimal JSON value type, writer,
//! parser, and a line-oriented cell-report validator.
//!
//! The workspace is dependency-free (DESIGN.md §3), so this module carries
//! the ~300 lines of JSON needed to publish sweep results as artifacts
//! (`BENCH_table1.json`, `BENCH_sweeps.json`) and to validate them in the
//! offline gate. Reports are **line-oriented** ("JSON lines"): one cell
//! per line, each line a self-contained object, so artifacts can be
//! streamed, diffed, grepped, and appended without a document-level
//! parser. Writing is deterministic — keys keep insertion order and
//! numbers format canonically — so a report produced by a parallel sweep
//! is byte-identical to the serial one (see [`crate::sweep`]).
//!
//! ```
//! use sched_sim::report::{validate_cells, Json, Kind};
//!
//! let line = Json::obj([
//!     ("kind", Json::from("smoke")),
//!     ("cell", Json::obj([("q", Json::from(8u64)), ("seed", Json::from(3u64))])),
//!     ("steps", Json::from(96u64)),
//!     ("wall_ms", Json::from(0.25)),
//! ]);
//! let text = format!("{line}\n");
//! assert_eq!(Json::parse(&text.trim()).unwrap(), line);
//! // The standard cell envelope validates.
//! assert_eq!(validate_cells(&text, &[("kind", Kind::Str), ("cell", Kind::Obj),
//!                                    ("steps", Kind::Num), ("wall_ms", Kind::Num)]),
//!            Ok(1));
//! ```

use std::fmt;

/// A JSON value. Integers are kept exact (`u64`) rather than coerced to
/// `f64`, so statement counts round-trip bit-identically.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (statement counts, seeds, grid parameters).
    Int(u64),
    /// Any other number (wall times, ratios).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Int(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Int(u64::from(v))
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<'a>(pairs: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer (or an integral float).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses one JSON value from `text` (the whole string must be
    /// consumed, modulo surrounding whitespace).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::Float(v) => {
                if v.is_finite() {
                    // Keep integral floats distinguishable from Ints on
                    // re-parse? No — JSON has one number type. `1.0`
                    // prints as `1`, which is fine for reports.
                    write!(f, "{v}")
                } else {
                    // JSON has no NaN/inf; null is the conventional stand-in.
                    write!(f, "null")
                }
            }
            Json::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => f.write_fmt(format_args!("{c}"))?,
                    }
                }
                f.write_str("\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(self.err(&format!("unexpected byte {:?}", b as char))),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-path over plain bytes up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates are not paired up — reports never
                            // emit them; map to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8"))?;
        if !float {
            if let Ok(v) = s.parse::<u64>() {
                return Ok(Json::Int(v));
            }
        }
        s.parse::<f64>().map(Json::Float).map_err(|_| self.err("bad number"))
    }
}

/// The expected kind of a required key in a cell line (see
/// [`validate_cells`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Any numeric value (integer or float).
    Num,
    /// A string.
    Str,
    /// A boolean.
    Bool,
    /// An object.
    Obj,
    /// Any value at all (presence check only).
    Any,
}

/// Validates a line-oriented cell report: every non-empty, non-`#` line
/// must parse as a JSON **object** containing each `required` key with a
/// value of the stated [`Kind`]. Returns the number of cells validated
/// (which may be 0 for an empty report).
///
/// # Errors
///
/// Returns a message naming the first offending line (1-based) and why.
pub fn validate_cells(text: &str, required: &[(&str, Kind)]) -> Result<usize, String> {
    let mut cells = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if !matches!(v, Json::Obj(_)) {
            return Err(format!("line {}: cell is not an object", lineno + 1));
        }
        for &(key, kind) in required {
            let val = v
                .get(key)
                .ok_or_else(|| format!("line {}: missing key {key:?}", lineno + 1))?;
            let ok = match kind {
                Kind::Num => matches!(val, Json::Int(_) | Json::Float(_)),
                Kind::Str => matches!(val, Json::Str(_)),
                Kind::Bool => matches!(val, Json::Bool(_)),
                Kind::Obj => matches!(val, Json::Obj(_)),
                Kind::Any => true,
            };
            if !ok {
                return Err(format!(
                    "line {}: key {key:?} is not {kind:?} (got {val})",
                    lineno + 1
                ));
            }
        }
        cells += 1;
    }
    Ok(cells)
}

/// The standard sweep-cell envelope every workspace artifact uses:
/// `kind` (which sweep), `cell` (the grid parameters), `steps`.
///
/// Deliberately **excludes** `wall_ms`: canonical artifacts carry only
/// deterministic payloads, so regenerating an artifact on a faster or
/// slower machine leaves the committed file byte-identical. Timing is
/// published separately in a `*.timing.json` sidecar validated against
/// [`TIMING_SCHEMA`] (see [`split_timing`]).
pub const CELL_SCHEMA: &[(&str, Kind)] = &[
    ("kind", Kind::Str),
    ("cell", Kind::Obj),
    ("steps", Kind::Num),
];

/// The envelope of a profiler report line (`BENCH_profile.json`): the
/// standard [`CELL_SCHEMA`] plus a `metrics` object holding the derived
/// schedule metrics of [`crate::prof::Profile`] (scalar totals on per-cell
/// lines; full per-process/per-priority tables with histograms on
/// per-family summary lines).
pub const PROFILE_SCHEMA: &[(&str, Kind)] = &[
    ("kind", Kind::Str),
    ("cell", Kind::Obj),
    ("steps", Kind::Num),
    ("metrics", Kind::Obj),
];

/// The envelope of a native-grid report line (`BENCH_native.json`): the
/// standard [`CELL_SCHEMA`] plus the operation count, the oracle
/// violation count, and the cell's verdict against the paper's
/// prediction (`clean`/`BUG`, `predicted`/`MISSING`, `observed`/`quiet`
/// — see `lowerbound::native`).
pub const NATIVE_SCHEMA: &[(&str, Kind)] = &[
    ("kind", Kind::Str),
    ("cell", Kind::Obj),
    ("steps", Kind::Num),
    ("ops", Kind::Num),
    ("violations", Kind::Num),
    ("verdict", Kind::Str),
];

/// The envelope of a `*.timing.json` sidecar line: the `kind` and `cell`
/// identifying the sweep cell, plus its nondeterministic `wall_ms`.
pub const TIMING_SCHEMA: &[(&str, Kind)] = &[
    ("kind", Kind::Str),
    ("cell", Kind::Obj),
    ("wall_ms", Kind::Num),
];

/// The envelope of a service report line (`BENCH_service.json`): the
/// standard [`CELL_SCHEMA`] plus the request count, the deterministic
/// throughput figure (`steps_per_request`), and the request-latency
/// percentiles (see `sched_sim::service`). The percentiles are `Any`, not
/// `Num`: an empty latency histogram has no percentiles and reports
/// `null` (a fake 0 would be indistinguishable from a real fast cell).
pub const SERVICE_SCHEMA: &[(&str, Kind)] = &[
    ("kind", Kind::Str),
    ("cell", Kind::Obj),
    ("steps", Kind::Num),
    ("requests", Kind::Num),
    ("steps_per_request", Kind::Num),
    ("p50", Kind::Any),
    ("p90", Kind::Any),
    ("p99", Kind::Any),
];

/// The envelope of a crash-grid report line (`BENCH_crash.json`): the
/// standard [`CELL_SCHEMA`] plus the lifecycle counts, the recovery-safe
/// oracle's violation count, and the cell verdict (`ok`: agreement,
/// validity, and exactly-once linearization all held across every crash
/// and recovery boundary — see `lowerbound::crash`).
pub const CRASH_SCHEMA: &[(&str, Kind)] = &[
    ("kind", Kind::Str),
    ("cell", Kind::Obj),
    ("steps", Kind::Num),
    ("crashes", Kind::Num),
    ("recoveries", Kind::Num),
    ("violations", Kind::Num),
    ("ok", Kind::Bool),
];

/// The envelope of an exhaustive-exploration report line
/// (`BENCH_explore.json`): the standard [`CELL_SCHEMA`] plus the
/// [`crate::explore::ExploreStats`] payload (`terminals`, `deduped`,
/// `por_pruned`, `visited`, `truncation`) and the verification verdict
/// (`verified`: every terminal satisfied the checked property and no bound
/// truncated the search).
pub const EXPLORE_SCHEMA: &[(&str, Kind)] = &[
    ("kind", Kind::Str),
    ("cell", Kind::Obj),
    ("steps", Kind::Num),
    ("terminals", Kind::Num),
    ("deduped", Kind::Num),
    ("por_pruned", Kind::Num),
    ("visited", Kind::Num),
    ("truncation", Kind::Str),
    ("verified", Kind::Bool),
    ("steps_per_sec", Kind::Num),
];

/// Picks the validation schema for an artifact by its **final path
/// component** (never the whole path, so a directory named `profile.json/`
/// or a non-UTF8 parent segment cannot misroute the choice):
/// `*.timing.json` → [`TIMING_SCHEMA`], `*profile.json` →
/// [`PROFILE_SCHEMA`], `*native.json` → [`NATIVE_SCHEMA`],
/// `*service.json` → [`SERVICE_SCHEMA`], `*explore.json` →
/// [`EXPLORE_SCHEMA`], `*crash.json` → [`CRASH_SCHEMA`], anything else →
/// [`CELL_SCHEMA`].
pub fn schema_for_path(path: &std::path::Path) -> &'static [(&'static str, Kind)] {
    // `to_string_lossy` on the file name alone: a non-UTF8 byte in the
    // name maps to U+FFFD, which simply fails all suffix matches and
    // falls through to the default schema instead of panicking.
    let name = path.file_name().map(|n| n.to_string_lossy()).unwrap_or_default();
    if name.ends_with(".timing.json") {
        TIMING_SCHEMA
    } else if name.ends_with("profile.json") {
        PROFILE_SCHEMA
    } else if name.ends_with("native.json") {
        NATIVE_SCHEMA
    } else if name.ends_with("service.json") {
        SERVICE_SCHEMA
    } else if name.ends_with("explore.json") {
        EXPLORE_SCHEMA
    } else if name.ends_with("crash.json") {
        CRASH_SCHEMA
    } else {
        CELL_SCHEMA
    }
}

/// Splits a sweep cell into its canonical payload and its timing sidecar
/// line: the returned first value is `cell` with every `wall_ms` key
/// removed (key order otherwise preserved, so artifacts stay
/// deterministic), and the second is a `{kind, cell, wall_ms}` object when
/// the input carried a `wall_ms` (otherwise `None`).
pub fn split_timing(cell: &Json) -> (Json, Option<Json>) {
    let Json::Obj(pairs) = cell else {
        return (cell.clone(), None);
    };
    let canonical = Json::Obj(
        pairs.iter().filter(|(k, _)| k != "wall_ms").cloned().collect(),
    );
    let timing = cell.get("wall_ms").map(|w| {
        Json::obj([
            ("kind", cell.get("kind").cloned().unwrap_or(Json::Null)),
            ("cell", cell.get("cell").cloned().unwrap_or(Json::Null)),
            ("wall_ms", w.clone()),
        ])
    });
    (canonical, timing)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let v = Json::obj([
            ("null", Json::Null),
            ("t", Json::from(true)),
            ("n", Json::from(18_446_744_073_709_551_615u64)),
            ("f", Json::from(-0.5)),
            ("s", Json::from("quote \" slash \\ nl \n tab \t")),
            ("a", Json::from(vec![Json::from(1u64), Json::Null, Json::from("x")])),
            ("o", Json::obj([("inner", Json::from(2u64))])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Deterministic: a second serialization is byte-identical.
        assert_eq!(Json::parse(&text).unwrap().to_string(), text);
    }

    #[test]
    fn integers_stay_exact() {
        // 2^53 + 1 is not representable in f64 — the Int variant keeps it.
        let v = Json::parse("9007199254740993").unwrap();
        assert_eq!(v, Json::Int(9007199254740993));
        assert_eq!(v.as_u64(), Some(9007199254740993));
    }

    #[test]
    fn floats_and_negatives_parse() {
        assert_eq!(Json::parse("-3").unwrap(), Json::Float(-3.0));
        assert_eq!(Json::parse("2.5e2").unwrap(), Json::Float(250.0));
        assert_eq!(Json::Float(250.0).as_u64(), Some(250));
    }

    #[test]
    fn parse_rejects_garbage_with_position() {
        assert!(Json::parse("{\"a\":}").unwrap_err().contains("byte 5"));
        assert!(Json::parse("[1,2").unwrap_err().contains("expected"));
        assert!(Json::parse("true false").unwrap_err().contains("trailing"));
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::obj([("k", Json::from("v")), ("n", Json::from(3u64))]);
        assert_eq!(v.get("k").and_then(Json::as_str), Some("v"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("missing"), None);
    }

    fn cell_line(kind: &str) -> String {
        Json::obj([
            ("kind", Json::from(kind)),
            ("cell", Json::obj([("q", Json::from(4u64))])),
            ("steps", Json::from(10u64)),
            ("wall_ms", Json::from(0.5)),
        ])
        .to_string()
    }

    #[test]
    fn validator_accepts_envelope_and_counts_cells() {
        let text = format!("# comment\n{}\n\n{}\n", cell_line("a"), cell_line("b"));
        assert_eq!(validate_cells(&text, CELL_SCHEMA), Ok(2));
        assert_eq!(validate_cells("", CELL_SCHEMA), Ok(0));
    }

    #[test]
    fn split_timing_separates_wall_ms_from_canonical_payload() {
        let cell = Json::parse(&cell_line("a")).unwrap();
        let (canonical, timing) = split_timing(&cell);
        assert_eq!(canonical.get("wall_ms"), None, "wall_ms must leave the canonical line");
        assert_eq!(canonical.get("steps").and_then(Json::as_u64), Some(10));
        let timing = timing.expect("cell had wall_ms");
        assert_eq!(timing.get("wall_ms").and_then(Json::as_f64), Some(0.5));
        assert_eq!(timing.get("kind").and_then(Json::as_str), Some("a"));
        assert!(matches!(timing.get("cell"), Some(Json::Obj(_))));
        // Deterministic and idempotent: re-splitting the canonical line is a no-op.
        let (again, none) = split_timing(&canonical);
        assert_eq!(again, canonical);
        assert!(none.is_none());
        // Both halves validate against their schemas.
        assert_eq!(validate_cells(&format!("{canonical}\n"), CELL_SCHEMA), Ok(1));
        assert_eq!(validate_cells(&format!("{timing}\n"), TIMING_SCHEMA), Ok(1));
    }

    #[test]
    fn validator_rejects_missing_and_miskinded_keys() {
        let missing = "{\"kind\":\"a\",\"cell\":{}}\n";
        let err = validate_cells(missing, CELL_SCHEMA).unwrap_err();
        assert!(err.contains("steps"), "{err}");

        let miskinded = "{\"kind\":1,\"cell\":{},\"steps\":1,\"wall_ms\":2}\n";
        let err = validate_cells(miskinded, CELL_SCHEMA).unwrap_err();
        assert!(err.contains("\"kind\""), "{err}");

        let not_obj = "[1,2,3]\n";
        let err = validate_cells(not_obj, CELL_SCHEMA).unwrap_err();
        assert!(err.contains("not an object"), "{err}");

        let malformed = format!("{}\nnot json\n", cell_line("a"));
        let err = validate_cells(&malformed, CELL_SCHEMA).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn schema_for_path_matches_on_the_final_component_only() {
        use std::path::Path;
        // Relative and absolute paths pick the same schema.
        assert_eq!(schema_for_path(Path::new("BENCH_table1.json")), CELL_SCHEMA);
        assert_eq!(schema_for_path(Path::new("BENCH_profile.json")), PROFILE_SCHEMA);
        assert_eq!(schema_for_path(Path::new("BENCH_native.json")), NATIVE_SCHEMA);
        assert_eq!(schema_for_path(Path::new("BENCH_service.json")), SERVICE_SCHEMA);
        assert_eq!(schema_for_path(Path::new("BENCH_explore.json")), EXPLORE_SCHEMA);
        assert_eq!(schema_for_path(Path::new("BENCH_crash.json")), CRASH_SCHEMA);
        assert_eq!(schema_for_path(Path::new("BENCH_service.timing.json")), TIMING_SCHEMA);
        assert_eq!(schema_for_path(Path::new("BENCH_crash.timing.json")), TIMING_SCHEMA);
        assert_eq!(
            schema_for_path(Path::new("/tmp/deep/dir/BENCH_native.json")),
            NATIVE_SCHEMA
        );
        // A *directory* component that looks like an artifact name must not
        // misroute the file inside it (the bug this helper fixes: suffix
        // matching on the whole path string).
        assert_eq!(
            schema_for_path(Path::new("/runs/profile.json/BENCH_table1.json")),
            CELL_SCHEMA
        );
        assert_eq!(
            schema_for_path(Path::new("/runs/native.json/out.timing.json")),
            TIMING_SCHEMA
        );
        // No final component at all: the default schema.
        assert_eq!(schema_for_path(Path::new("/")), CELL_SCHEMA);
    }

    #[cfg(unix)]
    #[test]
    fn schema_for_path_survives_non_utf8_segments() {
        use std::ffi::OsStr;
        use std::os::unix::ffi::OsStrExt;
        use std::path::PathBuf;
        // A non-UTF8 *directory* segment must not affect the choice…
        let mut p = PathBuf::from(OsStr::from_bytes(b"/tmp/\xff\xfe"));
        p.push("BENCH_service.json");
        assert_eq!(schema_for_path(&p), SERVICE_SCHEMA);
        // …and a non-UTF8 *file name* falls back to the default schema
        // rather than panicking.
        let odd = PathBuf::from(OsStr::from_bytes(b"/tmp/\xffservice.json\xff"));
        assert_eq!(schema_for_path(&odd), CELL_SCHEMA);
    }
}
