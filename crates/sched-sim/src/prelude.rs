//! One-import access to the crate's front-door surface.
//!
//! Everything a typical experiment touches — building a
//! [`Scenario`]/[`Service`], choosing a [`Decider`], reading a
//! [`RunResult`]/[`ServiceReport`], publishing [`Json`] artifact lines —
//! in a single `use`:
//!
//! ```
//! use sched_sim::prelude::*;
//!
//! let mut s = Scenario::new(0u64, SystemSpec::hybrid(2));
//! s.add_process(ProcessorId(0), Priority(1), Box::new(FnMachine::new(
//!     |mem: &mut u64, calls| {
//!         *mem += 1;
//!         if calls == 3 { (StepOutcome::Finished, Some(*mem)) }
//!         else { (StepOutcome::Continue, None) }
//!     })));
//! let r = s.run_fair();
//! assert_eq!(*r.mem(), 4);
//! ```
//!
//! Deeper machinery ([`crate::explore`], [`crate::shrink`],
//! [`crate::history`], …) stays behind its module path on purpose: the
//! prelude is the stable public surface, not the whole crate.

pub use crate::decision::{Decider, RoundRobin, Scripted, SeededRandom};
pub use crate::fuzz::Recording;
pub use crate::ids::{ProcessId, ProcessorId, Priority};
pub use crate::kernel::{Kernel, OpRecord, StepReport, SystemSpec};
pub use crate::machine::{FnMachine, StepCtx, StepMachine, StepOutcome};
pub use crate::prof::{Hist, Profile};
pub use crate::program::{Flow, ProgMachine, ProgramBuilder};
pub use crate::report::{split_timing, validate_cells, Json, Kind};
pub use crate::scenario::{RunResult, Scenario, DEFAULT_STEP_BUDGET};
pub use crate::service::{
    Arrival, Service, ServiceReport, ServiceSpec, ShardPlan, ShardReport,
};
pub use crate::sweep::{cross, default_jobs, run_cells};
