//! Delta-debugging of decision scripts: shrinks a failing schedule to a
//! (locally) minimal counterexample.
//!
//! A fuzzing run that violates an oracle hands us a decision script — the
//! complete schedule, often thousands of entries. [`shrink_script`] reduces
//! it with the classic ddmin loop (remove chunks at halving granularity)
//! followed by a pointwise pass that zeroes surviving entries, re-testing
//! the predicate after every mutation. Candidates are replayed with the
//! *lenient* [`crate::decision::Scripted`] mode, so any integer sequence
//! denotes some complete run: removing a suffix simply hands control to the
//! round-robin fallback, and zeroing an entry picks the first option. The
//! caller is expected to canonicalize the survivor afterwards (re-record
//! the effective decisions of a lenient replay) so the published artifact
//! replays under strict mode.

/// Result of shrinking a decision script.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The reduced script. Still satisfies the caller's failure predicate.
    pub script: Vec<usize>,
    /// How many candidate scripts the predicate was asked to evaluate.
    pub candidates_tried: usize,
}

/// Upper bound on predicate evaluations per [`shrink_script`] call, so a
/// pathological predicate (e.g. one driving a near-budget-length run per
/// candidate) cannot stall the fuzzer.
pub const MAX_SHRINK_CANDIDATES: usize = 10_000;

/// Shrinks `script` while `still_fails` holds, returning a locally minimal
/// failing script.
///
/// `still_fails` must return `true` for the input script (the caller just
/// observed the failure); if it does not, the input is returned unchanged
/// with `candidates_tried == 1`. The predicate should be deterministic —
/// replay the candidate on a fresh kernel and report whether the original
/// violation (or the original *absence* of one, for expected-impossibility
/// probes) reproduces.
pub fn shrink_script(
    script: &[usize],
    mut still_fails: impl FnMut(&[usize]) -> bool,
) -> ShrinkOutcome {
    let mut tried = 1;
    if !still_fails(script) {
        return ShrinkOutcome { script: script.to_vec(), candidates_tried: tried };
    }
    let mut cur: Vec<usize> = script.to_vec();

    // Phase 1: ddmin — try removing contiguous chunks, halving the chunk
    // size whenever a full sweep at the current granularity removes nothing.
    let mut chunk = cur.len().div_ceil(2).max(1);
    while chunk >= 1 && !cur.is_empty() && tried < MAX_SHRINK_CANDIDATES {
        let mut removed_any = false;
        let mut start = 0;
        while start < cur.len() && tried < MAX_SHRINK_CANDIDATES {
            let end = (start + chunk).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (end - start));
            cand.extend_from_slice(&cur[..start]);
            cand.extend_from_slice(&cur[end..]);
            tried += 1;
            if still_fails(&cand) {
                cur = cand;
                removed_any = true;
                // Re-test the same start offset: the next chunk slid into it.
            } else {
                start = end;
            }
        }
        if !removed_any {
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        } else {
            chunk = chunk.min(cur.len().max(1));
        }
    }

    // Phase 2: pointwise simplification — set surviving entries to 0 (the
    // first option), the scripted analogue of shrinking toward a simpler
    // value.
    let mut i = 0;
    while i < cur.len() && tried < MAX_SHRINK_CANDIDATES {
        if cur[i] != 0 {
            let saved = cur[i];
            cur[i] = 0;
            tried += 1;
            if !still_fails(&cur) {
                cur[i] = saved;
            }
        }
        i += 1;
    }

    ShrinkOutcome { script: cur, candidates_tried: tried }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_single_required_entry() {
        // Failure iff the script contains a 7 anywhere.
        let script: Vec<usize> = vec![3, 1, 4, 1, 5, 9, 2, 6, 7, 8, 1, 2];
        let out = shrink_script(&script, |s| s.contains(&7));
        assert_eq!(out.script, vec![7]);
    }

    #[test]
    fn zeroes_irrelevant_values() {
        // Failure iff length >= 3 (values irrelevant).
        let script: Vec<usize> = vec![5, 5, 5, 5, 5, 5];
        let out = shrink_script(&script, |s| s.len() >= 3);
        assert_eq!(out.script, vec![0, 0, 0]);
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let script = vec![1, 2, 3];
        let out = shrink_script(&script, |_| false);
        assert_eq!(out.script, script);
        assert_eq!(out.candidates_tried, 1);
    }

    #[test]
    fn empty_failing_script_stays_empty() {
        let out = shrink_script(&[], |_| true);
        assert!(out.script.is_empty());
    }

    #[test]
    fn respects_candidate_cap() {
        // A predicate that only fails on the full script forces ddmin to try
        // (and reject) many candidates; it must stop at the cap.
        let script: Vec<usize> = (0..2_000).collect();
        let full = script.clone();
        let out = shrink_script(&script, |s| s == full.as_slice());
        assert!(out.candidates_tried <= MAX_SHRINK_CANDIDATES + 1);
        assert_eq!(out.script, full);
    }

    #[test]
    fn shrinks_conjunction_of_two_distant_entries() {
        // Needs both a 9 and a 4 — ddmin must keep two separated chunks.
        let mut script = vec![0usize; 64];
        script[5] = 9;
        script[60] = 4;
        let out = shrink_script(&script, |s| s.contains(&9) && s.contains(&4));
        assert!(out.script.contains(&9) && out.script.contains(&4));
        assert!(out.script.len() <= 4, "expected near-minimal, got {:?}", out.script);
    }
}
