//! Adversarial schedule fuzzing: hostile [`Decider`]s and a recording
//! wrapper that turns any run into a replayable decision script.
//!
//! The paper's guarantees are *conditional on the scheduler* — Fig. 3 needs
//! `Q ≥ 8`, Fig. 7 needs `Q ≥ max(2c, c(2P+1−C))` — and the tame deciders
//! used elsewhere in this crate (round-robin, seeded-uniform) exercise only
//! a benign corner of the schedule space. This module supplies the hostile
//! corner: deciders engineered around the known failure mechanisms of
//! quantum-based scheduling.
//!
//! * [`PreemptionStorm`] — maximizes same-priority preemptions: every
//!   window boundary rotates the holder away from the incumbent, every
//!   first window is as short as possible, processors interleave randomly.
//! * [`PriorityFlipper`] — whipsaws every decision between its extreme
//!   options, flipping which process (and processor) makes progress at
//!   each decision point.
//! * [`QuantumStalker`] — the Appendix A staggering adversary: first
//!   windows are staggered one statement apart so that quantum expiries
//!   land mid-invocation at maximally uneven points, while holders rotate.
//! * [`CrashAfterK`] — fail-stop injection: after `k` decisions, one
//!   victim process is never granted another quantum window while an
//!   alternative exists (the lawful starvation the [`crate::decision`]
//!   module docs permit). Wait-free algorithms must still complete every
//!   *other* process's operations.
//!
//! Because all scheduling nondeterminism flows through
//! [`Decider::choose`], wrapping any of these in a [`Recording`] yields
//! the complete schedule as a `Vec<usize>` — replayable with
//! [`crate::decision::Scripted`] and shrinkable with [`crate::shrink`].

use crate::decision::{Choice, Decider};
use crate::ids::ProcessId;
use crate::rng::SplitMix64;

/// Records every index an inner decider returns, yielding the run's
/// complete decision script (the same sequence
/// [`crate::obs::Trace::decisions`] extracts from a capture, without the
/// cost of full event capture).
pub struct Recording<'a> {
    inner: &'a mut dyn Decider,
    script: Vec<usize>,
}

impl<'a> Recording<'a> {
    /// Wraps `inner`, recording each chosen index.
    pub fn new(inner: &'a mut dyn Decider) -> Self {
        Recording { inner, script: Vec::new() }
    }

    /// The decisions recorded so far.
    pub fn script(&self) -> &[usize] {
        &self.script
    }

    /// Consumes the recorder, returning the recorded script.
    pub fn into_script(self) -> Vec<usize> {
        self.script
    }
}

impl Decider for Recording<'_> {
    fn choose(&mut self, choice: Choice<'_>, n: usize) -> usize {
        let c = self.inner.choose(choice, n);
        self.script.push(c);
        c
    }
}

/// Preemption-storm adversary: every quantum-window boundary displaces the
/// incumbent holder (guaranteeing a same-priority preemption whenever an
/// alternative is ready), every first window is a single statement, and
/// processor interleaving is seeded-random.
#[derive(Clone, Debug)]
pub struct PreemptionStorm {
    rng: SplitMix64,
    last_holder: Vec<(u32, u32, ProcessId)>,
}

impl PreemptionStorm {
    /// Creates the adversary from `seed`.
    pub fn new(seed: u64) -> Self {
        PreemptionStorm { rng: SplitMix64::new(seed), last_holder: Vec::new() }
    }
}

impl Decider for PreemptionStorm {
    fn choose(&mut self, choice: Choice<'_>, n: usize) -> usize {
        match choice {
            Choice::Cpu { .. } => self.rng.index(n),
            Choice::Holder { cpu, prio, options } => {
                let key = (cpu.0, prio.0);
                let last = self
                    .last_holder
                    .iter()
                    .find(|(c, p, _)| (*c, *p) == key)
                    .map(|(_, _, h)| *h);
                // Displace the incumbent whenever possible; among the
                // alternatives, pick randomly so repeated seeds explore
                // different rotation orders.
                let alts: Vec<usize> = (0..n).filter(|&i| Some(options[i]) != last).collect();
                let idx =
                    if alts.is_empty() { 0 } else { alts[self.rng.index(alts.len())] };
                self.last_holder.retain(|(c, p, _)| (*c, *p) != key);
                self.last_holder.push((key.0, key.1, options[idx]));
                idx
            }
            // Shortest possible first window: the first quantum boundary
            // arrives after one statement.
            Choice::FirstCredit { .. } => 0,
        }
    }
}

/// Flip-flop adversary: alternates every decision between its extreme
/// options — lowest-indexed, then highest-indexed — independently per
/// decision kind. On `Holder` choices (ascending pid order) this whipsaws
/// the window between the lowest and highest ready pid; on `FirstCredit`
/// it alternates the shortest and the full first window.
#[derive(Clone, Debug, Default)]
pub struct PriorityFlipper {
    cpu_flip: bool,
    holder_flip: bool,
    credit_flip: bool,
}

impl PriorityFlipper {
    /// Creates the flip-flop adversary (first pick of each kind is the
    /// lowest option).
    pub fn new() -> Self {
        PriorityFlipper::default()
    }
}

impl Decider for PriorityFlipper {
    fn choose(&mut self, choice: Choice<'_>, n: usize) -> usize {
        let flip = match choice {
            Choice::Cpu { .. } => &mut self.cpu_flip,
            Choice::Holder { .. } => &mut self.holder_flip,
            Choice::FirstCredit { .. } => &mut self.credit_flip,
        };
        let high = *flip;
        *flip = !*flip;
        if high {
            n - 1
        } else {
            0
        }
    }
}

/// The Appendix A staggering adversary: first quantum windows are
/// staggered one statement apart (the `i`-th first dispatch gets a first
/// window of `i + 1` statements, wrapping at `Q`), so quantum boundaries
/// fall at maximally uneven points across processes; window holders
/// rotate round-robin and processors rotate round-robin.
#[derive(Clone, Debug, Default)]
pub struct QuantumStalker {
    stagger: usize,
    cpu_next: usize,
    holder_next: usize,
}

impl QuantumStalker {
    /// Creates the staggering adversary.
    pub fn new() -> Self {
        QuantumStalker::default()
    }
}

impl Decider for QuantumStalker {
    fn choose(&mut self, choice: Choice<'_>, n: usize) -> usize {
        match choice {
            Choice::Cpu { .. } => {
                self.cpu_next = self.cpu_next.wrapping_add(1);
                self.cpu_next % n
            }
            Choice::Holder { .. } => {
                self.holder_next = self.holder_next.wrapping_add(1);
                self.holder_next % n
            }
            Choice::FirstCredit { .. } => {
                let k = self.stagger % n;
                self.stagger += 1;
                k
            }
        }
    }
}

/// Fail-stop injection: behaves as `inner` until `k` decisions have been
/// consulted, then never grants a quantum window to `victim` while any
/// other process is ready at that level — the lawful starvation of the
/// scheduling model, standing in for a crash.
///
/// The kernel takes single-option decisions silently, so once every other
/// process finishes, the victim runs after all; a *wait-free* algorithm
/// therefore still completes every operation, just with the victim's
/// operations delayed to the end. Spin-based algorithms (locks, Fig. 9's
/// losers) instead livelock, which is exactly the paper's point.
pub struct CrashAfterK {
    inner: Box<dyn Decider>,
    after: u64,
    seen: u64,
    victim: ProcessId,
    fired: bool,
}

impl CrashAfterK {
    /// Wraps `inner`; after `k` consulted decisions, `victim` stops
    /// receiving quantum windows (while alternatives exist).
    pub fn new(inner: Box<dyn Decider>, k: u64, victim: ProcessId) -> Self {
        CrashAfterK { inner, after: k, seen: 0, victim, fired: false }
    }

    /// Whether the fail-stop transition has happened.
    pub fn fired(&self) -> bool {
        self.fired
    }
}

impl Decider for CrashAfterK {
    fn choose(&mut self, choice: Choice<'_>, n: usize) -> usize {
        if !self.fired {
            if self.seen < self.after {
                // Still alive: count this decision toward the crash point.
                // The counter latches once the crash fires, so the
                // fail-stop transition happens exactly once per run.
                self.seen += 1;
            } else if let Choice::Holder { options, .. } = &choice {
                // Fire at the first window grant where the victim is
                // actually ready (`Holder` options *are* the ready set):
                // "crashing" a held or finished process would be
                // unobservable and would pad shrunk counterexample
                // scripts with dead decisions.
                if options.contains(&self.victim) {
                    debug_assert!(
                        n >= 2,
                        "crash adversary fired with victim {:?} as the only \
                         ready process; starvation cannot model this crash",
                        self.victim,
                    );
                    self.fired = true;
                }
            }
        }
        let pick = self.inner.choose(choice.clone(), n);
        if self.fired {
            if let Choice::Holder { options, .. } = choice {
                if options[pick] == self.victim {
                    // Skip the crashed process: the next ready alternative
                    // (consulted choices have n ≥ 2 distinct pids, so one
                    // always exists).
                    return (0..n)
                        .map(|i| (pick + i) % n)
                        .find(|&i| options[i] != self.victim)
                        .unwrap_or(pick);
                }
            }
        }
        pick
    }
}

/// The hostile decider family by name, for fuzz grids and reports. The
/// names index [`hostile`].
pub const HOSTILE_NAMES: [&str; 4] = ["storm", "flip", "stalker", "crash"];

/// Builds a hostile decider by name. `seed` parameterizes the stochastic
/// adversaries and, for `"crash"`, selects the victim (`seed % n_procs`)
/// and the crash point; `n_procs` is the process count of the scenario the
/// decider will drive.
///
/// # Panics
///
/// Panics on a name outside [`HOSTILE_NAMES`].
pub fn hostile(name: &str, seed: u64, n_procs: u32) -> Box<dyn Decider> {
    match name {
        "storm" => Box::new(PreemptionStorm::new(seed)),
        "flip" => Box::new(PriorityFlipper::new()),
        "stalker" => Box::new(QuantumStalker::new()),
        "crash" => Box::new(CrashAfterK::new(
            Box::new(PreemptionStorm::new(seed)),
            4 + seed % 16,
            ProcessId((seed % u64::from(n_procs.max(1))) as u32),
        )),
        other => panic!("unknown hostile decider {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::Scripted;
    use crate::ids::{Priority, ProcessorId};

    fn holder(options: &[ProcessId]) -> Choice<'_> {
        Choice::Holder { cpu: ProcessorId(0), prio: Priority(1), options }
    }

    #[test]
    fn recording_captures_inner_choices() {
        let mut inner = Scripted::new(vec![2, 0, 1]);
        let mut rec = Recording::new(&mut inner);
        let opts = [ProcessId(0), ProcessId(1), ProcessId(2)];
        for _ in 0..3 {
            rec.choose(holder(&opts), 3);
        }
        assert_eq!(rec.into_script(), vec![2, 0, 1]);
    }

    #[test]
    fn storm_always_displaces_incumbent() {
        let mut d = PreemptionStorm::new(9);
        let opts = [ProcessId(0), ProcessId(1), ProcessId(2)];
        let mut last = None;
        for _ in 0..50 {
            let i = d.choose(holder(&opts), 3);
            assert_ne!(Some(opts[i]), last, "re-picked the incumbent holder");
            last = Some(opts[i]);
        }
        // And the shortest possible first window.
        assert_eq!(d.choose(Choice::FirstCredit { pid: ProcessId(0), quantum: 8 }, 8), 0);
    }

    #[test]
    fn flipper_alternates_extremes_per_kind() {
        let mut d = PriorityFlipper::new();
        let opts = [ProcessId(0), ProcessId(1), ProcessId(2)];
        assert_eq!(d.choose(holder(&opts), 3), 0);
        assert_eq!(d.choose(holder(&opts), 3), 2);
        assert_eq!(d.choose(holder(&opts), 3), 0);
        // Independent toggle per decision kind.
        assert_eq!(d.choose(Choice::FirstCredit { pid: ProcessId(0), quantum: 4 }, 4), 0);
        assert_eq!(d.choose(Choice::FirstCredit { pid: ProcessId(1), quantum: 4 }, 4), 3);
    }

    #[test]
    fn stalker_staggers_first_credits() {
        let mut d = QuantumStalker::new();
        let picks: Vec<usize> = (0..4)
            .map(|p| d.choose(Choice::FirstCredit { pid: ProcessId(p), quantum: 4 }, 4))
            .collect();
        // Credits 1, 2, 3, 4: boundaries staggered one statement apart.
        assert_eq!(picks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn crash_starves_victim_after_k() {
        let inner = Box::new(QuantumStalker::new());
        let mut d = CrashAfterK::new(inner, 2, ProcessId(1));
        let opts = [ProcessId(0), ProcessId(1), ProcessId(2)];
        let mut victim_granted_after_crash = false;
        for i in 0..20 {
            let pick = d.choose(holder(&opts), 3);
            if i >= 2 && opts[pick] == ProcessId(1) {
                victim_granted_after_crash = true;
            }
        }
        assert!(!victim_granted_after_crash, "victim granted a window after the crash point");
    }

    /// Regression: the fail-stop transition latches exactly once, at the
    /// first window grant where the victim is ready — non-`Holder`
    /// decisions and grants not involving the victim cannot fire it, and
    /// the pre-crash counter stops ticking after the fire.
    #[test]
    fn crash_fires_exactly_once_when_victim_is_ready() {
        let inner = Box::new(QuantumStalker::new());
        let mut d = CrashAfterK::new(inner, 2, ProcessId(1));
        let with_victim = [ProcessId(0), ProcessId(1), ProcessId(2)];
        let without_victim = [ProcessId(0), ProcessId(2)];

        // Two pre-crash decisions: still alive.
        let _ = d.choose(holder(&with_victim), 3);
        let _ = d.choose(holder(&with_victim), 3);
        assert!(!d.fired(), "crash fired before the crash point");

        // Armed, but the victim is not ready: must not fire.
        let _ = d.choose(Choice::FirstCredit { pid: ProcessId(0), quantum: 4 }, 4);
        let _ = d.choose(holder(&without_victim), 2);
        assert!(!d.fired(), "crash fired while the victim was not ready");

        // First grant with the victim ready: fires, and stays fired.
        let i = d.choose(holder(&with_victim), 3);
        assert!(d.fired(), "crash did not fire at a grant with the victim ready");
        assert_ne!(with_victim[i], ProcessId(1), "victim granted at the crash instant");
        for _ in 0..10 {
            let i = d.choose(holder(&with_victim), 3);
            assert_ne!(with_victim[i], ProcessId(1), "victim granted after the crash");
            assert!(d.fired());
        }
    }

    #[test]
    fn hostile_registry_builds_every_name() {
        let opts = [ProcessId(0), ProcessId(1)];
        for name in HOSTILE_NAMES {
            let mut d = hostile(name, 3, 2);
            let i = d.choose(holder(&opts), 2);
            assert!(i < 2, "{name} returned out-of-range index");
        }
    }

    #[test]
    #[should_panic(expected = "unknown hostile decider")]
    fn hostile_rejects_unknown_names() {
        let _ = hostile("gentle", 0, 2);
    }
}
