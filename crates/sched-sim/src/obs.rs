//! Schedule observability: structured event capture, per-run counters,
//! and deterministic replay.
//!
//! The paper's claims are statements about *schedules* — Axiom 2 quantum
//! windows, same- vs higher-priority preemptions, adversarially staggered
//! quantum boundaries — so validating (or debugging) an algorithm requires
//! seeing which interleaving actually occurred. This module provides three
//! layers, all driven by [`crate::kernel::Kernel`]:
//!
//! 1. **Event capture** — attach a [`Trace`] with
//!    [`Kernel::attach_obs`](crate::kernel::Kernel::attach_obs) and the
//!    kernel emits one [`ObsEvent`] per dispatch, statement, quantum-window
//!    transition, preemption, invocation boundary, and scheduling decision.
//!    With no trace attached the kernel skips all event construction — the
//!    only always-on cost is the [`ObsCounters`] integer increments.
//! 2. **Line-oriented serialization** — [`Trace::to_text`] /
//!    [`Trace::from_text`] round-trip a capture through a plain-text
//!    artifact (one event per line), so a failing stress test can dump its
//!    schedule to disk and a human or a regression test can reload it.
//! 3. **Deterministic replay** — every bit of scheduling nondeterminism in
//!    the kernel flows through [`crate::decision::Decider::choose`], and the
//!    trace records each consulted decision. [`Trace::scripted`] therefore
//!    converts a capture into a strict [`Scripted`] decider that re-executes
//!    the recorded run *bit-identically* against a freshly constructed,
//!    identical kernel (same memory, machines, spec, and process order).
//!
//! # Capture → replay
//!
//! ```
//! use sched_sim::decision::SeededRandom;
//! use sched_sim::ids::{ProcessorId, Priority};
//! use sched_sim::kernel::{Kernel, SystemSpec};
//! use sched_sim::machine::{FnMachine, StepOutcome};
//!
//! let build = || {
//!     let mut k = Kernel::new(0u64, SystemSpec::hybrid(2).with_history());
//!     for _ in 0..2 {
//!         k.add_process(ProcessorId(0), Priority(1), Box::new(FnMachine::new(
//!             |mem: &mut u64, calls| {
//!                 *mem += 1;
//!                 if calls == 3 { (StepOutcome::Finished, None) }
//!                 else { (StepOutcome::Continue, None) }
//!             })));
//!     }
//!     k
//! };
//! // Capture a seeded-random run.
//! let mut k = build();
//! k.attach_obs();
//! k.run(&mut SeededRandom::new(7), 100);
//! let trace = k.take_obs().unwrap();
//!
//! // Serialize, reload, replay: the history is bit-identical.
//! let reloaded = sched_sim::obs::Trace::from_text(&trace.to_text()).unwrap();
//! let mut r = build();
//! r.run(&mut reloaded.scripted(), 100);
//! assert_eq!(r.history(), k.history());
//! assert_eq!(r.mem, k.mem);
//! ```

use crate::decision::Scripted;
use crate::history::StmtEffect;
use crate::ids::{ProcessId, ProcessorId, Priority};
use crate::sym::{Interner, Sym};

/// Which kind of scheduling decision was consulted (see
/// [`crate::decision::Choice`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionKind {
    /// Which processor executes the next statement.
    Cpu,
    /// Which equal-priority process receives the opening quantum window.
    Holder,
    /// How many statements a first quantum window holds.
    FirstCredit,
}

impl DecisionKind {
    /// The serialization tag (matches [`crate::decision::Choice::kind`]).
    pub fn tag(self) -> &'static str {
        match self {
            DecisionKind::Cpu => "cpu",
            DecisionKind::Holder => "holder",
            DecisionKind::FirstCredit => "first-credit",
        }
    }

    fn from_tag(s: &str) -> Option<Self> {
        match s {
            "cpu" => Some(DecisionKind::Cpu),
            "holder" => Some(DecisionKind::Holder),
            "first-credit" => Some(DecisionKind::FirstCredit),
            _ => None,
        }
    }
}

/// Why a quantum window stopped admitting its holder's statements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowCloseReason {
    /// The holder completed an object invocation (Axiom 2's "terminates").
    InvocationEnd,
    /// The holder finished its final invocation.
    Finished,
    /// The holder exhausted its credit mid-invocation — the next
    /// equal-priority dispatch is a *quantum preemption*.
    Expired,
    /// The holder crashed while the window was open.
    Crashed,
}

impl WindowCloseReason {
    fn tag(self) -> &'static str {
        match self {
            WindowCloseReason::InvocationEnd => "inv-end",
            WindowCloseReason::Finished => "finished",
            WindowCloseReason::Expired => "expired",
            WindowCloseReason::Crashed => "crashed",
        }
    }

    fn from_tag(s: &str) -> Option<Self> {
        match s {
            "inv-end" => Some(WindowCloseReason::InvocationEnd),
            "finished" => Some(WindowCloseReason::Finished),
            "expired" => Some(WindowCloseReason::Expired),
            "crashed" => Some(WindowCloseReason::Crashed),
            _ => None,
        }
    }
}

/// One observed scheduling event.
///
/// Events are emitted in execution order; within a single kernel step the
/// order is: decisions, same-priority preemption, window open, dispatch,
/// higher-priority-preemption resume, invocation start, the statement
/// itself, invocation end, window close.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObsEvent {
    /// A scheduling decision was consulted (only decision points with at
    /// least two options are consulted, hence recorded). The recorded
    /// `chosen` sequence is exactly what [`Trace::scripted`] replays.
    Decision {
        /// The decision's kind.
        kind: DecisionKind,
        /// How many options were available.
        arity: usize,
        /// The index the decider chose.
        chosen: usize,
    },
    /// A processor switched to executing `pid` (it was not the last process
    /// to execute on that cpu).
    Dispatch {
        /// Global statement time.
        t: u64,
        /// The process now executing.
        pid: ProcessId,
        /// Its processor.
        cpu: ProcessorId,
        /// Its priority.
        prio: Priority,
    },
    /// A quantum window opened at (`cpu`, `prio`) for `holder`.
    WindowOpen {
        /// Global statement time.
        t: u64,
        /// The processor.
        cpu: ProcessorId,
        /// The priority level of the window.
        prio: Priority,
        /// The process granted the window.
        holder: ProcessId,
        /// The window's size in own-statements (`Q`, or less for an
        /// adversarially aligned first window).
        credit: u32,
    },
    /// A quantum window stopped admitting statements.
    WindowClose {
        /// Global statement time (of the holder's last statement in it).
        t: u64,
        /// The processor.
        cpu: ProcessorId,
        /// The priority level.
        prio: Priority,
        /// The window's holder.
        holder: ProcessId,
        /// Why it closed.
        reason: WindowCloseReason,
    },
    /// `victim` was preempted mid-invocation by the equal-priority process
    /// `by` (a quantum preemption; emitted when the new window displaces
    /// the exhausted holder).
    PreemptSame {
        /// Global statement time of the displacement.
        t: u64,
        /// The preempted process.
        victim: ProcessId,
        /// The equal-priority process taking over.
        by: ProcessId,
    },
    /// `victim` resumed after being interleaved mid-invocation by
    /// higher-priority processes only (a priority preemption episode,
    /// accounted at resume like [`crate::kernel::ProcStats`]).
    PreemptHigher {
        /// Global statement time of the resume.
        t: u64,
        /// The process that had been preempted.
        victim: ProcessId,
    },
    /// `pid` began a new object invocation.
    InvStart {
        /// Global statement time of the invocation's first statement.
        t: u64,
        /// The invoking process.
        pid: ProcessId,
        /// Zero-based invocation index within the process.
        inv_index: u32,
    },
    /// `pid` completed an object invocation.
    InvEnd {
        /// Global statement time of the completing statement.
        t: u64,
        /// The invoking process.
        pid: ProcessId,
        /// Zero-based invocation index within the process.
        inv_index: u32,
        /// The invocation's output, if any.
        output: Option<u64>,
    },
    /// An atomic statement executed.
    Stmt {
        /// Global statement time.
        t: u64,
        /// The executing process.
        pid: ProcessId,
        /// Its processor.
        cpu: ProcessorId,
        /// Its priority.
        prio: Priority,
        /// Effect on the invocation.
        effect: StmtEffect,
        /// The statement's display label (may be empty), interned in the
        /// owning trace's [`Trace::syms`] table. The derived `==` on events
        /// compares the raw id, meaningful only within one trace; whole-
        /// trace `==` resolves labels and is safe across traces.
        label: Sym,
    },
    /// A held process was released (became ready).
    Release {
        /// Global statement time.
        t: u64,
        /// The released process.
        pid: ProcessId,
    },
    /// A process crashed: its partial invocation was discarded and it is
    /// invisible to its scheduler until it recovers.
    Crash {
        /// Global statement time.
        t: u64,
        /// The crashed process.
        pid: ProcessId,
    },
    /// A crashed process recovered (became ready again); its next dispatch
    /// re-runs the interrupted invocation from its first statement.
    Recover {
        /// Global statement time.
        t: u64,
        /// The recovered process.
        pid: ProcessId,
    },
}

fn effect_tag(e: StmtEffect) -> &'static str {
    match e {
        StmtEffect::Continue => "continue",
        StmtEffect::InvocationEnd => "inv-end",
        StmtEffect::Finished => "finished",
    }
}

fn effect_from_tag(s: &str) -> Option<StmtEffect> {
    match s {
        "continue" => Some(StmtEffect::Continue),
        "inv-end" => Some(StmtEffect::InvocationEnd),
        "finished" => Some(StmtEffect::Finished),
        _ => None,
    }
}

/// Escapes a statement label for the single-line text format.
fn escape(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// A captured event stream: the kernel's observability sink.
///
/// Attach with [`Kernel::attach_obs`](crate::kernel::Kernel::attach_obs),
/// retrieve with [`Kernel::take_obs`](crate::kernel::Kernel::take_obs) (or
/// borrow via [`Kernel::obs`](crate::kernel::Kernel::obs)). See the
/// [module docs](self) for the capture → serialize → replay workflow.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// The captured events, in execution order.
    pub events: Vec<ObsEvent>,
    /// Symbol table resolving the [`Sym`] labels of statement events. The
    /// kernel keeps it synced with its master table after every statement,
    /// so a detached trace is always self-contained.
    pub syms: Interner,
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.events.len() == other.events.len()
            && self.events.iter().zip(&other.events).all(|(a, b)| match (a, b) {
                (
                    ObsEvent::Stmt { t, pid, cpu, prio, effect, label },
                    ObsEvent::Stmt {
                        t: t2,
                        pid: p2,
                        cpu: c2,
                        prio: pr2,
                        effect: e2,
                        label: l2,
                    },
                ) => {
                    (t, pid, cpu, prio, effect) == (t2, p2, c2, pr2, e2)
                        && self.syms.resolve(*label) == other.syms.resolve(*l2)
                }
                _ => a == b,
            })
    }
}

impl Eq for Trace {}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event (called by the kernel).
    pub fn record(&mut self, ev: ObsEvent) {
        self.events.push(ev);
    }

    /// The chosen indices of all recorded scheduling decisions, in order —
    /// the complete schedule of the captured run.
    pub fn decisions(&self) -> Vec<usize> {
        self.events
            .iter()
            .filter_map(|e| match e {
                ObsEvent::Decision { chosen, .. } => Some(*chosen),
                _ => None,
            })
            .collect()
    }

    /// Converts the capture into a strict [`Scripted`] decider that replays
    /// the recorded schedule. Driving an *identically constructed* kernel
    /// with it re-executes the run bit-identically (same history, same
    /// final memory, same outputs); the strict decider panics if the replay
    /// ever diverges (a decision point the capture never saw).
    pub fn scripted(&self) -> Scripted {
        Scripted::strict(self.decisions())
    }

    /// Serializes the trace as line-oriented text: one event per line,
    /// space-separated fields, statement labels escaped and last. Lines
    /// starting with `#` are comments.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# sched-sim trace v1\n");
        for ev in &self.events {
            match ev {
                ObsEvent::Decision { kind, arity, chosen } => {
                    out.push_str(&format!("decision {} {arity} {chosen}\n", kind.tag()));
                }
                ObsEvent::Dispatch { t, pid, cpu, prio } => {
                    out.push_str(&format!("dispatch {t} {} {} {}\n", pid.0, cpu.0, prio.0));
                }
                ObsEvent::WindowOpen { t, cpu, prio, holder, credit } => {
                    out.push_str(&format!(
                        "window-open {t} {} {} {} {credit}\n",
                        cpu.0, prio.0, holder.0
                    ));
                }
                ObsEvent::WindowClose { t, cpu, prio, holder, reason } => {
                    out.push_str(&format!(
                        "window-close {t} {} {} {} {}\n",
                        cpu.0,
                        prio.0,
                        holder.0,
                        reason.tag()
                    ));
                }
                ObsEvent::PreemptSame { t, victim, by } => {
                    out.push_str(&format!("preempt-same {t} {} {}\n", victim.0, by.0));
                }
                ObsEvent::PreemptHigher { t, victim } => {
                    out.push_str(&format!("preempt-higher {t} {}\n", victim.0));
                }
                ObsEvent::InvStart { t, pid, inv_index } => {
                    out.push_str(&format!("inv-start {t} {} {inv_index}\n", pid.0));
                }
                ObsEvent::InvEnd { t, pid, inv_index, output } => {
                    let o = output.map_or("-".to_string(), |v| v.to_string());
                    out.push_str(&format!("inv-end {t} {} {inv_index} {o}\n", pid.0));
                }
                ObsEvent::Stmt { t, pid, cpu, prio, effect, label } => {
                    out.push_str(&format!(
                        "stmt {t} {} {} {} {} {}\n",
                        pid.0,
                        cpu.0,
                        prio.0,
                        effect_tag(*effect),
                        escape(self.syms.resolve(*label))
                    ));
                }
                ObsEvent::Release { t, pid } => {
                    out.push_str(&format!("release {t} {}\n", pid.0));
                }
                ObsEvent::Crash { t, pid } => {
                    out.push_str(&format!("crash {t} {}\n", pid.0));
                }
                ObsEvent::Recover { t, pid } => {
                    out.push_str(&format!("recover {t} {}\n", pid.0));
                }
            }
        }
        out
    }

    /// Parses text produced by [`Trace::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_text(text: &str) -> Result<Trace, String> {
        let mut events = Vec::new();
        let mut syms = Interner::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
            let mut f = line.split(' ');
            let tag = f.next().unwrap_or_default();
            // Numeric field helpers over the iterator.
            macro_rules! num {
                ($ty:ty) => {
                    f.next()
                        .and_then(|s| s.parse::<$ty>().ok())
                        .ok_or_else(|| err("bad or missing numeric field"))?
                };
            }
            let ev = match tag {
                "decision" => {
                    let kind = f
                        .next()
                        .and_then(DecisionKind::from_tag)
                        .ok_or_else(|| err("bad decision kind"))?;
                    ObsEvent::Decision { kind, arity: num!(usize), chosen: num!(usize) }
                }
                "dispatch" => ObsEvent::Dispatch {
                    t: num!(u64),
                    pid: ProcessId(num!(u32)),
                    cpu: ProcessorId(num!(u32)),
                    prio: Priority(num!(u32)),
                },
                "window-open" => ObsEvent::WindowOpen {
                    t: num!(u64),
                    cpu: ProcessorId(num!(u32)),
                    prio: Priority(num!(u32)),
                    holder: ProcessId(num!(u32)),
                    credit: num!(u32),
                },
                "window-close" => ObsEvent::WindowClose {
                    t: num!(u64),
                    cpu: ProcessorId(num!(u32)),
                    prio: Priority(num!(u32)),
                    holder: ProcessId(num!(u32)),
                    reason: f
                        .next()
                        .and_then(WindowCloseReason::from_tag)
                        .ok_or_else(|| err("bad close reason"))?,
                },
                "preempt-same" => ObsEvent::PreemptSame {
                    t: num!(u64),
                    victim: ProcessId(num!(u32)),
                    by: ProcessId(num!(u32)),
                },
                "preempt-higher" => {
                    ObsEvent::PreemptHigher { t: num!(u64), victim: ProcessId(num!(u32)) }
                }
                "inv-start" => ObsEvent::InvStart {
                    t: num!(u64),
                    pid: ProcessId(num!(u32)),
                    inv_index: num!(u32),
                },
                "inv-end" => {
                    let (t, pid, inv_index) = (num!(u64), ProcessId(num!(u32)), num!(u32));
                    let o = f.next().ok_or_else(|| err("missing output field"))?;
                    let output = if o == "-" {
                        None
                    } else {
                        Some(o.parse::<u64>().map_err(|_| err("bad output"))?)
                    };
                    ObsEvent::InvEnd { t, pid, inv_index, output }
                }
                "stmt" => {
                    let t = num!(u64);
                    let pid = ProcessId(num!(u32));
                    let cpu = ProcessorId(num!(u32));
                    let prio = Priority(num!(u32));
                    let effect = f
                        .next()
                        .and_then(effect_from_tag)
                        .ok_or_else(|| err("bad effect"))?;
                    let label = syms.intern(&unescape(&f.collect::<Vec<_>>().join(" ")));
                    ObsEvent::Stmt { t, pid, cpu, prio, effect, label }
                }
                "release" => {
                    ObsEvent::Release { t: num!(u64), pid: ProcessId(num!(u32)) }
                }
                "crash" => ObsEvent::Crash { t: num!(u64), pid: ProcessId(num!(u32)) },
                "recover" => ObsEvent::Recover { t: num!(u64), pid: ProcessId(num!(u32)) },
                _ => return Err(err("unknown event tag")),
            };
            events.push(ev);
        }
        Ok(Trace { events, syms })
    }
}

/// Always-on per-run scheduler counters, maintained by every kernel
/// regardless of whether a [`Trace`] is attached (plain integer
/// increments; read with
/// [`Kernel::counters`](crate::kernel::Kernel::counters)).
///
/// These are the run-level aggregates of the paper's schedule vocabulary;
/// per-process breakdowns live in [`crate::kernel::ProcStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObsCounters {
    /// Atomic statements executed.
    pub statements: u64,
    /// Scheduling decisions consulted (decision points with ≥ 2 options).
    pub decisions: u64,
    /// Quantum windows opened (Axiom 2 allocations).
    pub windows_opened: u64,
    /// Same-priority (quantum) preemptions: a mid-invocation holder was
    /// displaced by an equal-priority process.
    pub same_prio_preemptions: u64,
    /// Higher-priority preemption episodes: a process resumed after being
    /// interleaved mid-invocation by higher-priority processes only.
    pub higher_prio_preemptions: u64,
    /// Quantum boundaries crossed mid-invocation: a window's credit ran
    /// out while its holder was inside an object invocation.
    pub quantum_expiries_mid_invocation: u64,
    /// Object invocations completed.
    pub invocations_completed: u64,
    /// Held processes released.
    pub releases: u64,
    /// Processes crashed (partial invocations discarded).
    pub crashes: u64,
    /// Crashed processes recovered.
    pub recoveries: u64,
}

impl ObsCounters {
    /// Mean statements per completed operation, or `None` before any
    /// operation completes.
    pub fn statements_per_op(&self) -> Option<f64> {
        (self.invocations_completed > 0)
            .then(|| self.statements as f64 / self.invocations_completed as f64)
    }
}

impl std::fmt::Display for ObsCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "statements executed        {}", self.statements)?;
        writeln!(f, "decisions consulted        {}", self.decisions)?;
        writeln!(f, "quantum windows opened     {}", self.windows_opened)?;
        writeln!(f, "same-prio preemptions      {}", self.same_prio_preemptions)?;
        writeln!(f, "higher-prio preemptions    {}", self.higher_prio_preemptions)?;
        writeln!(
            f,
            "quantum expiries mid-inv   {}",
            self.quantum_expiries_mid_invocation
        )?;
        writeln!(f, "invocations completed      {}", self.invocations_completed)?;
        if self.crashes > 0 || self.recoveries > 0 {
            writeln!(f, "crashes                    {}", self.crashes)?;
            writeln!(f, "recoveries                 {}", self.recoveries)?;
        }
        match self.statements_per_op() {
            Some(s) => writeln!(f, "statements per operation   {s:.2}"),
            None => writeln!(f, "statements per operation   n/a"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut syms = Interner::new();
        let weird = syms.intern("3: w := P[i]  \\ weird \\ label");
        Trace {
            syms,
            events: vec![
                ObsEvent::Decision { kind: DecisionKind::Cpu, arity: 2, chosen: 1 },
                ObsEvent::Decision { kind: DecisionKind::Holder, arity: 3, chosen: 0 },
                ObsEvent::Decision { kind: DecisionKind::FirstCredit, arity: 4, chosen: 2 },
                ObsEvent::WindowOpen {
                    t: 0,
                    cpu: ProcessorId(1),
                    prio: Priority(2),
                    holder: ProcessId(3),
                    credit: 3,
                },
                ObsEvent::Dispatch {
                    t: 0,
                    pid: ProcessId(3),
                    cpu: ProcessorId(1),
                    prio: Priority(2),
                },
                ObsEvent::InvStart { t: 0, pid: ProcessId(3), inv_index: 0 },
                ObsEvent::Stmt {
                    t: 0,
                    pid: ProcessId(3),
                    cpu: ProcessorId(1),
                    prio: Priority(2),
                    effect: StmtEffect::Continue,
                    label: weird,
                },
                ObsEvent::PreemptSame { t: 4, victim: ProcessId(3), by: ProcessId(5) },
                ObsEvent::PreemptHigher { t: 6, victim: ProcessId(3) },
                ObsEvent::InvEnd { t: 9, pid: ProcessId(3), inv_index: 0, output: Some(7) },
                ObsEvent::InvEnd { t: 11, pid: ProcessId(5), inv_index: 0, output: None },
                ObsEvent::WindowClose {
                    t: 11,
                    cpu: ProcessorId(1),
                    prio: Priority(2),
                    holder: ProcessId(3),
                    reason: WindowCloseReason::Expired,
                },
                ObsEvent::Release { t: 12, pid: ProcessId(9) },
                ObsEvent::Crash { t: 13, pid: ProcessId(3) },
                ObsEvent::WindowClose {
                    t: 13,
                    cpu: ProcessorId(1),
                    prio: Priority(2),
                    holder: ProcessId(3),
                    reason: WindowCloseReason::Crashed,
                },
                ObsEvent::Recover { t: 15, pid: ProcessId(3) },
            ],
        }
    }

    #[test]
    fn text_round_trip_is_identity() {
        let t = sample();
        let text = t.to_text();
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(back, t);
        // And stable: serializing again yields the same text.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn labels_with_newlines_survive() {
        let mut syms = Interner::new();
        let label = syms.intern("line1\nline2 \\ tail");
        let t = Trace {
            syms,
            events: vec![ObsEvent::Stmt {
                t: 0,
                pid: ProcessId(0),
                cpu: ProcessorId(0),
                prio: Priority(1),
                effect: StmtEffect::Finished,
                label,
            }],
        };
        assert_eq!(Trace::from_text(&t.to_text()).unwrap(), t);
    }

    #[test]
    fn traces_with_different_tables_compare_by_resolved_label() {
        // Same event stream, but one table has extra entries interned
        // before the label — raw Sym ids differ, resolved labels match.
        let mk = |prefix: &[&str], label: &str| {
            let mut syms = Interner::new();
            for p in prefix {
                syms.intern(p);
            }
            let label = syms.intern(label);
            Trace {
                syms,
                events: vec![ObsEvent::Stmt {
                    t: 0,
                    pid: ProcessId(0),
                    cpu: ProcessorId(0),
                    prio: Priority(1),
                    effect: StmtEffect::Continue,
                    label,
                }],
            }
        };
        assert_eq!(mk(&["a", "b"], "x"), mk(&[], "x"));
        assert_ne!(mk(&[], "x"), mk(&[], "y"));
    }

    #[test]
    fn decisions_extracts_schedule_in_order() {
        assert_eq!(sample().decisions(), vec![1, 0, 2]);
    }

    #[test]
    fn parse_rejects_garbage_with_line_number() {
        let err = Trace::from_text("decision cpu 2 1\nnonsense here\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = Trace::from_text("decision warp 2 1\n").unwrap_err();
        assert!(err.contains("decision kind"), "{err}");
    }

    #[test]
    fn counters_statements_per_op() {
        let mut c = ObsCounters::default();
        assert_eq!(c.statements_per_op(), None);
        c.statements = 24;
        c.invocations_completed = 3;
        assert_eq!(c.statements_per_op(), Some(8.0));
        // Display renders every field without panicking.
        let s = c.to_string();
        assert!(s.contains("statements per operation   8.00"));
    }
}
