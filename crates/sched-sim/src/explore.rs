//! Exhaustive exploration of all well-formed schedules of a small system.
//!
//! The kernel funnels every scheduling choice through decision points and
//! exposes [`Kernel::step_scripted`], which aborts without mutation when a
//! script runs out at a decision. The explorer exploits this to enumerate
//! the complete schedule tree of a configuration: it forks a cloned kernel
//! at every decision point, deduplicating visited states by
//! [`Kernel::state_hash`].
//!
//! This turns the simulator into a bounded model checker: Lemma 1 of the
//! paper ("each process returns the same value" for the Fig. 3 consensus
//! algorithm) is verified here by exhaustive enumeration rather than by
//! testing a sample of schedules, and the same machinery powers the valency
//! analysis of the lower-bound experiments (Fig. 10).
//!
//! # Scaling levers
//!
//! Three composable options push exploration beyond what the plain serial
//! DFS can finish:
//!
//! * **Parallel frontier sharding** ([`explore_parallel`]): workers on the
//!   [`crate::sweep::pool`] pop subtree roots from a shared deque of forked
//!   kernels, keep per-worker visited sets, and claim states exactly once
//!   in a sharded global dedup table. [`ExploreStats`] merge commutatively,
//!   so an **untruncated** parallel run is bit-identical to serial at every
//!   jobs count (the same guarantee [`crate::sweep::run_cells`] pins).
//! * **Symmetry reduction** ([`ExploreBounds::symmetry`]): processes at
//!   equal priority on one processor — and whole processors — are
//!   interchangeable, so the state hash is canonicalized under those
//!   permutations and only one representative per orbit is explored. Sound
//!   only when the memory holds no per-process data; see
//!   [`Kernel::track_state_hash_cfg`].
//! * **Partial-order reduction** ([`ExploreBounds::por`]): statements on
//!   different processors with disjoint declared
//!   [`crate::machine::Footprint`]s commute, so at a cpu decision whose
//!   options include a provably-independent cpu only that one
//!   representative interleaving is explored ([`Kernel::ample_cpu_choice`],
//!   a singleton persistent set). Sound unconditionally — undeclared
//!   footprints simply never prune — and it preserves the *set* of
//!   quiescent states exactly, so `terminals` is invariant under it.
//!
//! # Dedup-collision (false-prune) probability
//!
//! Two distinct states whose hashes collide are wrongly merged, silently
//! pruning the second one's subtree. With the default 64-bit keys and `N`
//! visited states, the expected number of colliding pairs is about
//! `N² / 2⁶⁵` — negligible for `N ≪ 2³²` (at `N = 10⁸`, ≈ 3·10⁻⁴ expected
//! collisions). For larger runs, or when a verification result must not
//! hinge on that bound, [`ExploreBounds::wide_hash`] keys the visited sets
//! by [`Kernel::state_hash_wide`] — two independently seeded 64-bit hashes
//! — dropping the expectation to about `N² / 2¹²⁹` (≈ 10⁻²² at `N = 10⁸`)
//! at the cost of a second hash per step.

use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Condvar, Mutex};

use crate::kernel::{HashCfg, Kernel, StepAttempt};
use crate::sweep;

/// The dedup keys are already state hashes, so the visited set stores them
/// under an identity "hasher" instead of re-hashing through SipHash on
/// every insert. For 128-bit keys the two independent halves are folded,
/// which keeps the bucket index uniformly distributed.
#[derive(Default)]
struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _: &[u8]) {
        unreachable!("the visited set holds only u64/u128 keys");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }

    fn write_u128(&mut self, v: u128) {
        self.0 = (v as u64) ^ ((v >> 64) as u64);
    }
}

type VisitedSet = HashSet<u128, BuildHasherDefault<IdentityHasher>>;

/// A per-step decision script: at most three decisions resolve in one step
/// (cpu, holder, first-credit), so forks carry a fixed array, not a `Vec`.
#[derive(Clone, Copy, Default)]
struct Script {
    buf: [usize; 3],
    len: u8,
}

impl Script {
    fn as_slice(&self) -> &[usize] {
        &self.buf[..self.len as usize]
    }

    fn pushed(mut self, c: usize) -> Script {
        self.buf[self.len as usize] = c;
        self.len += 1;
        self
    }
}

/// Why an exploration stopped before exhausting the schedule tree.
///
/// Diagnosable per cause: a truncated parallel run is **not** bit-identical
/// to serial (which states fall inside a bound depends on visit order), so
/// callers asserting determinism should require [`Truncation::None`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Truncation {
    /// The exploration ran to completion (the determinism-guaranteed case).
    #[default]
    None,
    /// Some branch reached [`ExploreBounds::max_depth`]; its subtree was
    /// abandoned (the rest of the tree was still explored).
    DepthBound,
    /// [`ExploreBounds::max_total_steps`] was exhausted; the exploration
    /// stopped wherever it stood.
    StepBound,
    /// A visitor returned [`Verdict::Stop`] (e.g. a counterexample).
    VisitorStop,
}

impl Truncation {
    /// Stable lower-case name for reports ("none", "depth-bound", …).
    pub fn name(self) -> &'static str {
        match self {
            Truncation::None => "none",
            Truncation::DepthBound => "depth-bound",
            Truncation::StepBound => "step-bound",
            Truncation::VisitorStop => "visitor-stop",
        }
    }
}

/// Exploration statistics, returned by [`explore`] and
/// [`explore_parallel`].
///
/// All counters are merged commutatively across parallel workers, and on
/// an untruncated run every field is independent of both visit order and
/// jobs count: parallel == serial, bit for bit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Terminal (quiescent) states visited. Invariant under partial-order
    /// reduction (which preserves the quiescent-state set exactly); under
    /// symmetry reduction it counts orbits instead of raw states.
    pub terminals: u64,
    /// Statement executions across all explored branches.
    pub steps: u64,
    /// States skipped because an identical (or, under symmetry, an
    /// equivalent) state had been visited.
    pub deduped: u64,
    /// Scheduler branches skipped by partial-order reduction: at each cpu
    /// decision restricted to an ample choice, the other `arity - 1`
    /// options.
    pub por_pruned: u64,
    /// Peak size of the (global) visited set — the number of distinct
    /// states claimed. Reported so truncated runs are diagnosable: it
    /// tells how far a bounded exploration got, and it is the memory
    /// high-water mark in keys.
    pub peak_visited: u64,
    /// Why the exploration stopped early, if it did.
    pub truncation: Truncation,
}

impl ExploreStats {
    /// `true` if exploration stopped before exhausting the schedule tree.
    pub fn truncated(&self) -> bool {
        self.truncation != Truncation::None
    }
}

/// Visitor verdict controlling the exploration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Keep exploring.
    KeepGoing,
    /// Abandon the entire exploration (e.g. a counterexample was found).
    Stop,
}

/// Bounds and search options for [`explore`] / [`explore_parallel`].
#[derive(Clone, Copy, Debug)]
pub struct ExploreBounds {
    /// Maximum statements along any single branch.
    pub max_depth: u64,
    /// Maximum total statement executions across the exploration.
    pub max_total_steps: u64,
    /// Key the visited sets by 128-bit [`Kernel::state_hash_wide`] instead
    /// of the 64-bit [`Kernel::state_hash`], shrinking the false-prune
    /// probability (see the module docs) at the cost of a second hash per
    /// step.
    pub wide_hash: bool,
    /// Symmetry reduction: canonicalize state hashes under
    /// priority-preserving process permutations (and processor
    /// permutations), exploring one representative per orbit. **Opt-in and
    /// caller-audited**: sound only if the memory holds no per-process
    /// data and machines ignore [`crate::machine::StepCtx::pid`] — see
    /// [`Kernel::track_state_hash_cfg`].
    pub symmetry: bool,
    /// Partial-order reduction via [`Kernel::ample_cpu_choice`]:
    /// independent statements on disjoint memory cells commute, so one
    /// representative interleaving per commuting class is explored. Sound
    /// unconditionally (machines without declared footprints never prune);
    /// preserves the quiescent-state set exactly.
    pub por: bool,
}

impl Default for ExploreBounds {
    fn default() -> Self {
        ExploreBounds {
            max_depth: 10_000,
            max_total_steps: 50_000_000,
            wide_hash: false,
            symmetry: false,
            por: false,
        }
    }
}

impl ExploreBounds {
    /// Both reductions on (symmetry + partial-order). The symmetry half is
    /// caller-audited — see [`ExploreBounds::symmetry`].
    #[must_use]
    pub fn reduced(mut self) -> Self {
        self.symmetry = true;
        self.por = true;
        self
    }

    /// 128-bit dedup keys on.
    #[must_use]
    pub fn wide(mut self) -> Self {
        self.wide_hash = true;
        self
    }

    fn hash_cfg(&self) -> HashCfg {
        HashCfg { symmetric: self.symmetry, wide: self.wide_hash }
    }
}

/// Exhaustively explores every schedule of `kernel`, invoking `on_terminal`
/// at each quiescent state.
///
/// States are deduplicated by [`Kernel::state_hash`] — two interleavings
/// reaching identical (memory, machine, scheduler) states are explored
/// once. Hash collisions would wrongly prune; see the module docs for the
/// probability and the [`ExploreBounds::wide_hash`] mitigation.
///
/// Returns the stats; [`ExploreStats::truncation`] reports whether (and
/// why) any bound cut the search.
pub fn explore<M, F>(kernel: &Kernel<M>, bounds: ExploreBounds, mut on_terminal: F) -> ExploreStats
where
    M: Clone + Hash,
    F: FnMut(&Kernel<M>) -> Verdict,
{
    explore_serial(kernel, bounds, &mut on_terminal)
}

fn explore_serial<M, F>(
    kernel: &Kernel<M>,
    bounds: ExploreBounds,
    on_terminal: &mut F,
) -> ExploreStats
where
    M: Clone + Hash,
    F: FnMut(&Kernel<M>) -> Verdict,
{
    let mut stats = ExploreStats::default();
    let mut seen = VisitedSet::default();
    let mut root = kernel.clone();
    root.track_state_hash_cfg(bounds.hash_cfg());
    seen.insert(root.state_hash_wide());
    // DFS over (kernel-state, partial decision script for the next step).
    let mut stack: Vec<(Kernel<M>, Script, u64)> = vec![(root, Script::default(), 0)];

    while let Some((mut k, script, depth)) = stack.pop() {
        if stats.steps >= bounds.max_total_steps {
            stats.truncation = stats.truncation.max(Truncation::StepBound);
            break;
        }
        // Step the popped kernel in place: `step_scripted` aborts without
        // mutation at a decision point, so `k` is reusable as the last
        // fork there, and the successful-step path clones nothing.
        match k.step_scripted(script.as_slice()) {
            StepAttempt::Quiescent => {
                stats.terminals += 1;
                if on_terminal(&k) == Verdict::Stop {
                    stats.truncation = stats.truncation.max(Truncation::VisitorStop);
                    break;
                }
            }
            StepAttempt::Stepped(_) => {
                stats.steps += 1;
                if depth + 1 >= bounds.max_depth {
                    stats.truncation = stats.truncation.max(Truncation::DepthBound);
                    continue;
                }
                if seen.insert(k.state_hash_wide()) {
                    stack.push((k, Script::default(), depth + 1));
                } else {
                    stats.deduped += 1;
                }
            }
            StepAttempt::NeedChoice { arity, kind } => {
                // A cpu decision is always the first of a step, so at this
                // point the script is empty and `k` is the undisturbed
                // pre-step state the ample-set analysis needs.
                if bounds.por && kind == "cpu" {
                    if let Some(c) = k.ample_cpu_choice() {
                        stats.por_pruned += (arity - 1) as u64;
                        stack.push((k, script.pushed(c), depth));
                        continue;
                    }
                }
                // Same push order as cloning every branch (choice 0 first,
                // arity-1 on top), but only arity-1 clones.
                for c in 0..arity - 1 {
                    stack.push((k.clone(), script.pushed(c), depth));
                }
                stack.push((k, script.pushed(arity - 1), depth));
            }
        }
    }
    stats.peak_visited = seen.len() as u64;
    stats
}

/// Shared state of one parallel exploration.
struct Frontier<M> {
    /// Subtree roots available for any worker to claim.
    items: Vec<(Kernel<M>, Script, u64)>,
    /// Workers currently blocked waiting for frontier work.
    idle: usize,
}

struct SharedExplore<M, F> {
    queue: Mutex<Frontier<M>>,
    cvar: Condvar,
    /// Sharded global dedup table: a state is *claimed* by the worker
    /// whose insert wins; every later arrival counts as deduped. Sharding
    /// by high hash bits keeps lock contention low.
    shards: Vec<Mutex<VisitedSet>>,
    shard_mask: u64,
    steps: AtomicU64,
    terminals: AtomicU64,
    deduped: AtomicU64,
    por_pruned: AtomicU64,
    truncation: AtomicU8,
    stop: AtomicBool,
    jobs: usize,
    on_terminal: F,
}

impl<M, F> SharedExplore<M, F> {
    fn shard(&self, h: u128) -> &Mutex<VisitedSet> {
        // Top bits of the primary hash: disjoint from the HashSet's bucket
        // bits (which come from the low end of the folded key).
        &self.shards[((h as u64) >> 48 & self.shard_mask) as usize]
    }

    fn truncate(&self, t: Truncation) {
        self.truncation.fetch_max(t as u8, Ordering::Relaxed);
    }

    /// Claims the next subtree root, blocking while the frontier is empty
    /// but other workers are still running. Returns `None` when all
    /// workers are idle and the frontier is drained — global termination.
    fn global_pop(&self) -> Option<(Kernel<M>, Script, u64)> {
        let mut q = self.queue.lock().expect("frontier poisoned");
        loop {
            if let Some(w) = q.items.pop() {
                return Some(w);
            }
            q.idle += 1;
            if q.idle == self.jobs {
                self.cvar.notify_all();
                return None;
            }
            q = self.cvar.wait(q).expect("frontier poisoned");
            if q.idle == self.jobs && q.items.is_empty() {
                return None;
            }
            q.idle -= 1;
        }
    }

    /// Moves the *oldest* (shallowest, hence largest) half of an
    /// overfull local stack to the shared frontier if anyone is starving.
    fn donate(&self, local: &mut Vec<(Kernel<M>, Script, u64)>) {
        if local.len() < 2 {
            return;
        }
        if let Ok(mut q) = self.queue.try_lock() {
            if q.idle > 0 && q.items.len() < self.jobs {
                let n = local.len() / 2;
                q.items.extend(local.drain(..n));
                self.cvar.notify_all();
            }
        }
    }
}

/// [`explore`], fanned out over `jobs` workers of the
/// [`crate::sweep::pool`] with a shared work frontier.
///
/// Workers pop subtree roots (forked kernels) from a shared deque, keep a
/// per-worker visited set as a lock-free first-level filter, and claim
/// each state exactly once in a sharded global dedup table keyed by
/// [`Kernel::state_hash`] (or [`Kernel::state_hash_wide`]). Stats are
/// merged commutatively.
///
/// **Determinism**: on a run with [`Truncation::None`], every
/// [`ExploreStats`] field — and the multiset of terminal states passed to
/// `on_terminal` — is bit-identical to the serial [`explore`] for every
/// `jobs` value: exactly-once claiming makes the expanded-state set, and
/// hence all counters, independent of visit order. A truncated run is
/// order-dependent by nature (which states fall inside a bound depends on
/// who got there first); `on_terminal` observes terminals in a
/// nondeterministic order either way, so order-sensitive visitors must
/// collect and sort. Under symmetry reduction the *representative* of each
/// orbit passed to the visitor may differ between runs (stats still
/// match); compare permutation-invariant summaries.
///
/// `jobs <= 1` runs the serial explorer inline — same code path, zero
/// synchronization.
pub fn explore_parallel<M, F>(
    kernel: &Kernel<M>,
    bounds: ExploreBounds,
    jobs: usize,
    on_terminal: F,
) -> ExploreStats
where
    M: Clone + Hash + Send,
    F: Fn(&Kernel<M>) -> Verdict + Sync,
{
    if jobs <= 1 {
        let mut f = on_terminal;
        return explore_serial(kernel, bounds, &mut f);
    }
    let mut root = kernel.clone();
    root.track_state_hash_cfg(bounds.hash_cfg());
    let root_hash = root.state_hash_wide();
    let n_shards = (jobs * 8).next_power_of_two().min(64);
    let shared = SharedExplore {
        queue: Mutex::new(Frontier {
            items: vec![(root, Script::default(), 0)],
            idle: 0,
        }),
        cvar: Condvar::new(),
        shards: (0..n_shards).map(|_| Mutex::new(VisitedSet::default())).collect(),
        shard_mask: (n_shards - 1) as u64,
        steps: AtomicU64::new(0),
        terminals: AtomicU64::new(0),
        deduped: AtomicU64::new(0),
        por_pruned: AtomicU64::new(0),
        truncation: AtomicU8::new(Truncation::None as u8),
        stop: AtomicBool::new(false),
        jobs,
        on_terminal,
    };
    shared
        .shard(root_hash)
        .lock()
        .expect("dedup shard poisoned")
        .insert(root_hash);

    sweep::pool(jobs, |_w| {
        let mut local: Vec<(Kernel<M>, Script, u64)> = Vec::new();
        let mut lseen = VisitedSet::default();
        loop {
            shared.donate(&mut local);
            let Some((mut k, script, depth)) = local.pop().or_else(|| shared.global_pop())
            else {
                break;
            };
            if shared.stop.load(Ordering::Relaxed) {
                continue; // drain remaining work without exploring it
            }
            if shared.steps.load(Ordering::Relaxed) >= bounds.max_total_steps {
                shared.truncate(Truncation::StepBound);
                shared.stop.store(true, Ordering::Relaxed);
                continue;
            }
            match k.step_scripted(script.as_slice()) {
                StepAttempt::Quiescent => {
                    shared.terminals.fetch_add(1, Ordering::Relaxed);
                    if (shared.on_terminal)(&k) == Verdict::Stop {
                        shared.truncate(Truncation::VisitorStop);
                        shared.stop.store(true, Ordering::Relaxed);
                        shared.cvar.notify_all();
                    }
                }
                StepAttempt::Stepped(_) => {
                    shared.steps.fetch_add(1, Ordering::Relaxed);
                    if depth + 1 >= bounds.max_depth {
                        shared.truncate(Truncation::DepthBound);
                        continue;
                    }
                    let h = k.state_hash_wide();
                    if !lseen.insert(h) {
                        // This worker has already seen (and the table has
                        // already claimed) this state.
                        shared.deduped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let fresh =
                        shared.shard(h).lock().expect("dedup shard poisoned").insert(h);
                    if fresh {
                        local.push((k, Script::default(), depth + 1));
                    } else {
                        shared.deduped.fetch_add(1, Ordering::Relaxed);
                    }
                }
                StepAttempt::NeedChoice { arity, kind } => {
                    if bounds.por && kind == "cpu" {
                        if let Some(c) = k.ample_cpu_choice() {
                            shared.por_pruned.fetch_add((arity - 1) as u64, Ordering::Relaxed);
                            local.push((k, script.pushed(c), depth));
                            continue;
                        }
                    }
                    for c in 0..arity - 1 {
                        local.push((k.clone(), script.pushed(c), depth));
                    }
                    local.push((k, script.pushed(arity - 1), depth));
                }
            }
        }
    });

    let peak_visited: u64 = shared
        .shards
        .iter()
        .map(|s| s.lock().expect("dedup shard poisoned").len() as u64)
        .sum();
    let truncation = match shared.truncation.load(Ordering::Relaxed) {
        x if x == Truncation::None as u8 => Truncation::None,
        x if x == Truncation::DepthBound as u8 => Truncation::DepthBound,
        x if x == Truncation::StepBound as u8 => Truncation::StepBound,
        _ => Truncation::VisitorStop,
    };
    ExploreStats {
        terminals: shared.terminals.load(Ordering::Relaxed),
        steps: shared.steps.load(Ordering::Relaxed),
        deduped: shared.deduped.load(Ordering::Relaxed),
        por_pruned: shared.por_pruned.load(Ordering::Relaxed),
        peak_visited,
        truncation,
    }
}

/// Convenience wrapper: explores and asserts `property` at every terminal
/// state, returning `Ok(stats)` or the first failure message.
///
/// # Errors
///
/// Returns `Err` with the property's message at the first terminal state
/// where `property` returns `Some(message)`.
pub fn check_all_schedules<M, F>(
    kernel: &Kernel<M>,
    bounds: ExploreBounds,
    mut property: F,
) -> Result<ExploreStats, String>
where
    M: Clone + Hash,
    F: FnMut(&Kernel<M>) -> Option<String>,
{
    let mut failure: Option<String> = None;
    let stats = explore(kernel, bounds, |k| match property(k) {
        None => Verdict::KeepGoing,
        Some(msg) => {
            failure = Some(msg);
            Verdict::Stop
        }
    });
    match failure {
        Some(msg) => Err(msg),
        None => Ok(stats),
    }
}

/// [`check_all_schedules`] over [`explore_parallel`]. On a violating
/// configuration the *reported* counterexample may differ between runs
/// (whichever worker trips first); whether a violation exists does not.
///
/// # Errors
///
/// Returns `Err` with a failing terminal state's message.
pub fn check_all_schedules_parallel<M, F>(
    kernel: &Kernel<M>,
    bounds: ExploreBounds,
    jobs: usize,
    property: F,
) -> Result<ExploreStats, String>
where
    M: Clone + Hash + Send,
    F: Fn(&Kernel<M>) -> Option<String> + Sync,
{
    let failure: Mutex<Option<String>> = Mutex::new(None);
    let stats = explore_parallel(kernel, bounds, jobs, |k| match property(k) {
        None => Verdict::KeepGoing,
        Some(msg) => {
            failure.lock().expect("failure slot poisoned").get_or_insert(msg);
            Verdict::Stop
        }
    });
    match failure.into_inner().expect("failure slot poisoned") {
        Some(msg) => Err(msg),
        None => Ok(stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ProcessorId, Priority};
    use crate::kernel::SystemSpec;
    use crate::machine::{FnMachine, Footprint, StepOutcome};

    /// Two writers racing on one cell, two statements each, on separate
    /// cpus: all interleavings should be visited.
    fn racing_kernel() -> Kernel<(u64, u64)> {
        let mut k = Kernel::new((0u64, 0u64), SystemSpec::hybrid(4));
        k.add_process(
            ProcessorId(0),
            Priority(1),
            Box::new(FnMachine::new(|mem: &mut (u64, u64), calls| {
                if calls == 0 {
                    mem.0 = 1;
                    (StepOutcome::Continue, None)
                } else {
                    mem.1 = 1;
                    (StepOutcome::Finished, None)
                }
            })),
        );
        k.add_process(
            ProcessorId(1),
            Priority(1),
            Box::new(FnMachine::new(|mem: &mut (u64, u64), calls| {
                if calls == 0 {
                    mem.0 = 2;
                    (StepOutcome::Continue, None)
                } else {
                    mem.1 = 2;
                    (StepOutcome::Finished, None)
                }
            })),
        );
        k
    }

    /// Two writers on *disjoint* cells with declared footprints, on
    /// separate cpus: partial-order reduction should collapse the
    /// interleavings to one representative order.
    fn disjoint_kernel() -> Kernel<(u64, u64)> {
        let mut k = Kernel::new((0u64, 0u64), SystemSpec::hybrid(4));
        k.add_process(
            ProcessorId(0),
            Priority(1),
            Box::new(
                FnMachine::new(|mem: &mut (u64, u64), calls| {
                    mem.0 += 1;
                    if calls == 1 { (StepOutcome::Finished, None) } else { (StepOutcome::Continue, None) }
                })
                .with_footprint(Footprint::rw(0b01)),
            ),
        );
        k.add_process(
            ProcessorId(1),
            Priority(1),
            Box::new(
                FnMachine::new(|mem: &mut (u64, u64), calls| {
                    mem.1 += 1;
                    if calls == 1 { (StepOutcome::Finished, None) } else { (StepOutcome::Continue, None) }
                })
                .with_footprint(Footprint::rw(0b10)),
            ),
        );
        k
    }

    #[test]
    fn visits_all_final_memories() {
        let k = racing_kernel();
        let mut finals: Vec<(u64, u64)> = Vec::new();
        let stats = explore(&k, ExploreBounds::default(), |k| {
            finals.push(k.mem);
            Verdict::KeepGoing
        });
        finals.sort_unstable();
        finals.dedup();
        // Interleavings of (a1 a2) and (b1 b2): last writer of each cell
        // varies; all four (1,1) (1,2) (2,1) (2,2) are reachable.
        assert_eq!(finals, vec![(1, 1), (1, 2), (2, 1), (2, 2)]);
        assert!(stats.terminals >= 4);
        assert!(!stats.truncated());
    }

    #[test]
    fn check_all_schedules_reports_counterexample() {
        let k = racing_kernel();
        let err = check_all_schedules(&k, ExploreBounds::default(), |k| {
            (k.mem == (2, 1)).then(|| "reached (2,1)".to_string())
        })
        .unwrap_err();
        assert_eq!(err, "reached (2,1)");
    }

    #[test]
    fn check_all_schedules_passes_valid_property() {
        let k = racing_kernel();
        let stats = check_all_schedules(&k, ExploreBounds::default(), |k| {
            (k.mem.0 == 0).then(|| "cell never written".to_string())
        })
        .unwrap();
        assert!(stats.terminals > 0);
    }

    #[test]
    fn dedup_prunes_converging_schedules() {
        let k = racing_kernel();
        let stats = explore(&k, ExploreBounds::default(), |_| Verdict::KeepGoing);
        assert!(stats.deduped > 0, "expected convergent interleavings to dedup");
        // Every non-terminal arrival either claimed a fresh state or
        // deduped, so the visited set is exactly root + claims.
        assert_eq!(stats.peak_visited, 1 + stats.steps - stats.deduped);
    }

    #[test]
    fn step_bound_truncates() {
        let k = racing_kernel();
        let stats = explore(
            &k,
            ExploreBounds { max_total_steps: 2, ..ExploreBounds::default() },
            |_| Verdict::KeepGoing,
        );
        assert_eq!(stats.truncation, Truncation::StepBound);
        assert!(stats.truncated());
    }

    #[test]
    fn depth_bound_truncates_with_reason() {
        let k = racing_kernel();
        let stats = explore(
            &k,
            ExploreBounds { max_depth: 2, ..ExploreBounds::default() },
            |_| Verdict::KeepGoing,
        );
        assert_eq!(stats.truncation, Truncation::DepthBound);
    }

    #[test]
    fn visitor_stop_truncates_with_reason() {
        let k = racing_kernel();
        let stats = explore(&k, ExploreBounds::default(), |_| Verdict::Stop);
        assert_eq!(stats.truncation, Truncation::VisitorStop);
    }

    #[test]
    fn wide_hash_agrees_with_narrow() {
        let k = racing_kernel();
        let narrow = explore(&k, ExploreBounds::default(), |_| Verdict::KeepGoing);
        let wide = explore(&k, ExploreBounds::default().wide(), |_| Verdict::KeepGoing);
        assert_eq!(narrow, wide, "no collisions at this scale: identical stats");
    }

    #[test]
    fn parallel_matches_serial_at_every_jobs_count() {
        let k = racing_kernel();
        let serial = explore(&k, ExploreBounds::default(), |_| Verdict::KeepGoing);
        for jobs in [1, 2, 4, 8] {
            let par = explore_parallel(&k, ExploreBounds::default(), jobs, |_| Verdict::KeepGoing);
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_collects_same_terminal_memories() {
        let k = racing_kernel();
        let finals = Mutex::new(Vec::new());
        explore_parallel(&k, ExploreBounds::default(), 4, |k| {
            finals.lock().unwrap().push(k.mem);
            Verdict::KeepGoing
        });
        let mut finals = finals.into_inner().unwrap();
        finals.sort_unstable();
        finals.dedup();
        assert_eq!(finals, vec![(1, 1), (1, 2), (2, 1), (2, 2)]);
    }

    #[test]
    fn por_prunes_disjoint_writers_without_losing_terminals() {
        let k = disjoint_kernel();
        let plain = explore(&k, ExploreBounds::default(), |_| Verdict::KeepGoing);
        let finals = Mutex::new(Vec::new());
        let reduced = explore_parallel(
            &k,
            ExploreBounds { por: true, ..ExploreBounds::default() },
            1,
            |k| {
                finals.lock().unwrap().push(k.mem);
                Verdict::KeepGoing
            },
        );
        // POR preserves the quiescent-state set exactly...
        assert_eq!(reduced.terminals, plain.terminals);
        assert_eq!(finals.into_inner().unwrap(), vec![(2, 2)]);
        // ...while exploring strictly fewer interleavings.
        assert!(reduced.por_pruned > 0);
        assert!(reduced.steps < plain.steps, "{} !< {}", reduced.steps, plain.steps);
        assert!(reduced.peak_visited < plain.peak_visited);
    }

    #[test]
    fn por_never_prunes_undeclared_footprints() {
        let k = racing_kernel(); // FnMachine defaults to Footprint::Unknown
        let plain = explore(&k, ExploreBounds::default(), |_| Verdict::KeepGoing);
        let reduced =
            explore(&k, ExploreBounds { por: true, ..ExploreBounds::default() }, |_| {
                Verdict::KeepGoing
            });
        assert_eq!(plain, reduced);
        assert_eq!(reduced.por_pruned, 0);
    }

    #[test]
    fn symmetry_merges_interchangeable_processes() {
        // Two *identical* machines at equal priority on one cpu: states
        // that differ only by which process advanced first are one orbit.
        let mk = || {
            let mut k = Kernel::new(0u64, SystemSpec::hybrid(2));
            for _ in 0..2 {
                k.add_process(
                    ProcessorId(0),
                    Priority(1),
                    Box::new(FnMachine::new(|mem: &mut u64, calls| {
                        *mem += 1;
                        if calls == 1 {
                            (StepOutcome::Finished, None)
                        } else {
                            (StepOutcome::Continue, None)
                        }
                    })),
                );
            }
            k
        };
        let plain = explore(&mk(), ExploreBounds::default(), |_| Verdict::KeepGoing);
        let sym = explore(
            &mk(),
            ExploreBounds { symmetry: true, ..ExploreBounds::default() },
            |_| Verdict::KeepGoing,
        );
        assert!(sym.peak_visited < plain.peak_visited, "{sym:?} vs {plain:?}");
        assert!(sym.terminals <= plain.terminals);
        assert!(sym.terminals >= 1);
    }
}
