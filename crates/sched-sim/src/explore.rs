//! Exhaustive exploration of all well-formed schedules of a small system.
//!
//! The kernel funnels every scheduling choice through decision points and
//! exposes [`Kernel::step_scripted`], which aborts without mutation when a
//! script runs out at a decision. The explorer exploits this to enumerate
//! the complete schedule tree of a configuration: it forks a cloned kernel
//! at every decision point, deduplicating visited states by
//! [`Kernel::state_hash`].
//!
//! This turns the simulator into a bounded model checker: Lemma 1 of the
//! paper ("each process returns the same value" for the Fig. 3 consensus
//! algorithm) is verified here by exhaustive enumeration rather than by
//! testing a sample of schedules, and the same machinery powers the valency
//! analysis of the lower-bound experiments (Fig. 10).

use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use crate::kernel::{Kernel, StepAttempt};

/// The dedup keys are already 64-bit state hashes, so the visited set
/// stores them under an identity "hasher" instead of re-hashing through
/// SipHash on every insert.
#[derive(Default)]
struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _: &[u8]) {
        unreachable!("the visited set holds only u64 keys");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// A per-step decision script: at most three decisions resolve in one step
/// (cpu, holder, first-credit), so forks carry a fixed array, not a `Vec`.
#[derive(Clone, Copy, Default)]
struct Script {
    buf: [usize; 3],
    len: u8,
}

impl Script {
    fn as_slice(&self) -> &[usize] {
        &self.buf[..self.len as usize]
    }

    fn pushed(mut self, c: usize) -> Script {
        self.buf[self.len as usize] = c;
        self.len += 1;
        self
    }
}

/// Exploration statistics, returned by [`explore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Terminal (quiescent) states visited.
    pub terminals: u64,
    /// Statement executions across all explored branches.
    pub steps: u64,
    /// States skipped because an identical state had been visited.
    pub deduped: u64,
    /// `true` if exploration stopped early because a visitor returned
    /// [`Verdict::Stop`] or a bound was hit.
    pub truncated: bool,
}

/// Visitor verdict controlling the exploration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Keep exploring.
    KeepGoing,
    /// Abandon the entire exploration (e.g. a counterexample was found).
    Stop,
}

/// Bounds for [`explore`].
#[derive(Clone, Copy, Debug)]
pub struct ExploreBounds {
    /// Maximum statements along any single branch.
    pub max_depth: u64,
    /// Maximum total statement executions across the exploration.
    pub max_total_steps: u64,
}

impl Default for ExploreBounds {
    fn default() -> Self {
        ExploreBounds { max_depth: 10_000, max_total_steps: 50_000_000 }
    }
}

/// Exhaustively explores every schedule of `kernel`, invoking `on_terminal`
/// at each quiescent state.
///
/// States are deduplicated by [`Kernel::state_hash`] — two interleavings
/// reaching identical (memory, machine, scheduler) states are explored
/// once. Hash collisions would wrongly prune; the hash is 64-bit, so for
/// the small configurations this is meant for (≪ 2³² states) collisions
/// are negligible.
///
/// Returns the stats; `truncated` reports whether any bound cut the search.
pub fn explore<M, F>(kernel: &Kernel<M>, bounds: ExploreBounds, mut on_terminal: F) -> ExploreStats
where
    M: Clone + Hash,
    F: FnMut(&Kernel<M>) -> Verdict,
{
    let mut stats = ExploreStats::default();
    let mut seen: HashSet<u64, BuildHasherDefault<IdentityHasher>> = HashSet::default();
    let mut root = kernel.clone();
    root.track_state_hash();
    seen.insert(root.state_hash());
    // DFS over (kernel-state, partial decision script for the next step).
    let mut stack: Vec<(Kernel<M>, Script, u64)> = vec![(root, Script::default(), 0)];

    while let Some((mut k, script, depth)) = stack.pop() {
        if stats.steps >= bounds.max_total_steps {
            stats.truncated = true;
            break;
        }
        // Step the popped kernel in place: `step_scripted` aborts without
        // mutation at a decision point, so `k` is reusable as the last
        // fork there, and the successful-step path clones nothing.
        match k.step_scripted(script.as_slice()) {
            StepAttempt::Quiescent => {
                stats.terminals += 1;
                if on_terminal(&k) == Verdict::Stop {
                    stats.truncated = true;
                    break;
                }
            }
            StepAttempt::Stepped(_) => {
                stats.steps += 1;
                if depth + 1 >= bounds.max_depth {
                    stats.truncated = true;
                    continue;
                }
                if seen.insert(k.state_hash()) {
                    stack.push((k, Script::default(), depth + 1));
                } else {
                    stats.deduped += 1;
                }
            }
            StepAttempt::NeedChoice { arity, .. } => {
                // Same push order as cloning every branch (choice 0 first,
                // arity-1 on top), but only arity-1 clones.
                for c in 0..arity - 1 {
                    stack.push((k.clone(), script.pushed(c), depth));
                }
                stack.push((k, script.pushed(arity - 1), depth));
            }
        }
    }
    stats
}

/// Convenience wrapper: explores and asserts `property` at every terminal
/// state, returning `Ok(stats)` or the first failure message.
///
/// # Errors
///
/// Returns `Err` with the property's message at the first terminal state
/// where `property` returns `Some(message)`.
pub fn check_all_schedules<M, F>(
    kernel: &Kernel<M>,
    bounds: ExploreBounds,
    mut property: F,
) -> Result<ExploreStats, String>
where
    M: Clone + Hash,
    F: FnMut(&Kernel<M>) -> Option<String>,
{
    let mut failure: Option<String> = None;
    let stats = explore(kernel, bounds, |k| match property(k) {
        None => Verdict::KeepGoing,
        Some(msg) => {
            failure = Some(msg);
            Verdict::Stop
        }
    });
    match failure {
        Some(msg) => Err(msg),
        None => Ok(stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ProcessorId, Priority};
    use crate::kernel::SystemSpec;
    use crate::machine::{FnMachine, StepOutcome};

    /// Two writers racing on one cell, two statements each, on separate
    /// cpus: all interleavings should be visited.
    fn racing_kernel() -> Kernel<(u64, u64)> {
        let mut k = Kernel::new((0u64, 0u64), SystemSpec::hybrid(4));
        k.add_process(
            ProcessorId(0),
            Priority(1),
            Box::new(FnMachine::new(|mem: &mut (u64, u64), calls| {
                if calls == 0 {
                    mem.0 = 1;
                    (StepOutcome::Continue, None)
                } else {
                    mem.1 = 1;
                    (StepOutcome::Finished, None)
                }
            })),
        );
        k.add_process(
            ProcessorId(1),
            Priority(1),
            Box::new(FnMachine::new(|mem: &mut (u64, u64), calls| {
                if calls == 0 {
                    mem.0 = 2;
                    (StepOutcome::Continue, None)
                } else {
                    mem.1 = 2;
                    (StepOutcome::Finished, None)
                }
            })),
        );
        k
    }

    #[test]
    fn visits_all_final_memories() {
        let k = racing_kernel();
        let mut finals: Vec<(u64, u64)> = Vec::new();
        let stats = explore(&k, ExploreBounds::default(), |k| {
            finals.push(k.mem);
            Verdict::KeepGoing
        });
        finals.sort_unstable();
        finals.dedup();
        // Interleavings of (a1 a2) and (b1 b2): last writer of each cell
        // varies; all four (1,1) (1,2) (2,1) (2,2) are reachable.
        assert_eq!(finals, vec![(1, 1), (1, 2), (2, 1), (2, 2)]);
        assert!(stats.terminals >= 4);
        assert!(!stats.truncated);
    }

    #[test]
    fn check_all_schedules_reports_counterexample() {
        let k = racing_kernel();
        let err = check_all_schedules(&k, ExploreBounds::default(), |k| {
            (k.mem == (2, 1)).then(|| "reached (2,1)".to_string())
        })
        .unwrap_err();
        assert_eq!(err, "reached (2,1)");
    }

    #[test]
    fn check_all_schedules_passes_valid_property() {
        let k = racing_kernel();
        let stats = check_all_schedules(&k, ExploreBounds::default(), |k| {
            (k.mem.0 == 0).then(|| "cell never written".to_string())
        })
        .unwrap();
        assert!(stats.terminals > 0);
    }

    #[test]
    fn dedup_prunes_converging_schedules() {
        let k = racing_kernel();
        let stats = explore(&k, ExploreBounds::default(), |_| Verdict::KeepGoing);
        assert!(stats.deduped > 0, "expected convergent interleavings to dedup");
    }

    #[test]
    fn step_bound_truncates() {
        let k = racing_kernel();
        let stats = explore(
            &k,
            ExploreBounds { max_depth: 10_000, max_total_steps: 2 },
            |_| Verdict::KeepGoing,
        );
        assert!(stats.truncated);
    }
}
