//! Deterministic statement-level simulation of multiprogrammed systems
//! with hybrid (priority + quantum) schedulers.
//!
//! This crate is the execution-model substrate for the `hybrid-wf`
//! workspace, which reproduces Anderson & Moir, *"Wait-Free Synchronization
//! in Multiprogrammed Systems: Integrating Priority-Based and Quantum-Based
//! Scheduling"* (PODC 1999). The paper models computation as interleavings
//! of *atomic statements*, with a scheduling quantum measured as a
//! statement count; this crate implements that model directly:
//!
//! * [`machine::StepMachine`] — a process; one `step` = one atomic
//!   statement. Most algorithms are written in the [`program`] DSL, which
//!   transcribes the paper's numbered listings line for line.
//! * [`kernel::Kernel`] — a system of processors, each with a hybrid
//!   scheduler enforcing the paper's Axiom 1 (priority) and Axiom 2
//!   (quantum windows that survive higher-priority preemption).
//! * [`decision::Decider`] — all scheduling nondeterminism in one trait:
//!   fair round-robin, seeded random, scripted, and (elsewhere) the
//!   adversaries of the lower-bound proofs.
//! * [`history`] — recorded histories plus an independent well-formedness
//!   checker for the two axioms.
//! * [`trace`] — interleaving diagrams in the style of the paper's
//!   Figs. 1–2.
//! * [`explore`] — exhaustive schedule enumeration (bounded model
//!   checking) for small configurations.
//! * [`scenario`] — the front door: a reusable description of a system
//!   (spec, processes, memory, budget) that can be run to completion many
//!   times, yielding a [`scenario::RunResult`].
//! * [`sweep`] — fans independent runs over a pool of worker threads with
//!   bit-identical parallel/serial output; [`report`] publishes sweep
//!   results as line-oriented JSON.
//! * [`fuzz`] — hostile deciders (preemption storms, the Appendix A
//!   staggering adversary, fail-stop injection) plus a recording wrapper;
//!   [`shrink`] delta-debugs a failing decision script to a minimal
//!   replayable counterexample.
//! * [`prof`] — streaming schedule profiler over the [`obs`] event
//!   stream (window utilization, preemption/retry counts, log-bucketed
//!   histograms) and a Chrome-trace/Perfetto timeline exporter.
//! * [`service`] — the request-serving front door: long-lived workloads
//!   (thousands of clients, sharded objects, open/closed-loop arrivals)
//!   built from per-shard [`scenario::Scenario`]s, with per-shard and
//!   per-priority latency percentiles in a [`service::ServiceReport`].
//! * [`prelude`] — one-import access to the whole front-door surface.
//!
//! # Quick example
//!
//! Two equal-priority processes sharing one processor with quantum 2:
//!
//! ```
//! use sched_sim::ids::{ProcessorId, Priority};
//! use sched_sim::kernel::SystemSpec;
//! use sched_sim::machine::{FnMachine, StepOutcome};
//! use sched_sim::scenario::Scenario;
//!
//! let mut s = Scenario::new(Vec::<u64>::new(), SystemSpec::hybrid(2));
//! for tag in [1u64, 2] {
//!     s.add_process(ProcessorId(0), Priority(1), Box::new(FnMachine::new(
//!         move |mem: &mut Vec<u64>, calls| {
//!             mem.push(tag);
//!             if calls == 3 { (StepOutcome::Finished, None) }
//!             else { (StepOutcome::Continue, None) }
//!         })));
//! }
//! let r = s.run_fair();
//! // Quantum windows of exactly two statements alternate:
//! assert_eq!(*r.mem(), vec![1, 1, 2, 2, 1, 1, 2, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decision;
pub mod explore;
pub mod fuzz;
pub mod history;
pub mod ids;
pub mod kernel;
pub mod machine;
pub mod obs;
pub mod prelude;
pub mod prof;
pub mod program;
pub mod report;
pub mod rng;
pub mod scenario;
pub mod service;
pub mod shrink;
pub mod sweep;
pub mod sym;
pub mod trace;

pub use decision::{Decider, RoundRobin, Scripted, SeededRandom};
pub use fuzz::Recording;
pub use ids::{ProcessId, ProcessorId, Priority};
pub use kernel::{Kernel, SystemSpec};
pub use machine::{StepCtx, StepMachine, StepOutcome};
pub use prof::{Hist, Profile};
pub use sym::{Interner, Sym};
pub use scenario::{RunResult, Scenario};
pub use service::{Arrival, Service, ServiceReport, ServiceSpec, ShardPlan, ShardReport};
pub use sweep::{cross, default_jobs, run_cells};
