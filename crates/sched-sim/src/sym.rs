//! Interned statement labels.
//!
//! Every executed statement used to clone its display label (a heap
//! `String`) into the history and the observability trace, making label
//! handling the dominant per-statement allocation. Labels now live in an
//! [`Interner`] — a per-kernel symbol table mapping each distinct label
//! string to a small [`Sym`] id — and events carry the `Copy` id instead.
//! Strings are materialised only at serialization boundaries
//! ([`crate::obs::Trace::to_text`] and friends) by resolving the id.
//!
//! Algorithm machines label a bounded set of distinct statements (the
//! numbered lines of the paper's figures), so the table stays tiny while
//! executions run to millions of statements: after the first occurrence of
//! each label, the per-statement cost is a hash lookup and a 4-byte copy.
//! Shared-table strings are `Arc<str>`, so cloning an interner for a
//! detached trace or history is O(distinct labels), not O(text).

use std::collections::HashMap;
use std::sync::Arc;

/// An interned label: a `Copy` id valid for the [`Interner`] that produced
/// it (and any interner synced from it via [`Interner::sync_from`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// The empty label `""`, pre-interned in every table at id 0 so that
    /// unlabeled statements need no table access at all.
    pub const EMPTY: Sym = Sym(0);

    /// The id's index into its table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A symbol table: distinct label strings, densely numbered by [`Sym`].
///
/// Every table starts with `""` at [`Sym::EMPTY`]. Tables only grow, so a
/// table extended from another (see [`Interner::sync_from`]) resolves every
/// id the original ever handed out.
#[derive(Clone, Debug)]
pub struct Interner {
    names: Vec<Arc<str>>,
    map: HashMap<Arc<str>, Sym>,
}

impl Default for Interner {
    fn default() -> Self {
        let empty: Arc<str> = Arc::from("");
        let mut map = HashMap::new();
        map.insert(empty.clone(), Sym::EMPTY);
        Interner { names: vec![empty], map }
    }
}

impl Interner {
    /// A fresh table containing only the empty label.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `s`, returning its id (allocating only on first occurrence).
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(self.names.len() as u32);
        let name: Arc<str> = Arc::from(s);
        self.names.push(name.clone());
        self.map.insert(name, sym);
        sym
    }

    /// The string for `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this table (or one it was synced
    /// from).
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned labels (including the empty label).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table holds only the empty label.
    pub fn is_empty(&self) -> bool {
        self.names.len() == 1
    }

    /// Extends this table with the tail of `other`, which must be an
    /// extension of this table (same strings at every shared index). Used
    /// to keep a detached trace's table in sync with its kernel's: a no-op
    /// when the lengths already match.
    pub fn sync_from(&mut self, other: &Interner) {
        if self.names.len() >= other.names.len() {
            return;
        }
        debug_assert!(
            self.names.iter().zip(&other.names).all(|(a, b)| a == b),
            "sync_from of an unrelated interner"
        );
        for name in &other.names[self.names.len()..] {
            let sym = Sym(self.names.len() as u32);
            self.names.push(name.clone());
            self.map.insert(name.clone(), sym);
        }
    }
}

impl PartialEq for Interner {
    fn eq(&self, other: &Self) -> bool {
        // The map is derived from `names`; comparing names is sufficient.
        self.names == other.names
    }
}

impl Eq for Interner {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_label_is_preinterned() {
        let mut i = Interner::new();
        assert_eq!(i.intern(""), Sym::EMPTY);
        assert_eq!(i.resolve(Sym::EMPTY), "");
        assert!(i.is_empty());
    }

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("1: v := val");
        let b = i.intern("2: return");
        assert_eq!(i.intern("1: v := val"), a);
        assert_ne!(a, b);
        assert_eq!(i.len(), 3);
        assert_eq!(i.resolve(a), "1: v := val");
        assert_eq!(i.resolve(b), "2: return");
    }

    #[test]
    fn sync_from_extends_prefix() {
        let mut master = Interner::new();
        let a = master.intern("a");
        let mut copy = master.clone();
        let b = master.intern("b");
        copy.sync_from(&master);
        assert_eq!(copy.resolve(a), "a");
        assert_eq!(copy.resolve(b), "b");
        assert_eq!(copy, master);
        // Syncing again is a no-op.
        copy.sync_from(&master);
        assert_eq!(copy.len(), master.len());
    }
}
