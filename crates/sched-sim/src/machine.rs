//! The process abstraction: a step machine executing one atomic statement
//! per [`StepMachine::step`] call.

use core::hash::Hasher;

use crate::ids::ProcessId;
use crate::sym::{Interner, Sym};

/// The shared-memory footprint of a statement, over up to 64 abstract
/// *cells* chosen by the algorithm (bit `i` of a mask = cell `i`).
///
/// Footprints feed the explorer's partial-order reduction: two statements
/// on different processors commute when neither writes a cell the other
/// touches, so only one interleaving of them needs exploring. The default
/// is [`Footprint::Unknown`] — "may touch anything" — which conflicts with
/// everything and therefore never enables a prune; declaring footprints is
/// purely an opt-in refinement, and an over-approximation (extra bits) is
/// always safe while an under-approximation is a soundness bug.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Footprint {
    /// May read or write any shared cell; conflicts with every non-local
    /// statement (the conservative default).
    Unknown,
    /// Touches exactly the cells in the masks. `reads`/`writes` of 0/0 is
    /// a purely local statement, independent of everything.
    Access {
        /// Cells the statement may read.
        reads: u64,
        /// Cells the statement may write.
        writes: u64,
    },
}

impl Footprint {
    /// A purely local statement: touches no shared cell.
    pub const LOCAL: Footprint = Footprint::Access { reads: 0, writes: 0 };

    /// Reads (only) the cells in `mask`.
    pub fn reads(mask: u64) -> Footprint {
        Footprint::Access { reads: mask, writes: 0 }
    }

    /// May read and write the cells in `mask`.
    pub fn rw(mask: u64) -> Footprint {
        Footprint::Access { reads: mask, writes: mask }
    }

    /// The union of two footprints ([`Footprint::Unknown`] absorbs).
    #[must_use]
    pub fn union(self, other: Footprint) -> Footprint {
        match (self, other) {
            (
                Footprint::Access { reads: r1, writes: w1 },
                Footprint::Access { reads: r2, writes: w2 },
            ) => Footprint::Access { reads: r1 | r2, writes: w1 | w2 },
            _ => Footprint::Unknown,
        }
    }

    /// Whether the two footprints commute: neither writes a cell the other
    /// reads or writes. `Unknown` is independent of nothing (not even a
    /// local statement — the conservative choice keeps the check symmetric
    /// and cheap; local statements prune via their *own* side).
    pub fn independent(self, other: Footprint) -> bool {
        match (self, other) {
            (
                Footprint::Access { reads: r1, writes: w1 },
                Footprint::Access { reads: r2, writes: w2 },
            ) => w1 & (r2 | w2) == 0 && w2 & (r1 | w1) == 0,
            _ => false,
        }
    }
}

/// The result of executing one atomic statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The process has more statements in its current object invocation.
    Continue,
    /// The statement completed the current object invocation; the process
    /// has at least one further invocation to perform. Quantum windows close
    /// at invocation boundaries ("…or until its current object invocation
    /// terminates"), so this outcome matters to the scheduler.
    InvocationEnd,
    /// The statement completed the process's last invocation; the process
    /// leaves the ready set permanently (it "thinks" forever).
    Finished,
}

/// Where a [`StepCtx`] sends labels.
#[derive(Debug)]
enum LabelSink<'a> {
    /// Labels are dropped without any work: no recorder (history or trace)
    /// is attached, so the step path does zero label processing.
    Discard,
    /// Labels are interned into the kernel's symbol table.
    Intern(&'a mut Interner),
    /// Labels are interned into a table owned by the context itself — used
    /// by [`StepCtx::new`] so machines can be driven directly in tests.
    Own(Interner),
}

/// Context handed to a machine for each statement execution.
///
/// The machine uses it to learn its own identity and to label the statement
/// for history recording and trace rendering. Labels are interned (see
/// [`crate::sym`]): the context carries a [`Sym`], not a `String`, and when
/// nothing records labels the whole path is a no-op.
#[derive(Debug)]
pub struct StepCtx<'a> {
    /// The identity of the executing process.
    pub pid: ProcessId,
    pub(crate) label: Option<Sym>,
    sink: LabelSink<'a>,
}

impl StepCtx<'static> {
    /// Creates a self-contained context for `pid`, with its own private
    /// symbol table. The kernel uses the cheaper internal constructors; this
    /// one is exposed so machines can be driven directly in tests (labels
    /// remain inspectable via [`StepCtx::label_str`]).
    pub fn new(pid: ProcessId) -> Self {
        StepCtx { pid, label: None, sink: LabelSink::Own(Interner::new()) }
    }

    /// A context that discards labels entirely (nothing is recording).
    pub(crate) fn discarding(pid: ProcessId) -> Self {
        StepCtx { pid, label: None, sink: LabelSink::Discard }
    }
}

impl<'a> StepCtx<'a> {
    /// A context that interns labels into `syms` (the kernel's table).
    pub(crate) fn recording(pid: ProcessId, syms: &'a mut Interner) -> Self {
        StepCtx { pid, label: None, sink: LabelSink::Intern(syms) }
    }

    /// Labels the statement being executed (e.g. `"3: w := P[i]"`).
    /// The label appears in histories and rendered traces. When neither a
    /// history nor a trace is recording, this is a no-op.
    pub fn label(&mut self, s: impl AsRef<str>) {
        match &mut self.sink {
            LabelSink::Discard => {}
            LabelSink::Intern(syms) => self.label = Some(syms.intern(s.as_ref())),
            LabelSink::Own(syms) => self.label = Some(syms.intern(s.as_ref())),
        }
    }

    /// The label recorded so far this step, as a string (for direct-driving
    /// tests; `None` if unlabeled or the context is discarding labels).
    pub fn label_str(&self) -> Option<&str> {
        let sym = self.label?;
        match &self.sink {
            LabelSink::Discard => None,
            LabelSink::Intern(syms) => Some(syms.resolve(sym)),
            LabelSink::Own(syms) => Some(syms.resolve(sym)),
        }
    }

    pub(crate) fn take_label(&mut self) -> Option<Sym> {
        self.label.take()
    }
}

/// A process, modeled as a machine that executes exactly one *atomic
/// statement* per [`step`](StepMachine::step) call against the shared
/// memory `M`.
///
/// This is the paper's execution model: "each numbered statement is assumed
/// to be atomic", and a quantum is a statement count. Implementations must
/// be deterministic — any randomness belongs in the construction, not the
/// steps — so that simulations replay exactly from a schedule script.
///
/// Most algorithm machines are built with the [`crate::program`] DSL rather
/// than implemented by hand.
pub trait StepMachine<M>: Send {
    /// Executes the next atomic statement against `mem`.
    fn step(&mut self, mem: &mut M, ctx: &mut StepCtx<'_>) -> StepOutcome;

    /// The output of the most recently completed invocation, if any.
    ///
    /// Test oracles use this to check agreement and linearizability without
    /// reaching into machine internals.
    fn output(&self) -> Option<u64> {
        None
    }

    /// Clones the machine, preserving its full execution state.
    ///
    /// Required so the exhaustive explorer can fork simulations at decision
    /// points.
    fn box_clone(&self) -> Box<dyn StepMachine<M>>;

    /// Feeds the machine's full execution state into `h`.
    ///
    /// Used by the explorer for visited-state de-duplication; two machines
    /// that hash differently may be treated as distinct states, so hashing
    /// *less* state is safe but slower, hashing *more* is a bug.
    fn state_key(&self, h: &mut dyn Hasher);

    /// The footprint of the *next* statement this machine would execute.
    ///
    /// Drives the explorer's partial-order reduction. The default,
    /// [`Footprint::Unknown`], is always sound (it disables pruning around
    /// this machine). Overriding implementations must over-approximate:
    /// every cell the next [`step`](StepMachine::step) call could touch
    /// must be covered.
    fn next_footprint(&self) -> Footprint {
        Footprint::Unknown
    }

    /// The footprint of *every* statement this machine may still execute
    /// (a static over-approximation of its remaining behavior).
    ///
    /// Like [`next_footprint`](StepMachine::next_footprint), defaults to
    /// the conservative [`Footprint::Unknown`].
    fn may_footprint(&self) -> Footprint {
        Footprint::Unknown
    }
}

impl<M> Clone for Box<dyn StepMachine<M>> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// A machine built from a closure, for tests and tiny fixtures.
///
/// The closure is called once per statement with `(mem, call_count)` and
/// returns the outcome; `output` reports the value recorded via the second
/// closure slot.
pub struct FnMachine<M> {
    f: std::sync::Arc<dyn Fn(&mut M, u32) -> (StepOutcome, Option<u64>) + Send + Sync>,
    calls: u32,
    out: Option<u64>,
    fp: Footprint,
}

impl<M> FnMachine<M> {
    /// Creates a machine from `f`, which receives the shared memory and the
    /// number of statements executed so far and returns the step outcome
    /// plus an optional invocation output.
    pub fn new(
        f: impl Fn(&mut M, u32) -> (StepOutcome, Option<u64>) + Send + Sync + 'static,
    ) -> Self {
        FnMachine { f: std::sync::Arc::new(f), calls: 0, out: None, fp: Footprint::Unknown }
    }

    /// Declares the footprint of *every* statement of this machine (both
    /// [`StepMachine::next_footprint`] and [`StepMachine::may_footprint`]
    /// report it). Must over-approximate each step's shared accesses.
    #[must_use]
    pub fn with_footprint(mut self, fp: Footprint) -> Self {
        self.fp = fp;
        self
    }
}

impl<M> Clone for FnMachine<M> {
    fn clone(&self) -> Self {
        FnMachine { f: self.f.clone(), calls: self.calls, out: self.out, fp: self.fp }
    }
}

impl<M: 'static> StepMachine<M> for FnMachine<M> {
    fn step(&mut self, mem: &mut M, _ctx: &mut StepCtx<'_>) -> StepOutcome {
        let (o, out) = (self.f)(mem, self.calls);
        self.calls += 1;
        if out.is_some() {
            self.out = out;
        }
        o
    }

    fn output(&self) -> Option<u64> {
        self.out
    }

    fn box_clone(&self) -> Box<dyn StepMachine<M>> {
        Box::new(self.clone())
    }

    fn state_key(&self, h: &mut dyn Hasher) {
        h.write_u32(self.calls);
        h.write_u64(self.out.map_or(u64::MAX, |v| v));
    }

    fn next_footprint(&self) -> Footprint {
        self.fp
    }

    fn may_footprint(&self) -> Footprint {
        self.fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_machine_counts_calls_and_records_output() {
        let mut m = FnMachine::new(|mem: &mut u64, calls| {
            *mem += 1;
            if calls == 2 {
                (StepOutcome::Finished, Some(99))
            } else {
                (StepOutcome::Continue, None)
            }
        });
        let mut mem = 0u64;
        let mut ctx = StepCtx::new(ProcessId(0));
        assert_eq!(m.step(&mut mem, &mut ctx), StepOutcome::Continue);
        assert_eq!(m.step(&mut mem, &mut ctx), StepOutcome::Continue);
        assert_eq!(m.step(&mut mem, &mut ctx), StepOutcome::Finished);
        assert_eq!(mem, 3);
        assert_eq!(m.output(), Some(99));
    }

    #[test]
    fn box_clone_preserves_state() {
        let mut m = FnMachine::new(|_: &mut u64, calls| {
            if calls >= 1 {
                (StepOutcome::Finished, Some(1))
            } else {
                (StepOutcome::Continue, None)
            }
        });
        let mut mem = 0u64;
        let mut ctx = StepCtx::new(ProcessId(0));
        m.step(&mut mem, &mut ctx);
        let mut c: Box<dyn StepMachine<u64>> = m.box_clone();
        // The clone is one step from finishing, same as the original.
        assert_eq!(c.step(&mut mem, &mut ctx), StepOutcome::Finished);
    }

    #[test]
    fn ctx_label_roundtrip() {
        let mut ctx = StepCtx::new(ProcessId(3));
        ctx.label("1: v := val");
        assert_eq!(ctx.label_str(), Some("1: v := val"));
        assert!(ctx.take_label().is_some());
        assert_eq!(ctx.take_label(), None);
    }

    #[test]
    fn discarding_ctx_drops_labels_without_work() {
        let mut ctx = StepCtx::discarding(ProcessId(0));
        ctx.label("ignored");
        assert_eq!(ctx.label_str(), None);
        assert_eq!(ctx.take_label(), None);
    }
}
