//! Execution histories and the well-formedness checker.
//!
//! A history is the paper's `t0 -s0-> t1 -s1-> …` sequence, recorded as one
//! [`Event`] per atomic statement (plus release events). The
//! [`check_well_formed`] oracle revalidates, independently of the kernel's
//! scheduling logic, that a history satisfies the paper's well-formedness
//! condition (Sec. 2):
//!
//! * **Axiom 1** — no statement executes while a higher-priority process on
//!   the same processor is ready, and
//! * **Axiom 2** — whenever a process is preempted by an equal-priority
//!   process, it had either executed at least `Q` statements in its current
//!   window, completed its object invocation, or was in its arbitrary-
//!   alignment *first* window.

use std::collections::BTreeMap;

use crate::ids::{ProcessId, ProcessorId, Priority};
use crate::sym::{Interner, Sym};

/// What a recorded statement did to its process's invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StmtEffect {
    /// The invocation continues.
    Continue,
    /// The statement completed an object invocation; the process remains.
    InvocationEnd,
    /// The statement completed the process's final invocation.
    Finished,
}

/// One history entry.
///
/// The derived `==` on events compares statement labels as raw [`Sym`] ids,
/// which is only meaningful between events of the *same* history (same
/// symbol table). Whole-history comparison ([`History`]'s `==`) resolves
/// labels through each side's table and is safe across histories.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// An atomic statement execution.
    Stmt {
        /// The statement's display label (e.g. `"3: w := P[i]"`), interned
        /// in the owning history's [`History::syms`] table.
        label: Sym,
        /// Effect on the invocation.
        effect: StmtEffect,
        /// Output recorded at an invocation boundary, if any.
        output: Option<u64>,
    },
    /// The process transitioned from held (ineligible) to ready.
    Release,
    /// The process crashed: its partial invocation was discarded and it is
    /// ineligible until it recovers.
    Crash,
    /// The process recovered from a crash (ineligible → ready); its next
    /// statement restarts the interrupted invocation from the beginning.
    Recover,
}

/// A timestamped event of a history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Global statement count at which the event occurred.
    pub t: u64,
    /// The process involved.
    pub pid: ProcessId,
    /// Its processor.
    pub cpu: ProcessorId,
    /// Its priority.
    pub prio: Priority,
    /// What happened.
    pub kind: EventKind,
}

/// Static description of one process, recorded in the history header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcInfo {
    /// The process id.
    pub pid: ProcessId,
    /// The processor it is pinned to.
    pub cpu: ProcessorId,
    /// Its (static) priority.
    pub prio: Priority,
    /// Whether it starts held (ineligible until released).
    pub held: bool,
}

/// A recorded execution history: a header describing the system plus the
/// event sequence.
///
/// Histories compare with `==`, which is what replay tests use to assert
/// that a re-executed schedule is *bit-identical* to the captured one
/// (see [`crate::obs`]). Statement labels are resolved through each side's
/// symbol table during comparison, so two histories with identical events
/// but differently-populated tables still compare equal.
#[derive(Clone, Debug, Default)]
pub struct History {
    /// The scheduling quantum `Q` the run was configured with.
    pub quantum: u32,
    /// Static process table.
    pub procs: Vec<ProcInfo>,
    /// The event sequence, in execution order.
    pub events: Vec<Event>,
    /// Symbol table resolving the [`Sym`] labels of statement events.
    pub syms: Interner,
}

impl History {
    /// Iterates over the statement events only.
    pub fn stmts(&self) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(|e| matches!(e.kind, EventKind::Stmt { .. }))
    }

    /// Number of statements executed by `pid` in this history.
    pub fn own_steps(&self, pid: ProcessId) -> u64 {
        self.stmts().filter(|e| e.pid == pid).count() as u64
    }

    /// The display label of a statement event of *this* history (empty for
    /// release events).
    pub fn label_of(&self, e: &Event) -> &str {
        match &e.kind {
            EventKind::Stmt { label, .. } => self.syms.resolve(*label),
            EventKind::Release | EventKind::Crash | EventKind::Recover => "",
        }
    }
}

/// Compares two events field by field, resolving statement labels through
/// each side's symbol table.
fn event_eq(a: &Event, b: &Event, a_syms: &Interner, b_syms: &Interner) -> bool {
    if (a.t, a.pid, a.cpu, a.prio) != (b.t, b.pid, b.cpu, b.prio) {
        return false;
    }
    match (&a.kind, &b.kind) {
        (
            EventKind::Stmt { label: la, effect: ea, output: oa },
            EventKind::Stmt { label: lb, effect: eb, output: ob },
        ) => ea == eb && oa == ob && a_syms.resolve(*la) == b_syms.resolve(*lb),
        (EventKind::Release, EventKind::Release)
        | (EventKind::Crash, EventKind::Crash)
        | (EventKind::Recover, EventKind::Recover) => true,
        _ => false,
    }
}

impl PartialEq for History {
    fn eq(&self, other: &Self) -> bool {
        self.quantum == other.quantum
            && self.procs == other.procs
            && self.events.len() == other.events.len()
            && self
                .events
                .iter()
                .zip(&other.events)
                .all(|(a, b)| event_eq(a, b, &self.syms, &other.syms))
    }
}

impl Eq for History {}

/// A violation of the well-formedness condition found by
/// [`check_well_formed`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A statement executed while a higher-priority process on the same
    /// processor was ready (violates Axiom 1).
    PriorityInversion {
        /// Time of the offending statement.
        t: u64,
        /// The process that executed it.
        running: ProcessId,
        /// The ready higher-priority process that should have run.
        ready_higher: ProcessId,
    },
    /// A process was preempted by an equal-priority process before
    /// exhausting its quantum window, mid-invocation, outside its first
    /// window (violates Axiom 2).
    QuantumViolation {
        /// Time of the statement by the preempting process.
        t: u64,
        /// The process that was unlawfully preempted.
        victim: ProcessId,
        /// The equal-priority process that ran too early.
        preemptor: ProcessId,
        /// Statements the victim had executed in its window.
        executed: u64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::PriorityInversion { t, running, ready_higher } => write!(
                f,
                "t={t}: {running} executed while higher-priority {ready_higher} was ready"
            ),
            Violation::QuantumViolation { t, victim, preemptor, executed } => write!(
                f,
                "t={t}: {victim} quantum-preempted by {preemptor} after only {executed} statements"
            ),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum PStatus {
    Held,
    Ready,
    Finished,
    Crashed,
}

/// Replays `h` and returns the first well-formedness violation, if any.
///
/// This checker is deliberately independent of the kernel's dispatch code:
/// it reconstructs ready sets and quantum windows purely from the event
/// stream, so it doubles as a regression oracle for the scheduler itself.
///
/// # Errors
///
/// Returns the first [`Violation`] encountered, in event order.
pub fn check_well_formed(h: &History) -> Result<(), Violation> {
    let by_pid: BTreeMap<ProcessId, ProcInfo> =
        h.procs.iter().map(|p| (p.pid, *p)).collect();
    let mut status: BTreeMap<ProcessId, PStatus> = h
        .procs
        .iter()
        .map(|p| (p.pid, if p.held { PStatus::Held } else { PStatus::Ready }))
        .collect();
    // Process p is "mid-invocation" once it has executed a statement whose
    // effect was Continue, until an invocation boundary.
    let mut mid_invocation: BTreeMap<ProcessId, bool> = Default::default();
    // Per (cpu, prio) quantum window: holder, own statements, and whether
    // this is the holder's first window ever.
    struct Window {
        holder: ProcessId,
        count: u64,
        first: bool,
        open: bool,
    }
    let mut windows: BTreeMap<(ProcessorId, Priority), Window> = Default::default();
    let mut ever_dispatched: BTreeMap<ProcessId, bool> = Default::default();

    for ev in &h.events {
        match &ev.kind {
            EventKind::Release => {
                status.insert(ev.pid, PStatus::Ready);
            }
            EventKind::Crash => {
                // A crashed process is not ready (Axiom 1 no longer obliges
                // its processor to run it), its partial invocation is
                // discarded, and any window it holds ends.
                status.insert(ev.pid, PStatus::Crashed);
                mid_invocation.insert(ev.pid, false);
                if let Some(w) = windows.get_mut(&(ev.cpu, ev.prio)) {
                    if w.holder == ev.pid {
                        w.open = false;
                    }
                }
            }
            EventKind::Recover => {
                status.insert(ev.pid, PStatus::Ready);
            }
            EventKind::Stmt { effect, .. } => {
                // Axiom 1: no ready higher-priority process on this cpu.
                for (qid, info) in &by_pid {
                    if info.cpu == ev.cpu
                        && info.prio > ev.prio
                        && status.get(qid) == Some(&PStatus::Ready)
                    {
                        return Err(Violation::PriorityInversion {
                            t: ev.t,
                            running: ev.pid,
                            ready_higher: *qid,
                        });
                    }
                }
                // Axiom 2: window accounting at (cpu, prio).
                let key = (ev.cpu, ev.prio);
                let first = !ever_dispatched.get(&ev.pid).copied().unwrap_or(false);
                ever_dispatched.insert(ev.pid, true);
                match windows.get_mut(&key) {
                    Some(w) if w.open && w.holder == ev.pid => {
                        w.count += 1;
                    }
                    Some(w) if w.open => {
                        // Same-priority switch: lawful only if the previous
                        // holder exhausted a full quantum, completed its
                        // invocation (window would be closed then), was in
                        // its first window, or is gone.
                        let victim_mid = mid_invocation.get(&w.holder).copied().unwrap_or(false)
                            && status.get(&w.holder) == Some(&PStatus::Ready);
                        if victim_mid && !w.first && w.count < u64::from(h.quantum) {
                            return Err(Violation::QuantumViolation {
                                t: ev.t,
                                victim: w.holder,
                                preemptor: ev.pid,
                                executed: w.count,
                            });
                        }
                        *w = Window { holder: ev.pid, count: 1, first, open: true };
                    }
                    _ => {
                        windows.insert(
                            key,
                            Window { holder: ev.pid, count: 1, first, open: true },
                        );
                    }
                }
                match effect {
                    StmtEffect::Continue => {
                        mid_invocation.insert(ev.pid, true);
                    }
                    StmtEffect::InvocationEnd => {
                        mid_invocation.insert(ev.pid, false);
                        if let Some(w) = windows.get_mut(&key) {
                            if w.holder == ev.pid {
                                w.open = false;
                            }
                        }
                    }
                    StmtEffect::Finished => {
                        mid_invocation.insert(ev.pid, false);
                        status.insert(ev.pid, PStatus::Finished);
                        if let Some(w) = windows.get_mut(&key) {
                            if w.holder == ev.pid {
                                w.open = false;
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(pid: u32, cpu: u32, prio: u32) -> ProcInfo {
        ProcInfo {
            pid: ProcessId(pid),
            cpu: ProcessorId(cpu),
            prio: Priority(prio),
            held: false,
        }
    }

    fn stmt(t: u64, pid: u32, cpu: u32, prio: u32, effect: StmtEffect) -> Event {
        Event {
            t,
            pid: ProcessId(pid),
            cpu: ProcessorId(cpu),
            prio: Priority(prio),
            kind: EventKind::Stmt { label: Sym::EMPTY, effect, output: None },
        }
    }

    fn hist(quantum: u32, procs: Vec<ProcInfo>, events: Vec<Event>) -> History {
        History { quantum, procs, events, syms: Interner::new() }
    }

    #[test]
    fn empty_history_is_well_formed() {
        let h = hist(4, vec![], vec![]);
        assert_eq!(check_well_formed(&h), Ok(()));
    }

    #[test]
    fn detects_priority_inversion() {
        // p1 has priority 2 and is ready, yet p0 (priority 1) executes.
        let h = hist(4, vec![info(0, 0, 1), info(1, 0, 2)], vec![stmt(0, 0, 0, 1, StmtEffect::Continue)]);
        match check_well_formed(&h) {
            Err(Violation::PriorityInversion { running, ready_higher, .. }) => {
                assert_eq!(running, ProcessId(0));
                assert_eq!(ready_higher, ProcessId(1));
            }
            other => panic!("expected priority inversion, got {other:?}"),
        }
    }

    #[test]
    fn held_higher_priority_process_is_not_ready() {
        let mut hi = info(1, 0, 2);
        hi.held = true;
        let h = hist(4, vec![info(0, 0, 1), hi], vec![stmt(0, 0, 0, 1, StmtEffect::Continue)]);
        assert_eq!(check_well_formed(&h), Ok(()));
    }

    #[test]
    fn release_makes_higher_priority_ready() {
        let mut hi = info(1, 0, 2);
        hi.held = true;
        let h = hist(4, vec![info(0, 0, 1), hi], vec![
                Event {
                    t: 0,
                    pid: ProcessId(1),
                    cpu: ProcessorId(0),
                    prio: Priority(2),
                    kind: EventKind::Release,
                },
                stmt(1, 0, 0, 1, StmtEffect::Continue),
            ]);
        assert!(matches!(
            check_well_formed(&h),
            Err(Violation::PriorityInversion { .. })
        ));
    }

    #[test]
    fn first_window_preemption_is_lawful() {
        // p0 runs one statement (first window), then p1 runs: fine.
        let h = hist(4, vec![info(0, 0, 1), info(1, 0, 1)], vec![
                stmt(0, 0, 0, 1, StmtEffect::Continue),
                stmt(1, 1, 0, 1, StmtEffect::Continue),
            ]);
        assert_eq!(check_well_formed(&h), Ok(()));
    }

    #[test]
    fn second_window_preemption_before_quantum_is_violation() {
        // p0: 1 stmt (first window, preempted), p1: 4 stmts (full quantum),
        // p0: 2 stmts (second window), p1 preempts early -> violation.
        let mut events = vec![stmt(0, 0, 0, 1, StmtEffect::Continue)];
        for t in 1..5 {
            events.push(stmt(t, 1, 0, 1, StmtEffect::Continue));
        }
        events.push(stmt(5, 0, 0, 1, StmtEffect::Continue));
        events.push(stmt(6, 0, 0, 1, StmtEffect::Continue));
        events.push(stmt(7, 1, 0, 1, StmtEffect::Continue)); // too early
        let h = hist(4, vec![info(0, 0, 1), info(1, 0, 1)], events);
        match check_well_formed(&h) {
            Err(Violation::QuantumViolation { victim, executed, .. }) => {
                assert_eq!(victim, ProcessId(0));
                assert_eq!(executed, 2);
            }
            other => panic!("expected quantum violation, got {other:?}"),
        }
    }

    #[test]
    fn switch_after_full_quantum_is_lawful() {
        let mut events = Vec::new();
        for t in 0..4 {
            events.push(stmt(t, 0, 0, 1, StmtEffect::Continue));
        }
        events.push(stmt(4, 1, 0, 1, StmtEffect::Continue));
        let h = hist(4, vec![info(0, 0, 1), info(1, 0, 1)], events);
        assert_eq!(check_well_formed(&h), Ok(()));
    }

    #[test]
    fn switch_at_invocation_end_is_lawful() {
        let events = vec![
            stmt(0, 0, 0, 1, StmtEffect::Continue),
            stmt(1, 0, 0, 1, StmtEffect::InvocationEnd),
            stmt(2, 1, 0, 1, StmtEffect::Continue),
        ];
        let h = hist(8, vec![info(0, 0, 1), info(1, 0, 1)], events);
        assert_eq!(check_well_formed(&h), Ok(()));
    }

    #[test]
    fn higher_priority_interleaving_does_not_reset_protection() {
        // p0 (prio 1) runs 1 stmt in its SECOND window, p2 (prio 2, other
        // level) interleaves, then p1 (prio 1) preempts p0 -> violation:
        // higher-priority preemption must not enable a same-priority switch.
        let mut events = vec![
            // first window of p0: 1 stmt, preempted by p1 lawfully
            stmt(0, 0, 0, 1, StmtEffect::Continue),
            stmt(1, 1, 0, 1, StmtEffect::Continue),
        ];
        // p1 completes quantum so switching back to p0 is lawful
        for t in 2..5 {
            events.push(stmt(t, 1, 0, 1, StmtEffect::Continue));
        }
        events.push(stmt(5, 0, 0, 1, StmtEffect::Continue)); // p0 second window
        // p2 at higher priority becomes ready via release and runs
        events.push(Event {
            t: 6,
            pid: ProcessId(2),
            cpu: ProcessorId(0),
            prio: Priority(2),
            kind: EventKind::Release,
        });
        events.push(stmt(6, 2, 0, 2, StmtEffect::Finished));
        events.push(stmt(7, 1, 0, 1, StmtEffect::Continue)); // unlawful
        let mut p2 = info(2, 0, 2);
        p2.held = true;
        let h = hist(4, vec![info(0, 0, 1), info(1, 0, 1), p2], events);
        assert!(matches!(check_well_formed(&h), Err(Violation::QuantumViolation { .. })));
    }

    #[test]
    fn crashed_higher_priority_process_is_not_ready() {
        let ev = |kind, t: u64, pid: u32, prio: u32| Event {
            t,
            pid: ProcessId(pid),
            cpu: ProcessorId(0),
            prio: Priority(prio),
            kind,
        };
        // A crashed higher-priority process does not oblige its processor.
        let h = hist(4, vec![info(0, 0, 1), info(1, 0, 2)], vec![
            ev(EventKind::Crash, 0, 1, 2),
            stmt(0, 0, 0, 1, StmtEffect::Continue),
        ]);
        assert_eq!(check_well_formed(&h), Ok(()));
        // After recovery it is ready again, so Axiom 1 applies.
        let h2 = hist(4, vec![info(0, 0, 1), info(1, 0, 2)], vec![
            ev(EventKind::Crash, 0, 1, 2),
            ev(EventKind::Recover, 1, 1, 2),
            stmt(1, 0, 0, 1, StmtEffect::Continue),
        ]);
        assert!(matches!(
            check_well_formed(&h2),
            Err(Violation::PriorityInversion { .. })
        ));
    }

    #[test]
    fn crash_closes_the_victims_window() {
        // p0 crashes 2 statements into its window; p1 stepping next is a
        // lawful switch, not a quantum violation.
        let ev = |kind, t: u64, pid: u32| Event {
            t,
            pid: ProcessId(pid),
            cpu: ProcessorId(0),
            prio: Priority(1),
            kind,
        };
        let mut events = vec![
            // p0 exhausts a first window lawfully, p1 a full quantum, then
            // p0's SECOND window is cut short by a crash.
            stmt(0, 0, 0, 1, StmtEffect::Continue),
        ];
        for t in 1..5 {
            events.push(stmt(t, 1, 0, 1, StmtEffect::Continue));
        }
        events.push(stmt(5, 0, 0, 1, StmtEffect::Continue));
        events.push(stmt(6, 0, 0, 1, StmtEffect::Continue));
        events.push(ev(EventKind::Crash, 7, 0));
        events.push(stmt(7, 1, 0, 1, StmtEffect::Continue));
        let h = hist(4, vec![info(0, 0, 1), info(1, 0, 1)], events);
        assert_eq!(check_well_formed(&h), Ok(()));
    }

    #[test]
    fn own_steps_counts_statements() {
        let h = hist(4, vec![info(0, 0, 1)], vec![
                stmt(0, 0, 0, 1, StmtEffect::Continue),
                stmt(1, 0, 0, 1, StmtEffect::Finished),
            ]);
        assert_eq!(h.own_steps(ProcessId(0)), 2);
    }
}
