//! Interleaving-diagram rendering, in the style of the paper's Figs. 1–2.
//!
//! Figure 1 of the paper depicts "accesses to a common object by three
//! processes running on the same processor", with object invocations shown
//! between brackets `[` and `]` and time running left to right. Figure 2 is
//! "a closer look" at the same interleaving with quantum boundaries made
//! visible. [`render`] produces the same picture from a recorded
//! [`History`]:
//!
//! ```text
//! p2      [--]
//! p1    [-...----]
//! p0  [-....-------]
//!     |     Q     |     Q
//! ```
//!
//! Legend: `[` first statement of an invocation, `]` last, `-` statement
//! execution, `.` preempted mid-invocation, space = thinking / not started.

use std::collections::BTreeMap;

use crate::history::{EventKind, History, StmtEffect};
use crate::ids::ProcessId;

/// Rendering options for [`render`].
#[derive(Clone, Copy, Debug)]
pub struct TraceStyle {
    /// Draw a bottom ruler marking every `quantum`-statement boundary
    /// (the paper's Fig. 2 view). When `false` the abstract Fig. 1 view is
    /// produced.
    pub quantum_ruler: bool,
    /// Column width cap; longer histories are truncated with `…`.
    pub max_cols: usize,
}

impl Default for TraceStyle {
    fn default() -> Self {
        TraceStyle { quantum_ruler: false, max_cols: 240 }
    }
}

/// Renders `history` as a multi-line interleaving diagram.
///
/// One row per process (highest pid on top, matching the paper's figures
/// where the highest-priority process `r` is drawn on top), one column per
/// global statement.
pub fn render(history: &History, style: TraceStyle) -> String {
    let n_cols = (history.events.iter().filter(|e| matches!(e.kind, EventKind::Stmt { .. })).count())
        .min(style.max_cols);
    // Per process per column: what happened.
    #[derive(Clone, Copy, PartialEq)]
    enum Cell {
        Blank,
        Exec,
        Begin,
        End,
        BeginEnd,
        Waiting,
    }
    let mut rows: BTreeMap<ProcessId, Vec<Cell>> = history
        .procs
        .iter()
        .map(|p| (p.pid, vec![Cell::Blank; n_cols]))
        .collect();
    let mut mid: BTreeMap<ProcessId, bool> = Default::default();

    let mut col = 0usize;
    for ev in &history.events {
        let EventKind::Stmt { effect, .. } = &ev.kind else { continue };
        if col >= n_cols {
            break;
        }
        // Mark mid-invocation processes as waiting in this column.
        for (pid, is_mid) in &mid {
            if *is_mid && *pid != ev.pid {
                rows.get_mut(pid).expect("known pid")[col] = Cell::Waiting;
            }
        }
        let was_mid = mid.get(&ev.pid).copied().unwrap_or(false);
        let ends = !matches!(effect, StmtEffect::Continue);
        let cell = match (was_mid, ends) {
            (false, false) => Cell::Begin,
            (false, true) => Cell::BeginEnd,
            (true, false) => Cell::Exec,
            (true, true) => Cell::End,
        };
        rows.get_mut(&ev.pid).expect("known pid")[col] = cell;
        mid.insert(ev.pid, !ends);
        col += 1;
    }

    let mut out = String::new();
    for p in history.procs.iter().rev() {
        let row = &rows[&p.pid];
        out.push_str(&format!("{:>4} ({}, {}) ", p.pid.to_string(), p.cpu, p.prio));
        for c in row {
            out.push(match c {
                Cell::Blank => ' ',
                Cell::Exec => '-',
                Cell::Begin => '[',
                Cell::End => ']',
                Cell::BeginEnd => '*',
                Cell::Waiting => '.',
            });
        }
        while out.ends_with(' ') {
            out.pop();
        }
        if col >= style.max_cols {
            out.push('…');
        }
        out.push('\n');
    }
    if style.quantum_ruler && history.quantum > 0 {
        out.push_str(&" ".repeat(16));
        for i in 0..n_cols {
            out.push(if (i + 1) % history.quantum as usize == 0 { '|' } else { ' ' });
        }
        out.push_str("  (| = quantum boundary)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{Event, ProcInfo};
    use crate::ids::{ProcessorId, Priority};

    fn stmt(t: u64, pid: u32, effect: StmtEffect) -> Event {
        Event {
            t,
            pid: ProcessId(pid),
            cpu: ProcessorId(0),
            prio: Priority(1),
            kind: EventKind::Stmt { label: crate::sym::Sym::EMPTY, effect, output: None },
        }
    }

    fn two_proc_history() -> History {
        History {
            quantum: 2,
            procs: vec![
                ProcInfo {
                    pid: ProcessId(0),
                    cpu: ProcessorId(0),
                    prio: Priority(1),
                    held: false,
                },
                ProcInfo {
                    pid: ProcessId(1),
                    cpu: ProcessorId(0),
                    prio: Priority(1),
                    held: false,
                },
            ],
            events: vec![
                stmt(0, 0, StmtEffect::Continue),
                stmt(1, 0, StmtEffect::Continue),
                stmt(2, 1, StmtEffect::Continue),
                stmt(3, 1, StmtEffect::Finished),
                stmt(4, 0, StmtEffect::Finished),
            ],
            syms: crate::sym::Interner::new(),
        }
    }

    #[test]
    fn renders_brackets_and_preemption_dots() {
        let s = render(&two_proc_history(), TraceStyle::default());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        // p1 on top: begins at col 2, ends col 3.
        assert!(lines[0].contains("p1"));
        assert!(lines[0].ends_with("  []"), "got {:?}", lines[0]);
        // p0: two statements, then preempted (..), then final statement.
        assert!(lines[1].ends_with("[-..]"), "got {:?}", lines[1]);
    }

    #[test]
    fn quantum_ruler_marks_boundaries() {
        let s = render(
            &two_proc_history(),
            TraceStyle { quantum_ruler: true, max_cols: 240 },
        );
        let ruler = s.lines().last().unwrap();
        assert!(ruler.contains('|'));
        assert!(ruler.contains("quantum boundary"));
    }

    #[test]
    fn truncates_long_histories() {
        let mut h = two_proc_history();
        let many: Vec<Event> = (0..500).map(|t| stmt(t, 0, StmtEffect::Continue)).collect();
        h.events = many;
        let s = render(&h, TraceStyle { quantum_ruler: false, max_cols: 10 });
        assert!(s.lines().next().unwrap().ends_with('…'));
    }
}
