//! Scheduling nondeterminism, funneled through a single [`Decider`] trait.
//!
//! Every choice the model leaves open — which processor takes the next
//! atomic statement, which equal-priority process receives a fresh quantum
//! window, and how a process's very first window aligns with a quantum
//! boundary — is resolved by asking a `Decider`. This makes the simulator a
//! *schedule-parametric* machine: fair round-robin scheduling, seeded random
//! scheduling, scripted schedules for regression tests, and the adversaries
//! of the paper's lower-bound proofs are all just deciders.

use crate::ids::{ProcessId, ProcessorId, Priority};
use crate::rng::SplitMix64;

/// A single decision point presented to a [`Decider`].
///
/// The number of options is the length of the slice (for
/// [`Choice::FirstCredit`], the options are the credits `1..=quantum`, so
/// option index `k` means credit `k + 1`).
#[derive(Clone, Debug)]
pub enum Choice<'a> {
    /// Which processor executes the next atomic statement. Cross-processor
    /// interleaving is fully asynchronous, so this choice is unconstrained.
    Cpu {
        /// Processors that currently have a ready process.
        options: &'a [ProcessorId],
    },
    /// Which process at priority `prio` on processor `cpu` receives the
    /// quantum window that is now opening (Axiom 2's per-level allocation).
    /// A scheduler may lawfully starve a ready process by never choosing it.
    Holder {
        /// The processor whose level-`prio` window is opening.
        cpu: ProcessorId,
        /// The priority level of the window.
        prio: Priority,
        /// Ready processes at that level, in ascending pid order.
        options: &'a [ProcessId],
    },
    /// How many statements remain in `pid`'s *first* quantum window.
    ///
    /// The paper's execution model lets a process suffer its first quantum
    /// preemption at any time ("its execution may arbitrarily align with the
    /// next quantum boundary"); after that it is guaranteed full windows of
    /// `Q` statements. Option index `k` selects a first window of `k + 1`
    /// statements, for `k + 1 ∈ 1..=quantum`.
    FirstCredit {
        /// The process being dispatched for the first time.
        pid: ProcessId,
        /// The configured quantum `Q`.
        quantum: u32,
    },
}

impl Choice<'_> {
    /// A short tag naming the kind of decision (for traces and scripts).
    pub fn kind(&self) -> &'static str {
        match self {
            Choice::Cpu { .. } => "cpu",
            Choice::Holder { .. } => "holder",
            Choice::FirstCredit { .. } => "first-credit",
        }
    }
}

/// Resolves scheduling nondeterminism.
///
/// `choose` is only consulted when `n >= 2`; single-option decisions are
/// taken silently. The returned index must be `< n` (the kernel panics
/// otherwise, since an out-of-range schedule is a bug in the decider).
pub trait Decider {
    /// Picks one of `n` options for the decision point `choice`.
    fn choose(&mut self, choice: Choice<'_>, n: usize) -> usize;
}

/// Fair round-robin decider: rotates processors, rotates quantum windows
/// among equal-priority processes, and always grants full first windows.
///
/// This models the "fair" schedulers of the paper's Sec. 5 (and the
/// round-robin-within-a-priority-level policy of QNX/IRIX/VxWorks).
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    cpu_next: u32,
    holder_last: Vec<(ProcessorId, Priority, ProcessId)>,
}

impl RoundRobin {
    /// Creates a fair round-robin decider.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Decider for RoundRobin {
    fn choose(&mut self, choice: Choice<'_>, n: usize) -> usize {
        match choice {
            Choice::Cpu { options } => {
                // Rotate across all processor ids so each runnable cpu gets
                // steps regularly regardless of which subset is runnable.
                let start = self.cpu_next;
                self.cpu_next = self.cpu_next.wrapping_add(1);
                (0..n)
                    .min_by_key(|&i| options[i].0.wrapping_sub(start))
                    .unwrap_or(0)
            }
            Choice::Holder { cpu, prio, options } => {
                let last = self
                    .holder_last
                    .iter()
                    .find(|(c, p, _)| *c == cpu && *p == prio)
                    .map(|(_, _, h)| *h);
                // Choose the smallest pid strictly greater than the last
                // holder, wrapping around: textbook round-robin.
                let idx = match last {
                    Some(h) => options
                        .iter()
                        .position(|&p| p > h)
                        .unwrap_or(0),
                    None => 0,
                };
                let chosen = options[idx];
                self.holder_last.retain(|(c, p, _)| !(*c == cpu && *p == prio));
                self.holder_last.push((cpu, prio, chosen));
                idx
            }
            // Full first window: a benign scheduler aligns dispatch with a
            // quantum boundary.
            Choice::FirstCredit { .. } => n - 1,
        }
    }
}

/// Seeded uniform-random decider, for randomized stress tests.
///
/// Random schedules explore preemption placements a fair scheduler never
/// produces (including adversarially short first windows when the kernel's
/// first-credit mode allows them), while remaining reproducible from the
/// seed. Backed by the in-tree [`SplitMix64`] generator, so a given seed
/// selects the same schedule on every platform and toolchain.
#[derive(Clone, Debug)]
pub struct SeededRandom {
    rng: SplitMix64,
}

impl SeededRandom {
    /// Creates a decider from `seed`.
    pub fn new(seed: u64) -> Self {
        SeededRandom { rng: SplitMix64::new(seed) }
    }
}

impl Decider for SeededRandom {
    fn choose(&mut self, _choice: Choice<'_>, n: usize) -> usize {
        self.rng.index(n)
    }
}

/// Noisy decider: a base decider whose choices are overridden by uniform
/// random noise with probability `num/den` per decision.
///
/// This is Aspnes' noisy-scheduling model ("Fast Deterministic Consensus in
/// a Noisy Environment"): the adversary (or a fair policy) controls the
/// schedule, but each decision is independently perturbed by random noise
/// it cannot predict. At `num = 0` it degenerates to the base decider; at
/// `num = den` it is a seeded uniform-random schedule. Sweeping `num/den`
/// measures how much scheduler noise an algorithm needs before adversarial
/// starvation patterns wash out — the "practically wait-free" regime.
#[derive(Debug)]
pub struct Noisy<D> {
    base: D,
    rng: SplitMix64,
    num: u32,
    den: u32,
}

impl<D: Decider> Noisy<D> {
    /// Wraps `base`, flipping each decision to a uniform random pick with
    /// probability `num/den`. Panics if `den == 0` or `num > den`.
    pub fn new(base: D, noise_num: u32, noise_den: u32, seed: u64) -> Self {
        assert!(noise_den > 0, "noise denominator must be positive");
        assert!(noise_num <= noise_den, "noise probability must be <= 1");
        Noisy { base, rng: SplitMix64::new(seed), num: noise_num, den: noise_den }
    }
}

impl<D: Decider> Decider for Noisy<D> {
    fn choose(&mut self, choice: Choice<'_>, n: usize) -> usize {
        // Always advance both the base decider and the noise stream so the
        // schedule is a deterministic function of (base, seed, num/den) and
        // raising the noise rate perturbs rather than re-seeds the run.
        let base_pick = self.base.choose(choice, n);
        let noise_roll = self.rng.index(self.den as usize);
        let noise_pick = self.rng.index(n);
        if (noise_roll as u32) < self.num {
            noise_pick
        } else {
            base_pick
        }
    }
}

/// Scripted decider: replays a fixed sequence of option indices.
///
/// Used for regression tests, by the exhaustive explorer, and by the fuzz
/// shrinker. The two construction modes differ in how they treat a script
/// that does not fit the run:
///
/// * [`Scripted::new`] (lenient) — out-of-range entries are clamped to the
///   last option and the round-robin fallback takes over once the script is
///   exhausted. This is what schedule *search* wants: any integer sequence
///   denotes some complete run, so shrinking can mutate scripts freely.
/// * [`Scripted::strict`] — an out-of-range entry **panics**, as does
///   exhaustion. An out-of-range schedule is a bug in the decider (or a
///   corrupted/stale capture), and silently replaying *some other* run
///   would defeat the point of replay; trace replay
///   ([`crate::obs::Trace::scripted`]) therefore uses strict mode.
#[derive(Clone, Debug)]
pub struct Scripted {
    script: Vec<usize>,
    pos: usize,
    strict: bool,
    fallback: RoundRobin,
}

impl Scripted {
    /// Creates a lenient scripted decider: out-of-range entries clamp, and
    /// round-robin takes over after the script is exhausted.
    pub fn new(script: Vec<usize>) -> Self {
        Scripted { script, pos: 0, strict: false, fallback: RoundRobin::new() }
    }

    /// Creates a strict scripted decider that panics if a decision is
    /// requested after the script is exhausted **or** a script entry is out
    /// of range for its decision point.
    pub fn strict(script: Vec<usize>) -> Self {
        Scripted { script, pos: 0, strict: true, fallback: RoundRobin::new() }
    }

    /// How many script entries have been consumed.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl Decider for Scripted {
    fn choose(&mut self, choice: Choice<'_>, n: usize) -> usize {
        if self.pos < self.script.len() {
            let c = self.script[self.pos];
            self.pos += 1;
            if c >= n {
                if self.strict {
                    panic!(
                        "scripted decider: entry {c} at position {} out of range for {} options ({:?})",
                        self.pos - 1,
                        n,
                        choice.kind()
                    );
                }
                return n - 1;
            }
            c
        } else if self.strict {
            panic!("scripted decider exhausted at {} ({:?})", self.pos, choice.kind());
        } else {
            self.fallback.choose(choice, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn holder_opts() -> Vec<ProcessId> {
        vec![ProcessId(0), ProcessId(1), ProcessId(2)]
    }

    #[test]
    fn round_robin_rotates_holders() {
        let mut d = RoundRobin::new();
        let opts = holder_opts();
        let mk = || Choice::Holder { cpu: ProcessorId(0), prio: Priority(1), options: &opts };
        let a = d.choose(mk(), 3);
        let b = d.choose(mk(), 3);
        let c = d.choose(mk(), 3);
        let d2 = d.choose(mk(), 3);
        assert_eq!((a, b, c, d2), (0, 1, 2, 0));
    }

    #[test]
    fn round_robin_tracks_levels_independently() {
        let mut d = RoundRobin::new();
        let opts = holder_opts();
        let lo = Choice::Holder { cpu: ProcessorId(0), prio: Priority(1), options: &opts };
        let hi = Choice::Holder { cpu: ProcessorId(0), prio: Priority(2), options: &opts };
        assert_eq!(d.choose(lo.clone(), 3), 0);
        assert_eq!(d.choose(hi.clone(), 3), 0);
        assert_eq!(d.choose(lo, 3), 1);
        assert_eq!(d.choose(hi, 3), 1);
    }

    #[test]
    fn round_robin_grants_full_first_window() {
        let mut d = RoundRobin::new();
        let c = Choice::FirstCredit { pid: ProcessId(0), quantum: 5 };
        assert_eq!(d.choose(c, 5), 4); // index 4 = credit 5
    }

    #[test]
    fn seeded_random_is_reproducible() {
        let opts = holder_opts();
        let run = |seed| {
            let mut d = SeededRandom::new(seed);
            (0..20)
                .map(|_| {
                    d.choose(
                        Choice::Holder {
                            cpu: ProcessorId(0),
                            prio: Priority(1),
                            options: &opts,
                        },
                        3,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn scripted_replays_then_falls_back() {
        let mut d = Scripted::new(vec![2, 1]);
        let opts = holder_opts();
        let mk = || Choice::Holder { cpu: ProcessorId(0), prio: Priority(1), options: &opts };
        assert_eq!(d.choose(mk(), 3), 2);
        assert_eq!(d.choose(mk(), 3), 1);
        // fallback round-robin from here on
        let _ = d.choose(mk(), 3);
        assert_eq!(d.consumed(), 2);
    }

    #[test]
    fn lenient_scripted_clamps_out_of_range() {
        let mut d = Scripted::new(vec![99]);
        let opts = holder_opts();
        assert_eq!(
            d.choose(Choice::Holder { cpu: ProcessorId(0), prio: Priority(1), options: &opts }, 3),
            2
        );
    }

    /// Regression: a strict script with an out-of-range entry must panic,
    /// not silently clamp and replay some other run (replay integrity).
    #[test]
    #[should_panic(expected = "out of range")]
    fn strict_scripted_panics_on_out_of_range() {
        let mut d = Scripted::strict(vec![99]);
        let opts = holder_opts();
        let _ = d.choose(
            Choice::Holder { cpu: ProcessorId(0), prio: Priority(1), options: &opts },
            3,
        );
    }

    #[test]
    fn noisy_at_zero_noise_is_the_base_decider() {
        let opts = holder_opts();
        let mk = || Choice::Holder { cpu: ProcessorId(0), prio: Priority(1), options: &opts };
        let mut base = RoundRobin::new();
        let mut noisy = Noisy::new(RoundRobin::new(), 0, 100, 7);
        for _ in 0..12 {
            assert_eq!(noisy.choose(mk(), 3), base.choose(mk(), 3));
        }
    }

    #[test]
    fn noisy_is_reproducible_and_noise_rate_matters() {
        let opts = holder_opts();
        let run = |num, seed| {
            let mut d = Noisy::new(RoundRobin::new(), num, 100, seed);
            (0..40)
                .map(|_| {
                    d.choose(
                        Choice::Holder {
                            cpu: ProcessorId(0),
                            prio: Priority(1),
                            options: &opts,
                        },
                        3,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(50, 42), run(50, 42));
        assert_ne!(run(50, 42), run(0, 42));
        assert_ne!(run(100, 42), run(100, 43));
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn strict_scripted_panics_on_exhaustion() {
        let mut d = Scripted::strict(vec![]);
        let opts = holder_opts();
        let _ = d.choose(
            Choice::Holder { cpu: ProcessorId(0), prio: Priority(1), options: &opts },
            3,
        );
    }
}
