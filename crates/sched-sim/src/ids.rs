//! Identifier newtypes for processes, processors, and priorities.

use core::fmt;

/// Identifies a process. Processes are numbered from 0 in creation order;
/// the paper's `p`, `q`, `r` range over these.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// The process id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifies a processor. The paper labels processors `1..P`; here they are
/// numbered from 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessorId(pub u32);

impl ProcessorId {
    /// The processor id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// A scheduling priority. Larger values are *higher* priority, matching the
/// paper's convention that levels range over `1..V` with `V` highest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub u32);

impl Priority {
    /// The priority as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_numerically() {
        assert!(Priority(3) > Priority(1));
        assert!(Priority(0) < Priority(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProcessId(2).to_string(), "p2");
        assert_eq!(ProcessorId(0).to_string(), "cpu0");
        assert_eq!(Priority(5).to_string(), "prio5");
    }

    #[test]
    fn ids_index() {
        assert_eq!(ProcessId(7).index(), 7);
        assert_eq!(ProcessorId(3).index(), 3);
    }
}
