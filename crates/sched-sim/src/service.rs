//! The [`Service`] builder: long-lived request-serving workloads over
//! sharded kernels.
//!
//! Every experiment built on [`Scenario`] is a
//! *one-shot* run: a fixed set of processes executes a fixed op list to
//! quiescence. A production-shaped object server looks different — a
//! long-lived object serves an unbounded stream of invocations from many
//! clients — and that is the workload this module models:
//!
//! * a **service** is a set of independent *shards*, one simulated kernel
//!   (one object) per shard;
//! * each shard runs a small pool of *worker* processes, and each worker
//!   multiplexes a slice of the service's simulated *clients* (the
//!   connection-multiplexing shape of a real request server: thousands of
//!   clients, a handful of server threads per core);
//! * an [`Arrival`] schedule shapes load — **closed-loop** clients think
//!   between requests (each think is its own object invocation, so the
//!   quantum window closes and the processor is yielded, exactly like a
//!   blocking server thread), while **open-loop** workers arrive in held
//!   cohorts the engine releases on a fixed period;
//! * shards fan out over the [`crate::sweep::run_cells`] worker pool, and
//!   every derived statistic folds with a commutative, associative merge
//!   in shard order — so a parallel service run is **bit-identical** to a
//!   serial one, the same guarantee every sweep in this workspace carries.
//!
//! The engine is object-agnostic: a factory closure builds each shard's
//! [`Scenario`] from its [`ShardPlan`] (which
//! worker serves which clients, at what priority, held or ready). The
//! `hybrid_wf` crate supplies the actual object machines (the long-lived
//! universal-construction sessions); `lowerbound::service` wires the two
//! together into the grid behind `experiments --service`.
//!
//! Latency is measured from the kernel's completed-invocation log
//! ([`Kernel::ops`]): a request's latency is the statement-time span of
//! its invocation, folded into allocation-free [`Hist`] histograms per
//! shard and per priority level. Think invocations report no output and
//! are excluded. Steady state allocates nothing: the engine pre-reserves
//! the op log ([`Kernel::reserve_ops`]) and the factory pre-sizes the
//! object's own arenas, per the PR 3 allocation-free discipline.

use std::marker::PhantomData;
use std::time::{Duration, Instant};

use crate::decision::RoundRobin;
use crate::ids::{ProcessId, ProcessorId, Priority};
use crate::kernel::Kernel;
use crate::machine::StepMachine;
use crate::prof::Hist;
use crate::report::Json;
use crate::scenario::{Scenario, DEFAULT_STEP_BUDGET};
use crate::sweep::run_cells;

/// How load arrives at a shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arrival {
    /// Closed loop: every request is preceded by a *think* invocation of
    /// `think` statements (0 = back-to-back requests). Thinks are separate
    /// object invocations, so each closes the worker's quantum window and
    /// yields the processor — the simulated analogue of a server thread
    /// blocking between requests.
    ClosedLoop {
        /// Statements per think invocation.
        think: u32,
    },
    /// Open loop: workers are split into `cohorts` contiguous batches;
    /// batch 0 starts ready, batch `i` is added held and released once the
    /// shard clock reaches `i * period` statements (immediately, if the
    /// ready set quiesces early). Batched arrivals, no thinking.
    OpenLoop {
        /// Number of arrival batches (≥ 1; batch 0 is the initial load).
        cohorts: u32,
        /// Statements between batch releases.
        period: u64,
    },
}

impl Arrival {
    /// Short name for reports: `"closed"` or `"open"`.
    pub fn name(&self) -> &'static str {
        match self {
            Arrival::ClosedLoop { .. } => "closed",
            Arrival::OpenLoop { .. } => "open",
        }
    }

    /// Statements per think invocation (0 under open loop).
    pub fn think(&self) -> u32 {
        match *self {
            Arrival::ClosedLoop { think } => think,
            Arrival::OpenLoop { .. } => 0,
        }
    }
}

/// Continuous client churn: a fixed set of victim workers (each standing
/// in for its multiplexed client slice) crashes and reconnects on a cycle.
///
/// Victim `j` (workers `0..victims`) runs for `period` statements, crashes,
/// stays down for `down` statements, recovers, and repeats for `cycles`
/// cycles; victims are phase-staggered across the period so the shard never
/// loses every victim at once. Crash/recovery instants are scheduled as
/// kernel lifecycle *data* ([`Kernel::schedule_crash`]), so churn runs keep
/// the engine's parallel == serial bit-identity. A crash that lands while
/// the victim is held, finished, or already down is a no-op (lenient
/// lifecycle semantics), so one plan shape serves every arrival schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnSpec {
    /// Workers per shard that churn (workers `0..victims`).
    pub victims: u32,
    /// Statements each victim stays up per cycle.
    pub period: u64,
    /// Statements each victim stays down per cycle.
    pub down: u64,
    /// Crash-and-reconnect cycles per victim.
    pub cycles: u32,
}

/// The declarative shape of a service run: how many shards, clients, and
/// worker processes, how many request invocations in total, and how load
/// arrives. The *objects* served and the *op mix* are the factory's
/// concern (see [`Service`]); this spec is object-agnostic.
#[derive(Clone, Copy, Debug)]
pub struct ServiceSpec {
    /// Independent object shards (one kernel, one object each).
    pub shards: u32,
    /// Simulated clients, partitioned evenly across shards and multiplexed
    /// onto each shard's workers.
    pub clients: u64,
    /// Worker processes per shard.
    pub workers_per_shard: u32,
    /// Total request invocations across the whole service.
    pub requests: u64,
    /// Priority levels cycled across each shard's workers
    /// (worker `w` runs at priority `1 + w mod prio_levels`).
    pub prio_levels: u32,
    /// The arrival schedule.
    pub arrival: Arrival,
    /// Continuous client churn, if any.
    pub churn: Option<ChurnSpec>,
    /// Per-shard step budget.
    pub budget: u64,
}

/// Evenly splits `total` into `parts`: the size of part `i`.
fn share(total: u64, parts: u64, i: u64) -> u64 {
    total / parts + u64::from(i < total % parts)
}

/// Evenly splits `total` into `parts`: the offset of part `i`.
fn offset(total: u64, parts: u64, i: u64) -> u64 {
    (total / parts) * i + (total % parts).min(i)
}

impl ServiceSpec {
    /// A spec over `shards` shards, `clients` clients, and `requests`
    /// total invocations, with the defaults every grid starts from: 4
    /// workers per shard, 2 priority levels, back-to-back closed-loop
    /// arrivals, and the scenario default step budget.
    pub fn new(shards: u32, clients: u64, requests: u64) -> Self {
        ServiceSpec {
            shards,
            clients,
            workers_per_shard: 4,
            requests,
            prio_levels: 2,
            arrival: Arrival::ClosedLoop { think: 0 },
            churn: None,
            budget: DEFAULT_STEP_BUDGET,
        }
    }

    /// Sets the worker-pool size per shard (chainable).
    pub fn workers_per_shard(mut self, workers: u32) -> Self {
        self.workers_per_shard = workers;
        self
    }

    /// Sets the number of priority levels cycled across workers.
    pub fn prio_levels(mut self, levels: u32) -> Self {
        self.prio_levels = levels;
        self
    }

    /// Sets the arrival schedule (chainable).
    pub fn arrival(mut self, arrival: Arrival) -> Self {
        self.arrival = arrival;
        self
    }

    /// Enables continuous client churn (chainable).
    pub fn churn(mut self, churn: ChurnSpec) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Overrides the per-shard step budget (chainable).
    pub fn step_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// The per-shard plans this spec partitions into.
    ///
    /// # Panics
    ///
    /// On degenerate shapes: zero shards/workers/levels, fewer clients
    /// than workers (a worker must multiplex at least one client), or
    /// fewer requests than workers (every worker serves at least one).
    pub fn plans(&self) -> Vec<ShardPlan> {
        assert!(self.shards >= 1, "a service needs at least one shard");
        assert!(self.workers_per_shard >= 1, "a shard needs at least one worker");
        assert!(self.prio_levels >= 1, "at least one priority level");
        let workers_total = u64::from(self.shards) * u64::from(self.workers_per_shard);
        assert!(
            self.clients >= workers_total,
            "need at least one client per worker ({} clients < {workers_total} workers)",
            self.clients
        );
        assert!(
            self.requests >= workers_total,
            "need at least one request per worker ({} requests < {workers_total} workers)",
            self.requests
        );
        if let Arrival::OpenLoop { cohorts, .. } = self.arrival {
            assert!(cohorts >= 1, "open loop needs at least one cohort");
        }
        if let Some(c) = self.churn {
            assert!(
                c.victims < self.workers_per_shard,
                "churn victims must leave at least one stable worker per shard"
            );
            assert!(c.period >= 1 && c.down >= 1, "churn period and downtime must be positive");
        }
        (0..self.shards)
            .map(|s| ShardPlan {
                shard: s,
                workers: self.workers_per_shard,
                prio_levels: self.prio_levels,
                arrival: self.arrival,
                churn: self.churn,
                budget: self.budget,
                client_lo: offset(self.clients, u64::from(self.shards), u64::from(s)),
                clients: share(self.clients, u64::from(self.shards), u64::from(s)),
                requests: share(self.requests, u64::from(self.shards), u64::from(s)),
            })
            .collect()
    }
}

/// One shard's slice of a [`ServiceSpec`]: everything a factory needs to
/// build the shard's scenario, and everything the engine needs to drive
/// and score it.
#[derive(Clone, Copy, Debug)]
pub struct ShardPlan {
    /// This shard's index.
    pub shard: u32,
    /// Workers in this shard's pool.
    pub workers: u32,
    /// Priority levels cycled across the workers.
    pub prio_levels: u32,
    /// The arrival schedule.
    pub arrival: Arrival,
    /// Continuous client churn, if any.
    pub churn: Option<ChurnSpec>,
    /// The step budget for this shard's run.
    pub budget: u64,
    /// First global client id served by this shard.
    pub client_lo: u64,
    /// Clients served by this shard.
    pub clients: u64,
    /// Request invocations this shard performs.
    pub requests: u64,
}

impl ShardPlan {
    /// Requests worker `w` performs.
    pub fn worker_requests(&self, w: u32) -> u64 {
        share(self.requests, u64::from(self.workers), u64::from(w))
    }

    /// The global-client slice worker `w` multiplexes, as `(first, count)`:
    /// request `j` of the worker is issued on behalf of client
    /// `first + (j mod count)`.
    pub fn worker_clients(&self, w: u32) -> (u64, u64) {
        let lo = self.client_lo + offset(self.clients, u64::from(self.workers), u64::from(w));
        (lo, share(self.clients, u64::from(self.workers), u64::from(w)))
    }

    /// Worker `w`'s priority: levels `1..=prio_levels`, cycled.
    pub fn priority(&self, w: u32) -> Priority {
        Priority(1 + w % self.prio_levels)
    }

    /// Worker `w`'s arrival cohort (always 0 under closed loop; contiguous
    /// blocks under open loop).
    pub fn cohort_of(&self, w: u32) -> u32 {
        match self.arrival {
            Arrival::ClosedLoop { .. } => 0,
            Arrival::OpenLoop { cohorts, .. } => {
                ((u64::from(w) * u64::from(cohorts)) / u64::from(self.workers)) as u32
            }
        }
    }

    /// Whether worker `w` starts held (a later open-loop cohort).
    pub fn is_held(&self, w: u32) -> bool {
        self.cohort_of(w) != 0
    }

    /// Statements per think invocation (0 under open loop).
    pub fn think(&self) -> u32 {
        self.arrival.think()
    }

    /// Total invocations this shard's kernel will record: every request,
    /// plus one think invocation per request under a thinking closed loop.
    /// The engine pre-reserves the kernel op log to exactly this.
    pub fn expected_invocations(&self) -> u64 {
        if self.think() > 0 {
            2 * self.requests
        } else {
            self.requests
        }
    }

    /// Adds worker `w`'s machine to `s` with the plan's placement: pinned
    /// to the shard's (single) processor, at [`ShardPlan::priority`], held
    /// iff in a later arrival cohort. Factories should add workers 0, 1, …
    /// in order so process ids equal worker indices.
    pub fn add_worker<M>(
        &self,
        s: &mut Scenario<M>,
        w: u32,
        machine: Box<dyn StepMachine<M>>,
    ) -> ProcessId {
        if self.is_held(w) {
            s.add_held_process(ProcessorId(0), self.priority(w), machine)
        } else {
            s.add_process(ProcessorId(0), self.priority(w), machine)
        }
    }
}

/// A long-lived request-serving run: a [`ServiceSpec`] plus a factory
/// building each shard's [`Scenario`] from its [`ShardPlan`]. See the
/// [module docs](self).
///
/// ```
/// use sched_sim::machine::{FnMachine, StepOutcome};
/// use sched_sim::kernel::SystemSpec;
/// use sched_sim::scenario::Scenario;
/// use sched_sim::service::{Service, ServiceSpec};
///
/// // A toy object: each "request" is a 3-statement bump of shared memory.
/// let spec = ServiceSpec::new(2, 8, 16).workers_per_shard(2);
/// let service = Service::new(spec, |plan| {
///     let mut s = Scenario::new(0u64, SystemSpec::hybrid(4));
///     for w in 0..plan.workers {
///         let reqs = plan.worker_requests(w);
///         plan.add_worker(&mut s, w, Box::new(FnMachine::new(move |mem: &mut u64, calls| {
///             *mem += 1;
///             let inv = u64::from(calls + 1);
///             if inv % 3 != 0 { (StepOutcome::Continue, None) }
///             else if inv / 3 >= reqs { (StepOutcome::Finished, Some(*mem)) }
///             else { (StepOutcome::InvocationEnd, Some(*mem)) }
///         })));
///     }
///     s
/// });
/// let report = service.run(2);
/// assert!(report.all_finished());
/// assert_eq!(report.requests(), 16);
/// assert!(report.latency().percentile(99.0).is_some());
/// ```
pub struct Service<M, F> {
    spec: ServiceSpec,
    build: F,
    _mem: PhantomData<fn() -> M>,
}

impl<M, F: Fn(&ShardPlan) -> Scenario<M> + Sync> Service<M, F> {
    /// A service from its spec and shard factory.
    pub fn new(spec: ServiceSpec, build: F) -> Self {
        Service { spec, build, _mem: PhantomData }
    }

    /// The configured spec.
    pub fn spec(&self) -> &ServiceSpec {
        &self.spec
    }

    /// Builds one shard's kernel exactly as [`Service::run`] would (the
    /// factory's scenario, op log pre-reserved) — the hook direct-driving
    /// tests (e.g. allocation counting) use to probe the steady state.
    pub fn shard_kernel(&self, shard: u32) -> Kernel<M> {
        let plan = self.spec.plans()[shard as usize];
        prepared_kernel(&plan, &self.build)
    }

    /// Runs every shard over `jobs` sweep workers and folds the results.
    /// Deterministic: the report (histograms included) is bit-identical
    /// for every `jobs` value.
    pub fn run(&self, jobs: usize) -> ServiceReport {
        let plans = self.spec.plans();
        let shards = run_cells(&plans, jobs, |_, plan| run_shard(plan, &self.build));
        ServiceReport { shards }
    }
}

/// Builds a shard's kernel from the factory and applies the engine's
/// steady-state preparation (op-log reservation).
fn prepared_kernel<M>(plan: &ShardPlan, build: &impl Fn(&ShardPlan) -> Scenario<M>) -> Kernel<M> {
    let scenario = build(plan);
    assert_eq!(
        scenario.n_processes() as u32,
        plan.workers,
        "shard factory must add exactly one process per worker, in worker order"
    );
    let mut k = scenario.into_kernel();
    if let Some(churn) = plan.churn {
        for j in 0..churn.victims {
            // Phase-stagger the victims across the up-period so the shard
            // never loses its whole churning set at one instant.
            let phase = u64::from(j) * churn.period / u64::from(churn.victims);
            for c in 0..u64::from(churn.cycles) {
                let crash_at = churn.period + c * (churn.period + churn.down) + phase;
                k.schedule_crash(crash_at, ProcessId(j));
                k.schedule_recover(crash_at + churn.down, ProcessId(j));
            }
        }
    }
    k.reserve_ops(plan.expected_invocations() as usize);
    k
}

/// Drives one shard to completion (with open-loop release choreography)
/// and folds its op log into the shard report.
fn run_shard<M>(plan: &ShardPlan, build: &impl Fn(&ShardPlan) -> Scenario<M>) -> ShardReport {
    let mut k = prepared_kernel(plan, build);
    let t0 = Instant::now();
    let mut d = RoundRobin::new();
    let budget = plan.budget;
    let mut steps = 0u64;
    if let Arrival::OpenLoop { cohorts, period } = plan.arrival {
        for cohort in 1..cohorts {
            let target = u64::from(cohort) * period;
            while k.clock() < target && steps < budget {
                let chunk = (target - k.clock()).min(budget - steps);
                let ran = k.run(&mut d, chunk);
                steps += ran;
                if ran < chunk {
                    // The ready set quiesced before the release time:
                    // release the next cohort immediately (simulated time
                    // cannot pass without statements).
                    break;
                }
            }
            for w in 0..plan.workers {
                if plan.cohort_of(w) == cohort {
                    k.release(ProcessId(w));
                }
            }
        }
    }
    steps += k.run(&mut d, budget - steps);
    let wall = t0.elapsed();
    let counters = k.counters();

    let mut latency = Hist::new();
    let mut per_prio: Vec<Hist> = vec![Hist::new(); plan.prio_levels as usize + 1];
    let mut requests = 0u64;
    for rec in k.ops() {
        // Think invocations report no output and are not requests.
        let Some(_) = rec.output else { continue };
        requests += 1;
        let lat = rec.t - rec.start + 1;
        latency.record(lat);
        per_prio[plan.priority(rec.pid.0).index()].record(lat);
    }
    ShardReport {
        shard: plan.shard,
        steps,
        wall,
        all_finished: k.all_finished(),
        requests,
        crashes: counters.crashes,
        recoveries: counters.recoveries,
        latency,
        per_prio,
    }
}

/// One shard's outcome: throughput (steps, requests) and latency
/// distributions, overall and per priority level.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// The shard index.
    pub shard: u32,
    /// Statements the shard executed.
    pub steps: u64,
    /// Wall-clock time (metadata; never part of determinism comparisons).
    pub wall: Duration,
    /// Whether every worker finished within the budget.
    pub all_finished: bool,
    /// Completed requests (think invocations excluded).
    pub requests: u64,
    /// Churn crashes this shard suffered (0 without churn).
    pub crashes: u64,
    /// Churn recoveries (crashed workers reconnecting).
    pub recoveries: u64,
    /// Request-latency histogram (statements from first to last statement
    /// of the request invocation, inclusive).
    pub latency: Hist,
    /// Request-latency histograms by raw priority level (index 0 unused).
    pub per_prio: Vec<Hist>,
}

/// The outcome of [`Service::run`]: per-shard reports plus order-stable
/// merged views. All derived values are deterministic except the wall
/// times.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Per-shard outcomes, in shard order.
    pub shards: Vec<ShardReport>,
}

impl ServiceReport {
    /// Total statements across shards.
    pub fn steps(&self) -> u64 {
        self.shards.iter().map(|s| s.steps).sum()
    }

    /// Total completed requests across shards.
    pub fn requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Total wall-clock time summed over shards (metadata).
    pub fn wall(&self) -> Duration {
        self.shards.iter().map(|s| s.wall).sum()
    }

    /// Whether every shard finished inside its budget.
    pub fn all_finished(&self) -> bool {
        self.shards.iter().all(|s| s.all_finished)
    }

    /// Total churn crashes across shards.
    pub fn crashes(&self) -> u64 {
        self.shards.iter().map(|s| s.crashes).sum()
    }

    /// Total churn recoveries across shards.
    pub fn recoveries(&self) -> u64 {
        self.shards.iter().map(|s| s.recoveries).sum()
    }

    /// The service-wide latency histogram (shards folded in shard order;
    /// the merge is order-independent, so this equals any other fold).
    pub fn latency(&self) -> Hist {
        let mut h = Hist::new();
        for s in &self.shards {
            h.merge(&s.latency);
        }
        h
    }

    /// Service-wide latency histograms by raw priority level.
    pub fn per_prio(&self) -> Vec<Hist> {
        let levels = self.shards.iter().map(|s| s.per_prio.len()).max().unwrap_or(0);
        let mut out = vec![Hist::new(); levels];
        for s in &self.shards {
            for (level, h) in s.per_prio.iter().enumerate() {
                out[level].merge(h);
            }
        }
        out
    }

    /// Mean statements per completed request — the deterministic
    /// throughput figure reports and regression gates compare (wall-time
    /// throughput is machine-dependent and lives in the timing sidecar).
    pub fn steps_per_request(&self) -> Option<f64> {
        let reqs = self.requests();
        (reqs > 0).then(|| self.steps() as f64 / reqs as f64)
    }

    /// Renders the report as JSONL artifact lines: one `service_shard`
    /// line per shard, then one `service_total` summary carrying the
    /// merged histogram and the per-priority percentile table. `base`
    /// pairs (e.g. the object and arrival names) lead every line's `cell`.
    ///
    /// Everything in the lines is deterministic except `wall_ms`, which
    /// the artifact writer splits into the timing sidecar.
    pub fn report_lines(&self, base: &[(&str, Json)]) -> Vec<Json> {
        let cell = |extra: Vec<(&str, Json)>| {
            Json::obj(base.iter().map(|(k, v)| (*k, v.clone())).chain(extra))
        };
        // An empty histogram has no percentiles: emit null, not a fake 0
        // (a real zero-statement latency is impossible anyway, but a
        // starved priority level must be distinguishable from a fast one).
        let pct = |h: &Hist, p: f64| h.percentile(p).map_or(Json::Null, Json::Int);
        let spr = |steps: u64, reqs: u64| {
            let v = if reqs > 0 { steps as f64 / reqs as f64 } else { 0.0 };
            Json::Float((v * 1000.0).round() / 1000.0)
        };
        let mut lines = Vec::new();
        for s in &self.shards {
            lines.push(Json::obj([
                ("kind", Json::from("service_shard")),
                ("cell", cell(vec![("shard", Json::from(s.shard))])),
                ("steps", Json::from(s.steps)),
                ("requests", Json::from(s.requests)),
                ("steps_per_request", spr(s.steps, s.requests)),
                ("p50", pct(&s.latency, 50.0)),
                ("p90", pct(&s.latency, 90.0)),
                ("p99", pct(&s.latency, 99.0)),
                ("crashes", Json::from(s.crashes)),
                ("recoveries", Json::from(s.recoveries)),
                ("all_finished", Json::from(s.all_finished)),
                ("wall_ms", Json::from(wall_ms(s.wall))),
            ]));
        }
        let merged = self.latency();
        let per_prio: Vec<Json> = self
            .per_prio()
            .iter()
            .enumerate()
            .filter(|(_, h)| h.count() > 0)
            .map(|(level, h)| {
                Json::obj([
                    ("prio", Json::Int(level as u64)),
                    ("requests", Json::Int(h.count())),
                    ("p50", pct(h, 50.0)),
                    ("p90", pct(h, 90.0)),
                    ("p99", pct(h, 99.0)),
                ])
            })
            .collect();
        lines.push(Json::obj([
            ("kind", Json::from("service_total")),
            ("cell", cell(vec![("shards", Json::from(self.shards.len() as u64))])),
            ("steps", Json::from(self.steps())),
            ("requests", Json::from(self.requests())),
            ("steps_per_request", spr(self.steps(), self.requests())),
            ("p50", pct(&merged, 50.0)),
            ("p90", pct(&merged, 90.0)),
            ("p99", pct(&merged, 99.0)),
            ("crashes", Json::from(self.crashes())),
            ("recoveries", Json::from(self.recoveries())),
            ("all_finished", Json::from(self.all_finished())),
            ("latency", merged.to_json()),
            ("per_prio", Json::Arr(per_prio)),
            ("wall_ms", Json::from(wall_ms(self.wall()))),
        ]));
        lines
    }
}

/// Wall-clock milliseconds rounded to 1 µs (the artifact convention).
fn wall_ms(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e3 * 1e3).round() / 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SystemSpec;
    use crate::machine::{FnMachine, StepOutcome};
    use crate::report::split_timing;

    /// A toy shard factory: each worker performs its planned requests as
    /// `len`-statement invocations against a shared counter, with output.
    fn toy_service(
        spec: ServiceSpec,
        len: u64,
    ) -> Service<u64, impl Fn(&ShardPlan) -> Scenario<u64> + Sync> {
        Service::new(spec, move |plan| {
            let mut s = Scenario::new(0u64, SystemSpec::hybrid(4));
            for w in 0..plan.workers {
                let reqs = plan.worker_requests(w);
                plan.add_worker(
                    &mut s,
                    w,
                    Box::new(FnMachine::new(move |mem: &mut u64, calls| {
                        *mem += 1;
                        let inv = u64::from(calls) + 1;
                        if inv % len != 0 {
                            (StepOutcome::Continue, None)
                        } else if inv / len >= reqs {
                            (StepOutcome::Finished, Some(*mem))
                        } else {
                            (StepOutcome::InvocationEnd, Some(*mem))
                        }
                    })),
                );
            }
            s
        })
    }

    fn canonical(lines: &[Json]) -> Vec<String> {
        lines.iter().map(|l| split_timing(l).0.to_string()).collect()
    }

    #[test]
    fn spec_partitions_evenly_and_exactly() {
        let spec = ServiceSpec::new(3, 10, 17).workers_per_shard(2);
        let plans = spec.plans();
        assert_eq!(plans.len(), 3);
        assert_eq!(plans.iter().map(|p| p.requests).sum::<u64>(), 17);
        assert_eq!(plans.iter().map(|p| p.clients).sum::<u64>(), 10);
        // Client ranges tile [0, clients) without gaps or overlap.
        for w in plans.windows(2) {
            assert_eq!(w[0].client_lo + w[0].clients, w[1].client_lo);
        }
        // Per-worker splits are exact too.
        for p in &plans {
            let wr: u64 = (0..p.workers).map(|w| p.worker_requests(w)).sum();
            assert_eq!(wr, p.requests);
            let wc: u64 = (0..p.workers).map(|w| p.worker_clients(w).1).sum();
            assert_eq!(wc, p.clients);
            assert_eq!(p.worker_clients(0).0, p.client_lo);
        }
    }

    #[test]
    fn priorities_and_cohorts_cycle_as_documented() {
        let mut spec = ServiceSpec::new(1, 8, 8).workers_per_shard(4);
        spec.arrival = Arrival::OpenLoop { cohorts: 2, period: 16 };
        let p = spec.plans().remove(0);
        assert_eq!(p.priority(0), Priority(1));
        assert_eq!(p.priority(1), Priority(2));
        assert_eq!(p.priority(2), Priority(1));
        assert_eq!(p.cohort_of(0), 0);
        assert_eq!(p.cohort_of(1), 0);
        assert_eq!(p.cohort_of(2), 1);
        assert!(!p.is_held(0) && p.is_held(3));
        assert_eq!(p.think(), 0);
        assert_eq!(p.expected_invocations(), p.requests);
    }

    #[test]
    fn closed_loop_service_completes_and_counts_requests() {
        let report = toy_service(ServiceSpec::new(2, 8, 20).workers_per_shard(2), 3).run(1);
        assert!(report.all_finished());
        assert_eq!(report.requests(), 20);
        // Each request is a 3-statement invocation: 60 statements total.
        assert_eq!(report.steps(), 60);
        let lat = report.latency();
        assert_eq!(lat.count(), 20);
        assert!(lat.percentile(50.0).is_some());
        // Both priority levels served requests.
        let per_prio = report.per_prio();
        assert!(per_prio[1].count() > 0 && per_prio[2].count() > 0);
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let mut spec = ServiceSpec::new(4, 16, 64).workers_per_shard(2);
        spec.arrival = Arrival::OpenLoop { cohorts: 2, period: 8 };
        let svc = toy_service(spec, 5);
        let serial = svc.run(1);
        let parallel = svc.run(4);
        let base = [("object", Json::from("toy"))];
        assert_eq!(
            canonical(&serial.report_lines(&base)),
            canonical(&parallel.report_lines(&base)),
        );
        assert_eq!(serial.requests(), 64);
        assert_eq!(serial.steps(), parallel.steps());
        assert_eq!(serial.latency(), parallel.latency());
    }

    #[test]
    fn open_loop_releases_late_cohorts() {
        let mut spec = ServiceSpec::new(1, 4, 8).workers_per_shard(4);
        spec.arrival = Arrival::OpenLoop { cohorts: 4, period: 6 };
        let report = toy_service(spec, 3).run(1);
        assert!(report.all_finished(), "held cohorts must be released");
        assert_eq!(report.requests(), 8);
    }

    /// Churn: victims crash mid-invocation and reconnect, yet every
    /// request still completes exactly once (the op log records only
    /// completed invocations, and a restarted invocation completes once),
    /// and the parallel run stays bit-identical to the serial one.
    #[test]
    fn churn_service_survives_and_counts_requests_exactly_once() {
        let spec = ServiceSpec::new(2, 8, 24)
            .workers_per_shard(2)
            .churn(ChurnSpec { victims: 1, period: 7, down: 5, cycles: 3 });
        let svc = toy_service(spec, 4);
        let serial = svc.run(1);
        let parallel = svc.run(2);
        assert!(serial.all_finished(), "churn must not wedge the service");
        assert_eq!(serial.requests(), 24, "every request completes exactly once");
        assert!(serial.crashes() > 0, "the churn plan must actually fire");
        assert_eq!(serial.crashes(), serial.recoveries(), "every crash reconnects");
        let base = [("object", Json::from("toy"))];
        assert_eq!(
            canonical(&serial.report_lines(&base)),
            canonical(&parallel.report_lines(&base)),
        );
    }

    /// Satellite fix: an empty latency histogram has no percentiles —
    /// report `null`, not a fake 0 indistinguishable from a real
    /// zero-statement latency.
    #[test]
    fn empty_histogram_percentiles_serialize_as_null() {
        let report = ServiceReport {
            shards: vec![ShardReport {
                shard: 0,
                steps: 0,
                wall: Duration::ZERO,
                all_finished: true,
                requests: 0,
                crashes: 0,
                recoveries: 0,
                latency: Hist::new(),
                per_prio: vec![Hist::new(); 3],
            }],
        };
        let lines = report.report_lines(&[("object", Json::from("toy"))]);
        for line in &lines {
            for key in ["p50", "p90", "p99"] {
                assert_eq!(line.get(key), Some(&Json::Null), "{key} of an empty histogram");
            }
        }
        // Non-empty histograms keep reporting integers.
        let report = toy_service(ServiceSpec::new(1, 2, 4).workers_per_shard(2), 3).run(1);
        let lines = report.report_lines(&[("object", Json::from("toy"))]);
        for line in &lines {
            assert!(line.get("p50").and_then(Json::as_u64).is_some());
        }
    }

    #[test]
    fn report_lines_carry_percentiles_and_split_cleanly() {
        let report = toy_service(ServiceSpec::new(2, 4, 8).workers_per_shard(2), 4).run(2);
        let lines = report.report_lines(&[("object", Json::from("toy"))]);
        assert_eq!(lines.len(), 3, "two shard lines + one total");
        let total = lines.last().unwrap();
        assert_eq!(total.get("kind").and_then(Json::as_str), Some("service_total"));
        assert_eq!(total.get("requests").and_then(Json::as_u64), Some(8));
        assert!(total.get("p50").and_then(Json::as_u64).is_some());
        assert!(total.get("per_prio").is_some());
        assert_eq!(
            total.get("cell").and_then(|c| c.get("object")).and_then(Json::as_str),
            Some("toy"),
        );
        // wall_ms leaves the canonical halves.
        for line in &lines {
            let (canon, timing) = split_timing(line);
            assert_eq!(canon.get("wall_ms"), None);
            assert!(timing.is_some());
        }
    }
}
