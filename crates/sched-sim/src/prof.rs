//! Schedule profiler: derived metrics, log-bucketed histograms, and a
//! Chrome Trace Format (Perfetto) exporter.
//!
//! The observability layer ([`crate::obs`]) captures *what happened* as a
//! flat [`ObsEvent`] stream; this module folds that stream into the
//! quantities the paper actually argues about:
//!
//! * **Quantum-window utilization** — Axiom 2 grants a window of `Q`
//!   own-statements; the profiler sums, per process and per priority
//!   level, how much of each closed window's credit was actually used
//!   (a window closed by an invocation boundary leaves credit unused;
//!   an [`WindowCloseReason::Expired`] window used all of it).
//! * **Same- vs higher-priority preemption counts** — the two preemption
//!   species Lemmas 2/3 bound, attributed to the victim.
//! * **Dispatch latency** — statements elapsed between a process becoming
//!   ready (arrival, release, or losing the processor after its last
//!   statement) and its next dispatch: the scheduling delay a competing
//!   process inflicts.
//! * **Invocation step counts** — own-statements per completed object
//!   invocation, the per-operation work term of the universal
//!   constructions.
//! * **Q-C&S retry counts** — preemptions suffered *mid-invocation* per
//!   completed invocation. In the Anderson–Jain–Ott quantum-based
//!   algorithms every preemption that lands inside a `Q-C&S` section
//!   forces a retry, so this histogram is exactly the per-invocation
//!   retry-count distribution those bounds are stated over.
//!
//! Distributions are kept in [`Hist`], an allocation-free log-bucketed
//! histogram whose [`Hist::merge`] is commutative and associative, so a
//! parallel sweep ([`crate::sweep::run_cells`]) can profile every cell
//! independently and fold the results in cell order with a result that is
//! bit-identical to the serial sweep.
//!
//! A profiler can be fed three ways:
//!
//! 1. **Live** — [`Kernel::attach_prof`](crate::kernel::Kernel::attach_prof)
//!    streams every event into a [`Profile`] as it is emitted, with no
//!    trace retained (O(processes) memory instead of O(events)).
//! 2. **Offline** — [`Profile::from_trace`] folds a captured [`Trace`]
//!    (including any committed `.trace` artifact reloaded via
//!    [`Trace::from_text`]).
//! 3. **Merged** — [`Profile::merge`] combines the profiles of many runs.
//!
//! Finally, [`chrome_trace_text`] renders any [`Trace`] as Chrome Trace
//! Format JSON — one track group per processor, a span row per process
//! for quantum windows and one for invocations, instants for preemptions
//! and releases, and a scheduler track for decisions — which
//! `ui.perfetto.dev` (or `chrome://tracing`) opens directly. One
//! simulated statement maps to one microsecond of trace time.
//!
//! ```
//! use sched_sim::ids::{Priority, ProcessorId};
//! use sched_sim::kernel::SystemSpec;
//! use sched_sim::machine::{FnMachine, StepOutcome};
//! use sched_sim::prof::Profile;
//! use sched_sim::scenario::Scenario;
//!
//! let mut s = Scenario::new(0u64, SystemSpec::hybrid(2).with_adversarial_alignment())
//!     .with_obs()
//!     .with_prof();
//! for _ in 0..2 {
//!     s.add_process(ProcessorId(0), Priority(1), Box::new(FnMachine::new(
//!         |mem: &mut u64, calls| {
//!             *mem += 1;
//!             if calls == 5 { (StepOutcome::Finished, None) }
//!             else { (StepOutcome::Continue, None) }
//!         })));
//! }
//! let mut r = s.run_seeded(7);
//! let live = r.take_profile().expect("prof attached");
//! // The live profile and the offline fold of the captured trace agree.
//! let offline = Profile::from_trace(&r.take_trace().expect("obs attached"));
//! assert_eq!(live, offline);
//! assert!(live.total_stmts() > 0);
//! ```

use std::fmt;

use crate::ids::{ProcessId, ProcessorId, Priority};
use crate::obs::{DecisionKind, ObsEvent, Trace, WindowCloseReason};
use crate::report::Json;

/// Number of histogram buckets: one for the value `0` plus one per bit
/// length `1..=64`.
const N_BUCKETS: usize = 65;

/// An allocation-free log-bucketed histogram over `u64` samples.
///
/// Bucket `0` holds the value `0`; bucket `b >= 1` holds the values of bit
/// length `b`, i.e. the range `[2^(b-1), 2^b - 1]`. Alongside the bucket
/// counts the exact `count`, `sum`, `min`, and `max` are maintained, so
/// means are exact and only the shape of the distribution is quantized.
///
/// [`Hist::merge`] is commutative and associative (counts and sums add,
/// extrema combine), which is what makes parallel sweep aggregation
/// order-independent and therefore deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    counts: [u64; N_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist { counts: [0; N_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

/// The bucket index of `v`: 0 for 0, else the bit length of `v`.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// The smallest value bucket `b` admits.
fn bucket_lo(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Commutative and associative.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, if any was recorded.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any was recorded.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean of all samples (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// A conservative upper estimate of the `p`-th percentile
    /// (`0 < p <= 100`): the upper bound of the log bucket holding the
    /// `ceil(p/100 · count)`-th smallest sample, clamped to the exact
    /// `[min, max]` range. `None` when the histogram is empty.
    ///
    /// Derived entirely from the bucket counts and the exact extrema, so
    /// it is deterministic and — because [`Hist::merge`] is commutative
    /// and associative — identical whether the histogram was built
    /// serially or merged from a parallel sweep. The estimate errs high
    /// (never low) by at most the width of one log bucket.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let k = ((p / 100.0) * self.count as f64).ceil() as u64;
        let k = k.clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= k {
                // The largest value bucket `b` admits: 2^b - 1 (bucket 0
                // holds only the value 0; bucket 64 tops out at u64::MAX).
                let hi = match b {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << b) - 1,
                };
                return Some(hi.clamp(self.min, self.max));
            }
        }
        unreachable!("cumulative bucket counts must reach self.count")
    }

    /// The histogram as a JSON object: exact `count`/`sum`/`min`/`max`
    /// plus the non-empty buckets as `[bucket_lower_bound, count]` pairs.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| {
                Json::Arr(vec![Json::Int(bucket_lo(b)), Json::Int(c)])
            })
            .collect();
        Json::obj([
            ("count", Json::Int(self.count)),
            ("sum", Json::Int(self.sum)),
            ("min", Json::Int(self.min().unwrap_or(0))),
            ("max", Json::Int(self.max().unwrap_or(0))),
            ("buckets", Json::Arr(buckets)),
        ])
    }

    /// A one-line human summary, e.g. `n=20 mean=19.80 min=13 max=33`.
    pub fn summary(&self) -> String {
        if self.count == 0 {
            "n=0".to_string()
        } else {
            format!("n={} mean={:.2} min={} max={}", self.count, self.mean(), self.min, self.max)
        }
    }
}

/// Derived metrics for one process.
///
/// Window sums (`windows`, `window_credit`, `window_stmts`, `window_fill`)
/// cover *closed* windows only; a window still open when the stream ends
/// is not counted (its fill is unknowable).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProcProfile {
    /// Own statements executed.
    pub stmts: u64,
    /// Dispatches (the processor switched to this process).
    pub dispatches: u64,
    /// Releases from the held state.
    pub releases: u64,
    /// Quantum windows held to their close.
    pub windows: u64,
    /// Total credit (granted own-statements) over closed windows.
    pub window_credit: u64,
    /// Statements actually executed inside closed windows.
    pub window_stmts: u64,
    /// Quantum (same-priority) preemptions suffered.
    pub preempt_same: u64,
    /// Priority (higher-priority) preemption episodes suffered.
    pub preempt_higher: u64,
    /// Crashes suffered (each discards the partial invocation).
    pub crashes: u64,
    /// Recoveries (crashed → ready transitions).
    pub recoveries: u64,
    /// Completed object invocations.
    pub invocations: u64,
    /// Statements from becoming ready to the next dispatch.
    pub dispatch_latency: Hist,
    /// Own statements per completed invocation.
    pub inv_steps: Hist,
    /// Mid-invocation preemptions per completed invocation — the Q-C&S
    /// retry count (see the module docs).
    pub inv_retries: Hist,
    /// Statements executed per closed window (the numerator of
    /// utilization, as a distribution).
    pub window_fill: Hist,
}

impl ProcProfile {
    /// `window_stmts / window_credit` over closed windows, or `None` if no
    /// window closed.
    pub fn utilization(&self) -> Option<f64> {
        (self.window_credit > 0).then(|| self.window_stmts as f64 / self.window_credit as f64)
    }

    /// Whether any event touched this process.
    fn is_empty(&self) -> bool {
        self.stmts == 0
            && self.dispatches == 0
            && self.releases == 0
            && self.windows == 0
            && self.preempt_same == 0
            && self.preempt_higher == 0
            && self.crashes == 0
    }

    fn merge(&mut self, other: &ProcProfile) {
        self.stmts += other.stmts;
        self.dispatches += other.dispatches;
        self.releases += other.releases;
        self.windows += other.windows;
        self.window_credit += other.window_credit;
        self.window_stmts += other.window_stmts;
        self.preempt_same += other.preempt_same;
        self.preempt_higher += other.preempt_higher;
        self.crashes += other.crashes;
        self.recoveries += other.recoveries;
        self.invocations += other.invocations;
        self.dispatch_latency.merge(&other.dispatch_latency);
        self.inv_steps.merge(&other.inv_steps);
        self.inv_retries.merge(&other.inv_retries);
        self.window_fill.merge(&other.window_fill);
    }
}

/// Derived metrics aggregated over one priority level (the paper's `1..V`,
/// larger = higher).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrioProfile {
    /// Statements executed at this level.
    pub stmts: u64,
    /// Quantum windows at this level held to their close.
    pub windows: u64,
    /// Total credit over those windows.
    pub window_credit: u64,
    /// Statements executed inside those windows.
    pub window_stmts: u64,
    /// Quantum preemptions whose victim ran at this level.
    pub preempt_same: u64,
    /// Priority-preemption episodes whose victim ran at this level.
    pub preempt_higher: u64,
    /// Invocations completed at this level.
    pub invocations: u64,
}

impl PrioProfile {
    /// `window_stmts / window_credit` over closed windows at this level.
    pub fn utilization(&self) -> Option<f64> {
        (self.window_credit > 0).then(|| self.window_stmts as f64 / self.window_credit as f64)
    }

    fn is_empty(&self) -> bool {
        self.stmts == 0 && self.windows == 0 && self.preempt_same == 0 && self.preempt_higher == 0
    }

    fn merge(&mut self, other: &PrioProfile) {
        self.stmts += other.stmts;
        self.windows += other.windows;
        self.window_credit += other.window_credit;
        self.window_stmts += other.window_stmts;
        self.preempt_same += other.preempt_same;
        self.preempt_higher += other.preempt_higher;
        self.invocations += other.invocations;
    }
}

/// Transient per-process state of the streaming fold.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct ProcState {
    /// Statement time since which the process has been waiting for a
    /// dispatch: 0 at arrival, `t` at a release, `t + 1` after its own
    /// statement at `t`.
    ready_since: u64,
    /// Own statements in the current (incomplete) invocation.
    inv_steps: u64,
    /// Preemptions suffered during the current invocation.
    inv_retries: u64,
    /// Last priority this process was seen executing at, as a raw level.
    prio: Option<u32>,
}

/// An open quantum window being tracked at one `(cpu, prio)` slot.
#[derive(Clone, Debug, PartialEq, Eq)]
struct OpenWindow {
    holder: ProcessId,
    credit: u32,
    stmts: u64,
}

fn dk_index(k: DecisionKind) -> usize {
    match k {
        DecisionKind::Cpu => 0,
        DecisionKind::Holder => 1,
        DecisionKind::FirstCredit => 2,
    }
}

fn wc_index(r: WindowCloseReason) -> usize {
    match r {
        WindowCloseReason::InvocationEnd => 0,
        WindowCloseReason::Finished => 1,
        WindowCloseReason::Expired => 2,
        WindowCloseReason::Crashed => 3,
    }
}

/// A streaming schedule profiler: folds [`ObsEvent`]s into per-process and
/// per-priority derived metrics (see the module docs for the catalogue).
///
/// Feed it live via [`Kernel::attach_prof`](crate::kernel::Kernel::attach_prof),
/// offline via [`Profile::from_trace`], or event by event via
/// [`Profile::observe`]. Profiles of *different runs* combine with
/// [`Profile::merge`]; in-flight state (open windows, incomplete
/// invocations) belongs to a single stream and is deliberately not merged.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    /// Per-process metrics, indexed by [`ProcessId::index`].
    pub per_process: Vec<ProcProfile>,
    /// Per-priority metrics, indexed by the raw priority level.
    pub per_priority: Vec<PrioProfile>,
    /// Decisions consulted, by kind: `[cpu, holder, first_credit]`.
    decisions: [u64; 3],
    /// Window closes, by reason: `[inv_end, finished, expired, crashed]`.
    closes: [u64; 4],
    /// Dispatch events whose timestamp preceded the process's recorded
    /// ready-since instant. A well-formed stream never produces one (the
    /// fold debug-asserts), so a nonzero count flags a malformed or
    /// corrupted trace instead of being silently clamped to latency 0.
    clock_inversions: u64,
    /// Open-window slots, indexed `[cpu][prio]`.
    open: Vec<Vec<Option<OpenWindow>>>,
    /// Transient per-process fold state (parallel to `per_process`).
    st: Vec<ProcState>,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Self {
        Profile::default()
    }

    /// Folds an entire captured trace. The result equals a live profile
    /// attached to the run that produced the trace.
    pub fn from_trace(trace: &Trace) -> Profile {
        let mut p = Profile::new();
        for ev in &trace.events {
            p.observe(ev);
        }
        p
    }

    fn ensure_proc(&mut self, pid: ProcessId) {
        let n = pid.index() + 1;
        if self.per_process.len() < n {
            self.per_process.resize_with(n, ProcProfile::default);
            self.st.resize_with(n, ProcState::default);
        }
    }

    fn ensure_prio(&mut self, prio: Priority) {
        let n = prio.index() + 1;
        if self.per_priority.len() < n {
            self.per_priority.resize_with(n, PrioProfile::default);
        }
    }

    fn open_slot(&mut self, cpu: ProcessorId, prio: Priority) -> &mut Option<OpenWindow> {
        let (c, p) = (cpu.index(), prio.index());
        if self.open.len() <= c {
            self.open.resize_with(c + 1, Vec::new);
        }
        if self.open[c].len() <= p {
            self.open[c].resize_with(p + 1, || None);
        }
        &mut self.open[c][p]
    }

    /// Attributes one preemption of `victim` (already `ensure_proc`'d by
    /// the caller) to its process, its priority level, and its current
    /// invocation's retry count.
    fn preempted(&mut self, victim: ProcessId, higher: bool) {
        let i = victim.index();
        if higher {
            self.per_process[i].preempt_higher += 1;
        } else {
            self.per_process[i].preempt_same += 1;
        }
        self.st[i].inv_retries += 1;
        if let Some(level) = self.st[i].prio {
            self.ensure_prio(Priority(level));
            let row = &mut self.per_priority[level as usize];
            if higher {
                row.preempt_higher += 1;
            } else {
                row.preempt_same += 1;
            }
        }
    }

    /// Folds one event into the profile. Events must arrive in stream
    /// order (the order the kernel emits / a trace stores them).
    pub fn observe(&mut self, ev: &ObsEvent) {
        match *ev {
            ObsEvent::Decision { kind, .. } => {
                self.decisions[dk_index(kind)] += 1;
            }
            ObsEvent::Dispatch { t, pid, prio, .. } => {
                self.ensure_proc(pid);
                let i = pid.index();
                self.per_process[i].dispatches += 1;
                let since = self.st[i].ready_since;
                debug_assert!(
                    t >= since,
                    "dispatch at t={t} precedes ready-since {since} for {pid:?}",
                );
                let lat = if t >= since {
                    t - since
                } else {
                    self.clock_inversions += 1;
                    0
                };
                self.per_process[i].dispatch_latency.record(lat);
                self.st[i].prio = Some(prio.0);
            }
            ObsEvent::WindowOpen { cpu, prio, holder, credit, .. } => {
                self.ensure_proc(holder);
                *self.open_slot(cpu, prio) = Some(OpenWindow { holder, credit, stmts: 0 });
            }
            ObsEvent::WindowClose { cpu, prio, reason, .. } => {
                self.closes[wc_index(reason)] += 1;
                if let Some(w) = self.open_slot(cpu, prio).take() {
                    self.ensure_proc(w.holder);
                    self.ensure_prio(prio);
                    let p = &mut self.per_process[w.holder.index()];
                    p.windows += 1;
                    p.window_credit += u64::from(w.credit);
                    p.window_stmts += w.stmts;
                    p.window_fill.record(w.stmts);
                    let row = &mut self.per_priority[prio.index()];
                    row.windows += 1;
                    row.window_credit += u64::from(w.credit);
                    row.window_stmts += w.stmts;
                }
            }
            ObsEvent::PreemptSame { victim, .. } => {
                self.ensure_proc(victim);
                self.preempted(victim, false);
            }
            ObsEvent::PreemptHigher { victim, .. } => {
                self.ensure_proc(victim);
                self.preempted(victim, true);
            }
            ObsEvent::InvStart { pid, .. } => {
                self.ensure_proc(pid);
                let s = &mut self.st[pid.index()];
                s.inv_steps = 0;
                s.inv_retries = 0;
            }
            ObsEvent::InvEnd { pid, .. } => {
                self.ensure_proc(pid);
                let i = pid.index();
                let (steps, retries) = (self.st[i].inv_steps, self.st[i].inv_retries);
                let p = &mut self.per_process[i];
                p.invocations += 1;
                p.inv_steps.record(steps);
                p.inv_retries.record(retries);
                if let Some(level) = self.st[i].prio {
                    self.ensure_prio(Priority(level));
                    self.per_priority[level as usize].invocations += 1;
                }
            }
            ObsEvent::Stmt { t, pid, cpu, prio, .. } => {
                self.ensure_proc(pid);
                self.ensure_prio(prio);
                let i = pid.index();
                self.per_process[i].stmts += 1;
                self.per_priority[prio.index()].stmts += 1;
                self.st[i].prio = Some(prio.0);
                self.st[i].inv_steps += 1;
                self.st[i].ready_since = t + 1;
                if let Some(w) = self.open_slot(cpu, prio).as_mut() {
                    if w.holder == pid {
                        w.stmts += 1;
                    }
                }
            }
            ObsEvent::Release { t, pid } => {
                self.ensure_proc(pid);
                self.per_process[pid.index()].releases += 1;
                self.st[pid.index()].ready_since = t;
            }
            ObsEvent::Crash { pid, .. } => {
                self.ensure_proc(pid);
                let i = pid.index();
                self.per_process[i].crashes += 1;
                // The partial invocation is discarded; the restarted run
                // begins counting afresh at the next InvStart.
                self.st[i].inv_steps = 0;
                self.st[i].inv_retries = 0;
            }
            ObsEvent::Recover { t, pid } => {
                self.ensure_proc(pid);
                self.per_process[pid.index()].recoveries += 1;
                self.st[pid.index()].ready_since = t;
            }
        }
    }

    /// Folds the completed-run metrics of `other` into `self`. Commutative
    /// up to the lengths of the per-process/per-priority tables (missing
    /// rows are zero), so folding sweep cells in any fixed order is
    /// deterministic. In-flight state is not merged.
    pub fn merge(&mut self, other: &Profile) {
        if self.per_process.len() < other.per_process.len() {
            self.per_process.resize_with(other.per_process.len(), ProcProfile::default);
            self.st.resize_with(other.per_process.len(), ProcState::default);
        }
        for (a, b) in self.per_process.iter_mut().zip(other.per_process.iter()) {
            a.merge(b);
        }
        if self.per_priority.len() < other.per_priority.len() {
            self.per_priority.resize_with(other.per_priority.len(), PrioProfile::default);
        }
        for (a, b) in self.per_priority.iter_mut().zip(other.per_priority.iter()) {
            a.merge(b);
        }
        for (a, b) in self.decisions.iter_mut().zip(other.decisions.iter()) {
            *a += b;
        }
        for (a, b) in self.closes.iter_mut().zip(other.closes.iter()) {
            *a += b;
        }
        self.clock_inversions += other.clock_inversions;
    }

    /// Total statements across all processes.
    pub fn total_stmts(&self) -> u64 {
        self.per_process.iter().map(|p| p.stmts).sum()
    }

    /// Total completed invocations.
    pub fn total_invocations(&self) -> u64 {
        self.per_process.iter().map(|p| p.invocations).sum()
    }

    /// Total closed quantum windows.
    pub fn total_windows(&self) -> u64 {
        self.per_process.iter().map(|p| p.windows).sum()
    }

    /// Total same-priority (quantum) preemptions.
    pub fn total_preempt_same(&self) -> u64 {
        self.per_process.iter().map(|p| p.preempt_same).sum()
    }

    /// Total higher-priority preemption episodes.
    pub fn total_preempt_higher(&self) -> u64 {
        self.per_process.iter().map(|p| p.preempt_higher).sum()
    }

    /// Total scheduling decisions consulted.
    pub fn total_decisions(&self) -> u64 {
        self.decisions.iter().sum()
    }

    /// Total mid-invocation preemptions (Q-C&S retries) over completed
    /// invocations.
    pub fn total_retries(&self) -> u64 {
        self.per_process.iter().map(|p| p.inv_retries.sum()).sum()
    }

    /// Window closes by [`WindowCloseReason::Expired`] — quantum expiries.
    pub fn total_expiries(&self) -> u64 {
        self.closes[2]
    }

    /// Total crash events folded in.
    pub fn total_crashes(&self) -> u64 {
        self.per_process.iter().map(|p| p.crashes).sum()
    }

    /// Total recovery events folded in.
    pub fn total_recoveries(&self) -> u64 {
        self.per_process.iter().map(|p| p.recoveries).sum()
    }

    /// Dispatch events whose timestamp preceded the ready-since instant
    /// (zero on any well-formed stream).
    pub fn clock_inversions(&self) -> u64 {
        self.clock_inversions
    }

    /// Aggregate utilization `window_stmts / window_credit` over every
    /// closed window.
    pub fn utilization(&self) -> Option<f64> {
        let credit: u64 = self.per_process.iter().map(|p| p.window_credit).sum();
        let stmts: u64 = self.per_process.iter().map(|p| p.window_stmts).sum();
        (credit > 0).then(|| stmts as f64 / credit as f64)
    }

    /// Compact scalar metrics (no histograms) — the per-sweep-cell form.
    pub fn scalar_json(&self) -> Json {
        Json::obj([
            ("stmts", Json::Int(self.total_stmts())),
            ("invocations", Json::Int(self.total_invocations())),
            ("windows", Json::Int(self.total_windows())),
            ("utilization", ratio_json(self.utilization())),
            ("preempt_same", Json::Int(self.total_preempt_same())),
            ("preempt_higher", Json::Int(self.total_preempt_higher())),
            ("retries", Json::Int(self.total_retries())),
            ("expiries", Json::Int(self.total_expiries())),
            ("decisions", Json::Int(self.total_decisions())),
            ("crashes", Json::Int(self.total_crashes())),
            ("recoveries", Json::Int(self.total_recoveries())),
            ("clock_inversions", Json::Int(self.clock_inversions)),
        ])
    }

    /// Full metrics: the scalar totals plus decision/close breakdowns and
    /// the per-priority and per-process tables with histograms.
    pub fn metrics_json(&self) -> Json {
        let per_priority: Vec<Json> = self
            .per_priority
            .iter()
            .enumerate()
            .filter(|(_, row)| !row.is_empty())
            .map(|(level, row)| {
                Json::obj([
                    ("prio", Json::Int(level as u64)),
                    ("stmts", Json::Int(row.stmts)),
                    ("windows", Json::Int(row.windows)),
                    ("window_stmts", Json::Int(row.window_stmts)),
                    ("window_credit", Json::Int(row.window_credit)),
                    ("utilization", ratio_json(row.utilization())),
                    ("preempt_same", Json::Int(row.preempt_same)),
                    ("preempt_higher", Json::Int(row.preempt_higher)),
                    ("invocations", Json::Int(row.invocations)),
                ])
            })
            .collect();
        let per_process: Vec<Json> = self
            .per_process
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(i, p)| {
                Json::obj([
                    ("pid", Json::Int(i as u64)),
                    ("stmts", Json::Int(p.stmts)),
                    ("dispatches", Json::Int(p.dispatches)),
                    ("releases", Json::Int(p.releases)),
                    ("windows", Json::Int(p.windows)),
                    ("window_stmts", Json::Int(p.window_stmts)),
                    ("window_credit", Json::Int(p.window_credit)),
                    ("utilization", ratio_json(p.utilization())),
                    ("preempt_same", Json::Int(p.preempt_same)),
                    ("preempt_higher", Json::Int(p.preempt_higher)),
                    ("crashes", Json::Int(p.crashes)),
                    ("recoveries", Json::Int(p.recoveries)),
                    ("invocations", Json::Int(p.invocations)),
                    ("dispatch_latency", p.dispatch_latency.to_json()),
                    ("inv_steps", p.inv_steps.to_json()),
                    ("inv_retries", p.inv_retries.to_json()),
                    ("window_fill", p.window_fill.to_json()),
                ])
            })
            .collect();
        let mut obj = match self.scalar_json() {
            Json::Obj(pairs) => pairs,
            _ => unreachable!("scalar_json returns an object"),
        };
        obj.push((
            "decisions_by_kind".to_string(),
            Json::obj([
                ("cpu", Json::Int(self.decisions[0])),
                ("holder", Json::Int(self.decisions[1])),
                ("first_credit", Json::Int(self.decisions[2])),
            ]),
        ));
        obj.push((
            "window_closes".to_string(),
            Json::obj([
                ("inv_end", Json::Int(self.closes[0])),
                ("finished", Json::Int(self.closes[1])),
                ("expired", Json::Int(self.closes[2])),
                ("crashed", Json::Int(self.closes[3])),
            ]),
        ));
        obj.push(("per_priority".to_string(), Json::Arr(per_priority)));
        obj.push(("per_process".to_string(), Json::Arr(per_process)));
        Json::Obj(obj)
    }
}

/// A ratio rounded to 3 decimals (so formatting is stable), `null` when
/// undefined.
fn ratio_json(r: Option<f64>) -> Json {
    match r {
        Some(v) => Json::Float((v * 1000.0).round() / 1000.0),
        None => Json::Null,
    }
}

fn fmt_ratio(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{:.3}", v),
        None => "-".to_string(),
    }
}

impl fmt::Display for Profile {
    /// A deterministic human summary: totals, then the non-empty priority
    /// levels, then the non-empty processes with histogram digests.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "profile: {} stmts, {} invocations, {} windows, utilization {}",
            self.total_stmts(),
            self.total_invocations(),
            self.total_windows(),
            fmt_ratio(self.utilization()),
        )?;
        writeln!(
            f,
            "  preemptions: {} same-priority, {} higher-priority; retries {}; \
             decisions: {} cpu, {} holder, {} first-credit",
            self.total_preempt_same(),
            self.total_preempt_higher(),
            self.total_retries(),
            self.decisions[0],
            self.decisions[1],
            self.decisions[2],
        )?;
        writeln!(
            f,
            "  window closes: {} inv-end, {} finished, {} expired",
            self.closes[0], self.closes[1], self.closes[2],
        )?;
        if self.closes[3] != 0 || self.total_crashes() != 0 || self.clock_inversions != 0 {
            writeln!(
                f,
                "  crashes: {} ({} windows lost), recoveries: {}, clock inversions: {}",
                self.total_crashes(),
                self.closes[3],
                self.total_recoveries(),
                self.clock_inversions,
            )?;
        }
        for (level, row) in self.per_priority.iter().enumerate() {
            if row.is_empty() {
                continue;
            }
            writeln!(
                f,
                "  prio{level}: {} stmts, {} windows, util {}, {} same / {} higher \
                 preemptions, {} inv",
                row.stmts,
                row.windows,
                fmt_ratio(row.utilization()),
                row.preempt_same,
                row.preempt_higher,
                row.invocations,
            )?;
        }
        for (i, p) in self.per_process.iter().enumerate() {
            if p.is_empty() {
                continue;
            }
            writeln!(
                f,
                "  p{i}: {} stmts, {} inv, util {}, {} same / {} higher preemptions; \
                 inv-steps [{}], retries [{}], dispatch-latency [{}]",
                p.stmts,
                p.invocations,
                fmt_ratio(p.utilization()),
                p.preempt_same,
                p.preempt_higher,
                p.inv_steps.summary(),
                p.inv_retries.summary(),
                p.dispatch_latency.summary(),
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Chrome Trace Format / Perfetto export
// ---------------------------------------------------------------------------

/// The statement time of an event, if it carries one (decisions do not).
fn event_time(ev: &ObsEvent) -> Option<u64> {
    match *ev {
        ObsEvent::Decision { .. } => None,
        ObsEvent::Dispatch { t, .. }
        | ObsEvent::WindowOpen { t, .. }
        | ObsEvent::WindowClose { t, .. }
        | ObsEvent::PreemptSame { t, .. }
        | ObsEvent::PreemptHigher { t, .. }
        | ObsEvent::InvStart { t, .. }
        | ObsEvent::InvEnd { t, .. }
        | ObsEvent::Stmt { t, .. }
        | ObsEvent::Release { t, .. }
        | ObsEvent::Crash { t, .. }
        | ObsEvent::Recover { t, .. } => Some(t),
    }
}

/// The processor an event names, if any.
fn event_cpu_pid(ev: &ObsEvent) -> Option<(ProcessorId, ProcessId)> {
    match *ev {
        ObsEvent::Dispatch { pid, cpu, .. } | ObsEvent::Stmt { pid, cpu, .. } => Some((cpu, pid)),
        ObsEvent::WindowOpen { cpu, holder, .. } | ObsEvent::WindowClose { cpu, holder, .. } => {
            Some((cpu, holder))
        }
        _ => None,
    }
}

/// The per-process track pair inside a processor's track group: even tids
/// carry invocation spans and preemption/release instants, odd tids carry
/// quantum-window spans.
fn ops_tid(pid: ProcessId) -> u64 {
    2 * pid.index() as u64
}
fn win_tid(pid: ProcessId) -> u64 {
    ops_tid(pid) + 1
}

/// One Chrome-trace event object with the fields in canonical order.
struct ChromeEvent {
    name: String,
    ph: &'static str,
    pid: u64,
    tid: u64,
    ts: u64,
    dur: Option<u64>,
    scoped: bool,
    args: Vec<(&'static str, Json)>,
}

impl ChromeEvent {
    fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("ph".to_string(), Json::Str(self.ph.to_string())),
            ("pid".to_string(), Json::Int(self.pid)),
            ("tid".to_string(), Json::Int(self.tid)),
            ("ts".to_string(), Json::Int(self.ts)),
        ];
        if let Some(d) = self.dur {
            pairs.push(("dur".to_string(), Json::Int(d)));
        }
        if self.scoped {
            pairs.push(("s".to_string(), Json::Str("t".to_string())));
        }
        if !self.args.is_empty() {
            pairs.push((
                "args".to_string(),
                Json::Obj(self.args.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()),
            ));
        }
        Json::Obj(pairs)
    }
}

/// Renders a captured [`Trace`] as Chrome Trace Format JSON, loadable by
/// `ui.perfetto.dev` or `chrome://tracing`.
///
/// Track layout (one simulated statement = 1 µs of trace time):
///
/// * one track **group per processor** (Chrome "process" `cpuN`);
/// * inside it, **two rows per simulated process**: `pK ops` with one
///   span per object invocation plus instants for quantum preemptions
///   (`preempt-same`), priority-preemption resumes (`preempt-higher`),
///   and releases, and `pK windows` with one span per Axiom 2 quantum
///   window (args carry the granted credit and the close reason);
/// * a final **`scheduler` group** with one instant per consulted
///   decision. Decisions are recorded before the statement they gate and
///   carry no time of their own, so each is stamped with the time of the
///   next timed event.
///
/// Windows and invocations still open when the trace ends (for example in
/// a truncated or budget-exhausted fuzz capture) are emitted as spans
/// running to the end of the trace with `"open": true` in their args.
///
/// The output is deterministic: one event per line, keys in fixed order —
/// suitable for byte-for-byte golden pinning.
pub fn chrome_trace_text(trace: &Trace) -> String {
    let events = &trace.events;
    // Pass 1: discover processors and processes (first-seen processor
    // wins; processes are pinned, so there is only one), the end of time,
    // and the timestamp to assign each (timeless) decision: the time of
    // the next timed event after it.
    let mut proc_cpu: Vec<Option<ProcessorId>> = Vec::new();
    let mut n_cpus: usize = 0;
    let mut last_t: u64 = 0;
    for ev in events {
        if let Some((cpu, pid)) = event_cpu_pid(ev) {
            n_cpus = n_cpus.max(cpu.index() + 1);
            if proc_cpu.len() <= pid.index() {
                proc_cpu.resize(pid.index() + 1, None);
            }
            if proc_cpu[pid.index()].is_none() {
                proc_cpu[pid.index()] = Some(cpu);
            }
        }
        if let Some(t) = event_time(ev) {
            last_t = last_t.max(t);
        }
    }
    let mut decision_ts: Vec<u64> = vec![last_t; events.len()];
    let mut next_t = last_t;
    for (i, ev) in events.iter().enumerate().rev() {
        if let Some(t) = event_time(ev) {
            next_t = t;
        }
        decision_ts[i] = next_t;
    }
    let sched_pid = n_cpus as u64;
    let has_decisions = events.iter().any(|e| matches!(e, ObsEvent::Decision { .. }));

    let mut out: Vec<ChromeEvent> = Vec::new();
    // Metadata: name every track group and row, in (pid, tid) order.
    for c in 0..n_cpus {
        out.push(ChromeEvent {
            name: "process_name".to_string(),
            ph: "M",
            pid: c as u64,
            tid: 0,
            ts: 0,
            dur: None,
            scoped: false,
            args: vec![("name", Json::Str(format!("cpu{c}")))],
        });
    }
    for (i, cpu) in proc_cpu.iter().enumerate() {
        let Some(cpu) = cpu else { continue };
        let pid = ProcessId(i as u32);
        for (tid, kind) in [(ops_tid(pid), "ops"), (win_tid(pid), "windows")] {
            out.push(ChromeEvent {
                name: "thread_name".to_string(),
                ph: "M",
                pid: cpu.index() as u64,
                tid,
                ts: 0,
                dur: None,
                scoped: false,
                args: vec![("name", Json::Str(format!("p{i} {kind}")))],
            });
        }
    }
    if has_decisions {
        out.push(ChromeEvent {
            name: "process_name".to_string(),
            ph: "M",
            pid: sched_pid,
            tid: 0,
            ts: 0,
            dur: None,
            scoped: false,
            args: vec![("name", Json::Str("scheduler".to_string()))],
        });
        out.push(ChromeEvent {
            name: "thread_name".to_string(),
            ph: "M",
            pid: sched_pid,
            tid: 0,
            ts: 0,
            dur: None,
            scoped: false,
            args: vec![("name", Json::Str("decisions".to_string()))],
        });
    }

    // Pass 2: spans and instants, in stream order (spans at close time).
    let cpu_of = |pid: ProcessId| -> u64 {
        proc_cpu
            .get(pid.index())
            .copied()
            .flatten()
            .map_or(0, |c| c.index() as u64)
    };
    let mut open_windows: Vec<(ProcessorId, Priority, u64, ProcessId, u32)> = Vec::new();
    let mut open_invs: Vec<(ProcessId, u64, u32)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        match *ev {
            ObsEvent::Decision { kind, arity, chosen } => {
                out.push(ChromeEvent {
                    name: kind.tag().to_string(),
                    ph: "i",
                    pid: sched_pid,
                    tid: 0,
                    ts: decision_ts[i],
                    dur: None,
                    scoped: true,
                    args: vec![
                        ("arity", Json::Int(arity as u64)),
                        ("chosen", Json::Int(chosen as u64)),
                    ],
                });
            }
            ObsEvent::WindowOpen { t, cpu, prio, holder, credit } => {
                open_windows.retain(|&(c, p, ..)| !(c == cpu && p == prio));
                open_windows.push((cpu, prio, t, holder, credit));
            }
            ObsEvent::WindowClose { t, cpu, prio, holder, reason } => {
                let Some(pos) =
                    open_windows.iter().position(|&(c, p, ..)| c == cpu && p == prio)
                else {
                    continue;
                };
                let (.., open_t, _, credit) = open_windows.remove(pos);
                out.push(ChromeEvent {
                    name: format!("window prio{}", prio.0),
                    ph: "X",
                    pid: cpu.index() as u64,
                    tid: win_tid(holder),
                    ts: open_t,
                    dur: Some(t - open_t + 1),
                    scoped: false,
                    args: vec![
                        ("credit", Json::Int(u64::from(credit))),
                        ("close", Json::Str(chrome_close_tag(reason).to_string())),
                    ],
                });
            }
            ObsEvent::PreemptSame { t, victim, by } => {
                out.push(ChromeEvent {
                    name: "preempt-same".to_string(),
                    ph: "i",
                    pid: cpu_of(victim),
                    tid: ops_tid(victim),
                    ts: t,
                    dur: None,
                    scoped: true,
                    args: vec![("by", Json::Int(by.index() as u64))],
                });
            }
            ObsEvent::PreemptHigher { t, victim } => {
                out.push(ChromeEvent {
                    name: "preempt-higher".to_string(),
                    ph: "i",
                    pid: cpu_of(victim),
                    tid: ops_tid(victim),
                    ts: t,
                    dur: None,
                    scoped: true,
                    args: vec![],
                });
            }
            ObsEvent::InvStart { t, pid, inv_index } => {
                open_invs.retain(|&(p, ..)| p != pid);
                open_invs.push((pid, t, inv_index));
            }
            ObsEvent::InvEnd { t, pid, inv_index, output } => {
                let Some(pos) = open_invs.iter().position(|&(p, ..)| p == pid) else {
                    continue;
                };
                let (_, start_t, _) = open_invs.remove(pos);
                out.push(ChromeEvent {
                    name: format!("inv {inv_index}"),
                    ph: "X",
                    pid: cpu_of(pid),
                    tid: ops_tid(pid),
                    ts: start_t,
                    dur: Some(t - start_t + 1),
                    scoped: false,
                    args: vec![(
                        "output",
                        output.map_or(Json::Null, Json::Int),
                    )],
                });
            }
            ObsEvent::Release { t, pid } => {
                out.push(ChromeEvent {
                    name: "release".to_string(),
                    ph: "i",
                    pid: cpu_of(pid),
                    tid: ops_tid(pid),
                    ts: t,
                    dur: None,
                    scoped: true,
                    args: vec![],
                });
            }
            ObsEvent::Crash { t, pid } => {
                // Close the discarded partial invocation as its own span so
                // the track shows exactly where the work was thrown away.
                if let Some(pos) = open_invs.iter().position(|&(p, ..)| p == pid) {
                    let (_, start_t, inv_index) = open_invs.remove(pos);
                    out.push(ChromeEvent {
                        name: format!("inv {inv_index}"),
                        ph: "X",
                        pid: cpu_of(pid),
                        tid: ops_tid(pid),
                        ts: start_t,
                        dur: Some(t.saturating_sub(start_t) + 1),
                        scoped: false,
                        args: vec![("crashed", Json::Bool(true))],
                    });
                }
                out.push(ChromeEvent {
                    name: "crash".to_string(),
                    ph: "i",
                    pid: cpu_of(pid),
                    tid: ops_tid(pid),
                    ts: t,
                    dur: None,
                    scoped: true,
                    args: vec![],
                });
            }
            ObsEvent::Recover { t, pid } => {
                out.push(ChromeEvent {
                    name: "recover".to_string(),
                    ph: "i",
                    pid: cpu_of(pid),
                    tid: ops_tid(pid),
                    ts: t,
                    dur: None,
                    scoped: true,
                    args: vec![],
                });
            }
            ObsEvent::Dispatch { .. } | ObsEvent::Stmt { .. } => {}
        }
    }
    // Anything still open runs to the end of the trace.
    for &(cpu, prio, open_t, holder, credit) in &open_windows {
        out.push(ChromeEvent {
            name: format!("window prio{}", prio.0),
            ph: "X",
            pid: cpu.index() as u64,
            tid: win_tid(holder),
            ts: open_t,
            dur: Some(last_t + 1 - open_t),
            scoped: false,
            args: vec![
                ("credit", Json::Int(u64::from(credit))),
                ("open", Json::Bool(true)),
            ],
        });
    }
    for &(pid, start_t, inv_index) in &open_invs {
        out.push(ChromeEvent {
            name: format!("inv {inv_index}"),
            ph: "X",
            pid: cpu_of(pid),
            tid: ops_tid(pid),
            ts: start_t,
            dur: Some(last_t + 1 - start_t),
            scoped: false,
            args: vec![("open", Json::Bool(true))],
        });
    }

    let mut text = String::new();
    text.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, ev) in out.iter().enumerate() {
        text.push_str(&ev.to_json().to_string());
        if i + 1 < out.len() {
            text.push(',');
        }
        text.push('\n');
    }
    text.push_str("]}\n");
    text
}

fn chrome_close_tag(reason: WindowCloseReason) -> &'static str {
    match reason {
        WindowCloseReason::InvocationEnd => "inv-end",
        WindowCloseReason::Finished => "finished",
        WindowCloseReason::Expired => "expired",
        WindowCloseReason::Crashed => "crashed",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_and_stats() {
        let mut h = Hist::new();
        for v in [0u64, 1, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), 1026);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        // 0 -> bucket 0; 1,1 -> bucket 1; 2,3 -> bucket 2; 4,7 -> bucket 3;
        // 8 -> bucket 4; 1000 -> bucket 10.
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[1], 2);
        assert_eq!(h.counts[2], 2);
        assert_eq!(h.counts[3], 2);
        assert_eq!(h.counts[4], 1);
        assert_eq!(h.counts[10], 1);
    }

    #[test]
    fn hist_percentile_is_a_clamped_bucket_upper_bound() {
        let mut h = Hist::new();
        assert_eq!(h.percentile(50.0), None, "empty histogram has no percentiles");
        h.record(5);
        // A single sample: every percentile is that sample (bucket 3 tops
        // out at 7, but the exact max clamps it back down to 5).
        assert_eq!(h.percentile(1.0), Some(5));
        assert_eq!(h.percentile(50.0), Some(5));
        assert_eq!(h.percentile(100.0), Some(5));

        let mut h = Hist::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // p50 → the 50th sample (value 50), bucket 6 upper bound 63.
        assert_eq!(h.percentile(50.0), Some(63));
        // p99/p100 → samples 99/100, bucket 7 upper bound 127, clamped to
        // the exact max of 100.
        assert_eq!(h.percentile(99.0), Some(100));
        assert_eq!(h.percentile(100.0), Some(100));
        // p1 → the 1st sample (value 1), bucket 1 holds exactly {1}.
        assert_eq!(h.percentile(1.0), Some(1));

        // All-zero samples sit in bucket 0.
        let mut z = Hist::new();
        z.record(0);
        z.record(0);
        assert_eq!(z.percentile(90.0), Some(0));
    }

    #[test]
    fn hist_percentile_agrees_across_merge_order() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        for v in [3u64, 17, 130, 1 << 20] {
            a.record(v);
        }
        for v in [0u64, 9, 64] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for p in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(ab.percentile(p), ba.percentile(p));
        }
    }

    #[test]
    fn hist_merge_is_commutative() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        for v in [1u64, 5, 9] {
            a.record(v);
        }
        for v in [0u64, 2, 1 << 40] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 6);
        assert_eq!(ab.min(), Some(0));
        assert_eq!(ab.max(), Some(1 << 40));
    }

    #[test]
    fn empty_hist_json_is_stable() {
        let h = Hist::new();
        assert_eq!(
            h.to_json().to_string(),
            r#"{"count":0,"sum":0,"min":0,"max":0,"buckets":[]}"#
        );
        assert_eq!(h.summary(), "n=0");
    }

    #[test]
    fn profile_merge_matches_combined_stream() {
        use crate::ids::{Priority, ProcessorId};
        use crate::kernel::SystemSpec;
        use crate::machine::{FnMachine, StepOutcome};
        use crate::scenario::Scenario;

        let run = |seed: u64| {
            let mut s = Scenario::new(
                0u64,
                SystemSpec::hybrid(3).with_adversarial_alignment(),
            )
            .with_prof();
            for _ in 0..3 {
                s.add_process(
                    ProcessorId(0),
                    Priority(1),
                    Box::new(FnMachine::new(|mem: &mut u64, calls| {
                        *mem += 1;
                        if calls == 7 {
                            (StepOutcome::Finished, None)
                        } else {
                            (StepOutcome::Continue, None)
                        }
                    })),
                );
            }
            s.run_seeded(seed).take_profile().expect("prof attached")
        };
        let (a, b) = (run(1), run(2));
        let mut m1 = a.clone();
        m1.merge(&b);
        let mut m2 = b.clone();
        m2.merge(&a);
        // Same scalar totals either way (full Eq would compare transient
        // fold state, which merge deliberately leaves alone).
        assert_eq!(m1.scalar_json(), m2.scalar_json());
        assert_eq!(m1.metrics_json(), m2.metrics_json());
        assert_eq!(m1.total_stmts(), a.total_stmts() + b.total_stmts());
    }
}
