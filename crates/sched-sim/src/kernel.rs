//! The simulation kernel: a multiprogrammed system of processors, each with
//! a hybrid (priority + quantum) scheduler, executing step machines one
//! atomic statement at a time.
//!
//! The kernel implements the paper's execution model (Sec. 2) exactly:
//!
//! * Each process is pinned to one processor and has a static priority.
//! * **Axiom 1**: a processor always executes a maximal-priority ready
//!   process; a higher-priority process that becomes ready preempts
//!   immediately (i.e., it takes the processor's next statement).
//! * **Axiom 2**: processor time among equal-priority processes is
//!   allocated in quantum *windows*. While a window is open, only its
//!   holder may execute at that priority level; the window closes when the
//!   holder has executed `Q` of its own statements (higher-priority
//!   interleavings do not count against it), when the holder's object
//!   invocation terminates, or when the holder finishes. A process's very
//!   first window may be shorter than `Q` — its execution "may arbitrarily
//!   align with the next quantum boundary".
//! * Quantum allocation may be unfair: a ready process may be starved
//!   forever, modeling halting failures. Fairness is a property of the
//!   [`Decider`], not the kernel.
//! * Cross-processor interleaving is fully asynchronous (chosen by the
//!   decider), so consensus numbers retain their usual meaning across
//!   processors.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::decision::{Choice, Decider};
use crate::history::{Event, EventKind, History, ProcInfo, StmtEffect};
use crate::ids::{ProcessId, ProcessorId, Priority};
use crate::machine::{Footprint, StepCtx, StepMachine, StepOutcome};
use crate::obs::{DecisionKind, ObsCounters, ObsEvent, Trace, WindowCloseReason};
use crate::prof::Profile;
use crate::sym::{Interner, Sym};

/// How a process's first quantum window is sized.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FirstCreditMode {
    /// First windows are always full (`Q`): dispatches align with quantum
    /// boundaries. The benign default.
    #[default]
    Aligned,
    /// The decider chooses the first window size in `1..=Q`, modeling the
    /// paper's "first quantum preemption at any time". Required by the
    /// adversaries of the lower-bound experiments and used by randomized
    /// stress tests.
    Adversarial,
}

/// Static configuration of a simulated system.
#[derive(Clone, Copy, Debug)]
pub struct SystemSpec {
    /// The scheduling quantum `Q`, in atomic statements. `0` models a pure
    /// priority-scheduled system degenerately (every window closes
    /// immediately, so equal-priority processes interleave freely —
    /// see [`SystemSpec::pure_priority`]).
    pub quantum: u32,
    /// First-window sizing policy.
    pub first_credit: FirstCreditMode,
    /// Whether to record a full [`History`] (costs allocation per step).
    pub record_history: bool,
}

impl SystemSpec {
    /// A hybrid-scheduled system with quantum `q` and benign alignment.
    pub fn hybrid(q: u32) -> Self {
        SystemSpec { quantum: q, first_credit: FirstCreditMode::Aligned, record_history: false }
    }

    /// A *pure priority-scheduled* system: the quantum is zero, so
    /// equal-priority processes may interleave at every statement. Any
    /// algorithm correct for hybrid scheduling with quantum `Q` must also
    /// be correct here when every priority level holds at most one process
    /// (the classical priority-scheduled model of Ramamurthy et al.).
    pub fn pure_priority() -> Self {
        SystemSpec { quantum: 0, first_credit: FirstCreditMode::Aligned, record_history: false }
    }

    /// A *pure quantum-scheduled* system with quantum `q`: hybrid
    /// scheduling where every process is given the same priority (the
    /// caller is responsible for assigning equal priorities).
    pub fn pure_quantum(q: u32) -> Self {
        Self::hybrid(q)
    }

    /// Enables adversarial first-window sizing.
    pub fn with_adversarial_alignment(mut self) -> Self {
        self.first_credit = FirstCreditMode::Adversarial;
        self
    }

    /// Enables history recording.
    pub fn with_history(mut self) -> Self {
        self.record_history = true;
        self
    }
}

/// Per-process runtime status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Not yet eligible: invisible to its scheduler until released.
    Held,
    /// Eligible to execute.
    Ready,
    /// All invocations complete.
    Finished,
    /// Crashed: invisible to its scheduler until recovered. A crash
    /// discards any partial invocation (the machine is restored to the
    /// invocation's first statement), so recovery re-runs it from the
    /// copy-chain re-read.
    Crashed,
}

impl Status {
    /// Stable discriminant for the state-hash fold.
    fn rank(self) -> u8 {
        match self {
            Status::Held => 0,
            Status::Ready => 1,
            Status::Finished => 2,
            Status::Crashed => 3,
        }
    }
}

/// What a scheduled lifecycle event does to its process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LifecycleKind {
    Crash,
    Recover,
}

/// A clock-scheduled crash or recovery. Lifecycle instants are plain
/// *data* (not decider choices), so runs with a lifecycle plan replay and
/// parallelize bit-identically: the plan fires as a function of the global
/// statement clock alone.
#[derive(Clone, Copy, Debug)]
struct LifecycleEvent {
    t: u64,
    pid: ProcessId,
    kind: LifecycleKind,
}

/// Per-process statistics, maintained by the kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Atomic statements this process has executed.
    pub own_steps: u64,
    /// Times it was preempted mid-invocation by an equal-priority process
    /// (a *quantum preemption*).
    pub quantum_preemptions: u64,
    /// Times it was preempted mid-invocation by higher-priority processes
    /// only.
    pub priority_preemptions: u64,
    /// Object invocations completed.
    pub completed: u64,
}

struct ProcEntry<M> {
    pid: ProcessId,
    cpu: ProcessorId,
    prio: Priority,
    machine: Box<dyn StepMachine<M>>,
    status: Status,
    /// Mid-invocation: executed a `Continue` statement more recently than
    /// an invocation boundary.
    mid_invocation: bool,
    /// Dispatched at least once (first-window allowance consumed).
    ever_dispatched: bool,
    /// Set when another process on this cpu executed since this process's
    /// last statement while it was mid-invocation.
    interleaved_same: bool,
    interleaved_higher: bool,
    /// Global time of the current invocation's first statement.
    inv_start: u64,
    /// The original `inv_start` of an invocation aborted by a crash: the
    /// restarted attempt is the *same* operation, so its [`OpRecord`]
    /// keeps the first attempt's invocation time — an op whose pre-crash
    /// shared writes took effect (e.g. it was helped to completion) is
    /// still linearizable inside its recorded interval. Earliest attempt
    /// wins across repeated crashes of one invocation.
    aborted_inv_start: Option<u64>,
    /// Machine state as of the current invocation's first statement,
    /// captured only while the kernel is crashable: a crash restores the
    /// machine from here so the recovered process re-runs the invocation
    /// from scratch.
    inv_snapshot: Option<Box<dyn StepMachine<M>>>,
    stats: ProcStats,
}

#[derive(Clone, Copy, Debug)]
struct Window {
    holder: ProcessId,
    prio: Priority,
    /// Holder's own statements executed in this window.
    count: u32,
    /// Window size (usually `Q`; possibly smaller for a first window).
    credit: u32,
    open: bool,
}

/// A completed object invocation, recorded for linearizability oracles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpRecord {
    /// Global statement time of the invocation's first statement.
    pub start: u64,
    /// Global statement time of completion (its last statement).
    pub t: u64,
    /// The invoking process.
    pub pid: ProcessId,
    /// Zero-based invocation index within that process.
    pub inv_index: u32,
    /// The invocation's output, as reported by the machine.
    pub output: Option<u64>,
}

/// Report of one executed statement.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Global statement time (before this statement).
    pub t: u64,
    /// The process that executed.
    pub pid: ProcessId,
    /// Its processor.
    pub cpu: ProcessorId,
    /// Its priority.
    pub prio: Priority,
    /// The statement's outcome.
    pub outcome: StepOutcome,
    /// The statement's display label, interned in the kernel's history
    /// symbol table ([`History::syms`]). Labels are recorded only while a
    /// history or an observability trace is attached; otherwise this is
    /// [`Sym::EMPTY`].
    pub label: Sym,
}

/// Result of attempting one kernel step with a (possibly partial) choice
/// script. See [`Kernel::step_scripted`].
#[derive(Clone, Debug)]
pub enum StepAttempt {
    /// The statement executed.
    Stepped(StepReport),
    /// No process is ready anywhere; the system is quiescent.
    Quiescent,
    /// The script ran out at a decision with `arity` options; the kernel
    /// state was **not** modified.
    NeedChoice {
        /// Number of available options at the pending decision.
        arity: usize,
        /// The pending decision's kind tag (`"cpu"`, `"holder"`,
        /// `"first-credit"`).
        kind: &'static str,
    },
}

/// A multiprogrammed system simulation.
///
/// `M` is the shared memory type. The usual front door is a
/// [`crate::scenario::Scenario`], which captures the setup declaratively
/// and builds kernels on demand; construct a `Kernel` directly (with
/// [`Kernel::new`] + [`Kernel::add_process`], then [`Kernel::step`] /
/// [`Kernel::run`]) when you need mid-run choreography — releases, manual
/// stepping, the exhaustive explorer.
///
/// # Examples
///
/// ```
/// use sched_sim::kernel::SystemSpec;
/// use sched_sim::machine::{FnMachine, StepOutcome};
/// use sched_sim::ids::{ProcessorId, Priority};
/// use sched_sim::scenario::Scenario;
///
/// let s = Scenario::new(0u64, SystemSpec::hybrid(4))
///     .process(ProcessorId(0), Priority(1), Box::new(FnMachine::new(
///         |mem: &mut u64, calls| {
///             *mem += 1;
///             if calls == 2 { (StepOutcome::Finished, Some(*mem)) }
///             else { (StepOutcome::Continue, None) }
///         })));
/// // Declarative: run the scenario…
/// let r = s.run_fair();
/// assert_eq!((r.steps, *r.mem()), (3, 3));
/// // …or take the underlying kernel and drive it by hand.
/// let mut k = s.into_kernel();
/// let steps = k.run(&mut sched_sim::RoundRobin::new(), 100);
/// assert_eq!((steps, k.mem), (3, 3));
/// ```
pub struct Kernel<M> {
    /// The shared memory, openly accessible to oracles and constructors.
    pub mem: M,
    quantum: u32,
    first_credit: FirstCreditMode,
    procs: Vec<ProcEntry<M>>,
    /// One optional open window per (cpu, priority); sparse vec keyed by
    /// cpu index, then searched by priority (few levels in practice).
    windows: Vec<Vec<Window>>,
    n_cpus: usize,
    clock: u64,
    record_history: bool,
    /// Arc-backed so cloning a kernel (the explorer's fork) shares the
    /// event log; copy-on-write via [`Arc::make_mut`] at each push. With
    /// recording off (the explorer case) the log never grows, so forks
    /// share one allocation forever.
    history: Arc<History>,
    /// Completed invocations, Arc-backed like `history`: a fork copies the
    /// records only when a branch completes another invocation, and then
    /// only O(completed) of them.
    ops: Arc<Vec<OpRecord>>,
    /// Attached observability trace ([`crate::obs`]); `None` means no
    /// event is ever constructed.
    obs: Option<Trace>,
    /// Attached streaming profiler ([`crate::prof`]); like `obs`, `None`
    /// means the step loop constructs no events on its account.
    prof: Option<Profile>,
    /// Always-on aggregate scheduler counters.
    counters: ObsCounters,
    /// Last process to execute on each cpu, for dispatch events.
    last_on_cpu: Vec<Option<ProcessId>>,
    /// The lifecycle plan: scheduled crash/recover events sorted by firing
    /// time, consumed left to right by `lifecycle_cursor`.
    lifecycle: Vec<LifecycleEvent>,
    lifecycle_cursor: usize,
    /// Whether invocation-start snapshots are captured (the cost of being
    /// crashable); enabled by [`Kernel::enable_crashes`] and by scheduling
    /// any crash.
    crashable: bool,
    /// Reusable buffers for the per-step ready-cpu / candidate-holder
    /// scans, so the hot step path performs no allocation.
    scratch_cpus: Vec<ProcessorId>,
    scratch_cands: Vec<ProcessId>,
    /// Incremental state-hash bookkeeping: one component hash per process
    /// and per processor's window list, XOR-folded into `hash_acc`. A step
    /// touches one process and one window list, so [`Kernel::state_hash`]
    /// is O(|mem|) instead of O(processes + windows). Maintained only
    /// while `track_hash` is set (see [`Kernel::track_state_hash`]) so
    /// decider-driven runs that never hash pay nothing.
    track_hash: bool,
    hash_cfg: HashCfg,
    proc_hash: Vec<u64>,
    win_hash: Vec<u64>,
    hash_acc: u64,
    /// Second accumulator under an independent seed, maintained only when
    /// [`HashCfg::wide`] is set (the explorer's opt-in 128-bit dedup keys).
    proc_hash2: Vec<u64>,
    win_hash2: Vec<u64>,
    hash_acc2: u64,
}

/// Configuration for [`Kernel::track_state_hash_cfg`].
///
/// `symmetric` switches [`Kernel::state_hash`] to a *canonical* hash,
/// invariant under priority-preserving permutations of processes within a
/// processor and under permutations of whole processors: two states that
/// differ only by such a relabeling hash identically, so the explorer
/// visits one representative per orbit. **Soundness is the caller's
/// obligation**: the shared memory must contain no per-process data (the
/// canonicalization permutes machines, not memory) and machine behavior
/// must not depend on [`StepCtx::pid`]. Fig. 3's value-cell memory
/// qualifies; the universal construction's pid-indexed arrays do not.
///
/// `wide` additionally maintains a second, independently seeded hash so
/// [`Kernel::state_hash_wide`] yields 128-bit dedup keys.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HashCfg {
    /// Canonicalize under process/processor symmetry (see above).
    pub symmetric: bool,
    /// Maintain a second independent 64-bit hash (128-bit dedup keys).
    pub wide: bool,
}

/// Domain-separation seed for the second hash of [`HashCfg::wide`]; the
/// primary hash uses seed 0.
const WIDE_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl<M: Clone> Clone for Kernel<M> {
    fn clone(&self) -> Self {
        Kernel {
            mem: self.mem.clone(),
            quantum: self.quantum,
            first_credit: self.first_credit,
            procs: self
                .procs
                .iter()
                .map(|p| ProcEntry {
                    pid: p.pid,
                    cpu: p.cpu,
                    prio: p.prio,
                    machine: p.machine.box_clone(),
                    status: p.status,
                    mid_invocation: p.mid_invocation,
                    ever_dispatched: p.ever_dispatched,
                    interleaved_same: p.interleaved_same,
                    interleaved_higher: p.interleaved_higher,
                    inv_start: p.inv_start,
                    aborted_inv_start: p.aborted_inv_start,
                    inv_snapshot: p.inv_snapshot.as_ref().map(|m| m.box_clone()),
                    stats: p.stats,
                })
                .collect(),
            windows: self.windows.clone(),
            n_cpus: self.n_cpus,
            clock: self.clock,
            record_history: self.record_history,
            history: Arc::clone(&self.history),
            ops: Arc::clone(&self.ops),
            obs: self.obs.clone(),
            prof: self.prof.clone(),
            counters: self.counters,
            last_on_cpu: self.last_on_cpu.clone(),
            lifecycle: self.lifecycle.clone(),
            lifecycle_cursor: self.lifecycle_cursor,
            crashable: self.crashable,
            scratch_cpus: Vec::new(),
            scratch_cands: Vec::new(),
            track_hash: self.track_hash,
            hash_cfg: self.hash_cfg,
            proc_hash: self.proc_hash.clone(),
            win_hash: self.win_hash.clone(),
            hash_acc: self.hash_acc,
            proc_hash2: self.proc_hash2.clone(),
            win_hash2: self.win_hash2.clone(),
            hash_acc2: self.hash_acc2,
        }
    }
}

impl<M> Kernel<M> {
    /// Creates a kernel over shared memory `mem` with the given spec.
    pub fn new(mem: M, spec: SystemSpec) -> Self {
        Kernel {
            mem,
            quantum: spec.quantum,
            first_credit: spec.first_credit,
            procs: Vec::new(),
            windows: Vec::new(),
            n_cpus: 0,
            clock: 0,
            record_history: spec.record_history,
            history: Arc::new(History {
                quantum: spec.quantum,
                procs: Vec::new(),
                events: Vec::new(),
                syms: Interner::new(),
            }),
            ops: Arc::new(Vec::new()),
            obs: None,
            prof: None,
            counters: ObsCounters::default(),
            last_on_cpu: Vec::new(),
            lifecycle: Vec::new(),
            lifecycle_cursor: 0,
            crashable: false,
            scratch_cpus: Vec::new(),
            scratch_cands: Vec::new(),
            track_hash: false,
            hash_cfg: HashCfg::default(),
            proc_hash: Vec::new(),
            win_hash: Vec::new(),
            hash_acc: 0,
            proc_hash2: Vec::new(),
            win_hash2: Vec::new(),
            hash_acc2: 0,
        }
    }

    /// Adds a ready process pinned to `cpu` with priority `prio`.
    /// Returns its [`ProcessId`] (assigned densely from 0).
    pub fn add_process(
        &mut self,
        cpu: ProcessorId,
        prio: Priority,
        machine: Box<dyn StepMachine<M>>,
    ) -> ProcessId {
        self.add(cpu, prio, machine, false)
    }

    /// Adds a *held* process: ineligible (invisible to its scheduler) until
    /// [`Kernel::release`] is called. Models delayed arrivals and the
    /// lower-bound proofs' eligibility control.
    pub fn add_held_process(
        &mut self,
        cpu: ProcessorId,
        prio: Priority,
        machine: Box<dyn StepMachine<M>>,
    ) -> ProcessId {
        self.add(cpu, prio, machine, true)
    }

    fn add(
        &mut self,
        cpu: ProcessorId,
        prio: Priority,
        machine: Box<dyn StepMachine<M>>,
        held: bool,
    ) -> ProcessId {
        let pid = ProcessId(self.procs.len() as u32);
        self.procs.push(ProcEntry {
            pid,
            cpu,
            prio,
            machine,
            status: if held { Status::Held } else { Status::Ready },
            mid_invocation: false,
            ever_dispatched: false,
            interleaved_same: false,
            interleaved_higher: false,
            inv_start: 0,
            aborted_inv_start: None,
            inv_snapshot: None,
            stats: ProcStats::default(),
        });
        self.n_cpus = self.n_cpus.max(cpu.index() + 1);
        while self.windows.len() < self.n_cpus {
            self.windows.push(Vec::new());
            self.last_on_cpu.push(None);
        }
        if self.track_hash {
            self.rebuild_hash_acc();
        }
        Arc::make_mut(&mut self.history).procs.push(ProcInfo { pid, cpu, prio, held });
        pid
    }

    /// Releases a held process, making it ready. Under Axiom 1 it will
    /// preempt any lower-priority process on its cpu at the very next
    /// statement there.
    ///
    /// # Panics
    ///
    /// Panics if the process is not held.
    pub fn release(&mut self, pid: ProcessId) {
        let p = &mut self.procs[pid.index()];
        assert_eq!(p.status, Status::Held, "release of a non-held process");
        p.status = Status::Ready;
        if self.track_hash {
            self.refresh_proc_hash(pid.index());
        }
        self.counters.releases += 1;
        if self.observing() {
            self.emit(ObsEvent::Release { t: self.clock, pid });
        }
        let p = &self.procs[pid.index()];
        if self.record_history {
            let (cpu, prio) = (p.cpu, p.prio);
            Arc::make_mut(&mut self.history).events.push(Event {
                t: self.clock,
                pid,
                cpu,
                prio,
                kind: EventKind::Release,
            });
        }
    }

    /// Turns on invocation-start snapshots, making processes crashable:
    /// from the next invocation boundary on, [`Kernel::crash`] can restore
    /// a mid-invocation machine to its invocation's first statement.
    /// Scheduling a crash enables this automatically; call it directly
    /// only for manual [`Kernel::crash`] choreography. The flag must be
    /// set before the run starts, so every invocation has a snapshot.
    pub fn enable_crashes(&mut self) {
        self.crashable = true;
    }

    /// Schedules `pid` to crash just before the statement at global clock
    /// `t` (or at the next lifecycle opportunity if the system quiesces
    /// first). Lifecycle instants are deterministic data, so scheduled
    /// runs replay and parallelize bit-identically. Implies
    /// [`Kernel::enable_crashes`].
    pub fn schedule_crash(&mut self, t: u64, pid: ProcessId) {
        self.enable_crashes();
        self.schedule_lifecycle(LifecycleEvent { t, pid, kind: LifecycleKind::Crash });
    }

    /// Schedules `pid` to recover (crashed → ready) just before the
    /// statement at global clock `t`. See [`Kernel::schedule_crash`].
    pub fn schedule_recover(&mut self, t: u64, pid: ProcessId) {
        self.schedule_lifecycle(LifecycleEvent { t, pid, kind: LifecycleKind::Recover });
    }

    fn schedule_lifecycle(&mut self, ev: LifecycleEvent) {
        self.lifecycle.push(ev);
        // Stable sort keeps insertion order among equal instants, so a
        // crash and its same-instant recovery fire in schedule order.
        self.lifecycle[self.lifecycle_cursor..].sort_by_key(|e| e.t);
    }

    /// Lifecycle events not yet fired.
    pub fn lifecycle_pending(&self) -> usize {
        self.lifecycle.len() - self.lifecycle_cursor
    }

    /// Crashes a ready process: any partial invocation is discarded (the
    /// machine is restored to the snapshot captured at the invocation's
    /// first statement, so shared-memory effects of the partial run remain
    /// but local state rewinds), its open window closes with
    /// [`WindowCloseReason::Crashed`], and the process becomes invisible
    /// to its scheduler until [`Kernel::recover`]. Lenient: crashing a
    /// held, finished, or already-crashed process is a no-op, which lets
    /// cyclic churn plans name victims without tracking their state.
    pub fn crash(&mut self, pid: ProcessId) {
        let idx = pid.index();
        if self.procs[idx].status != Status::Ready {
            return;
        }
        let t = self.clock;
        let (cpu, prio) = (self.procs[idx].cpu, self.procs[idx].prio);
        {
            let p = &mut self.procs[idx];
            if p.mid_invocation {
                let snap = p
                    .inv_snapshot
                    .as_ref()
                    .expect("crashable kernels snapshot every invocation start");
                p.machine = snap.box_clone();
                p.mid_invocation = false;
                // The restart re-runs this same operation: keep the first
                // attempt's invocation time for its completion record.
                p.aborted_inv_start.get_or_insert(p.inv_start);
            }
            p.interleaved_same = false;
            p.interleaved_higher = false;
            p.status = Status::Crashed;
        }
        // Remove the victim's window so the slot is free on recovery; an
        // open one is reported closed for the observability layer.
        let was_open = self.windows[cpu.index()]
            .iter()
            .any(|w| w.prio == prio && w.holder == pid && w.open);
        self.windows[cpu.index()].retain(|w| !(w.prio == prio && w.holder == pid));
        if self.last_on_cpu[cpu.index()] == Some(pid) {
            // Force a fresh Dispatch event when the victim resumes.
            self.last_on_cpu[cpu.index()] = None;
        }
        self.counters.crashes += 1;
        if self.observing() {
            self.emit(ObsEvent::Crash { t, pid });
            if was_open {
                self.emit(ObsEvent::WindowClose {
                    t,
                    cpu,
                    prio,
                    holder: pid,
                    reason: WindowCloseReason::Crashed,
                });
            }
        }
        if self.record_history {
            Arc::make_mut(&mut self.history).events.push(Event {
                t,
                pid,
                cpu,
                prio,
                kind: EventKind::Crash,
            });
        }
        if self.track_hash {
            self.refresh_proc_hash(idx);
            self.refresh_win_hash(cpu.index());
        }
    }

    /// Recovers a crashed process, making it ready again: under Axiom 1 it
    /// preempts lower-priority processes at its cpu's next statement, and
    /// its next dispatch re-runs the interrupted invocation from its first
    /// statement. Lenient: recovering a non-crashed process is a no-op.
    pub fn recover(&mut self, pid: ProcessId) {
        let idx = pid.index();
        if self.procs[idx].status != Status::Crashed {
            return;
        }
        self.procs[idx].status = Status::Ready;
        self.counters.recoveries += 1;
        if self.observing() {
            self.emit(ObsEvent::Recover { t: self.clock, pid });
        }
        if self.record_history {
            let p = &self.procs[idx];
            let (cpu, prio) = (p.cpu, p.prio);
            Arc::make_mut(&mut self.history).events.push(Event {
                t: self.clock,
                pid,
                cpu,
                prio,
                kind: EventKind::Recover,
            });
        }
        if self.track_hash {
            self.refresh_proc_hash(idx);
        }
    }

    /// Fires every lifecycle event due at the current clock.
    fn fire_due_lifecycle(&mut self) {
        while let Some(&ev) = self.lifecycle.get(self.lifecycle_cursor) {
            if ev.t > self.clock {
                break;
            }
            self.lifecycle_cursor += 1;
            self.apply_lifecycle(ev);
        }
    }

    /// Early-fires the next group of same-instant lifecycle events, used
    /// when the system quiesces before their scheduled time (the clock
    /// only advances on statements, so a recovery scheduled past the last
    /// executable statement would otherwise never fire). Returns whether
    /// anything fired.
    fn fire_next_lifecycle_group(&mut self) -> bool {
        let Some(&first) = self.lifecycle.get(self.lifecycle_cursor) else {
            return false;
        };
        while let Some(&ev) = self.lifecycle.get(self.lifecycle_cursor) {
            if ev.t != first.t {
                break;
            }
            self.lifecycle_cursor += 1;
            self.apply_lifecycle(ev);
        }
        true
    }

    fn apply_lifecycle(&mut self, ev: LifecycleEvent) {
        match ev.kind {
            LifecycleKind::Crash => self.crash(ev.pid),
            LifecycleKind::Recover => self.recover(ev.pid),
        }
    }

    /// The configured quantum `Q`.
    pub fn quantum(&self) -> u32 {
        self.quantum
    }

    /// The global statement count so far.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Number of processes.
    pub fn n_processes(&self) -> usize {
        self.procs.len()
    }

    /// The output of `pid`'s most recently completed invocation.
    pub fn output(&self, pid: ProcessId) -> Option<u64> {
        self.procs[pid.index()].machine.output()
    }

    /// Whether `pid` has finished all invocations.
    pub fn is_finished(&self, pid: ProcessId) -> bool {
        self.procs[pid.index()].status == Status::Finished
    }

    /// Whether `pid` is currently crashed (awaiting [`Kernel::recover`]).
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        self.procs[pid.index()].status == Status::Crashed
    }

    /// Whether every process has finished.
    pub fn all_finished(&self) -> bool {
        self.procs.iter().all(|p| p.status == Status::Finished)
    }

    /// Statistics for `pid`.
    pub fn stats(&self, pid: ProcessId) -> ProcStats {
        self.procs[pid.index()].stats
    }

    /// The recorded history (empty unless the spec enabled recording).
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Attaches a fresh observability [`Trace`]: subsequent steps emit
    /// structured [`ObsEvent`]s into it (see [`crate::obs`]). Replaces any
    /// previously attached trace. With no trace attached, the kernel
    /// constructs no events at all.
    pub fn attach_obs(&mut self) {
        self.obs = Some(Trace::new());
    }

    /// The attached observability trace, if any.
    pub fn obs(&self) -> Option<&Trace> {
        self.obs.as_ref()
    }

    /// Detaches and returns the observability trace, if one was attached.
    pub fn take_obs(&mut self) -> Option<Trace> {
        self.obs.take()
    }

    /// Attaches a fresh streaming [`Profile`]: subsequent steps fold every
    /// emitted event into derived metrics (see [`crate::prof`]). Unlike
    /// [`Kernel::attach_obs`] no event log is retained, so memory stays
    /// O(processes) regardless of run length. Replaces any previously
    /// attached profile; with neither a trace nor a profile attached, the
    /// kernel constructs no events at all.
    pub fn attach_prof(&mut self) {
        self.prof = Some(Profile::new());
    }

    /// The attached profile, if any.
    pub fn prof(&self) -> Option<&Profile> {
        self.prof.as_ref()
    }

    /// Detaches and returns the profile, if one was attached.
    pub fn take_prof(&mut self) -> Option<Profile> {
        self.prof.take()
    }

    /// Whether any event consumer (trace or profiler) is attached. The
    /// step loop constructs [`ObsEvent`]s only when this holds, which is
    /// what keeps the detached hot path allocation-free.
    #[inline]
    fn observing(&self) -> bool {
        self.obs.is_some() || self.prof.is_some()
    }

    /// Routes one event to every attached consumer: the profiler folds it
    /// by reference, then the trace stores it.
    fn emit(&mut self, ev: ObsEvent) {
        if let Some(p) = self.prof.as_mut() {
            p.observe(&ev);
        }
        if let Some(tr) = self.obs.as_mut() {
            tr.record(ev);
        }
    }

    /// The run's aggregate scheduler counters (always maintained).
    pub fn counters(&self) -> ObsCounters {
        self.counters
    }

    /// Completed invocations, in completion order.
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// Pre-reserves capacity for `additional` further completed-invocation
    /// records, so a long-lived run whose invocation count is known up
    /// front (the service engine's case) never grows the op log mid-run —
    /// the record push stays allocation-free on the steady-state step path.
    pub fn reserve_ops(&mut self, additional: usize) {
        Arc::make_mut(&mut self.ops).reserve(additional);
    }

    /// Processors with at least one ready process, ascending.
    pub fn runnable_cpus(&self) -> Vec<ProcessorId> {
        let mut v: Vec<ProcessorId> = self
            .procs
            .iter()
            .filter(|p| p.status == Status::Ready)
            .map(|p| p.cpu)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    fn top_priority(&self, cpu: ProcessorId) -> Option<Priority> {
        self.procs
            .iter()
            .filter(|p| p.status == Status::Ready && p.cpu == cpu)
            .map(|p| p.prio)
            .max()
    }

    /// Core dispatch-and-execute, parametric in a fallible choice source.
    /// **No state is mutated until every needed choice has been supplied**,
    /// so a `None` from the source aborts the step cleanly.
    fn step_core(
        &mut self,
        choose: &mut dyn FnMut(Choice<'_>, usize) -> Option<usize>,
    ) -> StepAttempt {
        // Decisions resolved this step (at most cpu + holder + first-credit),
        // buffered so an aborted step (NeedChoice) records nothing.
        let mut taken = [(DecisionKind::Cpu, 0usize, 0usize); 3];
        let mut n_taken = 0usize;
        // --- read-only phase: resolve all decisions ---
        // Ready-cpu scan into a reusable buffer (no per-step allocation).
        let mut cpus = std::mem::take(&mut self.scratch_cpus);
        cpus.clear();
        cpus.extend(self.procs.iter().filter(|p| p.status == Status::Ready).map(|p| p.cpu));
        cpus.sort_unstable();
        cpus.dedup();
        if cpus.is_empty() {
            self.scratch_cpus = cpus;
            return StepAttempt::Quiescent;
        }
        let cpu = if cpus.len() == 1 {
            cpus[0]
        } else {
            match choose(Choice::Cpu { options: &cpus }, cpus.len()) {
                Some(i) => {
                    assert!(i < cpus.len(), "cpu choice out of range");
                    taken[n_taken] = (DecisionKind::Cpu, cpus.len(), i);
                    n_taken += 1;
                    cpus[i]
                }
                None => {
                    let arity = cpus.len();
                    self.scratch_cpus = cpus;
                    return StepAttempt::NeedChoice { arity, kind: "cpu" };
                }
            }
        };
        self.scratch_cpus = cpus;
        let prio = self.top_priority(cpu).expect("runnable cpu has a top priority");
        // Is there an open window at (cpu, prio) whose holder must continue?
        let win = self.windows[cpu.index()]
            .iter()
            .find(|w| w.prio == prio && w.open)
            .copied();
        let must_continue = win.and_then(|w| {
            let h = &self.procs[w.holder.index()];
            (h.status == Status::Ready && w.count < w.credit).then_some(w.holder)
        });
        let (pid, new_window_credit) = match must_continue {
            Some(h) => (h, None),
            None => {
                // Candidate-holder scan, same reusable-buffer pattern.
                let mut cands = std::mem::take(&mut self.scratch_cands);
                cands.clear();
                cands.extend(
                    self.procs
                        .iter()
                        .filter(|p| p.status == Status::Ready && p.cpu == cpu && p.prio == prio)
                        .map(|p| p.pid),
                );
                debug_assert!(!cands.is_empty());
                let chosen = if cands.len() == 1 {
                    cands[0]
                } else {
                    match choose(
                        Choice::Holder { cpu, prio, options: &cands },
                        cands.len(),
                    ) {
                        Some(i) => {
                            assert!(i < cands.len(), "holder choice out of range");
                            taken[n_taken] = (DecisionKind::Holder, cands.len(), i);
                            n_taken += 1;
                            cands[i]
                        }
                        None => {
                            let arity = cands.len();
                            self.scratch_cands = cands;
                            return StepAttempt::NeedChoice { arity, kind: "holder" };
                        }
                    }
                };
                self.scratch_cands = cands;
                let q = self.quantum.max(1);
                let credit = if !self.procs[chosen.index()].ever_dispatched
                    && self.first_credit == FirstCreditMode::Adversarial
                    && q > 1
                {
                    match choose(Choice::FirstCredit { pid: chosen, quantum: q }, q as usize) {
                        Some(i) => {
                            assert!(i < q as usize, "first-credit choice out of range");
                            taken[n_taken] = (DecisionKind::FirstCredit, q as usize, i);
                            n_taken += 1;
                            i as u32 + 1
                        }
                        None => {
                            return StepAttempt::NeedChoice {
                                arity: q as usize,
                                kind: "first-credit",
                            }
                        }
                    }
                } else {
                    q
                };
                (chosen, Some(credit))
            }
        };

        // --- mutation phase ---
        self.counters.decisions += n_taken as u64;
        if self.observing() {
            for &(kind, arity, chosen) in &taken[..n_taken] {
                self.emit(ObsEvent::Decision { kind, arity, chosen });
            }
        }
        if let Some(credit) = new_window_credit {
            // Opening a fresh window. If the previous window's holder is
            // still ready mid-invocation and is being displaced, that is a
            // quantum preemption (lawful: its window was exhausted or
            // closed).
            if let Some(w) = win {
                if w.holder != pid {
                    let victim = &mut self.procs[w.holder.index()];
                    if victim.status == Status::Ready && victim.mid_invocation {
                        victim.stats.quantum_preemptions += 1;
                        self.counters.same_prio_preemptions += 1;
                        if self.observing() {
                            self.emit(ObsEvent::PreemptSame {
                                t: self.clock,
                                victim: w.holder,
                                by: pid,
                            });
                        }
                    }
                }
            }
            self.windows[cpu.index()].retain(|w| w.prio != prio);
            self.windows[cpu.index()].push(Window {
                holder: pid,
                prio,
                count: 0,
                credit,
                open: true,
            });
            self.counters.windows_opened += 1;
            if self.observing() {
                self.emit(ObsEvent::WindowOpen { t: self.clock, cpu, prio, holder: pid, credit });
            }
        }

        let t = self.clock;
        let idx = pid.index();
        if self.last_on_cpu[cpu.index()] != Some(pid) {
            self.last_on_cpu[cpu.index()] = Some(pid);
            if self.observing() {
                self.emit(ObsEvent::Dispatch { t, pid, cpu, prio });
            }
        }
        // Interleaving bookkeeping: mark every other mid-invocation process
        // on this cpu as interleaved, and account a preemption episode for
        // this process if it was interleaved since its last statement.
        let stepper_prio = prio;
        for p in &mut self.procs {
            if p.pid != pid && p.cpu == cpu && p.mid_invocation && p.status == Status::Ready {
                if p.prio == stepper_prio {
                    p.interleaved_same = true;
                } else if p.prio < stepper_prio {
                    p.interleaved_higher = true;
                }
            }
        }
        {
            let mut higher_resume = false;
            let p = &mut self.procs[idx];
            if p.interleaved_same {
                // already counted as quantum preemption at displacement time
            } else if p.interleaved_higher {
                p.stats.priority_preemptions += 1;
                higher_resume = true;
            }
            p.interleaved_same = false;
            p.interleaved_higher = false;
            p.ever_dispatched = true;
            if higher_resume {
                self.counters.higher_prio_preemptions += 1;
                if self.observing() {
                    self.emit(ObsEvent::PreemptHigher { t, victim: pid });
                }
            }
        }

        if !self.procs[idx].mid_invocation {
            // First statement of a new invocation — or the restart of one
            // aborted by a crash, which keeps the aborted attempt's
            // invocation time (it is the same operation).
            self.procs[idx].inv_start =
                self.procs[idx].aborted_inv_start.take().unwrap_or(t);
            if self.crashable {
                // Machines stage the next invocation eagerly at the
                // previous boundary, so this snapshot already carries the
                // staged operation: a crash-restore re-runs *this*
                // invocation, not a stale one.
                self.procs[idx].inv_snapshot = Some(self.procs[idx].machine.box_clone());
            }
            if self.observing() {
                let inv_index = self.procs[idx].stats.completed as u32;
                self.emit(ObsEvent::InvStart { t, pid, inv_index });
            }
        }
        // Labels are interned into the history's symbol table while a
        // recorder is attached; otherwise the discarding context makes the
        // whole label path a no-op (and allocation-free).
        let (outcome, label) = if self.record_history || self.obs.is_some() {
            let syms = &mut Arc::make_mut(&mut self.history).syms;
            let mut ctx = StepCtx::recording(pid, syms);
            // Split borrow: machine vs memory.
            let outcome = self.procs[idx].machine.step(&mut self.mem, &mut ctx);
            (outcome, ctx.take_label().unwrap_or(Sym::EMPTY))
        } else {
            let mut ctx = StepCtx::discarding(pid);
            let outcome = self.procs[idx].machine.step(&mut self.mem, &mut ctx);
            (outcome, Sym::EMPTY)
        };
        self.clock += 1;

        // Window and status updates.
        let w = self.windows[cpu.index()]
            .iter_mut()
            .find(|w| w.prio == prio && w.open)
            .expect("window opened above");
        debug_assert_eq!(w.holder, pid);
        w.count += 1;
        let (effect, finished) = match outcome {
            StepOutcome::Continue => (StmtEffect::Continue, false),
            StepOutcome::InvocationEnd => (StmtEffect::InvocationEnd, false),
            StepOutcome::Finished => (StmtEffect::Finished, true),
        };
        // The window closes at invocation boundaries. On quantum expiry it
        // stays open-but-exhausted so that the next dispatch can observe the
        // displaced holder and account the quantum preemption.
        if effect != StmtEffect::Continue {
            w.open = false;
        }
        // Axiom 2 window lifecycle, for the observability layer: the window
        // ends at an invocation boundary or when its credit runs out.
        let close_reason = match effect {
            StmtEffect::InvocationEnd => Some(WindowCloseReason::InvocationEnd),
            StmtEffect::Finished => Some(WindowCloseReason::Finished),
            StmtEffect::Continue if w.count >= w.credit => Some(WindowCloseReason::Expired),
            StmtEffect::Continue => None,
        };
        if close_reason == Some(WindowCloseReason::Expired) {
            // A quantum boundary crossed while the holder is inside an
            // object invocation — the schedule pressure Lemmas 2/3 bound.
            self.counters.quantum_expiries_mid_invocation += 1;
        }
        let output = {
            let p = &mut self.procs[idx];
            p.mid_invocation = effect == StmtEffect::Continue;
            p.stats.own_steps += 1;
            if finished {
                p.status = Status::Finished;
            }
            if effect != StmtEffect::Continue {
                p.stats.completed += 1;
                p.machine.output()
            } else {
                None
            }
        };
        self.counters.statements += 1;
        if effect != StmtEffect::Continue {
            self.counters.invocations_completed += 1;
            let rec = OpRecord {
                start: self.procs[idx].inv_start,
                t,
                pid,
                inv_index: self.procs[idx].machine_inv_index(),
                output,
            };
            Arc::make_mut(&mut self.ops).push(rec);
        }
        if self.observing() {
            let inv_index =
                if effect != StmtEffect::Continue { self.procs[idx].machine_inv_index() } else { 0 };
            self.emit(ObsEvent::Stmt { t, pid, cpu, prio, effect, label });
            // Keep the trace's symbol table a superset of the labels it
            // holds, so a detached trace is always self-contained.
            if let Some(tr) = self.obs.as_mut() {
                tr.syms.sync_from(&self.history.syms);
            }
            if effect != StmtEffect::Continue {
                self.emit(ObsEvent::InvEnd { t, pid, inv_index, output });
            }
            if let Some(reason) = close_reason {
                self.emit(ObsEvent::WindowClose { t, cpu, prio, holder: pid, reason });
            }
        }
        if self.record_history {
            Arc::make_mut(&mut self.history).events.push(Event {
                t,
                pid,
                cpu,
                prio,
                kind: EventKind::Stmt { label, effect, output },
            });
        }
        if self.track_hash {
            // Only the stepping process and this cpu's window list changed.
            self.refresh_proc_hash(idx);
            self.refresh_win_hash(cpu.index());
        }
        StepAttempt::Stepped(StepReport { t, pid, cpu, prio, outcome, label })
    }

    /// Executes one atomic statement, resolving decisions via `decider`.
    /// Scheduled lifecycle events due at the current clock fire first; if
    /// the system is quiescent but lifecycle events remain (e.g. everyone
    /// ready has crashed and a recovery is pending), the next group is
    /// early-fired and the step retried.
    ///
    /// Returns `None` when the system is quiescent (no ready process).
    pub fn step(&mut self, decider: &mut dyn Decider) -> Option<StepReport> {
        // Keep the common no-lifecycle hot path free of the firing loop:
        // one integer compare when no plan is pending.
        if self.lifecycle_cursor < self.lifecycle.len() {
            return self.step_with_lifecycle(decider);
        }
        match self.step_core(&mut |c, n| Some(decider.choose(c, n))) {
            StepAttempt::Stepped(r) => Some(r),
            StepAttempt::Quiescent => None,
            StepAttempt::NeedChoice { .. } => unreachable!("decider always answers"),
        }
    }

    /// [`Kernel::step`] with lifecycle events still pending: due events
    /// fire first, and a quiescent system early-fires the next group and
    /// retries (the clock only advances on statements, so a recovery
    /// scheduled past the last executable statement would otherwise never
    /// fire).
    #[cold]
    fn step_with_lifecycle(&mut self, decider: &mut dyn Decider) -> Option<StepReport> {
        self.fire_due_lifecycle();
        loop {
            match self.step_core(&mut |c, n| Some(decider.choose(c, n))) {
                StepAttempt::Stepped(r) => return Some(r),
                StepAttempt::Quiescent => {
                    if !self.fire_next_lifecycle_group() {
                        return None;
                    }
                }
                StepAttempt::NeedChoice { .. } => unreachable!("decider always answers"),
            }
        }
    }

    /// Attempts one statement using only the choices in `script` (consumed
    /// left to right). If the script runs out at a decision point, returns
    /// [`StepAttempt::NeedChoice`] **without modifying any state** — the
    /// exhaustive explorer forks here.
    pub fn step_scripted(&mut self, script: &[usize]) -> StepAttempt {
        let mut i = 0;
        self.step_core(&mut |_c, _n| {
            if i < script.len() {
                let v = script[i];
                i += 1;
                Some(v)
            } else {
                None
            }
        })
    }

    /// Runs until quiescent or `max_steps` statements, whichever first.
    /// Returns the number of statements executed.
    pub fn run(&mut self, decider: &mut dyn Decider, max_steps: u64) -> u64 {
        let mut n = 0;
        while n < max_steps {
            if self.step(decider).is_none() {
                break;
            }
            n += 1;
        }
        n
    }

    /// Component hash of one process's scheduling-relevant state, salted
    /// with its index and a domain tag so components of different processes
    /// (and of window lists) cannot cancel under the XOR fold. `seed`
    /// domain-separates the second hash of [`HashCfg::wide`].
    fn proc_component(p: &ProcEntry<M>, index: usize, seed: u64) -> u64 {
        let mut h = DefaultHasher::new();
        0xA5u8.hash(&mut h);
        seed.hash(&mut h);
        index.hash(&mut h);
        p.machine.state_key(&mut h);
        p.status.rank().hash(&mut h);
        p.mid_invocation.hash(&mut h);
        p.ever_dispatched.hash(&mut h);
        h.finish()
    }

    /// Index-free process descriptor for the symmetry-canonical hash: two
    /// processes with identical machine state and status get identical
    /// descriptors, making them interchangeable in the canonical fold.
    fn proc_desc(p: &ProcEntry<M>, seed: u64) -> u64 {
        let mut h = DefaultHasher::new();
        0xC3u8.hash(&mut h);
        seed.hash(&mut h);
        p.machine.state_key(&mut h);
        p.status.rank().hash(&mut h);
        p.mid_invocation.hash(&mut h);
        p.ever_dispatched.hash(&mut h);
        h.finish()
    }

    /// Component hash of one processor's open windows.
    fn win_component(ws: &[Window], cpu_index: usize, seed: u64) -> u64 {
        let mut h = DefaultHasher::new();
        0x5Au8.hash(&mut h);
        seed.hash(&mut h);
        cpu_index.hash(&mut h);
        for w in ws {
            if w.open {
                w.holder.hash(&mut h);
                w.prio.hash(&mut h);
                w.count.hash(&mut h);
                w.credit.hash(&mut h);
            }
        }
        h.finish()
    }

    /// Rebuilds the component tables and accumulator(s) from scratch.
    fn rebuild_hash_acc(&mut self) {
        self.proc_hash.clear();
        self.proc_hash
            .extend(self.procs.iter().enumerate().map(|(i, p)| Self::proc_component(p, i, 0)));
        self.win_hash.clear();
        self.win_hash
            .extend(self.windows.iter().enumerate().map(|(i, ws)| Self::win_component(ws, i, 0)));
        self.hash_acc = self.proc_hash.iter().chain(&self.win_hash).fold(0, |a, c| a ^ c);
        if self.hash_cfg.wide {
            self.proc_hash2.clear();
            self.proc_hash2.extend(
                self.procs.iter().enumerate().map(|(i, p)| Self::proc_component(p, i, WIDE_SEED)),
            );
            self.win_hash2.clear();
            self.win_hash2.extend(
                self.windows
                    .iter()
                    .enumerate()
                    .map(|(i, ws)| Self::win_component(ws, i, WIDE_SEED)),
            );
            self.hash_acc2 =
                self.proc_hash2.iter().chain(&self.win_hash2).fold(0, |a, c| a ^ c);
        }
    }

    /// Turns on incremental [`Kernel::state_hash`] maintenance: after this,
    /// each step refreshes only the stepping process's and cpu's hash
    /// components, making repeated `state_hash` calls O(|mem|). The
    /// explorer enables this on its root clone; decider-driven runs that
    /// never hash skip the bookkeeping entirely. Clones inherit the flag.
    pub fn track_state_hash(&mut self) {
        self.track_state_hash_cfg(HashCfg::default());
    }

    /// Like [`Kernel::track_state_hash`], with an explicit [`HashCfg`].
    ///
    /// With `symmetric` set, the canonical hash is recomputed per
    /// [`Kernel::state_hash`] call (an O(processes + windows) sort-and-fold
    /// — canonicalization has no incremental form); otherwise the usual
    /// incremental accumulator is maintained, twice over when `wide` is
    /// set.
    pub fn track_state_hash_cfg(&mut self, cfg: HashCfg) {
        self.hash_cfg = cfg;
        self.track_hash = !cfg.symmetric;
        if self.track_hash {
            self.rebuild_hash_acc();
        }
    }

    fn refresh_proc_hash(&mut self, idx: usize) {
        let c = Self::proc_component(&self.procs[idx], idx, 0);
        self.hash_acc ^= self.proc_hash[idx] ^ c;
        self.proc_hash[idx] = c;
        if self.hash_cfg.wide {
            let c2 = Self::proc_component(&self.procs[idx], idx, WIDE_SEED);
            self.hash_acc2 ^= self.proc_hash2[idx] ^ c2;
            self.proc_hash2[idx] = c2;
        }
    }

    fn refresh_win_hash(&mut self, cpu_index: usize) {
        let c = Self::win_component(&self.windows[cpu_index], cpu_index, 0);
        self.hash_acc ^= self.win_hash[cpu_index] ^ c;
        self.win_hash[cpu_index] = c;
        if self.hash_cfg.wide {
            let c2 = Self::win_component(&self.windows[cpu_index], cpu_index, WIDE_SEED);
            self.hash_acc2 ^= self.win_hash2[cpu_index] ^ c2;
            self.win_hash2[cpu_index] = c2;
        }
    }

    /// The XOR fold recomputed from scratch; the incremental `hash_acc`
    /// must always equal this (checked by a debug assertion in
    /// [`Kernel::state_hash`]).
    fn compute_hash_acc(&self, seed: u64) -> u64 {
        let mut acc = 0;
        for (i, p) in self.procs.iter().enumerate() {
            acc ^= Self::proc_component(p, i, seed);
        }
        for (i, ws) in self.windows.iter().enumerate() {
            acc ^= Self::win_component(ws, i, seed);
        }
        acc
    }

    /// The symmetry-canonical scheduler fold under `seed`: per processor,
    /// its processes as sorted `(priority, descriptor)` pairs and its open
    /// windows as sorted `(priority, count, credit, holder-descriptor)`
    /// tuples; the per-processor hashes are themselves sorted before the
    /// final fold, so both processes within a processor (at equal priority
    /// — unequal priorities yield different pairs) and whole processors
    /// are interchangeable.
    fn sym_fold(&self, seed: u64) -> u64 {
        let desc: Vec<u64> = self.procs.iter().map(|p| Self::proc_desc(p, seed)).collect();
        let mut cpu_hashes: Vec<u64> = Vec::with_capacity(self.n_cpus);
        let mut entries: Vec<(Priority, u64)> = Vec::new();
        let mut wins: Vec<(Priority, u32, u32, u64)> = Vec::new();
        for c in 0..self.n_cpus {
            entries.clear();
            entries.extend(
                self.procs
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.cpu.index() == c)
                    .map(|(i, p)| (p.prio, desc[i])),
            );
            entries.sort_unstable();
            wins.clear();
            wins.extend(
                self.windows[c]
                    .iter()
                    .filter(|w| w.open)
                    .map(|w| (w.prio, w.count, w.credit, desc[w.holder.index()])),
            );
            wins.sort_unstable();
            let mut h = DefaultHasher::new();
            0x3Cu8.hash(&mut h);
            seed.hash(&mut h);
            entries.hash(&mut h);
            wins.hash(&mut h);
            cpu_hashes.push(h.finish());
        }
        cpu_hashes.sort_unstable();
        let mut h = DefaultHasher::new();
        cpu_hashes.hash(&mut h);
        h.finish()
    }

    /// One 64-bit state hash under `seed` (0 = primary), honoring the
    /// symmetric mode of the active [`HashCfg`].
    fn state_hash_seeded(&self, seed: u64) -> u64
    where
        M: Hash,
    {
        let acc = if self.hash_cfg.symmetric {
            self.sym_fold(seed)
        } else if self.track_hash {
            let inc = if seed == 0 { self.hash_acc } else { self.hash_acc2 };
            debug_assert_eq!(
                inc,
                self.compute_hash_acc(seed),
                "incremental state-hash accumulator diverged from a full recomputation"
            );
            inc
        } else {
            self.compute_hash_acc(seed)
        };
        let mut h = DefaultHasher::new();
        seed.hash(&mut h);
        self.mem.hash(&mut h);
        acc.hash(&mut h);
        h.finish()
    }

    /// Hashes the complete scheduling-relevant state (memory, machines,
    /// statuses, windows) for visited-state deduplication. Requires
    /// `M: Hash`.
    ///
    /// In the default (exact) mode the process and window contributions
    /// are maintained incrementally — each step refreshes only the
    /// stepping process's and cpu's components — so this costs O(|mem|)
    /// per call rather than a full rescan. In the symmetric mode of
    /// [`Kernel::track_state_hash_cfg`] the canonical fold is recomputed
    /// per call.
    pub fn state_hash(&self) -> u64
    where
        M: Hash,
    {
        self.state_hash_seeded(0)
    }

    /// The 128-bit state-hash key: low 64 bits are [`Kernel::state_hash`];
    /// with [`HashCfg::wide`] the high 64 bits are an independently seeded
    /// second hash of the same state, otherwise zero. Used by the explorer
    /// to shrink the false-prune (dedup-collision) probability.
    pub fn state_hash_wide(&self) -> u128
    where
        M: Hash,
    {
        let lo = u128::from(self.state_hash_seeded(0));
        if self.hash_cfg.wide {
            (u128::from(self.state_hash_seeded(WIDE_SEED)) << 64) | lo
        } else {
            lo
        }
    }

    /// Partial-order-reduction metadata for the *pending* cpu decision
    /// (the state where [`Kernel::step_scripted`] with an empty script
    /// reports `NeedChoice { kind: "cpu", .. }`).
    ///
    /// Returns `Some(i)` — an index into the runnable-cpu options, in the
    /// same ascending order the decision exposes — when restricting the
    /// search to choice `i` is sound: every statement that could execute
    /// next on that cpu has a declared [`Footprint`] independent of the
    /// may-footprint of every ready process on every other cpu. Scheduler
    /// state (windows, candidate sets, credits) is per-processor by
    /// construction and a step mutates only its own cpu's share, so shared
    /// memory is the only channel coupling processors: with disjoint
    /// footprints each deferred cross-cpu step commutes with the chosen
    /// one, the chosen cpu's options form a singleton persistent set (per
    /// processor — its holder/first-credit sub-choices are still explored
    /// in full), and every quiescent state of the full schedule tree
    /// remains reachable in the reduced tree.
    ///
    /// Returns `None` when fewer than two cpus are runnable or no cpu
    /// qualifies. Held processes are ignored: nothing releases them during
    /// an exploration.
    pub fn ample_cpu_choice(&self) -> Option<usize> {
        let cpus = self.runnable_cpus();
        if cpus.len() < 2 {
            return None;
        }
        for (i, &cpu) in cpus.iter().enumerate() {
            let fp = self.pending_step_footprint(cpu);
            if fp == Footprint::Unknown {
                continue;
            }
            let mut others = Footprint::LOCAL;
            for p in &self.procs {
                if p.cpu != cpu && p.status == Status::Ready {
                    others = others.union(p.machine.may_footprint());
                }
            }
            if fp.independent(others) {
                return Some(i);
            }
        }
        None
    }

    /// Union footprint of the statement(s) that could execute next on
    /// `cpu`: the continuing window holder's next statement if the open
    /// window forces continuation, otherwise the next statements of every
    /// candidate holder at the top ready priority.
    fn pending_step_footprint(&self, cpu: ProcessorId) -> Footprint {
        let Some(prio) = self.top_priority(cpu) else {
            return Footprint::Unknown;
        };
        let win = self.windows[cpu.index()].iter().find(|w| w.prio == prio && w.open);
        if let Some(w) = win {
            let h = &self.procs[w.holder.index()];
            if h.status == Status::Ready && w.count < w.credit {
                return h.machine.next_footprint();
            }
        }
        self.procs
            .iter()
            .filter(|p| p.status == Status::Ready && p.cpu == cpu && p.prio == prio)
            .fold(Footprint::LOCAL, |acc, p| acc.union(p.machine.next_footprint()))
    }
}

impl<M> ProcEntry<M> {
    fn machine_inv_index(&self) -> u32 {
        // Completed invocations = stats.completed; the op being recorded is
        // the one that just completed.
        (self.stats.completed - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::{RoundRobin, Scripted, SeededRandom};
    use crate::history::check_well_formed;
    use crate::machine::FnMachine;

    /// A machine that appends its tag to a shared log, `len` statements per
    /// invocation, `invs` invocations.
    fn logger(tag: u64, len: u32, invs: u32) -> Box<dyn StepMachine<Vec<u64>>> {
        Box::new(FnMachine::new(move |mem: &mut Vec<u64>, calls| {
            mem.push(tag);
            let done_in_inv = (calls + 1) % len == 0;
            if done_in_inv && (calls + 1) / len >= invs {
                (StepOutcome::Finished, Some(u64::from(calls + 1)))
            } else if done_in_inv {
                (StepOutcome::InvocationEnd, Some(u64::from(calls + 1)))
            } else {
                (StepOutcome::Continue, None)
            }
        }))
    }

    #[test]
    fn single_process_runs_to_completion() {
        let mut k = Kernel::new(Vec::new(), SystemSpec::hybrid(4));
        let p = k.add_process(ProcessorId(0), Priority(1), logger(7, 3, 1));
        let mut d = RoundRobin::new();
        assert_eq!(k.run(&mut d, 100), 3);
        assert!(k.is_finished(p));
        assert_eq!(k.mem, vec![7, 7, 7]);
        assert_eq!(k.output(p), Some(3));
    }

    #[test]
    fn axiom1_higher_priority_runs_first() {
        let mut k = Kernel::new(Vec::new(), SystemSpec::hybrid(4));
        let _lo = k.add_process(ProcessorId(0), Priority(1), logger(1, 3, 1));
        let _hi = k.add_process(ProcessorId(0), Priority(2), logger(2, 3, 1));
        let mut d = RoundRobin::new();
        k.run(&mut d, 100);
        assert_eq!(k.mem, vec![2, 2, 2, 1, 1, 1]);
    }

    #[test]
    fn axiom1_release_preempts_immediately() {
        let mut k = Kernel::new(Vec::new(), SystemSpec::hybrid(10));
        let _lo = k.add_process(ProcessorId(0), Priority(1), logger(1, 6, 1));
        let hi = k.add_held_process(ProcessorId(0), Priority(2), logger(2, 2, 1));
        let mut d = RoundRobin::new();
        // run two statements of lo, then release hi
        k.step(&mut d);
        k.step(&mut d);
        k.release(hi);
        k.run(&mut d, 100);
        assert_eq!(k.mem, vec![1, 1, 2, 2, 1, 1, 1, 1]);
        // lo was preempted once by a higher-priority process
        assert_eq!(k.stats(ProcessId(0)).priority_preemptions, 1);
    }

    #[test]
    fn axiom2_quantum_windows_round_robin() {
        // Two equal-priority processes, quantum 2, invocation length 4:
        // fair round-robin alternates windows of exactly 2 statements.
        let mut k = Kernel::new(Vec::new(), SystemSpec::hybrid(2));
        k.add_process(ProcessorId(0), Priority(1), logger(1, 4, 1));
        k.add_process(ProcessorId(0), Priority(1), logger(2, 4, 1));
        let mut d = RoundRobin::new();
        k.run(&mut d, 100);
        assert_eq!(k.mem, vec![1, 1, 2, 2, 1, 1, 2, 2]);
        assert_eq!(k.stats(ProcessId(0)).quantum_preemptions, 1);
        assert_eq!(k.stats(ProcessId(1)).quantum_preemptions, 1);
    }

    #[test]
    fn window_survives_higher_priority_preemption() {
        // Axiom 2: hi's arrival must not let the other equal-priority
        // process slip in before lo finishes its quantum.
        let mut k = Kernel::new(Vec::new(), SystemSpec::hybrid(4).with_history());
        let _a = k.add_process(ProcessorId(0), Priority(1), logger(1, 4, 1));
        let _b = k.add_process(ProcessorId(0), Priority(1), logger(2, 4, 1));
        let hi = k.add_held_process(ProcessorId(0), Priority(2), logger(9, 2, 1));
        let mut d = RoundRobin::new();
        k.step(&mut d); // a: 1 stmt into its window
        k.release(hi);
        k.run(&mut d, 100);
        // hi runs, then a RESUMES its window (3 more stmts) before b.
        assert_eq!(k.mem, vec![1, 9, 9, 1, 1, 1, 2, 2, 2, 2]);
        assert_eq!(check_well_formed(k.history()), Ok(()));
    }

    #[test]
    fn invocation_end_closes_window() {
        // Quantum 10 but invocations of length 2: windows close at
        // invocation boundaries, so processes alternate every 2 statements.
        let mut k = Kernel::new(Vec::new(), SystemSpec::hybrid(10));
        k.add_process(ProcessorId(0), Priority(1), logger(1, 2, 2));
        k.add_process(ProcessorId(0), Priority(1), logger(2, 2, 2));
        let mut d = RoundRobin::new();
        k.run(&mut d, 100);
        assert_eq!(k.mem, vec![1, 1, 2, 2, 1, 1, 2, 2]);
        // No quantum preemptions: all switches at invocation boundaries.
        assert_eq!(k.stats(ProcessId(0)).quantum_preemptions, 0);
        assert_eq!(k.stats(ProcessId(1)).quantum_preemptions, 0);
    }

    #[test]
    fn multiprocessor_interleaving_is_decider_controlled() {
        let mut k = Kernel::new(Vec::new(), SystemSpec::hybrid(4));
        k.add_process(ProcessorId(0), Priority(1), logger(1, 2, 1));
        k.add_process(ProcessorId(1), Priority(1), logger(2, 2, 1));
        // Script: cpu1, cpu0, cpu1, cpu0 (choices index into runnable list)
        let mut d = Scripted::new(vec![1, 0, 1, 0]);
        k.run(&mut d, 100);
        assert_eq!(k.mem, vec![2, 1, 2, 1]);
    }

    #[test]
    fn scripted_step_aborts_without_mutation() {
        let mut k = Kernel::new(Vec::new(), SystemSpec::hybrid(4));
        k.add_process(ProcessorId(0), Priority(1), logger(1, 2, 1));
        k.add_process(ProcessorId(1), Priority(1), logger(2, 2, 1));
        let before = k.clock();
        match k.step_scripted(&[]) {
            StepAttempt::NeedChoice { arity, kind } => {
                assert_eq!(arity, 2);
                assert_eq!(kind, "cpu");
            }
            other => panic!("expected NeedChoice, got {other:?}"),
        }
        assert_eq!(k.clock(), before);
        assert!(k.mem.is_empty());
        // With a complete script the same step succeeds.
        assert!(matches!(k.step_scripted(&[0]), StepAttempt::Stepped(_)));
        assert_eq!(k.mem, vec![1]);
    }

    #[test]
    fn adversarial_first_credit_allows_early_preemption() {
        let mut k = Kernel::new(
            Vec::new(),
            SystemSpec::hybrid(4).with_adversarial_alignment().with_history(),
        );
        k.add_process(ProcessorId(0), Priority(1), logger(1, 4, 1));
        k.add_process(ProcessorId(0), Priority(1), logger(2, 4, 1));
        // holder choice 0 (p0), first-credit choice 0 (credit 1), then
        // holder p1 with full credit.
        let mut d = Scripted::new(vec![0, 0, 1, 3]);
        k.run(&mut d, 100);
        assert_eq!(&k.mem[..5], &[1, 2, 2, 2, 2]);
        // The short first window is lawful per the model.
        assert_eq!(check_well_formed(k.history()), Ok(()));
    }

    #[test]
    fn histories_from_random_runs_are_well_formed() {
        for seed in 0..30 {
            let mut k = Kernel::new(
                Vec::new(),
                SystemSpec::hybrid(3).with_adversarial_alignment().with_history(),
            );
            k.add_process(ProcessorId(0), Priority(1), logger(1, 5, 2));
            k.add_process(ProcessorId(0), Priority(1), logger(2, 5, 2));
            k.add_process(ProcessorId(0), Priority(2), logger(3, 4, 1));
            k.add_process(ProcessorId(1), Priority(1), logger(4, 5, 1));
            let mut d = SeededRandom::new(seed);
            k.run(&mut d, 10_000);
            assert!(k.all_finished());
            check_well_formed(k.history()).unwrap_or_else(|v| {
                panic!("seed {seed}: ill-formed history: {v}");
            });
        }
    }

    #[test]
    fn ops_record_completions_in_order() {
        let mut k = Kernel::new(Vec::new(), SystemSpec::hybrid(8));
        let p = k.add_process(ProcessorId(0), Priority(1), logger(1, 2, 3));
        let mut d = RoundRobin::new();
        k.run(&mut d, 100);
        let ops = k.ops();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].pid, p);
        assert_eq!(ops[0].inv_index, 0);
        assert_eq!(ops[2].inv_index, 2);
    }

    #[test]
    fn state_hash_changes_with_progress() {
        let mut k = Kernel::new(0u64, SystemSpec::hybrid(4));
        k.add_process(
            ProcessorId(0),
            Priority(1),
            Box::new(FnMachine::new(|mem: &mut u64, calls| {
                *mem += 1;
                if calls == 1 {
                    (StepOutcome::Finished, None)
                } else {
                    (StepOutcome::Continue, None)
                }
            })),
        );
        let h0 = k.state_hash();
        let mut d = RoundRobin::new();
        k.step(&mut d);
        assert_ne!(h0, k.state_hash());
    }

    #[test]
    fn clone_forks_independent_executions() {
        let mut k = Kernel::new(Vec::new(), SystemSpec::hybrid(4));
        k.add_process(ProcessorId(0), Priority(1), logger(1, 3, 1));
        let mut d = RoundRobin::new();
        k.step(&mut d);
        let mut k2 = k.clone();
        k.run(&mut d, 100);
        assert_eq!(k.mem, vec![1, 1, 1]);
        assert_eq!(k2.mem, vec![1]);
        let mut d2 = RoundRobin::new();
        k2.run(&mut d2, 100);
        assert_eq!(k2.mem, vec![1, 1, 1]);
    }

    #[test]
    fn quantum_zero_means_free_interleaving() {
        // Pure priority-scheduled degeneration: equal-priority processes
        // may alternate at every statement.
        let mut k = Kernel::new(Vec::new(), SystemSpec::pure_priority());
        k.add_process(ProcessorId(0), Priority(1), logger(1, 3, 1));
        k.add_process(ProcessorId(0), Priority(1), logger(2, 3, 1));
        let mut d = RoundRobin::new();
        k.run(&mut d, 100);
        assert_eq!(k.mem, vec![1, 2, 1, 2, 1, 2]);
    }
}
