//! A tiny structured-program representation whose unit of execution is one
//! atomic statement.
//!
//! The paper presents its algorithms as numbered statements (Figs. 3, 5, 7,
//! 9), each assumed atomic, with quanta measured in statements executed.
//! This module lets those listings be transcribed line-for-line: a
//! [`Program`] is a set of procedures, each a list of [`Stmt`]s; a
//! [`ProgMachine`] runs a program one *counted* statement per scheduler
//! step, with uncounted statements available for pure control flow that the
//! paper does not number (loop headers, procedure dispatch).
//!
//! # Examples
//!
//! A two-statement program that increments a shared counter and returns it:
//!
//! ```
//! use sched_sim::program::{Flow, ProgramBuilder, ProgMachine};
//! use sched_sim::machine::{StepCtx, StepMachine, StepOutcome};
//! use sched_sim::ids::ProcessId;
//!
//! #[derive(Clone, Hash, Default)]
//! struct Locals { got: u64 }
//!
//! let mut b = ProgramBuilder::<Locals, u64>::new();
//! let main = b.proc("main");
//! b.stmt(main, "1: mem += 1", |_l, mem| { *mem += 1; Flow::Next });
//! b.stmt(main, "2: return mem", |l, mem| { l.got = *mem; Flow::Return });
//! let prog = b.build();
//!
//! let mut m = ProgMachine::single_shot(&prog, Locals::default(), main)
//!     .with_output(|l| Some(l.got));
//! let mut mem = 0u64;
//! let mut ctx = StepCtx::new(ProcessId(0));
//! assert_eq!(m.step(&mut mem, &mut ctx), StepOutcome::Continue);
//! assert_eq!(m.step(&mut mem, &mut ctx), StepOutcome::Finished);
//! assert_eq!(m.output(), Some(1));
//! ```

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::machine::{Footprint, StepCtx, StepMachine, StepOutcome};

/// Refers to a procedure of a [`Program`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProcRef(usize);

/// Refers to a statement position, for `goto` targets. Labels are declared
/// with [`ProgramBuilder::label`] and bound with [`ProgramBuilder::bind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Control transfer returned by a statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    /// Fall through to the next statement of the current procedure.
    Next,
    /// Jump to a bound label in the current procedure.
    Goto(Label),
    /// Call a procedure; on return, resume at the next statement.
    Call(ProcRef),
    /// Call a procedure; on return, resume at `resume`.
    CallThen {
        /// The procedure to call.
        proc: ProcRef,
        /// Where to resume in the current procedure after the call returns.
        resume: Label,
    },
    /// Return from the current procedure. Returning from the entry
    /// procedure completes the current object invocation.
    Return,
    /// Terminate the whole process immediately (all invocations abandoned).
    Finish,
}

type StmtFn<L, M> = Arc<dyn Fn(&mut L, &mut M) -> Flow + Send + Sync>;

/// One statement: a display label, whether it is a *counted* atomic
/// statement (it consumes quantum), its shared-memory footprint, and its
/// effect.
pub struct Stmt<L, M> {
    name: String,
    counted: bool,
    fp: Footprint,
    run: StmtFn<L, M>,
}

struct ProcDef<L, M> {
    name: String,
    stmts: Vec<Stmt<L, M>>,
}

/// An immutable program: procedures of atomic statements. Construct with
/// [`ProgramBuilder`]; execute with [`ProgMachine`]. Programs are shared by
/// reference ([`Arc`]) among the machines running them.
pub struct Program<L, M> {
    procs: Vec<ProcDef<L, M>>,
    /// label -> (proc index, stmt index)
    labels: Vec<(usize, usize)>,
    /// Union of every statement's footprint, cached at build time — the
    /// machine's static may-footprint for partial-order reduction.
    may_fp: Footprint,
}

impl<L, M> Program<L, M> {
    /// The name of procedure `p`.
    pub fn proc_name(&self, p: ProcRef) -> &str {
        &self.procs[p.0].name
    }

    /// Number of statements in procedure `p`.
    pub fn proc_len(&self, p: ProcRef) -> usize {
        self.procs[p.0].stmts.len()
    }

    /// The union of every statement's declared footprint (the whole-program
    /// may-footprint). [`Footprint::Unknown`] if any statement left its
    /// footprint undeclared.
    pub fn may_footprint(&self) -> Footprint {
        self.may_fp
    }
}

/// Builds a [`Program`].
///
/// Procedures and labels may be declared before the statements that use or
/// bind them, so forward `goto`s and mutually recursive calls are easy to
/// transcribe. [`ProgramBuilder::build`] validates that every label is
/// bound and every procedure is nonempty.
pub struct ProgramBuilder<L, M> {
    procs: Vec<ProcDef<L, M>>,
    labels: Vec<Option<(usize, usize)>>,
}

impl<L, M> Default for ProgramBuilder<L, M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L, M> ProgramBuilder<L, M> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder { procs: Vec::new(), labels: Vec::new() }
    }

    /// Declares a procedure named `name`.
    pub fn proc(&mut self, name: &str) -> ProcRef {
        self.procs.push(ProcDef { name: name.to_string(), stmts: Vec::new() });
        ProcRef(self.procs.len() - 1)
    }

    /// Declares an unbound label (a forward jump target).
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the *next* statement appended to `proc`.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, proc: ProcRef, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some((proc.0, self.procs[proc.0].stmts.len()));
    }

    /// Declares a label bound to the next statement of `proc` (shorthand
    /// for [`label`](Self::label) + [`bind`](Self::bind)).
    pub fn here(&mut self, proc: ProcRef) -> Label {
        let l = self.label();
        self.bind(proc, l);
        l
    }

    /// Appends a *counted* atomic statement to `proc`.
    ///
    /// Counted statements are the paper's numbered statements: each consumes
    /// one unit of quantum. By convention a counted statement performs at
    /// most one shared-memory access (the implementations transcribe the
    /// paper's numbering).
    pub fn stmt(
        &mut self,
        proc: ProcRef,
        name: &str,
        f: impl Fn(&mut L, &mut M) -> Flow + Send + Sync + 'static,
    ) {
        self.stmt_fp(proc, name, Footprint::Unknown, f);
    }

    /// Appends a *counted* atomic statement with a declared shared-memory
    /// [`Footprint`].
    ///
    /// The footprint must over-approximate every cell the statement can
    /// touch on any execution (a missing cell is a partial-order-reduction
    /// soundness bug; an extra cell merely prunes less). Statements added
    /// with [`stmt`](Self::stmt) default to [`Footprint::Unknown`], which
    /// never prunes.
    pub fn stmt_fp(
        &mut self,
        proc: ProcRef,
        name: &str,
        fp: Footprint,
        f: impl Fn(&mut L, &mut M) -> Flow + Send + Sync + 'static,
    ) {
        self.procs[proc.0].stmts.push(Stmt {
            name: name.to_string(),
            counted: true,
            fp,
            run: Arc::new(f),
        });
    }

    /// Appends an *uncounted* statement: pure local control flow (loop
    /// headers, call dispatch) that the paper does not number. Uncounted
    /// statements must not access shared memory and must not complete an
    /// invocation.
    pub fn free(
        &mut self,
        proc: ProcRef,
        name: &str,
        f: impl Fn(&mut L, &mut M) -> Flow + Send + Sync + 'static,
    ) {
        self.procs[proc.0].stmts.push(Stmt {
            name: name.to_string(),
            counted: false,
            // Uncounted statements are pure local control flow by contract.
            fp: Footprint::LOCAL,
            run: Arc::new(f),
        });
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if a label was never bound, a label points past the end of
    /// its procedure, or a procedure has no statements.
    pub fn build(self) -> Arc<Program<L, M>> {
        let labels: Vec<(usize, usize)> = self
            .labels
            .iter()
            .enumerate()
            .map(|(i, l)| l.unwrap_or_else(|| panic!("label {i} never bound")))
            .collect();
        for (p, s) in &labels {
            assert!(
                *s < self.procs[*p].stmts.len(),
                "label points past the end of procedure `{}`",
                self.procs[*p].name
            );
        }
        for p in &self.procs {
            assert!(!p.stmts.is_empty(), "procedure `{}` has no statements", p.name);
        }
        let may_fp = self
            .procs
            .iter()
            .flat_map(|p| &p.stmts)
            .fold(Footprint::LOCAL, |acc, s| acc.union(s.fp));
        Arc::new(Program { procs: self.procs, labels, may_fp })
    }
}

/// Chooses the entry procedure for each successive invocation of a process
/// (the paper's nondeterministic operation selection at each
/// thinking→ready transition, made deterministic per machine).
///
/// Receives the process locals (to set up operation arguments) and the
/// invocation index; returns the entry procedure, or `None` when the
/// process has no further invocations.
pub type InvocationPlan<L> = Arc<dyn Fn(&mut L, u32) -> Option<ProcRef> + Send + Sync>;

type OutputFn<L> = Arc<dyn Fn(&L) -> Option<u64> + Send + Sync>;

/// Executes a [`Program`] one counted statement per step.
///
/// Cloneable (for the explorer) and hashable via
/// [`StepMachine::state_key`], provided the locals are `Clone + Hash`.
pub struct ProgMachine<L, M> {
    prog: Arc<Program<L, M>>,
    locals: L,
    /// (proc index, pc) call stack; empty only when finished.
    frames: Vec<(usize, usize)>,
    inv_index: u32,
    finished: bool,
    plan: InvocationPlan<L>,
    out_fn: OutputFn<L>,
    out: Option<u64>,
    /// Bound on consecutive uncounted statements, to catch control-flow
    /// loops that would otherwise spin forever inside one step.
    free_fuel: u32,
    /// Declared bound on everything this machine can ever touch,
    /// overriding the whole-program fallback (see
    /// [`ProgMachine::with_may_footprint`]).
    may_fp_override: Option<Footprint>,
}

impl<L: Clone, M> Clone for ProgMachine<L, M> {
    fn clone(&self) -> Self {
        ProgMachine {
            prog: self.prog.clone(),
            locals: self.locals.clone(),
            frames: self.frames.clone(),
            inv_index: self.inv_index,
            finished: self.finished,
            plan: self.plan.clone(),
            out_fn: self.out_fn.clone(),
            out: self.out,
            free_fuel: self.free_fuel,
            may_fp_override: self.may_fp_override,
        }
    }
}

impl<L, M> ProgMachine<L, M> {
    /// A machine that performs a single invocation of `entry` and finishes.
    pub fn single_shot(prog: &Arc<Program<L, M>>, locals: L, entry: ProcRef) -> Self {
        Self::with_plan(
            prog,
            locals,
            Arc::new(move |_l: &mut L, i| if i == 0 { Some(entry) } else { None }),
        )
    }

    /// A machine whose successive invocations are chosen by `plan`.
    pub fn with_plan(prog: &Arc<Program<L, M>>, locals: L, plan: InvocationPlan<L>) -> Self {
        let mut m = ProgMachine {
            prog: prog.clone(),
            locals,
            frames: Vec::new(),
            inv_index: 0,
            finished: false,
            plan,
            out_fn: Arc::new(|_| None),
            out: None,
            free_fuel: 4096,
            may_fp_override: None,
        };
        m.start_invocation();
        m
    }

    /// Sets the closure that extracts an invocation's output from the
    /// locals when the invocation completes.
    pub fn with_output(mut self, f: impl Fn(&L) -> Option<u64> + Send + Sync + 'static) -> Self {
        self.out_fn = Arc::new(f);
        self
    }

    /// Declares a bound on everything this machine can ever access,
    /// replacing the whole-program may-footprint fallback. A program often
    /// bundles several procedures (e.g. one `decide` per consensus
    /// object); a machine whose invocation plan only ever enters one of
    /// them is entitled to that procedure's tighter footprint, which is
    /// what lets the explorer's partial-order reduction commute it against
    /// machines confined to *other* objects.
    ///
    /// **Caller obligation**: `fp` must over-approximate the footprint of
    /// every statement any invocation of this machine can reach (including
    /// through `Flow::Call`). An under-approximation makes the reduction
    /// unsound.
    #[must_use]
    pub fn with_may_footprint(mut self, fp: Footprint) -> Self {
        self.may_fp_override = Some(fp);
        self
    }

    /// Read access to the machine's locals (for test oracles).
    pub fn locals(&self) -> &L {
        &self.locals
    }

    /// The index of the invocation currently executing (or, if finished,
    /// one past the last completed invocation).
    pub fn invocation_index(&self) -> u32 {
        self.inv_index
    }

    /// Whether the process has finished all its invocations.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    fn start_invocation(&mut self) {
        debug_assert!(self.frames.is_empty());
        match (self.plan)(&mut self.locals, self.inv_index) {
            Some(entry) => self.frames.push((entry.0, 0)),
            None => self.finished = true,
        }
    }

    /// Applies `flow`; returns `true` if the invocation completed.
    fn apply_flow(&mut self, flow: Flow) -> bool {
        match flow {
            Flow::Next => {
                let top = self.frames.last_mut().expect("no frame");
                top.1 += 1;
                self.check_pc();
                false
            }
            Flow::Goto(l) => {
                let (lp, ls) = self.prog.labels[l.0];
                let top = self.frames.last_mut().expect("no frame");
                assert_eq!(lp, top.0, "goto across procedures");
                top.1 = ls;
                false
            }
            Flow::Call(p) => {
                let top = self.frames.last_mut().expect("no frame");
                top.1 += 1;
                self.frames.push((p.0, 0));
                false
            }
            Flow::CallThen { proc, resume } => {
                let (lp, ls) = self.prog.labels[resume.0];
                let top = self.frames.last_mut().expect("no frame");
                assert_eq!(lp, top.0, "resume label in another procedure");
                top.1 = ls;
                self.frames.push((proc.0, 0));
                false
            }
            Flow::Return => {
                self.frames.pop();
                self.frames.is_empty()
            }
            Flow::Finish => {
                self.frames.clear();
                self.finished = true;
                true
            }
        }
    }

    fn check_pc(&self) {
        let &(p, pc) = self.frames.last().expect("no frame");
        assert!(
            pc < self.prog.procs[p].stmts.len(),
            "fell off the end of procedure `{}`",
            self.prog.procs[p].name
        );
    }
}

impl<L, M> StepMachine<M> for ProgMachine<L, M>
where
    L: Clone + Hash + Send + 'static,
    M: 'static,
{
    fn step(&mut self, mem: &mut M, ctx: &mut StepCtx<'_>) -> StepOutcome {
        assert!(!self.finished, "step called on a finished process");
        let mut fuel = self.free_fuel;
        loop {
            let &(p, pc) = self.frames.last().expect("machine has no frame");
            // Field-disjoint borrows (statement behind the shared program
            // vs the locals), so the hot path clones neither the closure
            // Arc nor the display name. The program itself never mutates,
            // so re-indexing by (p, pc) after `apply_flow` is safe.
            let flow = {
                let stmt = &self.prog.procs[p].stmts[pc];
                (stmt.run)(&mut self.locals, mem)
            };
            let counted = self.prog.procs[p].stmts[pc].counted;
            let inv_done = self.apply_flow(flow);
            if inv_done {
                assert!(
                    counted,
                    "invocation completed by uncounted statement `{}`; \
                     returns must be counted statements",
                    self.prog.procs[p].stmts[pc].name
                );
                ctx.label(&self.prog.procs[p].stmts[pc].name);
                self.out = (self.out_fn)(&self.locals);
                self.inv_index += 1;
                if !self.finished {
                    self.start_invocation();
                }
                return if self.finished {
                    StepOutcome::Finished
                } else {
                    StepOutcome::InvocationEnd
                };
            }
            if counted {
                ctx.label(&self.prog.procs[p].stmts[pc].name);
                return StepOutcome::Continue;
            }
            fuel -= 1;
            assert!(
                fuel > 0,
                "uncounted-statement loop detected at `{}`",
                self.prog.procs[p].stmts[pc].name
            );
        }
    }

    fn output(&self) -> Option<u64> {
        self.out
    }

    fn box_clone(&self) -> Box<dyn StepMachine<M>> {
        Box::new(self.clone())
    }

    fn state_key(&self, h: &mut dyn Hasher) {
        let mut inner = DefaultHasher::new();
        self.locals.hash(&mut inner);
        self.frames.hash(&mut inner);
        self.inv_index.hash(&mut inner);
        self.finished.hash(&mut inner);
        self.out.hash(&mut inner);
        h.write_u64(inner.finish());
    }

    fn next_footprint(&self) -> Footprint {
        // One `step` call runs any uncounted statements up to and including
        // the next counted one. If the pc rests on a counted statement its
        // declared footprint is exact; if it rests on an uncounted one
        // (pure local control flow), *which* counted statement follows is
        // dynamic, so fall back to the whole-program may-footprint.
        match self.frames.last() {
            None => Footprint::LOCAL, // finished: never steps again
            Some(&(p, pc)) => {
                let stmt = &self.prog.procs[p].stmts[pc];
                if stmt.counted {
                    stmt.fp
                } else {
                    self.may_fp_override.unwrap_or(self.prog.may_fp)
                }
            }
        }
    }

    fn may_footprint(&self) -> Footprint {
        if self.finished {
            Footprint::LOCAL
        } else {
            self.may_fp_override.unwrap_or(self.prog.may_fp)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcessId;

    #[derive(Clone, Hash, Default)]
    struct L {
        i: u64,
        ret: u64,
    }

    fn ctx() -> StepCtx<'static> {
        StepCtx::new(ProcessId(0))
    }

    #[test]
    fn straight_line_program_runs_to_finish() {
        let mut b = ProgramBuilder::<L, u64>::new();
        let main = b.proc("main");
        b.stmt(main, "1", |_, m| {
            *m += 10;
            Flow::Next
        });
        b.stmt(main, "2", |l, m| {
            l.ret = *m;
            Flow::Return
        });
        let prog = b.build();
        let mut m = ProgMachine::single_shot(&prog, L::default(), main)
            .with_output(|l| Some(l.ret));
        let mut mem = 5u64;
        assert_eq!(m.step(&mut mem, &mut ctx()), StepOutcome::Continue);
        assert_eq!(m.step(&mut mem, &mut ctx()), StepOutcome::Finished);
        assert_eq!(m.output(), Some(15));
    }

    #[test]
    fn goto_loops_and_labels() {
        let mut b = ProgramBuilder::<L, u64>::new();
        let main = b.proc("main");
        let top = b.here(main);
        b.stmt(main, "body", move |l, m| {
            l.i += 1;
            *m += 1;
            if l.i < 3 {
                Flow::Goto(top)
            } else {
                Flow::Return
            }
        });
        let prog = b.build();
        let mut m = ProgMachine::single_shot(&prog, L::default(), main);
        let mut mem = 0u64;
        assert_eq!(m.step(&mut mem, &mut ctx()), StepOutcome::Continue);
        assert_eq!(m.step(&mut mem, &mut ctx()), StepOutcome::Continue);
        assert_eq!(m.step(&mut mem, &mut ctx()), StepOutcome::Finished);
        assert_eq!(mem, 3);
    }

    #[test]
    fn procedure_call_and_return() {
        let mut b = ProgramBuilder::<L, u64>::new();
        let sub = b.proc("sub");
        let main = b.proc("main");
        b.stmt(sub, "sub.1", |l, _| {
            l.ret = 42;
            Flow::Return
        });
        b.stmt(main, "main.1", move |_, _| Flow::Call(sub));
        b.stmt(main, "main.2", |l, m| {
            *m = l.ret;
            Flow::Return
        });
        let prog = b.build();
        let mut m = ProgMachine::single_shot(&prog, L::default(), main);
        let mut mem = 0u64;
        assert_eq!(m.step(&mut mem, &mut ctx()), StepOutcome::Continue); // main.1 (call)
        assert_eq!(m.step(&mut mem, &mut ctx()), StepOutcome::Continue); // sub.1
        assert_eq!(m.step(&mut mem, &mut ctx()), StepOutcome::Finished); // main.2
        assert_eq!(mem, 42);
    }

    #[test]
    fn call_then_resumes_at_label() {
        let mut b = ProgramBuilder::<L, u64>::new();
        let sub = b.proc("sub");
        let main = b.proc("main");
        b.stmt(sub, "sub.1", |_, m| {
            *m += 1;
            Flow::Return
        });
        let after = b.label();
        b.stmt(main, "main.1", move |_, _| Flow::CallThen { proc: sub, resume: after });
        b.stmt(main, "main.skip", |_, m| {
            *m = 999; // must be skipped
            Flow::Return
        });
        b.bind(main, after);
        b.stmt(main, "main.2", |_, _| Flow::Return);
        let prog = b.build();
        let mut m = ProgMachine::single_shot(&prog, L::default(), main);
        let mut mem = 0u64;
        m.step(&mut mem, &mut ctx());
        m.step(&mut mem, &mut ctx());
        assert_eq!(m.step(&mut mem, &mut ctx()), StepOutcome::Finished);
        assert_eq!(mem, 1);
    }

    #[test]
    fn uncounted_statements_do_not_consume_a_step() {
        let mut b = ProgramBuilder::<L, u64>::new();
        let main = b.proc("main");
        b.free(main, "for-header", |l, _| {
            l.i = 1;
            Flow::Next
        });
        b.stmt(main, "1", |_, m| {
            *m += 1;
            Flow::Return
        });
        let prog = b.build();
        let mut m = ProgMachine::single_shot(&prog, L::default(), main);
        let mut mem = 0u64;
        // One step executes both the free header and the counted statement.
        assert_eq!(m.step(&mut mem, &mut ctx()), StepOutcome::Finished);
        assert_eq!(mem, 1);
    }

    #[test]
    fn multi_invocation_plan() {
        let mut b = ProgramBuilder::<L, u64>::new();
        let main = b.proc("op");
        b.stmt(main, "1", |l, m| {
            *m += l.i;
            Flow::Return
        });
        let prog = b.build();
        let plan: InvocationPlan<L> = Arc::new(move |l, k| {
            if k < 3 {
                l.i = u64::from(k) + 1;
                Some(main)
            } else {
                None
            }
        });
        let mut m = ProgMachine::with_plan(&prog, L::default(), plan);
        let mut mem = 0u64;
        assert_eq!(m.step(&mut mem, &mut ctx()), StepOutcome::InvocationEnd);
        assert_eq!(m.step(&mut mem, &mut ctx()), StepOutcome::InvocationEnd);
        assert_eq!(m.step(&mut mem, &mut ctx()), StepOutcome::Finished);
        assert_eq!(mem, 1 + 2 + 3);
        assert_eq!(m.invocation_index(), 3);
    }

    #[test]
    fn finish_flow_abandons_remaining_invocations() {
        let mut b = ProgramBuilder::<L, u64>::new();
        let main = b.proc("op");
        b.stmt(main, "1", |_, _| Flow::Finish);
        let prog = b.build();
        let plan: InvocationPlan<L> = Arc::new(move |_, _| Some(main)); // endless plan
        let mut m = ProgMachine::with_plan(&prog, L::default(), plan);
        let mut mem = 0u64;
        assert_eq!(m.step(&mut mem, &mut ctx()), StepOutcome::Finished);
        assert!(m.is_finished());
    }

    #[test]
    fn clone_preserves_execution_state() {
        let mut b = ProgramBuilder::<L, u64>::new();
        let main = b.proc("main");
        b.stmt(main, "1", |_, m| {
            *m += 1;
            Flow::Next
        });
        b.stmt(main, "2", |_, m| {
            *m += 10;
            Flow::Return
        });
        let prog = b.build();
        let mut m = ProgMachine::single_shot(&prog, L::default(), main);
        let mut mem = 0u64;
        m.step(&mut mem, &mut ctx());
        let mut c = m.clone();
        let mut mem2 = mem;
        assert_eq!(c.step(&mut mem2, &mut ctx()), StepOutcome::Finished);
        assert_eq!(mem2, 11);
        // Original unaffected by the clone's step.
        assert_eq!(m.step(&mut mem, &mut ctx()), StepOutcome::Finished);
    }

    #[test]
    fn state_key_distinguishes_positions() {
        let mut b = ProgramBuilder::<L, u64>::new();
        let main = b.proc("main");
        b.stmt(main, "1", |_, _| Flow::Next);
        b.stmt(main, "2", |_, _| Flow::Return);
        let prog = b.build();
        let mut m = ProgMachine::single_shot(&prog, L::default(), main);
        let key = |m: &ProgMachine<L, u64>| {
            let mut h = DefaultHasher::new();
            m.state_key(&mut h);
            h.finish()
        };
        let k0 = key(&m);
        let mut mem = 0u64;
        m.step(&mut mem, &mut ctx());
        assert_ne!(k0, key(&m));
    }

    #[test]
    #[should_panic(expected = "label 0 never bound")]
    fn unbound_label_panics_at_build() {
        let mut b = ProgramBuilder::<L, u64>::new();
        let main = b.proc("main");
        let _l = b.label();
        b.stmt(main, "1", |_, _| Flow::Return);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "uncounted-statement loop")]
    fn uncounted_loop_is_detected() {
        let mut b = ProgramBuilder::<L, u64>::new();
        let main = b.proc("main");
        let top = b.here(main);
        b.free(main, "spin", move |_, _| Flow::Goto(top));
        let prog = b.build();
        let mut m = ProgMachine::single_shot(&prog, L::default(), main);
        let mut mem = 0u64;
        let _ = m.step(&mut mem, &mut ctx());
    }
}
