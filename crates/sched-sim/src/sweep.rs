//! The parallel sweep engine: fans independent kernel runs out over a
//! pool of worker threads, with results merged **order-independently** by
//! cell id.
//!
//! The paper's experimental claims — and the run-ensemble methodology of
//! the practically-wait-free literature — rest on *grids* of runs:
//! a Table 1 cell is 60 adversary seeds at each probed quantum, a Lemma 3
//! series is 100 seeds per quantum, a generated-case loop is hundreds of
//! (shape, seed) tuples. Each run is a deterministic **single-threaded**
//! kernel execution, independent of every other, so the grid is
//! embarrassingly parallel. This module provides the one primitive all
//! those sweeps share:
//!
//! * [`run_cells`] — evaluate `f(i, &cells[i])` for every cell, spreading
//!   cells over `jobs` `std::thread` workers (no external dependencies,
//!   per the workspace policy). Workers claim cells dynamically from a
//!   shared cursor, so long cells do not stall short ones; results are
//!   returned **in cell order** regardless of completion order. Hence the
//!   engine's core guarantee: for a deterministic `f`,
//!   `run_cells(cells, 1, f) == run_cells(cells, N, f)` for every `N` —
//!   parallel output is bit-identical to serial.
//!
//! Cells are typically `(scenario parameters, seed)` tuples evaluated by
//! building a [`crate::scenario::Scenario`] inside `f` (the scenario is
//! constructed *inside* the worker, so machines never cross threads);
//! [`cross`] builds such grids.
//!
//! # Example: a seed sweep, 4 ways parallel
//!
//! ```
//! use sched_sim::ids::{ProcessorId, Priority};
//! use sched_sim::kernel::SystemSpec;
//! use sched_sim::machine::{FnMachine, StepOutcome};
//! use sched_sim::scenario::Scenario;
//! use sched_sim::sweep::{cross, run_cells};
//!
//! // One cell = one deterministic single-threaded run.
//! fn cell(q: u32, seed: u64) -> (u32, u64, u64, u64) {
//!     let mut s = Scenario::new(0u64, SystemSpec::hybrid(q));
//!     for _ in 0..2 {
//!         s.add_process(ProcessorId(0), Priority(1), Box::new(FnMachine::new(
//!             |mem: &mut u64, calls| {
//!                 *mem += 1;
//!                 if calls == 3 { (StepOutcome::Finished, Some(*mem)) }
//!                 else { (StepOutcome::Continue, None) }
//!             })));
//!     }
//!     let r = s.run_seeded(seed);
//!     (q, seed, r.steps, *r.mem())
//! }
//!
//! let grid = cross(&[2u32, 4], &[0u64, 1, 2]);   // (quantum, seed) cells
//! let parallel = run_cells(&grid, 4, |_i, &(q, seed)| cell(q, seed));
//! let serial = run_cells(&grid, 1, |_i, &(q, seed)| cell(q, seed));
//! assert_eq!(parallel.len(), 6);
//! assert_eq!(parallel, serial);   // merged results are bit-identical
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads to use when the caller does not specify:
/// the machine's available parallelism (1 if unknown).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The bare worker pool underneath [`run_cells`]: spawns `jobs` scoped
/// threads, runs `f(worker_index)` on each, and joins them all before
/// returning. `jobs <= 1` runs `f(0)` inline on the calling thread (no
/// pool, no synchronization — the serial reference path).
///
/// [`run_cells`] drives it with an atomic cell cursor; the exhaustive
/// explorer ([`crate::explore::explore_parallel`]) drives it with a shared
/// work frontier. A panic in any worker propagates after the pool drains.
pub fn pool<F>(jobs: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if jobs <= 1 {
        f(0);
        return;
    }
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let f = &f;
            scope.spawn(move || f(w));
        }
    });
}

/// The cartesian product of two parameter axes, in row-major order
/// (`xs[0]` paired with every `ys`, then `xs[1]`, …) — the usual shape of
/// a `(scenario, seed)` grid.
pub fn cross<A: Clone, B: Clone>(xs: &[A], ys: &[B]) -> Vec<(A, B)> {
    let mut cells = Vec::with_capacity(xs.len() * ys.len());
    for x in xs {
        for y in ys {
            cells.push((x.clone(), y.clone()));
        }
    }
    cells
}

/// Evaluates `f(i, &cells[i])` for every cell over `jobs` worker threads
/// and returns the results **in cell order**.
///
/// `jobs` is clamped to `1..=cells.len()`; `jobs <= 1` runs inline on the
/// calling thread with no pool at all (the serial reference). Workers
/// claim cells from a shared atomic cursor (dynamic self-scheduling), so
/// an uneven grid keeps every worker busy until the grid drains. Because
/// each result is stored in its cell's slot, the merge is independent of
/// completion order: for deterministic `f`, the returned vector is
/// bit-identical for every `jobs` value.
///
/// # Panics
///
/// If `f` panics on any cell, the panic is propagated after the pool
/// drains (remaining workers finish their in-flight cells).
pub fn run_cells<P, R, F>(cells: &[P], jobs: usize, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(usize, &P) -> R + Sync,
{
    let jobs = jobs.clamp(1, cells.len().max(1));
    if jobs <= 1 {
        return cells.iter().enumerate().map(|(i, p)| f(i, p)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..cells.len()).map(|_| Mutex::new(None)).collect();
    pool(jobs, |_w| loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= cells.len() {
            break;
        }
        let r = f(i, &cells[i]);
        *slots[i].lock().expect("result slot poisoned") = Some(r);
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every cell was claimed and completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_arrive_in_cell_order_for_any_jobs() {
        let cells: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = cells.iter().map(|&x| x * x).collect();
        for jobs in [1, 2, 3, 8, 64, 1000] {
            assert_eq!(run_cells(&cells, jobs, |_, &x| x * x), expect, "jobs={jobs}");
        }
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let cells: Vec<usize> = (0..50).collect();
        let hits: Vec<AtomicU32> = (0..cells.len()).map(|_| AtomicU32::new(0)).collect();
        let out = run_cells(&cells, 7, |i, &x| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            (i, x)
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        // Index argument matches the cell's position.
        assert!(out.iter().all(|&(i, x)| i == x));
    }

    #[test]
    fn parallel_workers_actually_overlap_cells() {
        // With 4 workers over 4 slow-start cells, each worker should claim
        // a distinct cell; record which thread ran each cell.
        let cells = [0u8; 4];
        let ids = run_cells(&cells, 4, |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(20));
            format!("{:?}", std::thread::current().id())
        });
        let distinct: HashSet<_> = ids.iter().collect();
        assert!(distinct.len() > 1, "expected >1 worker thread, got {ids:?}");
    }

    #[test]
    fn empty_grid_and_zero_jobs_are_fine() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_cells(&empty, 0, |_, &x| x).is_empty());
        assert_eq!(run_cells(&[5u32], 0, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn cross_is_row_major() {
        assert_eq!(
            cross(&['a', 'b'], &[1, 2, 3]),
            vec![('a', 1), ('a', 2), ('a', 3), ('b', 1), ('b', 2), ('b', 3)]
        );
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
