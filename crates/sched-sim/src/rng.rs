//! A small, dependency-free pseudo-random number generator.
//!
//! The simulator needs randomness for exactly one purpose: *seeded,
//! reproducible* schedule exploration (the [`crate::decision::SeededRandom`]
//! decider and the adversaries of the lower-bound experiments). That calls
//! for a tiny deterministic generator with a fixed, documented algorithm —
//! not a cryptographic or platform-dependent one — so the workspace carries
//! its own instead of an external dependency.
//!
//! The algorithm is SplitMix64 (Steele, Lea & Flood, *Fast Splittable
//! Pseudorandom Number Generators*, OOPSLA 2014): a 64-bit counter stepped
//! by the golden-ratio increment and scrambled by two xor-shift-multiply
//! rounds. It is statistically strong for simulation purposes, passes
//! BigCrush in its output mixing, and — crucially for replayable schedules —
//! its output sequence is a pure function of the seed, identical on every
//! platform and build.

/// A seeded SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use sched_sim::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.index(10) < 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from `seed`. Equal seeds yield equal sequences.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n` via the multiply-shift range reduction
    /// (Lemire). The bias is at most `n / 2^64` — immaterial for schedule
    /// sampling, and the mapping stays a pure function of the seed.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// A uniform value in `lo..hi` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range");
        lo + self.index((hi - lo) as usize) as u32
    }

    /// A uniform `bool`.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // Reference outputs for seed 1234567 from the published SplitMix64
        // algorithm; pins the implementation against silent drift (replay
        // artifacts depend on the exact sequence).
        let mut g = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| g.next_u64()).collect();
        assert_eq!(got, vec![6457827717110365317, 3203168211198807973, 9817491932198370423]);
    }

    #[test]
    fn reproducible_and_seed_sensitive() {
        let seq = |seed: u64| {
            let mut g = SplitMix64::new(seed);
            (0..100).map(|_| g.index(7)).collect::<Vec<_>>()
        };
        assert_eq!(seq(42), seq(42));
        assert_ne!(seq(42), seq(43));
    }

    #[test]
    fn index_is_in_range_and_covers() {
        let mut g = SplitMix64::new(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let i = g.index(5);
            assert!(i < 5);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn range_u32_respects_bounds() {
        let mut g = SplitMix64::new(77);
        for _ in 0..200 {
            let v = g.range_u32(3, 9);
            assert!((3..9).contains(&v));
        }
    }
}
