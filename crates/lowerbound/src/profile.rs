//! Profile sweeps over the paper's algorithm families, and offline
//! profiling of committed trace artifacts.
//!
//! This is the data layer behind `experiments --profile` and
//! `experiments --profile-trace`: a deterministic grid of (family,
//! decider, seed) cells at each family's *legal* quantum, every cell run
//! with a streaming [`Profile`] attached
//! ([`CaseEngine::run_profiled`](crate::fuzz::CaseEngine::run_profiled)),
//! and per-family merged metrics whose fold is order-independent — so a
//! parallel sweep ([`run_cells`]) publishes byte-identical report lines
//! to a serial one.
//!
//! The profiled families are the ones the paper's central claims are
//! about: Fig. 3 uniprocessor consensus (Theorem 1), Fig. 5 C&S
//! (Theorem 2), the universal construction, and Fig. 7 multiprocessor
//! consensus (Theorem 4). Each is driven both by the hostile
//! preemption-storm decider and by seeded random schedules, at the legal
//! quantum where every run must stay clean.

use std::time::Duration;

use sched_sim::obs::Trace;
use sched_sim::prof::{chrome_trace_text, Profile};
use sched_sim::report::Json;
use sched_sim::sweep::run_cells;

use crate::fuzz::{build_decider, engine, Family};

/// The profiled families, in report order (see the module docs).
pub const FAMILIES: [Family; 4] =
    [Family::Fig3, Family::Fig5, Family::Universal, Family::Fig7];

/// The deciders driving profiled runs: the hostile preemption storm and
/// seeded random scheduling.
pub const PROFILE_DECIDERS: [&str; 2] = ["storm", "random"];

/// Seeds per (family, decider) cell.
pub fn n_seeds(smoke: bool) -> u64 {
    if smoke {
        2
    } else {
        4
    }
}

/// One profiled cell of the sweep grid.
#[derive(Clone, Debug)]
pub struct ProfCell {
    /// The algorithm family.
    pub family: Family,
    /// The quantum the cell ran at (the family's legal quantum).
    pub q: u32,
    /// The decider name (see [`PROFILE_DECIDERS`]).
    pub decider: &'static str,
    /// The decider seed.
    pub seed: u64,
    /// Statements executed.
    pub steps: u64,
    /// Wall-clock time of the run (nondeterministic; excluded from the
    /// canonical artifact via `report::split_timing`).
    pub wall: Duration,
    /// Whether every process finished within the step budget.
    pub all_finished: bool,
    /// The streamed schedule profile.
    pub profile: Profile,
}

/// Runs the full profile grid with `jobs` worker threads. Deterministic:
/// the returned cells (profiles included) are identical for any `jobs`.
pub fn run_grid(jobs: usize, smoke: bool) -> Vec<ProfCell> {
    let mut cells: Vec<(Family, &'static str, u64)> = Vec::new();
    for family in FAMILIES {
        for decider in PROFILE_DECIDERS {
            for seed in 0..n_seeds(smoke) {
                cells.push((family, decider, seed));
            }
        }
    }
    run_cells(&cells, jobs, |_, &(family, decider, seed)| {
        let q = family.legal_q();
        let eng = engine(family, q);
        let mut d = build_decider(decider, seed, eng.n_procs());
        let (run, profile) = eng.run_profiled(&mut *d);
        ProfCell {
            family,
            q,
            decider,
            seed,
            steps: run.steps,
            wall: run.wall,
            all_finished: run.all_finished,
            profile,
        }
    })
}

/// Wall-clock milliseconds rounded to 3 decimals (the artifact
/// convention; stripped into the `.timing.json` sidecar on write).
fn wall_ms(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e3 * 1e3).round() / 1e3
}

/// Renders the grid as JSONL report lines: one `"profile"` line per cell
/// with compact scalar metrics, then one `"profile_family"` line per
/// family with the merged metrics (histograms, per-priority and
/// per-process tables). The merge folds cells in grid order with an
/// order-independent operation, so parallel and serial sweeps produce
/// byte-identical lines (modulo the `wall_ms` values the artifact writer
/// splits into the timing sidecar).
pub fn report_lines(cells: &[ProfCell]) -> Vec<Json> {
    let mut lines = Vec::new();
    for c in cells {
        lines.push(Json::obj([
            ("kind", Json::from("profile")),
            (
                "cell",
                Json::obj([
                    ("family", Json::from(c.family.name())),
                    ("q", Json::from(c.q)),
                    ("decider", Json::from(c.decider)),
                    ("seed", Json::from(c.seed)),
                ]),
            ),
            ("steps", Json::from(c.steps)),
            ("all_finished", Json::from(c.all_finished)),
            ("metrics", c.profile.scalar_json()),
            ("wall_ms", Json::from(wall_ms(c.wall))),
        ]));
    }
    for family in FAMILIES {
        let fam: Vec<&ProfCell> = cells.iter().filter(|c| c.family == family).collect();
        if fam.is_empty() {
            continue;
        }
        let mut merged = Profile::new();
        let mut steps = 0u64;
        for c in &fam {
            merged.merge(&c.profile);
            steps += c.steps;
        }
        lines.push(Json::obj([
            ("kind", Json::from("profile_family")),
            (
                "cell",
                Json::obj([
                    ("family", Json::from(family.name())),
                    ("q", Json::from(family.legal_q())),
                    ("runs", Json::from(fam.len() as u64)),
                ]),
            ),
            ("steps", Json::from(steps)),
            ("metrics", merged.metrics_json()),
        ]));
    }
    lines
}

/// Captures a representative run of `family` at its legal quantum (storm
/// decider, seed 0) and renders it as Chrome Trace Format JSON for
/// `ui.perfetto.dev`. Deterministic, so regenerating the timeline
/// artifact is idempotent.
pub fn family_timeline(family: Family) -> String {
    let eng = engine(family, family.legal_q());
    let mut d = build_decider("storm", 0, eng.n_procs());
    let run = eng.run_with(&mut *d);
    let (_, trace) = eng.capture(&run.script);
    chrome_trace_text(&trace)
}

/// Profiles a serialized trace artifact (any `.trace` file, including the
/// committed fuzz counterexamples — their `# fuzz` metadata lines are
/// comments to the trace parser). Returns the derived metrics and the
/// Perfetto-JSON rendering of the timeline.
pub fn profile_trace_text(text: &str) -> Result<(Profile, String), String> {
    let trace = Trace::from_text(text)?;
    Ok((Profile::from_trace(&trace), chrome_trace_text(&trace)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_is_clean_and_parallel_deterministic() {
        let serial = run_grid(1, true);
        assert_eq!(serial.len(), FAMILIES.len() * PROFILE_DECIDERS.len() * 2);
        for c in &serial {
            assert!(c.all_finished, "{} {} s{} did not finish", c.family.name(), c.decider, c.seed);
            assert!(c.profile.total_stmts() > 0);
            assert_eq!(c.profile.total_stmts(), c.steps);
        }
        let parallel = run_grid(2, true);
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.steps, b.steps);
            assert_eq!(a.profile, b.profile);
        }
    }

    #[test]
    fn fig3_timeline_is_valid_json() {
        let text = family_timeline(Family::Fig3);
        let v = Json::parse(&text).expect("timeline parses as JSON");
        let events = v.get("traceEvents").expect("has traceEvents");
        assert!(matches!(events, Json::Arr(a) if !a.is_empty()));
    }
}
