//! Native-backend execution grid: the data layer behind
//! `experiments --native`.
//!
//! The grid runs the backend-generic algorithms (`hybrid_wf::generic`) on
//! **real OS threads** through [`native::harness`], in both pacing modes
//! of [`native::backend::NativeBackend`], and cross-validates every run
//! with the simulator's own oracles (`hybrid_wf::oracle`):
//!
//! * **free** pacing — genuine hardware races under the commodity
//!   scheduler. Linearizability of the CAS-backed algorithms (the
//!   universal construction, the Fig. 5 C&S interface) is *gated*: a
//!   violation here is a bug, because hardware C&S has consensus number
//!   ∞. Fig. 3 agreement is *reported*: no commodity kernel promises the
//!   paper's quantum axiom, so disagreement is a measurement (see
//!   EXPERIMENTS.md, "Native execution"), classified like the fuzzer's
//!   [`Expect::Any`] cells.
//! * **lockstep** pacing — the deterministic statement scheduler. At
//!   `Q ≥ 8` (Theorem 1's bound) Fig. 3 agreement is gated; at `Q = 1`
//!   the grid pins seeds whose schedules are *known* to split the
//!   decision, so a quiet run means the lower-bound behaviour was lost
//!   (gated as [`Expect::Violation`], exactly like the fuzzer's
//!   sub-threshold cells).
//!
//! Unlike the simulator sweeps, the grid runs **serially**: each cell
//! spawns one OS thread per process, and nesting that under a worker pool
//! would oversubscribe the machine and distort the wall-clock rates the
//! artifact reports. Lockstep cells are deterministic per seed (ops,
//! steps, and violations are pure functions of the seed); free cells are
//! inherently racy, so their step/retry counts vary run to run — the
//! committed `BENCH_native.json` is a representative snapshot, like
//! `BENCH_perf.json`'s throughput numbers.

use std::time::Duration;

use hybrid_wf::oracle::{CasRegisterSpec, QueueSpec};
use hybrid_wf::uni::consensus::MIN_QUANTUM;
use hybrid_wf::universal::CounterSpec;
use native::harness::{
    check_run_linearizable, counter_plans, fig3_agreement, queue_plans, run_cas, run_fig3,
    run_universal, Pacing,
};
use sched_sim::report::Json;

use crate::fuzz::Expect;

/// The native workload families (see the module docs for what each gates).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NativeFamily {
    /// Fig. 3 read/write consensus, one decide per process.
    Fig3,
    /// The universal construction applied to a fetch-and-add counter.
    Counter,
    /// The universal construction applied to a FIFO queue.
    Queue,
    /// The Fig. 5 object interface (C&S + Read) on the backend C&S cell,
    /// small enough for the linearizability oracle's DFS bound.
    Cas,
    /// The same C&S workload sized for throughput, not oracle-checkable
    /// (the oracle's DFS bound is 63 operations); reports ops/sec only.
    CasThroughput,
}

impl NativeFamily {
    /// The family's report name.
    pub fn name(self) -> &'static str {
        match self {
            NativeFamily::Fig3 => "fig3",
            NativeFamily::Counter => "universal_counter",
            NativeFamily::Queue => "universal_queue",
            NativeFamily::Cas => "cas",
            NativeFamily::CasThroughput => "cas_throughput",
        }
    }
}

/// One run of the native grid: a (family, pacing, threads, seed) cell.
#[derive(Clone, Debug)]
pub struct NativeCell {
    /// The workload family.
    pub family: NativeFamily,
    /// `"free"` or `"lockstep"` (see [`Pacing`]).
    pub pacing: &'static str,
    /// Thread count = process count (one OS thread per process).
    pub threads: usize,
    /// The lockstep quantum in counted statements; `0` in free mode.
    pub q: u32,
    /// The scheduler seed (lockstep) / workload seed (free).
    pub seed: u64,
    /// Which oracle checked the run: `"agreement"`, `"linearizable"`, or
    /// `"none"`.
    pub checked: &'static str,
    /// The paper's prediction for this cell, in the fuzzer's vocabulary.
    pub expect: Expect,
    /// Completed operations.
    pub ops: u64,
    /// Counted statements (cell accesses + explicit steps).
    pub steps: u64,
    /// Failed C&S attempts / duplicate universal-log slots.
    pub retries: u64,
    /// Oracle violations observed (0 or 1 per cell).
    pub violations: u64,
    /// Wall-clock time of the threaded section (nondeterministic; split
    /// into the `.timing.json` sidecar on write).
    pub wall: Duration,
}

impl NativeCell {
    /// The cell's verdict against the paper's prediction, in the fuzzer's
    /// vocabulary: `clean`/`BUG` for [`Expect::Clean`] cells,
    /// `predicted`/`MISSING` for [`Expect::Violation`] cells,
    /// `observed`/`quiet` for [`Expect::Any`] cells. `BUG` and `MISSING`
    /// fail [`grid_ok`].
    pub fn verdict(&self) -> &'static str {
        match (self.expect, self.violations > 0) {
            (Expect::Clean, true) => "BUG",
            (Expect::Clean, false) => "clean",
            (Expect::Violation, true) => "predicted",
            (Expect::Violation, false) => "MISSING",
            (Expect::Any, true) => "observed",
            (Expect::Any, false) => "quiet",
        }
    }

    /// Completed operations per wall-clock second (0 when the run was too
    /// fast to time).
    pub fn ops_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            (self.ops as f64 / s).round()
        } else {
            0.0
        }
    }
}

/// One grid configuration: a (family, pacing) row swept over its seeds.
struct CellCfg {
    family: NativeFamily,
    q: u32, // 0 = free
    threads: usize,
    per: usize,
    seeds: Vec<u64>,
    expect: Expect,
    checked: &'static str,
}

/// Fig. 3 lockstep seeds whose `Q = 1` schedules are known to split the
/// decision (found by `cargo run -p native --example lockstep_threshold`,
/// deterministic per seed). Pinning them makes the sub-threshold cells
/// [`Expect::Violation`]: a quiet run means the lower-bound behaviour —
/// not just a measurement — was lost.
pub const Q1_SPLIT_SEEDS: [(usize, [u64; 3]); 2] = [(3, [43, 55, 62]), (4, [3, 18, 35])];

/// The grid rows. `smoke` shrinks the seed axis and the throughput
/// workload for CI; the pinned `Q = 1` cells run in both modes (they are
/// deterministic and tiny).
fn grid_cfgs(smoke: bool) -> Vec<CellCfg> {
    let seeds: Vec<u64> = (0..if smoke { 2 } else { 6 }).collect();
    let mut cfgs = Vec::new();
    for threads in [2usize, 4, 8] {
        cfgs.push(CellCfg {
            family: NativeFamily::Fig3,
            q: 0,
            threads,
            per: 1,
            seeds: seeds.clone(),
            expect: Expect::Any,
            checked: "agreement",
        });
    }
    for threads in [2usize, 3, 4] {
        cfgs.push(CellCfg {
            family: NativeFamily::Fig3,
            q: MIN_QUANTUM,
            threads,
            per: 1,
            seeds: seeds.clone(),
            expect: Expect::Clean,
            checked: "agreement",
        });
    }
    for (threads, pinned) in Q1_SPLIT_SEEDS {
        cfgs.push(CellCfg {
            family: NativeFamily::Fig3,
            q: 1,
            threads,
            per: 1,
            seeds: pinned.to_vec(),
            expect: Expect::Violation,
            checked: "agreement",
        });
    }
    for q in [0, MIN_QUANTUM] {
        cfgs.push(CellCfg {
            family: NativeFamily::Counter,
            q,
            threads: 3,
            per: 4,
            seeds: seeds.clone(),
            expect: Expect::Clean,
            checked: "linearizable",
        });
    }
    cfgs.push(CellCfg {
        family: NativeFamily::Queue,
        q: 0,
        threads: 4,
        per: 3,
        seeds: seeds.clone(),
        expect: Expect::Clean,
        checked: "linearizable",
    });
    cfgs.push(CellCfg {
        family: NativeFamily::Cas,
        q: 0,
        threads: 4,
        per: 4,
        seeds,
        expect: Expect::Clean,
        checked: "linearizable",
    });
    cfgs.push(CellCfg {
        family: NativeFamily::CasThroughput,
        q: 0,
        threads: 8,
        per: if smoke { 50 } else { 400 },
        seeds: vec![0, 1],
        expect: Expect::Clean,
        checked: "none",
    });
    cfgs
}

/// Runs one cell and scores it against its oracle.
fn run_one(cfg: &CellCfg, seed: u64) -> NativeCell {
    let pacing = if cfg.q == 0 {
        Pacing::Free
    } else {
        Pacing::Lockstep { seed, quantum: cfg.q }
    };
    let n = cfg.threads;
    let (ops, steps, retries, violations, wall) = match cfg.family {
        NativeFamily::Fig3 => {
            let inputs: Vec<u64> = (0..n as u64).map(|i| 10 * (i + 1)).collect();
            let run = run_fig3(&inputs, pacing);
            let v = u64::from(fig3_agreement(&run).is_err());
            (run.records.len(), run.accesses, run.retries, v, run.wall)
        }
        NativeFamily::Counter => {
            let run = run_universal(CounterSpec, counter_plans(n, cfg.per, seed), pacing);
            let v = u64::from(check_run_linearizable(&CounterSpec, &run).is_err());
            (run.records.len(), run.accesses, run.retries, v, run.wall)
        }
        NativeFamily::Queue => {
            let run = run_universal(QueueSpec, queue_plans(n, cfg.per), pacing);
            let v = u64::from(check_run_linearizable(&QueueSpec, &run).is_err());
            (run.records.len(), run.accesses, run.retries, v, run.wall)
        }
        NativeFamily::Cas => {
            let run = run_cas(n, cfg.per, seed, pacing);
            let v =
                u64::from(check_run_linearizable(&CasRegisterSpec { init: 0 }, &run).is_err());
            (run.records.len(), run.accesses, run.retries, v, run.wall)
        }
        NativeFamily::CasThroughput => {
            let run = run_cas(n, cfg.per, seed, pacing);
            (run.records.len(), run.accesses, run.retries, 0, run.wall)
        }
    };
    NativeCell {
        family: cfg.family,
        pacing: if cfg.q == 0 { "free" } else { "lockstep" },
        threads: n,
        q: cfg.q,
        seed,
        checked: cfg.checked,
        expect: cfg.expect,
        ops: ops as u64,
        steps,
        retries,
        violations,
        wall,
    }
}

/// Runs the full native grid, serially (see the module docs for why there
/// is no `jobs` knob here).
pub fn run_grid(smoke: bool) -> Vec<NativeCell> {
    let mut cells = Vec::new();
    for cfg in grid_cfgs(smoke) {
        for &seed in &cfg.seeds {
            cells.push(run_one(&cfg, seed));
        }
    }
    cells
}

/// `true` when every cell matched the paper's prediction: no `BUG`
/// (violation where the backend must be clean) and no `MISSING` (quiet
/// run at a pinned sub-threshold seed).
pub fn grid_ok(cells: &[NativeCell]) -> bool {
    cells.iter().all(|c| !matches!(c.verdict(), "BUG" | "MISSING"))
}

/// Wall-clock milliseconds rounded to 1 µs (the artifact convention;
/// stripped into the `.timing.json` sidecar on write).
fn wall_ms(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e3 * 1e3).round() / 1e3
}

/// Renders the grid as JSONL report lines — one `"native"` line per cell,
/// validating against `sched_sim::report::NATIVE_SCHEMA` (and, like every
/// workspace artifact, against the base `CELL_SCHEMA`).
pub fn report_lines(cells: &[NativeCell]) -> Vec<Json> {
    cells
        .iter()
        .map(|c| {
            Json::obj([
                ("kind", Json::from("native")),
                (
                    "cell",
                    Json::obj([
                        ("family", Json::from(c.family.name())),
                        ("pacing", Json::from(c.pacing)),
                        ("threads", Json::from(c.threads as u64)),
                        ("q", Json::from(c.q)),
                        ("seed", Json::from(c.seed)),
                    ]),
                ),
                ("steps", Json::from(c.steps)),
                ("ops", Json::from(c.ops)),
                ("retries", Json::from(c.retries)),
                ("checked", Json::from(c.checked)),
                ("expect", Json::from(c.expect.name())),
                ("violations", Json::from(c.violations)),
                ("verdict", Json::from(c.verdict())),
                ("ops_per_sec", Json::from(c.ops_per_sec())),
                ("wall_ms", Json::from(wall_ms(c.wall))),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_sim::report::{validate_cells, CELL_SCHEMA, NATIVE_SCHEMA};

    #[test]
    fn smoke_grid_matches_predictions_and_validates() {
        let cells = run_grid(true);
        assert!(grid_ok(&cells), "native smoke grid violated a gated prediction");
        // The pinned sub-threshold cells actually fired.
        assert!(
            cells
                .iter()
                .filter(|c| c.q == 1)
                .all(|c| c.verdict() == "predicted"),
            "a pinned Q = 1 seed no longer splits the decision"
        );
        // Every Fig. 3 decide is exactly 8 counted statements (Theorem 1's
        // constant), on real threads in either pacing mode.
        for c in cells.iter().filter(|c| c.family == NativeFamily::Fig3) {
            assert_eq!(c.steps, 8 * c.threads as u64, "{c:?}");
        }
        let text: String =
            report_lines(&cells).iter().map(|l| format!("{l}\n")).collect();
        assert_eq!(validate_cells(&text, NATIVE_SCHEMA), Ok(cells.len()));
        assert_eq!(validate_cells(&text, CELL_SCHEMA), Ok(cells.len()));
    }

    #[test]
    fn lockstep_cells_are_deterministic() {
        let cfg = CellCfg {
            family: NativeFamily::Counter,
            q: MIN_QUANTUM,
            threads: 3,
            per: 2,
            seeds: vec![],
            expect: Expect::Clean,
            checked: "linearizable",
        };
        let a = run_one(&cfg, 9);
        let b = run_one(&cfg, 9);
        assert_eq!((a.ops, a.steps, a.retries, a.violations), (b.ops, b.steps, b.retries, b.violations));
    }
}
