//! Adversarial fuzz harness over every algorithm family in the workspace.
//!
//! [`sched_sim::fuzz`] supplies hostile deciders and [`sched_sim::shrink`]
//! the script minimizer; this module supplies what they attack: one
//! [`CaseEngine`] per algorithm family — Fig. 3 consensus, Fig. 5 C&S,
//! Fig. 7 multiprocessor consensus, Fig. 9 fair-scheduler consensus, the
//! universal construction, and the lock / exponential baselines — each with
//! a safety oracle derived from the paper's claims (agreement + validity,
//! linearizability via [`hybrid_wf::oracle`], per-invocation own-step
//! bounds for wait-freedom, and the Lemma 2/3 access-failure bounds via
//! [`hybrid_wf::multi::failures`]).
//!
//! Every family is fuzzed in two regimes:
//!
//! * **legal** — the quantum satisfies the paper's hypothesis (`Q ≥ 8` for
//!   Fig. 3, `Q ≥ c(2P+1−C)·Tmax` shaped thresholds for Fig. 7, …). A
//!   violation here is a *bug* in the implementation.
//! * **sub** — the quantum is below the threshold (Theorem 3's regime for
//!   consensus). Here the paper predicts impossibility, so the fuzzer
//!   *expects* to find violations; their absence is itself reportable.
//!
//! A violating run's recorded decision script is delta-debugged
//! ([`shrink_and_capture`]) to a minimal schedule, canonicalized so it
//! replays under [`sched_sim::decision::Scripted::strict`], and packaged as
//! a [`CounterExample`] artifact: metadata comment lines plus the full
//! `sched_sim` trace, byte-for-byte replayable (`# `-prefixed lines are
//! comments to [`Trace::from_text`], so the whole artifact parses as a
//! trace).

use std::time::Duration;

use hybrid_wf::baseline::exponential::{decide_machine as exp_decide, ExpMem};
use hybrid_wf::baseline::locks::{inc_machine, LockMem};
use hybrid_wf::multi::consensus::{LocalMode, MultiMem};
use hybrid_wf::multi::failures::{lemma2_holds, lemma3_bound_holds, summarize};
use hybrid_wf::multi::fair::{decide_machine as fair_decide, FairMem};
use hybrid_wf::multi::ports::PortLayout;
use hybrid_wf::oracle::{
    check_linearizable, check_linearizable_traced, timed_ops, CasRegOp, CasRegisterSpec,
};
use hybrid_wf::uni::cas::{op_machine as cas_machine, CasMem, CasOp};
use hybrid_wf::uni::consensus::{decide_machine as fig3_decide, UniConsensusMem, MIN_QUANTUM};
use hybrid_wf::universal::{
    op_machine as universal_machine, replay_final_state, CounterSpec, UniversalMem,
};
use hybrid_wf::Val;
use sched_sim::decision::{Decider, Scripted, SeededRandom};
use sched_sim::fuzz::{hostile, Recording, HOSTILE_NAMES};
use sched_sim::ids::{ProcessorId, Priority};
use sched_sim::kernel::SystemSpec;
use sched_sim::obs::Trace;
use sched_sim::prof::Profile;
use sched_sim::scenario::{RunResult, Scenario};
use sched_sim::shrink::shrink_script;

use crate::adversary::MaxPreempt;

/// An algorithm family under fuzz.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Fig. 3 uniprocessor consensus from reads/writes (Theorem 1, Q ≥ 8).
    Fig3,
    /// Fig. 5 compare-and-swap from consensus + reads/writes (Theorem 2).
    Fig5,
    /// Fig. 7 multiprocessor consensus from C-consensus objects (Theorem 4).
    Fig7,
    /// Fig. 9 consensus assuming a fair scheduler (Sec. 5). Safety-only:
    /// losers spin, so unfair hostile schedules may lawfully livelock it.
    Fig9,
    /// The universal construction applied to a fetch-and-add counter.
    Universal,
    /// The test-and-set lock baseline. Safety-only: priority inversion may
    /// lawfully livelock it — that is the paper's motivating pathology.
    Locks,
    /// The exponential-space priority-only baseline.
    Exponential,
}

impl Family {
    /// Every family, in report order.
    pub const ALL: [Family; 7] = [
        Family::Fig3,
        Family::Fig5,
        Family::Fig7,
        Family::Fig9,
        Family::Universal,
        Family::Locks,
        Family::Exponential,
    ];

    /// Stable lower-case name, used in reports and artifact files.
    pub fn name(self) -> &'static str {
        match self {
            Family::Fig3 => "fig3",
            Family::Fig5 => "fig5",
            Family::Fig7 => "fig7",
            Family::Fig9 => "fig9",
            Family::Universal => "universal",
            Family::Locks => "locks",
            Family::Exponential => "exponential",
        }
    }

    /// Parses a [`Family::name`] back to the family.
    pub fn from_name(s: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == s)
    }

    /// A quantum satisfying the paper's hypothesis for this family.
    pub fn legal_q(self) -> u32 {
        match self {
            Family::Fig3 => MIN_QUANTUM,
            Family::Fig5 => 4096,
            Family::Fig7 => 64,
            Family::Fig9 => 8,
            Family::Universal => 8,
            Family::Locks => 8,
            Family::Exponential => 4,
        }
    }

    /// A sub-threshold quantum (Theorem 3's regime, where applicable).
    pub fn sub_q(self) -> u32 {
        match self {
            Family::Fig5 => 2,
            _ => 1,
        }
    }
}

/// What the paper predicts for a (family, regime) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expect {
    /// No violation may occur: one is an implementation bug.
    Clean,
    /// The paper predicts impossibility: violations are expected, and
    /// their complete absence is itself an anomaly worth reporting.
    Violation,
    /// No prediction either way (informational regime).
    Any,
}

impl Expect {
    /// Stable lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Expect::Clean => "clean",
            Expect::Violation => "violation",
            Expect::Any => "any",
        }
    }
}

/// One fuzz configuration: a family at a quantum, with the expectation the
/// paper assigns to that regime.
#[derive(Clone, Copy, Debug)]
pub struct CaseSpec {
    /// The algorithm family under test.
    pub family: Family,
    /// The scheduling quantum.
    pub q: u32,
    /// `"legal"` or `"sub"`.
    pub regime: &'static str,
    /// The paper's prediction for this regime.
    pub expect: Expect,
}

/// The full fuzz grid: every family in both regimes, with expectations.
///
/// Legal regimes are all [`Expect::Clean`]. Sub-threshold regimes are
/// [`Expect::Violation`] where the paper proves impossibility *and* the
/// violation is empirically reachable within a handful of seeds (Fig. 3 at
/// `Q = 1`: Lemma 1's enumeration shows 22 of 54 schedules disagree;
/// Fig. 7 at `Q = 1`, inside Theorem 3's `Q ≤ 2P − C` bound), and
/// [`Expect::Any`] elsewhere (e.g. the baselines, whose guarantees are not
/// quantum-conditioned, or Fig. 9, whose oracle is safety-only).
pub fn case_specs() -> Vec<CaseSpec> {
    Family::ALL
        .into_iter()
        .flat_map(|family| {
            let sub_expect = match family {
                Family::Fig3 | Family::Fig7 => Expect::Violation,
                _ => Expect::Any,
            };
            [
                CaseSpec { family, q: family.legal_q(), regime: "legal", expect: Expect::Clean },
                CaseSpec { family, q: family.sub_q(), regime: "sub", expect: sub_expect },
            ]
        })
        .collect()
}

/// Decider lineup for the fuzz grid: the four hostile deciders from
/// [`sched_sim::fuzz`] plus the Theorem 3 adversary and a seeded-uniform
/// control, both reused from [`crate::adversary`].
pub const DECIDERS: [&str; 6] =
    [HOSTILE_NAMES[0], HOSTILE_NAMES[1], HOSTILE_NAMES[2], HOSTILE_NAMES[3], "maxpreempt", "random"];

/// Builds a decider from the [`DECIDERS`] lineup. `n_procs` is the process
/// count of the target scenario (used by the crash adversary to pick its
/// victim).
pub fn build_decider(name: &str, seed: u64, n_procs: u32) -> Box<dyn Decider> {
    match name {
        "maxpreempt" => Box::new(MaxPreempt::new(seed)),
        "random" => Box::new(SeededRandom::new(seed)),
        other => hostile(other, seed, n_procs),
    }
}

/// Outcome of one fuzz run (or replay).
#[derive(Clone, Debug)]
pub struct CaseRun {
    /// The oracle's verdict: `Some(description)` on a safety violation.
    pub violation: Option<String>,
    /// Statements executed.
    pub steps: u64,
    /// Wall-clock time of the run.
    pub wall: Duration,
    /// Whether every process finished within the step budget.
    pub all_finished: bool,
    /// The effective decision script of the run (every consulted decision,
    /// post-clamp) — replayable with [`Scripted::strict`].
    pub script: Vec<usize>,
}

/// A fuzzable algorithm family instance: runs a fixed scenario under any
/// decider and judges the result with the family's safety oracle.
pub trait CaseEngine {
    /// Number of processes in the scenario (for decider construction).
    fn n_procs(&self) -> u32;
    /// Runs the scenario under `d`, recording the decision script.
    fn run_with(&self, d: &mut dyn Decider) -> CaseRun;
    /// Replays a decision script. `strict` selects [`Scripted::strict`]
    /// (artifact verification); otherwise the lenient mode shrink
    /// candidates need. The returned [`CaseRun::script`] is re-recorded, so
    /// a lenient replay yields the *canonical* full-coverage script.
    fn replay(&self, script: &[usize], strict: bool) -> CaseRun;
    /// Strict-replays `script` on the observed twin of the scenario,
    /// returning the run and its captured [`Trace`].
    fn capture(&self, script: &[usize]) -> (CaseRun, Trace);
    /// Runs the scenario under `d` with a streaming profiler attached
    /// ([`Scenario::with_prof`]), returning the run and its derived
    /// schedule metrics. No event log is retained — memory stays
    /// O(processes) even on budget-length runs.
    fn run_profiled(&self, d: &mut dyn Decider) -> (CaseRun, Profile);
}

/// Builds the engine for `family` at quantum `q`.
pub fn engine(family: Family, q: u32) -> Box<dyn CaseEngine> {
    match family {
        Family::Fig3 => {
            const INPUTS: [Val; 3] = [10, 20, 30];
            let build = || {
                let mut s = Scenario::new(
                    UniConsensusMem::default(),
                    SystemSpec::hybrid(q).with_adversarial_alignment(),
                )
                .step_budget(200_000);
                for v in INPUTS {
                    s.add_process(ProcessorId(0), Priority(1), Box::new(fig3_decide(v)));
                }
                s
            };
            boxed(build(), build().with_obs(), move |r| {
                require_finished(r)
                    .or_else(|| agreement_validity(r, &INPUTS))
                    .or_else(|| own_steps_bound(r, 8))
            })
        }
        Family::Fig5 => {
            let v = 2u32;
            let prios = [1u32, 2, 1];
            let plans: [Vec<CasOp>; 3] = [
                vec![CasOp::Cas { old: 100, new: 1 }, CasOp::Read],
                vec![CasOp::Cas { old: 100, new: 2 }, CasOp::Cas { old: 1, new: 3 }],
                vec![CasOp::Read, CasOp::Cas { old: 2, new: 4 }],
            ];
            let build = || {
                let mut s = Scenario::new(
                    CasMem::new(v, &prios, 100),
                    SystemSpec::hybrid(q).with_adversarial_alignment(),
                )
                .step_budget(500_000);
                for (pid, plan) in plans.iter().enumerate() {
                    s.add_process(
                        ProcessorId(0),
                        Priority(prios[pid]),
                        Box::new(cas_machine(pid as u32, prios[pid], 3, v, plan.clone())),
                    );
                }
                s
            };
            let plans2 = plans.clone();
            boxed(build(), build().with_obs(), move |r| {
                if let Some(v) = require_finished(r).or_else(|| own_steps_bound(r, 500)) {
                    return Some(v);
                }
                let ops = timed_ops(r.ops(), |pid, inv| {
                    match plans2[pid as usize][inv as usize] {
                        CasOp::Cas { old, new } => CasRegOp::Cas { old, new },
                        CasOp::Read => CasRegOp::Read,
                    }
                });
                let spec = CasRegisterSpec { init: 100 };
                let res = match r.trace() {
                    Some(t) => check_linearizable_traced(&spec, &ops, t, "fuzz_fig5"),
                    None => check_linearizable(&spec, &ops),
                };
                res.err().map(|e| format!("not linearizable: {e}"))
            })
        }
        Family::Fig7 => {
            // P = C = 3: Theorem 3 puts the threshold at 2P − C = 3, and
            // the Table 1 search shows the staggering adversaries bite
            // within a couple of seeds at Q = 1 — unlike P = C = 2, where
            // a violating schedule needs a ~30-seed search.
            let (p, m) = (3u32, 3u32);
            let build = move || {
                crate::adversary::fig7_scenario(p, 3, m, 1, q, LocalMode::Modeled)
                    .step_budget(5_000_000)
            };
            let inputs: Vec<Val> = (0..u64::from(p * m)).map(|pid| 10 + pid).collect();
            boxed(build(), build().with_obs(), move |r: &RunResult<MultiMem>| {
                if let Some(v) = require_finished(r).or_else(|| agreement_validity(r, &inputs)) {
                    return Some(v);
                }
                if !lemma2_holds(r.mem()) {
                    return Some("Lemma 2 violated: a window suffered more than one access failure per object".into());
                }
                // Lemma 3's access-failure bound is exactly what the quantum
                // hypothesis buys: at legal Q a violation is a real bug, and
                // at sub-threshold Q the staggering adversaries are expected
                // to exceed it (agreement itself is much harder to break).
                if !lemma3_bound_holds(r.mem()) {
                    return Some("Lemma 3 access-failure bound exceeded".into());
                }
                if summarize(r.mem()).clean_levels.is_empty() {
                    return Some("no failure-free deciding level".into());
                }
                None
            })
        }
        Family::Fig9 => {
            let prios = [1u32, 1, 1];
            let cpus = [0u32, 0, 0];
            let inputs: [Val; 3] = [10, 11, 12];
            let build = || {
                let layout = PortLayout::new(1, 2, 3);
                let mem = FairMem::new(MultiMem::new(layout, 1, &prios, &cpus));
                let mut s = Scenario::new(
                    mem,
                    SystemSpec::hybrid(q).with_adversarial_alignment(),
                )
                .step_budget(100_000);
                for (pid, &val) in inputs.iter().enumerate() {
                    s.add_process(
                        ProcessorId(0),
                        Priority(1),
                        Box::new(fair_decide(pid as u32, 0, 1, val, LocalMode::Modeled)),
                    );
                }
                s
            };
            // Safety-only: hostile deciders are unfair, and Fig. 9's losers
            // spin on Output — livelock is lawful, disagreement is not.
            boxed(build(), build().with_obs(), move |r| {
                if !r.all_finished {
                    return None;
                }
                agreement_validity(r, &inputs)
            })
        }
        Family::Universal => {
            let n = 3u32;
            let per = 2u32;
            let plans: Vec<Vec<Val>> =
                (0..n).map(|pid| (1..=per).map(|i| Val::from(pid * per + i)).collect()).collect();
            let total: Val = plans.iter().flatten().sum();
            let build = || {
                let mut s = Scenario::new(
                    UniversalMem::<CounterSpec>::new(n, 4 * (n * per) as usize + 4),
                    SystemSpec::hybrid(q).with_adversarial_alignment(),
                )
                .step_budget(1_000_000);
                for pid in 0..n {
                    s.add_process(
                        ProcessorId(0),
                        Priority(1 + pid % 2),
                        Box::new(universal_machine(
                            CounterSpec,
                            pid,
                            n,
                            plans[pid as usize].clone(),
                        )),
                    );
                }
                s
            };
            let plans2 = plans.clone();
            boxed(build(), build().with_obs(), move |r| {
                if let Some(v) = require_finished(r).or_else(|| own_steps_bound(r, 1_000)) {
                    return Some(v);
                }
                let replayed = replay_final_state(&CounterSpec, r.mem());
                if replayed != total {
                    return Some(format!("replayed counter {replayed} != expected {total}"));
                }
                let ops = timed_ops(r.ops(), |pid, inv| plans2[pid as usize][inv as usize]);
                check_linearizable(&CounterSpec, &ops)
                    .err()
                    .map(|e| format!("counter not linearizable: {e}"))
            })
        }
        Family::Locks => {
            let build = || {
                let mut s = Scenario::new(
                    LockMem::default(),
                    SystemSpec::hybrid(q).with_adversarial_alignment(),
                )
                .step_budget(100_000);
                for (pid, prio) in [1u32, 1, 2].into_iter().enumerate() {
                    s.add_process(
                        ProcessorId(0),
                        Priority(prio),
                        Box::new(inc_machine(pid as u32, 3, 2)),
                    );
                }
                s
            };
            // Safety-only: priority inversion lawfully livelocks a TAS
            // lock (that is the baseline's point), but the single-statement
            // test-and-set keeps mutual exclusion — a finished run with a
            // wrong counter is a real bug.
            boxed(build(), build().with_obs(), move |r| {
                if !r.all_finished {
                    return None;
                }
                let c = r.mem().counter;
                (c != 9).then(|| format!("lock-protected counter {c} != 9 after 3x3 increments"))
            })
        }
        Family::Exponential => {
            let n = 3u32;
            let inputs: Vec<Val> = (0..n).map(|pid| Val::from(pid) + 1).collect();
            let build = || {
                let mut s = Scenario::new(
                    ExpMem::new(n),
                    SystemSpec::hybrid(q).with_adversarial_alignment(),
                )
                .step_budget(1_000_000);
                for pid in 0..n {
                    s.add_process(
                        ProcessorId(0),
                        Priority(pid + 1),
                        Box::new(exp_decide(pid, Val::from(pid) + 1)),
                    );
                }
                s
            };
            boxed(build(), build().with_obs(), move |r| {
                require_finished(r).or_else(|| agreement_validity(r, &inputs))
            })
        }
    }
}

/// Internal: a family engine over a concrete memory type, bridging to the
/// object-safe [`CaseEngine`].
struct TypedEngine<M: Clone> {
    plain: Scenario<M>,
    obs: Scenario<M>,
    oracle: Box<dyn Fn(&RunResult<M>) -> Option<String>>,
}

fn boxed<M: Clone + 'static>(
    plain: Scenario<M>,
    obs: Scenario<M>,
    oracle: impl Fn(&RunResult<M>) -> Option<String> + 'static,
) -> Box<dyn CaseEngine> {
    Box::new(TypedEngine { plain, obs, oracle: Box::new(oracle) })
}

impl<M: Clone> TypedEngine<M> {
    fn case_run(&self, r: &RunResult<M>, script: Vec<usize>) -> CaseRun {
        CaseRun {
            violation: (self.oracle)(r),
            steps: r.steps,
            wall: r.wall,
            all_finished: r.all_finished,
            script,
        }
    }
}

impl<M: Clone> CaseEngine for TypedEngine<M> {
    fn n_procs(&self) -> u32 {
        self.plain.n_processes() as u32
    }

    fn run_with(&self, d: &mut dyn Decider) -> CaseRun {
        let mut rec = Recording::new(d);
        let r = self.plain.run(&mut rec);
        let script = rec.into_script();
        self.case_run(&r, script)
    }

    fn replay(&self, script: &[usize], strict: bool) -> CaseRun {
        let mut scripted = if strict {
            Scripted::strict(script.to_vec())
        } else {
            Scripted::new(script.to_vec())
        };
        let mut rec = Recording::new(&mut scripted);
        let r = self.plain.run(&mut rec);
        let script = rec.into_script();
        self.case_run(&r, script)
    }

    fn capture(&self, script: &[usize]) -> (CaseRun, Trace) {
        let mut scripted = Scripted::strict(script.to_vec());
        let mut r = self.obs.run(&mut scripted);
        let run = self.case_run(&r, script.to_vec());
        let trace = r.take_trace().expect("obs scenario records a trace");
        (run, trace)
    }

    fn run_profiled(&self, d: &mut dyn Decider) -> (CaseRun, Profile) {
        let mut rec = Recording::new(d);
        let mut r = self.plain.clone().with_prof().run(&mut rec);
        let script = rec.into_script();
        let profile = r.take_profile().expect("prof scenario streams a profile");
        (self.case_run(&r, script), profile)
    }
}

fn require_finished<M: Clone>(r: &RunResult<M>) -> Option<String> {
    (!r.all_finished)
        .then(|| format!("not all processes finished within the {}–step budget", r.steps))
}

fn agreement_validity<M: Clone>(r: &RunResult<M>, inputs: &[Val]) -> Option<String> {
    match r.agreed_output() {
        None => Some(format!("disagreement: outputs {:?}", r.outputs)),
        Some(v) if !inputs.contains(&v) => {
            Some(format!("invalid decision {v}: not among proposals {inputs:?}"))
        }
        Some(_) => None,
    }
}

fn own_steps_bound<M: Clone>(r: &RunResult<M>, bound: u64) -> Option<String> {
    let worst = r.max_own_steps();
    (worst > bound)
        .then(|| format!("wait-freedom bound exceeded: {worst} own-steps per invocation > {bound}"))
}

/// First violating run found while fuzzing a cell.
#[derive(Clone, Debug)]
pub struct FirstViolation {
    /// The seed that produced it.
    pub seed: u64,
    /// The oracle's description.
    pub verdict: String,
    /// The recorded decision script.
    pub script: Vec<usize>,
}

/// Aggregate result of fuzzing one (spec, decider) cell over many seeds.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// Seeds run.
    pub runs: u64,
    /// Total statements executed.
    pub steps: u64,
    /// Total wall time.
    pub wall: Duration,
    /// Runs whose oracle reported a violation.
    pub violations: u64,
    /// The first violating run, if any.
    pub first: Option<FirstViolation>,
}

/// Fuzzes one (spec, decider) cell: `seeds` runs with seeds `0..seeds`.
pub fn fuzz_cell(spec: &CaseSpec, decider: &str, seeds: u64) -> CellReport {
    let eng = engine(spec.family, spec.q);
    let mut report = CellReport {
        runs: 0,
        steps: 0,
        wall: Duration::ZERO,
        violations: 0,
        first: None,
    };
    for seed in 0..seeds {
        let mut d = build_decider(decider, seed, eng.n_procs());
        let run = eng.run_with(&mut *d);
        report.runs += 1;
        report.steps += run.steps;
        report.wall += run.wall;
        if let Some(verdict) = run.violation {
            report.violations += 1;
            if report.first.is_none() {
                report.first = Some(FirstViolation { seed, verdict, script: run.script });
            }
        }
    }
    report
}

/// A shrunk, replayable counterexample — the fuzz artifact payload.
#[derive(Clone, Debug)]
pub struct CounterExample {
    /// The algorithm family.
    pub family: Family,
    /// The quantum of the violating configuration.
    pub q: u32,
    /// `"legal"` (a bug) or `"sub"` (predicted impossibility).
    pub regime: String,
    /// The decider that found the violation.
    pub decider: String,
    /// Its seed.
    pub seed: u64,
    /// First line of the oracle's violation description.
    pub verdict: String,
    /// Length of the ddmin-reduced script (before canonicalization).
    pub forced: usize,
    /// The captured trace of the canonical minimal run.
    pub trace: Trace,
}

/// Reduces a violation description to its stable first line (traced oracle
/// failures append environment-dependent artifact paths on later lines).
pub fn verdict_line(v: &str) -> String {
    v.lines().next().unwrap_or("").to_string()
}

/// Delta-debugs the failing `script` for `(family, q)` down to a minimal
/// schedule, canonicalizes it so it replays under strict mode, and captures
/// the replayable trace.
///
/// Shrink candidates replay leniently (any candidate denotes *some* run);
/// the predicate is "any oracle violation", the standard shrinking
/// invariant. After ddmin the survivor is replayed once more leniently to
/// re-record its effective full-coverage script, which then strict-replays
/// bit-identically on the observed twin scenario.
pub fn shrink_and_capture(
    spec: &CaseSpec,
    decider: &str,
    seed: u64,
    script: &[usize],
) -> CounterExample {
    let eng = engine(spec.family, spec.q);
    let out = shrink_script(script, |cand| eng.replay(cand, false).violation.is_some());
    let canonical = eng.replay(&out.script, false);
    let (run, trace) = eng.capture(&canonical.script);
    let verdict = verdict_line(
        &run.violation.expect("canonical strict replay reproduces the shrunk violation"),
    );
    CounterExample {
        family: spec.family,
        q: spec.q,
        regime: spec.regime.to_string(),
        decider: decider.to_string(),
        seed,
        verdict,
        forced: out.script.len(),
        trace,
    }
}

impl CounterExample {
    /// Canonical artifact file name.
    pub fn file_name(&self) -> String {
        format!("fuzz_{}_q{}_{}_s{}.trace", self.family.name(), self.q, self.decider, self.seed)
    }

    /// Serializes the artifact: `# fuzz` metadata lines followed by the
    /// trace text. [`Trace::from_text`] ignores `#` lines, so the whole
    /// artifact also parses as a plain trace.
    pub fn to_text(&self) -> String {
        format!(
            "# sched-sim fuzz counterexample v1\n\
             # fuzz family {}\n\
             # fuzz q {}\n\
             # fuzz regime {}\n\
             # fuzz decider {}\n\
             # fuzz seed {}\n\
             # fuzz forced {}\n\
             # fuzz verdict {}\n\
             {}",
            self.family.name(),
            self.q,
            self.regime,
            self.decider,
            self.seed,
            self.forced,
            self.verdict,
            self.trace.to_text(),
        )
    }

    /// Parses an artifact produced by [`CounterExample::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description when a metadata line is missing or malformed,
    /// or the embedded trace does not parse.
    pub fn from_text(text: &str) -> Result<CounterExample, String> {
        let meta = |key: &str| -> Result<String, String> {
            let prefix = format!("# fuzz {key} ");
            text.lines()
                .find_map(|l| l.strip_prefix(&prefix))
                .map(|v| v.to_string())
                .ok_or_else(|| format!("artifact missing `# fuzz {key}` line"))
        };
        let family_name = meta("family")?;
        let family = Family::from_name(&family_name)
            .ok_or_else(|| format!("unknown fuzz family {family_name:?}"))?;
        Ok(CounterExample {
            family,
            q: meta("q")?.parse().map_err(|e| format!("bad q: {e}"))?,
            regime: meta("regime")?,
            decider: meta("decider")?,
            seed: meta("seed")?.parse().map_err(|e| format!("bad seed: {e}"))?,
            forced: meta("forced")?.parse().map_err(|e| format!("bad forced: {e}"))?,
            verdict: meta("verdict")?,
            trace: Trace::from_text(text)?,
        })
    }
}

/// Replays a serialized counterexample artifact and verifies it end to end:
/// the strict replay must reproduce the recorded verdict, and a fresh
/// capture of the same script must serialize to the same trace text
/// (byte-for-byte determinism).
///
/// Returns a one-line human-readable confirmation.
///
/// # Errors
///
/// Returns a description when the artifact does not parse, the violation
/// does not reproduce, the verdict differs, or the recapture diverges.
pub fn replay_artifact(text: &str) -> Result<String, String> {
    let ce = CounterExample::from_text(text)?;
    let eng = engine(ce.family, ce.q);
    let script = ce.trace.decisions();
    let run = eng.replay(&script, true);
    let got = match &run.violation {
        Some(v) => verdict_line(v),
        None => {
            return Err(format!(
                "replay of {} q={} reproduced NO violation (expected {:?})",
                ce.family.name(),
                ce.q,
                ce.verdict
            ))
        }
    };
    if got != ce.verdict {
        return Err(format!(
            "replayed verdict {:?} != recorded verdict {:?}",
            got, ce.verdict
        ));
    }
    let (_, trace) = eng.capture(&script);
    if trace.to_text() != ce.trace.to_text() {
        return Err("recaptured trace text differs from the artifact's trace".into());
    }
    Ok(format!(
        "{} q={} {} s{}: violation reproduced ({}, {} decisions)",
        ce.family.name(),
        ce.q,
        ce.decider,
        ce.seed,
        ce.verdict,
        script.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_engine_runs_under_every_decider() {
        for family in Family::ALL {
            let eng = engine(family, family.legal_q());
            for name in DECIDERS {
                let mut d = build_decider(name, 1, eng.n_procs());
                let run = eng.run_with(&mut *d);
                assert!(run.steps > 0, "{} under {name} executed nothing", family.name());
            }
        }
    }

    #[test]
    fn fig3_sub_q_violation_is_found_shrunk_and_replayable() {
        let spec = CaseSpec { family: Family::Fig3, q: 1, regime: "sub", expect: Expect::Violation };
        let mut found = None;
        'outer: for decider in DECIDERS {
            for seed in 0..8 {
                let eng = engine(spec.family, spec.q);
                let mut d = build_decider(decider, seed, eng.n_procs());
                let run = eng.run_with(&mut *d);
                if run.violation.is_some() {
                    found = Some((decider, seed, run.script));
                    break 'outer;
                }
            }
        }
        let (decider, seed, script) = found.expect("fig3 at Q=1 must disagree within 8 seeds");
        let ce = shrink_and_capture(&spec, decider, seed, &script);
        assert!(ce.forced <= script.len(), "shrinking must not grow the script");
        assert!(ce.verdict.contains("disagreement") || ce.verdict.contains("invalid"));
        // The serialized artifact round-trips and replays deterministically.
        let text = ce.to_text();
        let msg = replay_artifact(&text).expect("artifact must replay");
        assert!(msg.contains("violation reproduced"), "{msg}");
    }

    #[test]
    fn counterexample_text_roundtrip_preserves_metadata() {
        let spec = CaseSpec { family: Family::Fig3, q: 1, regime: "sub", expect: Expect::Violation };
        let rep = fuzz_cell(&spec, "storm", 8);
        let first = rep.first.expect("storm finds a fig3 Q=1 violation within 8 seeds");
        let ce = shrink_and_capture(&spec, "storm", first.seed, &first.script);
        let parsed = CounterExample::from_text(&ce.to_text()).unwrap();
        assert_eq!(parsed.family, ce.family);
        assert_eq!(parsed.q, ce.q);
        assert_eq!(parsed.regime, ce.regime);
        assert_eq!(parsed.decider, ce.decider);
        assert_eq!(parsed.seed, ce.seed);
        assert_eq!(parsed.forced, ce.forced);
        assert_eq!(parsed.verdict, ce.verdict);
        assert_eq!(parsed.trace.to_text(), ce.trace.to_text());
    }
}
