//! Theorem 3 of the paper: in a `P`-processor system with quantum-based or
//! hybrid schedulers, consensus **cannot** be implemented wait-free for
//! arbitrarily many processes from registers and `C`-consensus objects if
//! `C ≥ P` and `Q ≤ max(1, 2P − C)`.
//!
//! The paper proves this with a valency argument (Appendix A, Figs. 6/10):
//! an adversary staggers `Q` initial processes across quantum boundaries so
//! one is always preemptable, then at the critical bivalent state extends
//! two ways and exhausts the `C`-consensus object with `Q + 2(P − Q) =
//! 2P − Q ≥ C` invocations — the last process sees `⊥` in both extensions,
//! cannot distinguish them, and must decide the same value in both, a
//! contradiction.
//!
//! This crate makes the argument executable:
//!
//! * [`fig6`] — constructs the paper's two concrete histories against a
//!   canonical single-object algorithm and exhibits the indistinguishable
//!   process (the paper's `p₂ᴾ`).
//! * [`valency`] — classifies reachable states of small simulations as
//!   uni- or bi-valent and searches for arbitrarily deep bivalent chains
//!   (the Lemma 5/6 machinery of Fig. 10).
//! * [`adversary`] — preemption-maximizing deciders plus empirical
//!   violation search against the Fig. 7 algorithm, used by the `table1`
//!   experiment to locate the quantum threshold between the paper's upper
//!   and lower bounds.
//! * [`crash`] — the crash-and-restart grid behind `experiments --crash`:
//!   crash/recover lifecycle plans as a first-class scenario axis, with
//!   recovery-safe agreement/exactly-once/linearizability oracles, noisy
//!   (Aspnes-style) schedules, and a churn-surviving service cell.
//! * [`service`] — the long-lived request-serving grid behind
//!   `experiments --service`: sharded universal objects under thousands
//!   of multiplexed clients, with latency-percentile reporting.
//! * [`native`] — the native-backend execution grid behind
//!   `experiments --native`: the backend-generic algorithms on real OS
//!   threads (free and lockstep pacing), every run cross-validated by the
//!   simulator's own agreement/linearizability oracles, with pinned
//!   sub-threshold seeds reproducing the `Q = 1` disagreement on hardware.
//!
//! The adversaries here are ordinary `sched_sim` deciders, so everything
//! they do is subject to the same Axiom 1/2 well-formedness checking as
//! any other schedule — "impossibility" evidence cannot cheat the model —
//! and their runs can be captured and replayed bit-identically through
//! the observability layer (`sched_sim::obs`), which is how the
//! adversarial replay test in `tests/tests/obs_replay.rs` pins them down.
//!
//! # Example: the contradiction, in three lines
//!
//! ```
//! let f = lowerbound::fig6::construct(2, 2);   // P = 2, C = 2 ⇒ Q = 2
//! assert_ne!(f.x_branch.decided, f.y_branch.decided);
//! assert!(f.contradiction());                  // p₂ᴾ returns the same value in both
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod crash;
pub mod explore_grid;
pub mod fig6;
pub mod fuzz;
pub mod native;
pub mod profile;
pub mod service;
pub mod valency;
