//! Theorem 3 of the paper: in a `P`-processor system with quantum-based or
//! hybrid schedulers, consensus **cannot** be implemented wait-free for
//! arbitrarily many processes from registers and `C`-consensus objects if
//! `C ≥ P` and `Q ≤ max(1, 2P − C)`.
//!
//! The paper proves this with a valency argument (Appendix A, Figs. 6/10):
//! an adversary staggers `Q` initial processes across quantum boundaries so
//! one is always preemptable, then at the critical bivalent state extends
//! two ways and exhausts the `C`-consensus object with `Q + 2(P − Q) =
//! 2P − Q ≥ C` invocations — the last process sees `⊥` in both extensions,
//! cannot distinguish them, and must decide the same value in both, a
//! contradiction.
//!
//! This crate makes the argument executable:
//!
//! * [`fig6`] — constructs the paper's two concrete histories against a
//!   canonical single-object algorithm and exhibits the indistinguishable
//!   process (the paper's `p₂ᴾ`).
//! * [`valency`] — classifies reachable states of small simulations as
//!   uni- or bi-valent and searches for arbitrarily deep bivalent chains
//!   (the Lemma 5/6 machinery of Fig. 10).
//! * [`adversary`] — preemption-maximizing deciders plus empirical
//!   violation search against the Fig. 7 algorithm, used by the `table1`
//!   experiment to locate the quantum threshold between the paper's upper
//!   and lower bounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod fig6;
pub mod valency;
