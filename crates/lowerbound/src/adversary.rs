//! Preemption-maximizing adversaries and empirical violation search
//! against the Fig. 7 algorithm.
//!
//! Theorem 3 says no algorithm works when `Q ≤ max(1, 2P − C)`; Theorem 4
//! says Fig. 7 works when `Q ≥ max(2c, c(2P + 1 − C))`. Between the two
//! lies the constant factor `c`. This module provides the adversary
//! schedules that locate Fig. 7's *empirical* threshold: the smallest `Q`
//! at which no adversary run violates agreement — the data series behind
//! the regenerated Table 1.

use hybrid_wf::multi::consensus::{decide_machine, LocalMode, MultiMem};
use hybrid_wf::multi::ports::PortLayout;
use hybrid_wf::Val;
use sched_sim::decision::{Choice, Decider, SeededRandom};
use sched_sim::rng::SplitMix64;
use sched_sim::ids::{ProcessId, ProcessorId, Priority};
use sched_sim::kernel::{Kernel, SystemSpec};
use sched_sim::scenario::Scenario;

/// A preemption-maximizing decider: randomizes processor interleaving,
/// rotates quantum holders aggressively (guaranteeing a same-priority
/// preemption at every window boundary), and always chooses the shortest
/// first window (every first dispatch sits one statement before a quantum
/// boundary).
#[derive(Clone, Debug)]
pub struct MaxPreempt {
    rng: SplitMix64,
    last_holder: Vec<(u32, u32, ProcessId)>,
}

impl MaxPreempt {
    /// Creates the adversary with the given seed.
    pub fn new(seed: u64) -> Self {
        MaxPreempt { rng: SplitMix64::new(seed), last_holder: Vec::new() }
    }
}

impl Decider for MaxPreempt {
    fn choose(&mut self, choice: Choice<'_>, n: usize) -> usize {
        match choice {
            Choice::Cpu { .. } => self.rng.index(n),
            Choice::Holder { cpu, prio, options } => {
                // Never re-pick the previous holder if any alternative is
                // ready: maximize same-priority preemptions.
                let key = (cpu.0, prio.0);
                let last = self
                    .last_holder
                    .iter()
                    .find(|(c, p, _)| (*c, *p) == key)
                    .map(|(_, _, h)| *h);
                let candidates: Vec<usize> = (0..n)
                    .filter(|&i| Some(options[i]) != last)
                    .collect();
                let idx = if candidates.is_empty() {
                    0
                } else {
                    candidates[self.rng.index(candidates.len())]
                };
                self.last_holder.retain(|(c, p, _)| (*c, *p) != key);
                self.last_holder.push((key.0, key.1, options[idx]));
                idx
            }
            // Shortest first window: preempt as early as possible.
            Choice::FirstCredit { .. } => 0,
        }
    }
}

/// A report of a consensus violation found by the adversary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViolationReport {
    /// The seed that produced it.
    pub seed: u64,
    /// The distinct decisions observed (≥ 2 entries), or the description
    /// of a `⊥` return.
    pub outcome: String,
}

/// The standard Fig. 7 workload for threshold experiments, as a reusable
/// [`Scenario`]: `M` processes per processor across `V` priority levels,
/// distinct inputs. Run it repeatedly (one decider per seed) or hand it to
/// `sched_sim::sweep::run_cells` for a parallel grid.
pub fn fig7_scenario(
    p: u32,
    c: u32,
    m: u32,
    v: u32,
    q: u32,
    mode: LocalMode,
) -> Scenario<MultiMem> {
    let mut prio = Vec::new();
    let mut cpus = Vec::new();
    for cpu in 0..p {
        for j in 0..m {
            cpus.push(cpu);
            prio.push(1 + j % v);
        }
    }
    let layout = PortLayout::new(p, c, m);
    let mem = MultiMem::new(layout, v, &prio, &cpus);
    let spec = SystemSpec::hybrid(q).with_adversarial_alignment();
    let mut s = Scenario::new(mem, spec).step_budget(50_000_000);
    for (pid, (&cpu, &pr)) in cpus.iter().zip(prio.iter()).enumerate() {
        let input: Val = 10 + pid as Val;
        s.add_process(
            ProcessorId(cpu),
            Priority(pr),
            Box::new(decide_machine(pid as u32, cpu, pr, input, mode)),
        );
    }
    s
}

/// The Fig. 7 workload as a live [`Kernel`] — [`fig7_scenario`] is the
/// front door; this remains for callers that drive the kernel directly.
pub fn fig7_kernel(
    p: u32,
    c: u32,
    m: u32,
    v: u32,
    q: u32,
    mode: LocalMode,
) -> Kernel<MultiMem> {
    fig7_scenario(p, c, m, v, q, mode).into_kernel()
}

/// The standard adversary pairing for seed sweeps: even seeds get the
/// holder-rotating [`MaxPreempt`] (maximizes quantum preemptions), odd
/// seeds uniformly random [`SeededRandom`] (finds irregular placements the
/// rotator's strict alternation misses).
pub fn adversary_for_seed(seed: u64) -> Box<dyn Decider> {
    if seed % 2 == 0 {
        Box::new(MaxPreempt::new(seed))
    } else {
        Box::new(SeededRandom::new(seed))
    }
}

/// Runs the adversary against Fig. 7 for `seeds` seeds at quantum `q`;
/// returns the first violation found (disagreement or a `⊥` return).
pub fn find_violation(
    p: u32,
    c: u32,
    m: u32,
    v: u32,
    q: u32,
    mode: LocalMode,
    seeds: u64,
) -> Option<ViolationReport> {
    let scenario = fig7_scenario(p, c, m, v, q, mode);
    for seed in 0..seeds {
        let r = scenario.run(&mut *adversary_for_seed(seed));
        if !r.all_finished {
            return Some(ViolationReport {
                seed,
                outcome: "run did not terminate within the step budget".into(),
            });
        }
        let mut outs = Vec::new();
        for (pid, out) in r.outputs.iter().enumerate() {
            match out {
                Some(v) => outs.push(*v),
                None => {
                    return Some(ViolationReport {
                        seed,
                        outcome: format!("p{pid} returned ⊥"),
                    })
                }
            }
        }
        outs.sort_unstable();
        outs.dedup();
        if outs.len() > 1 {
            return Some(ViolationReport { seed, outcome: format!("disagreement: {outs:?}") });
        }
    }
    None
}

/// Finds the smallest quantum in `1..=max_q` for which `find_violation`
/// comes up empty (linear scan from below, so the result is exact w.r.t.
/// the adversary's power). Returns `None` if even `max_q` fails.
pub fn min_working_q(
    p: u32,
    c: u32,
    m: u32,
    v: u32,
    mode: LocalMode,
    seeds: u64,
    max_q: u32,
) -> Option<u32> {
    (1..=max_q).find(|&q| find_violation(p, c, m, v, q, mode, seeds).is_none())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generous_quantum_never_violates() {
        assert_eq!(find_violation(2, 2, 2, 1, 256, LocalMode::Modeled, 15), None);
        assert_eq!(find_violation(2, 4, 2, 2, 256, LocalMode::Modeled, 15), None);
    }

    #[test]
    fn access_failure_pressure_scales_inversely_with_q() {
        // The mechanism by which small quanta break the algorithm: access
        // failures. At Q = 1 the adversary produces far more failed levels
        // than at Q = 64 — and pushes past the Lemma 3 bound itself,
        // i.e. the lemma's hypothesis ("at most one same-priority
        // preemption per P−K+1 levels") really is load-bearing.
        let af_at = |q: u32| {
            let mut total = 0u32;
            let mut max_run = 0u32;
            let mut lemma3_violated = false;
            for seed in 0..150 {
                let mut k = fig7_kernel(2, 2, 3, 1, q, LocalMode::Modeled);
                let mut mp = MaxPreempt::new(seed);
                let mut sr = SeededRandom::new(seed);
                let d: &mut dyn Decider =
                    if seed % 2 == 0 { &mut mp } else { &mut sr };
                k.run(d, 50_000_000);
                assert!(k.all_finished());
                let s = hybrid_wf::multi::failures::summarize(&k.mem);
                total += s.same + s.diff;
                max_run = max_run.max(s.same + s.diff);
                if !hybrid_wf::multi::failures::lemma3_bound_holds(&k.mem) {
                    lemma3_violated = true;
                }
            }
            (total, max_run, lemma3_violated)
        };
        let (af1, max1, viol1) = af_at(1);
        let (af64, max64, viol64) = af_at(64);
        assert!(
            af1 > 3 * af64,
            "expected far more access failures at Q=1 ({af1}) than Q=64 ({af64})"
        );
        assert!(max1 > max64, "worst run at Q=1 ({max1}) vs Q=64 ({max64})");
        assert!(viol1, "Q=1 should push some run past the Lemma 3 bound");
        assert!(!viol64, "Q=64 must satisfy the Lemma 3 hypothesis and bound");
    }

    #[test]
    fn max_preempt_is_reproducible() {
        let run = |seed| {
            let mut k = fig7_kernel(2, 3, 2, 1, 8, LocalMode::Modeled);
            let mut d = MaxPreempt::new(seed);
            k.run(&mut d, 1_000_000);
            (0..k.n_processes() as u32)
                .map(|p| k.output(ProcessId(p)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn min_working_q_is_monotone_sane() {
        // Whatever threshold the search finds, a far larger quantum must
        // also work.
        if let Some(q) = min_working_q(2, 2, 2, 1, LocalMode::Modeled, 10, 64) {
            assert!(find_violation(2, 2, 2, 1, q.max(64), LocalMode::Modeled, 10).is_none());
        }
    }
}
