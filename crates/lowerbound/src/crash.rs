//! The crash-and-restart grid behind `experiments --crash`: crash/recover
//! lifecycle plans as a first-class scenario axis.
//!
//! Each cell runs one algorithm family — Fig. 3 consensus, the universal
//! construction, Fig. 7 multiprocessor consensus — at its *legal* quantum
//! with a deterministic crash plan ([`Scenario::crash_at`] /
//! [`Scenario::recover_at`]): one victim crashes mid-run, loses its partial
//! invocation (local state rewinds to the invocation's first statement;
//! shared-memory side effects of the partial run remain), and re-runs the
//! invocation from its copy-chain re-read after recovery. Schedules come
//! from a [`Noisy`] decider — a seeded-uniform base perturbed per step with
//! probability `noise_num / noise_den`, the noisy-scheduling model of
//! Aspnes — so every cell is a deterministic function of `(noise, seed)`
//! and the grid keeps the standard bit-identical parallel == serial
//! guarantee under [`run_cells`].
//!
//! The oracles extend the fuzz oracles *across the recovery boundary*:
//!
//! * **agreement + validity** — the recovered process must decide the same
//!   valid value as everyone else (Fig. 3 / Fig. 7), crash or no crash;
//! * **exactly-once** — an operation that crashed mid-invocation must
//!   either never take effect or take effect exactly once: every process's
//!   completed-operation count must equal its plan, and for the universal
//!   construction the replica replay and the linearizability oracle check
//!   that no crashed-and-restarted operation was applied twice;
//! * **crash-plan liveness** — the planned crash must actually have fired
//!   (`crashes ≥ 1`), so a silently impotent plan cannot masquerade as a
//!   passing cell.
//!
//! Fig. 7's Lemma 2/3 access-failure accounting is deliberately *not*
//! checked here: a crash closes the victim's window early
//! ([`sched_sim::obs::WindowCloseReason::Crashed`]), outside the lemmas'
//! expiry/boundary window model.
//!
//! The grid's last line is a **churn** service cell: the counter service of
//! [`crate::service`] with a [`ChurnSpec`] — a fraction of each shard's
//! workers (standing in for their multiplexed client slices) crashing and
//! reconnecting on phase-staggered cycles — which must still serve every
//! planned request exactly once.
//!
//! Artifact lines follow `report::CRASH_SCHEMA` and land in
//! `BENCH_crash.json`; wall times ride along only until the artifact
//! writer splits them into the `.timing.json` sidecar.

use std::time::Duration;

use hybrid_wf::multi::consensus::LocalMode;
use hybrid_wf::oracle::{check_linearizable, timed_ops};
use hybrid_wf::uni::consensus::{decide_machine as fig3_decide, UniConsensusMem, MIN_QUANTUM};
use hybrid_wf::universal::{
    op_machine as universal_machine, replay_final_state, CounterSpec, UniversalMem,
};
use hybrid_wf::Val;
use sched_sim::decision::{Noisy, SeededRandom};
use sched_sim::ids::{ProcessId, ProcessorId, Priority};
use sched_sim::kernel::SystemSpec;
use sched_sim::report::Json;
use sched_sim::scenario::{RunResult, Scenario};
use sched_sim::service::{Arrival, ChurnSpec, Service, ServiceSpec};
use sched_sim::sweep::run_cells;

use crate::fuzz::Family;

/// The noise levels of the grid, as `num / den` per-step perturbation
/// probabilities: off (the pure seeded-uniform base), light, and heavy.
pub const NOISE_LEVELS: [(u32, u32); 3] = [(0, 8), (1, 8), (3, 8)];

/// The families with a crash cell: the central wait-free constructions.
/// (The baselines are out of scope: a crashed lock holder livelocks a TAS
/// lock by design — that is the motivating pathology, not a grid cell.)
pub const CRASH_FAMILIES: [Family; 3] = [Family::Fig3, Family::Universal, Family::Fig7];

/// One crash-grid cell: a family at its legal quantum under a noisy
/// schedule, with the family's deterministic crash plan derived from the
/// seed (victim and crash instant rotate with it).
#[derive(Clone, Copy, Debug)]
pub struct CrashCell {
    /// The algorithm family under test.
    pub family: Family,
    /// Per-step noise probability numerator.
    pub noise_num: u32,
    /// Per-step noise probability denominator.
    pub noise_den: u32,
    /// Seed for the base decider, the noise stream, and the crash plan.
    pub seed: u64,
}

/// The crash plan a cell derives from its seed: who crashes, when, and
/// when it comes back. Crash instants are chosen early enough that the
/// victim cannot have finished (its own-step count is bounded by the
/// global clock), so the plan always fires.
#[derive(Clone, Copy, Debug)]
pub struct CrashPlan {
    /// The victim process.
    pub victim: ProcessId,
    /// Global statement time of the crash.
    pub crash_t: u64,
    /// Global statement time of the recovery.
    pub recover_t: u64,
}

impl CrashCell {
    /// The cell's crash plan. Victim and instant rotate with the seed so a
    /// handful of seeds covers every process and several window phases.
    pub fn plan(&self) -> CrashPlan {
        let (n_procs, base_t, spread, down) = match self.family {
            // 3 procs, 8-statement decides: crash before t = 6 so the
            // victim cannot have executed its 8th own statement yet.
            Family::Fig3 => (3u64, 3u64, 3u64, 32u64),
            // 3 procs × 2 multi-statement ops each, but the highest-
            // priority worker can finish both ops within ~8 statements —
            // so crash before t = 4, under the 4-statement floor of two
            // completed operations.
            Family::Universal => (3, 1, 3, 64),
            // 9 procs, decides run for hundreds of statements.
            Family::Fig7 => (9, 16, 32, 256),
            _ => unreachable!("not a crash-grid family"),
        };
        let crash_t = base_t + self.seed % spread;
        CrashPlan {
            victim: ProcessId((self.seed % n_procs) as u32),
            crash_t,
            recover_t: crash_t + down,
        }
    }
}

/// Outcome of one crash-grid cell run.
#[derive(Clone, Debug)]
pub struct CrashReport {
    /// Statements executed.
    pub steps: u64,
    /// Wall-clock time.
    pub wall: Duration,
    /// Crashes that actually fired.
    pub crashes: u64,
    /// Recoveries that actually fired.
    pub recoveries: u64,
    /// The first oracle violation, if any.
    pub violation: Option<String>,
}

/// The full grid: every crash family × noise level × seed. `smoke` keeps
/// two noise levels and two seeds for the CI gate.
pub fn grid(smoke: bool) -> Vec<CrashCell> {
    let levels: &[(u32, u32)] = if smoke { &NOISE_LEVELS[..2] } else { &NOISE_LEVELS };
    let seeds: u64 = if smoke { 2 } else { 6 };
    let mut out = Vec::new();
    for family in CRASH_FAMILIES {
        for &(noise_num, noise_den) in levels {
            for seed in 0..seeds {
                out.push(CrashCell { family, noise_num, noise_den, seed });
            }
        }
    }
    out
}

/// The cell's decider: seeded-uniform base under per-step noise. The noise
/// stream is seeded from the cell seed (decorrelated by a splitmix
/// constant), so the whole schedule is a deterministic function of the
/// cell.
fn noisy(cell: &CrashCell) -> Noisy<SeededRandom> {
    Noisy::new(
        SeededRandom::new(cell.seed),
        cell.noise_num,
        cell.noise_den,
        cell.seed ^ 0x9e37_79b9_7f4a_7c15,
    )
}

/// Runs one cell under its noisy schedule and recovery-safe oracle.
pub fn run_cell(cell: &CrashCell) -> CrashReport {
    match cell.family {
        Family::Fig3 => run_fig3(cell),
        Family::Universal => run_universal(cell),
        Family::Fig7 => run_fig7(cell),
        _ => unreachable!("not a crash-grid family"),
    }
}

fn run_fig3(cell: &CrashCell) -> CrashReport {
    const INPUTS: [Val; 3] = [10, 20, 30];
    let plan = cell.plan();
    let mut s = Scenario::new(
        UniConsensusMem::default(),
        SystemSpec::hybrid(MIN_QUANTUM).with_adversarial_alignment(),
    )
    .step_budget(400_000);
    for v in INPUTS {
        s.add_process(ProcessorId(0), Priority(1), Box::new(fig3_decide(v)));
    }
    let s = s.crash_at(plan.crash_t, plan.victim).recover_at(plan.recover_t, plan.victim);
    let r = s.run(&mut noisy(cell));
    let violation = require_finished(&r)
        .or_else(|| agreement_validity(&r, &INPUTS))
        .or_else(|| exactly_once(&r, &[1, 1, 1]))
        .or_else(|| crash_fired(&r));
    report(&r, violation)
}

fn run_universal(cell: &CrashCell) -> CrashReport {
    let n = 3u32;
    let per = 2u32;
    let plan = cell.plan();
    let plans: Vec<Vec<Val>> =
        (0..n).map(|pid| (1..=per).map(|i| Val::from(pid * per + i)).collect()).collect();
    let total: Val = plans.iter().flatten().sum();
    let mut s = Scenario::new(
        UniversalMem::<CounterSpec>::new(n, 4 * (n * per) as usize + 4),
        SystemSpec::hybrid(8).with_adversarial_alignment(),
    )
    .step_budget(1_000_000);
    for pid in 0..n {
        s.add_process(
            ProcessorId(0),
            Priority(1 + pid % 2),
            Box::new(universal_machine(CounterSpec, pid, n, plans[pid as usize].clone())),
        );
    }
    let s = s.crash_at(plan.crash_t, plan.victim).recover_at(plan.recover_t, plan.victim);
    let r = s.run(&mut noisy(cell));
    let violation = require_finished(&r)
        .or_else(|| exactly_once(&r, &[u64::from(per); 3]))
        .or_else(|| {
            // Exactly-once at the replica: a crashed-and-restarted op that
            // took effect twice would inflate the replayed final state.
            let replayed = replay_final_state(&CounterSpec, r.mem());
            (replayed != total)
                .then(|| format!("replayed counter {replayed} != expected {total}"))
        })
        .or_else(|| {
            let ops = timed_ops(r.ops(), |pid, inv| plans[pid as usize][inv as usize]);
            check_linearizable(&CounterSpec, &ops)
                .err()
                .map(|e| format!("counter not linearizable across recovery: {e}"))
        })
        .or_else(|| crash_fired(&r));
    report(&r, violation)
}

fn run_fig7(cell: &CrashCell) -> CrashReport {
    let (p, m) = (3u32, 3u32);
    let plan = cell.plan();
    let inputs: Vec<Val> = (0..u64::from(p * m)).map(|pid| 10 + pid).collect();
    let s = crate::adversary::fig7_scenario(p, 3, m, 1, 64, LocalMode::Modeled)
        .step_budget(5_000_000)
        .crash_at(plan.crash_t, plan.victim)
        .recover_at(plan.recover_t, plan.victim);
    let r = s.run(&mut noisy(cell));
    let violation = require_finished(&r)
        .or_else(|| agreement_validity(&r, &inputs))
        .or_else(|| exactly_once(&r, &vec![1; inputs.len()]))
        .or_else(|| crash_fired(&r));
    report(&r, violation)
}

fn report<M: Clone>(r: &RunResult<M>, violation: Option<String>) -> CrashReport {
    CrashReport {
        steps: r.steps,
        wall: r.wall,
        crashes: r.counters.crashes,
        recoveries: r.counters.recoveries,
        violation,
    }
}

fn require_finished<M: Clone>(r: &RunResult<M>) -> Option<String> {
    (!r.all_finished)
        .then(|| format!("not all processes finished within the {}-step budget", r.steps))
}

fn agreement_validity<M: Clone>(r: &RunResult<M>, inputs: &[Val]) -> Option<String> {
    match r.agreed_output() {
        None => Some(format!("disagreement across recovery: outputs {:?}", r.outputs)),
        Some(v) if !inputs.contains(&v) => {
            Some(format!("invalid decision {v}: not among proposals {inputs:?}"))
        }
        Some(_) => None,
    }
}

/// The exactly-once oracle: every process's completed-operation count must
/// equal its plan. An invocation that crashed mid-run either re-runs to a
/// single completion (count unchanged) or — if it never recovers — holds
/// the run unfinished; a double execution would overshoot its count.
fn exactly_once<M: Clone>(r: &RunResult<M>, planned: &[u64]) -> Option<String> {
    let mut counts = vec![0u64; planned.len()];
    for op in r.ops() {
        counts[op.pid.index()] += 1;
    }
    (counts != planned).then(|| {
        format!("exactly-once violated: completed ops per process {counts:?} != planned {planned:?}")
    })
}

fn crash_fired<M: Clone>(r: &RunResult<M>) -> Option<String> {
    (r.counters.crashes == 0).then(|| "crash plan never fired".to_string())
}

/// The churn service configuration: the counter service under continuous
/// worker crash/reconnect cycles. `smoke` keeps the CI-gate scale.
fn churn_config(smoke: bool) -> (ServiceSpec, u64) {
    let (shards, clients, workers, requests) =
        if smoke { (2u32, 32u64, 2u32, 1u64 << 10) } else { (4, 256, 4, 1 << 14) };
    let churn = if smoke {
        ChurnSpec { victims: 1, period: 96, down: 48, cycles: 6 }
    } else {
        ChurnSpec { victims: 2, period: 512, down: 256, cycles: 16 }
    };
    let spec = ServiceSpec::new(shards, clients, requests)
        .workers_per_shard(workers)
        .arrival(Arrival::ClosedLoop { think: 8 })
        .churn(churn);
    (spec, requests)
}

/// Runs the churn service cell and renders its artifact line: the counter
/// service must finish, serve every planned request exactly once, see at
/// least one crash, and recover every crash it saw.
pub fn churn_line(jobs: usize, smoke: bool) -> Json {
    let (spec, requests) = churn_config(smoke);
    let cell = Json::obj([
        ("object", Json::from("counter")),
        ("shards", Json::from(spec.shards)),
        ("clients", Json::from(spec.clients)),
        ("workers", Json::from(spec.workers_per_shard)),
        ("requests", Json::from(requests)),
        ("victims", Json::from(spec.churn.expect("churn configured").victims)),
        ("period", Json::from(spec.churn.expect("churn configured").period)),
        ("down", Json::from(spec.churn.expect("churn configured").down)),
        ("cycles", Json::from(spec.churn.expect("churn configured").cycles)),
    ]);
    let gen = crate::service::counter_gen();
    let report = Service::new(spec, move |plan| {
        crate::service::shard_scenario(CounterSpec, &gen, plan)
    })
    .run(jobs);
    let mut violations = 0u64;
    if !report.all_finished() {
        violations += 1;
    }
    if report.requests() != requests {
        violations += 1;
    }
    if report.crashes() == 0 {
        violations += 1;
    }
    if report.crashes() != report.recoveries() {
        violations += 1;
    }
    Json::obj([
        ("kind", Json::from("crash_churn")),
        ("cell", cell),
        ("steps", Json::from(report.steps())),
        ("requests_served", Json::from(report.requests())),
        ("crashes", Json::from(report.crashes())),
        ("recoveries", Json::from(report.recoveries())),
        ("violations", Json::from(violations)),
        ("ok", Json::Bool(violations == 0)),
    ])
}

/// Renders one cell's artifact line (`report::CRASH_SCHEMA`).
pub fn cell_line(cell: &CrashCell, rep: &CrashReport) -> Json {
    let plan = cell.plan();
    let mut obj = vec![
        ("kind", Json::from("crash")),
        (
            "cell",
            Json::obj([
                ("family", Json::from(cell.family.name())),
                ("q", Json::from(cell.family.legal_q())),
                ("noise", Json::from(format!("{}/{}", cell.noise_num, cell.noise_den))),
                ("seed", Json::from(cell.seed)),
                ("victim", Json::from(u64::from(plan.victim.0))),
                ("crash_t", Json::from(plan.crash_t)),
                ("recover_t", Json::from(plan.recover_t)),
            ]),
        ),
        ("steps", Json::from(rep.steps)),
        ("wall_ms", Json::from((rep.wall.as_secs_f64() * 1e6).round() / 1e3)),
        ("crashes", Json::from(rep.crashes)),
        ("recoveries", Json::from(rep.recoveries)),
        ("violations", Json::from(u64::from(rep.violation.is_some()))),
        ("ok", Json::Bool(rep.violation.is_none())),
    ];
    if let Some(v) = &rep.violation {
        obj.push(("violation", Json::from(v.as_str())));
    }
    Json::obj(obj)
}

/// Runs the whole grid over `jobs` sweep workers — bit-identical for any
/// `jobs` value — and appends the churn service cell. The returned lines
/// are the body of `BENCH_crash.json`.
pub fn run_grid(jobs: usize, smoke: bool) -> Vec<Json> {
    let cells = grid(smoke);
    let reports = run_cells(&cells, jobs, |_, cell| run_cell(cell));
    let mut lines: Vec<Json> =
        cells.iter().zip(&reports).map(|(c, r)| cell_line(c, r)).collect();
    lines.push(churn_line(jobs, smoke));
    lines
}

/// Whether every grid line passed its oracle.
pub fn grid_ok(lines: &[Json]) -> bool {
    lines.iter().all(|l| l.get("ok") == Some(&Json::Bool(true)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_sim::report::split_timing;

    /// The satellite pin: a seeded Fig. 3 run with one crash-and-restart
    /// still satisfies agreement, and the recovered process's operation is
    /// linearized exactly once (one completed op per process, no
    /// duplicate).
    #[test]
    fn fig3_crash_restart_agrees_and_completes_exactly_once() {
        let cell = CrashCell { family: Family::Fig3, noise_num: 0, noise_den: 8, seed: 0 };
        let plan = cell.plan();
        const INPUTS: [Val; 3] = [10, 20, 30];
        let mut s = Scenario::new(
            UniConsensusMem::default(),
            SystemSpec::hybrid(MIN_QUANTUM).with_adversarial_alignment(),
        )
        .step_budget(400_000);
        for v in INPUTS {
            s.add_process(ProcessorId(0), Priority(1), Box::new(fig3_decide(v)));
        }
        let s = s.crash_at(plan.crash_t, plan.victim).recover_at(plan.recover_t, plan.victim);
        let r = s.run(&mut noisy(&cell));
        assert!(r.all_finished, "crashed run must finish after recovery");
        assert_eq!(r.counters.crashes, 1, "the planned crash fires exactly once");
        assert_eq!(r.counters.recoveries, 1);
        let agreed = r.agreed_output().expect("agreement must survive the restart");
        assert!(INPUTS.contains(&agreed));
        // Exactly-once: the victim's decide completed once, not zero or
        // two times, and so did everyone else's.
        let mut counts = [0u64; 3];
        for op in r.ops() {
            counts[op.pid.index()] += 1;
        }
        assert_eq!(counts, [1, 1, 1], "each decide is linearized exactly once");
    }

    /// Every crash cell of the smoke grid passes its recovery-safe oracle,
    /// the churn cell survives, and the grid is bit-identical between
    /// serial and parallel runs.
    #[test]
    fn smoke_grid_is_clean_and_deterministic() {
        let serial = run_grid(1, true);
        assert_eq!(serial.len(), grid(true).len() + 1);
        for line in &serial {
            assert_eq!(line.get("ok"), Some(&Json::Bool(true)), "{line}");
            assert!(line.get("crashes").and_then(Json::as_u64).unwrap() >= 1, "{line}");
        }
        assert!(grid_ok(&serial));
        let canonical =
            |ls: &[Json]| ls.iter().map(|l| split_timing(l).0.to_string()).collect::<Vec<_>>();
        let parallel = run_grid(2, true);
        assert_eq!(canonical(&serial), canonical(&parallel));
    }

    /// A universal-construction crash mid-operation is not applied twice:
    /// the replica replay matches the planned total and the history stays
    /// linearizable — across every smoke noise level.
    #[test]
    fn universal_crash_is_exactly_once_under_noise() {
        for &(num, den) in &NOISE_LEVELS {
            for seed in 0..2 {
                let cell =
                    CrashCell { family: Family::Universal, noise_num: num, noise_den: den, seed };
                let rep = run_cell(&cell);
                assert!(rep.violation.is_none(), "noise {num}/{den} seed {seed}: {rep:?}");
                assert!(rep.crashes >= 1);
            }
        }
    }
}
