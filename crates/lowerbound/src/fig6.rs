//! Fig. 6 of the paper, made concrete: two histories that end in states of
//! different valence yet are indistinguishable to the last process.
//!
//! The construction targets the canonical way any algorithm must use a
//! single `C`-consensus object `O`: each process invokes `O` with its input
//! and decides what `O` returns — unless `O` returns `⊥` (it was invoked
//! more than `C` times), in which case the process has learned *nothing*
//! and can only decide its own input.
//!
//! With `P` processors, one priority level, and `Q = 2P − C` (`P ≤ C <
//! 2P`), the adversary:
//!
//! 1. lets `Q` staggered processes `p₁¹ … p₁^Q` reach the point of invoking
//!    `O` (one per processor `1..Q`) — the critical bivalent state `t`;
//! 2. branches: in history `H_x`, `p₁¹` invokes first; in `H_y`, a freshly
//!    preempting same-processor process `p₂¹` goes a different way — the
//!    paper's `u_x` / `u_y` split (here realized by two different
//!    first-invokers, which is what makes the decided values differ);
//! 3. in both histories, releases the remaining processes two per
//!    processor `Q+1..P`, each invoking `O` — `Q + 2(P − Q) = 2P − Q = C`
//!    invocations — so the **next** invocation returns `⊥`;
//! 4. the distinguished process `pₓ` then invokes `O`, receives `⊥` in
//!    both histories, and must decide its own input in both — disagreeing
//!    with the decision in at least one history.
//!
//! [`construct`] returns both histories plus the contradiction witness.

use hybrid_wf::Val;
use sched_sim::decision::RoundRobin;
use sched_sim::history::History;
use sched_sim::ids::{ProcessId, ProcessorId, Priority};
use sched_sim::kernel::{Kernel, SystemSpec};
use sched_sim::machine::{FnMachine, StepOutcome};
use wfmem::CConsensus;

/// Shared memory: the single `C`-consensus object `O`.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct OMem {
    /// The object.
    pub o: CConsensus,
}

/// The canonical algorithm: one statement to invoke `O(input)`; decide the
/// result, or the own input on `⊥`.
fn invoker(input: Val) -> Box<dyn sched_sim::machine::StepMachine<OMem>> {
    Box::new(FnMachine::new(move |m: &mut OMem, _calls| {
        let out = m.o.invoke(input).unwrap_or(input);
        (StepOutcome::Finished, Some(out))
    }))
}

/// The outcome of one constructed history.
#[derive(Clone, Debug)]
pub struct BranchOutcome {
    /// The recorded history.
    pub history: History,
    /// The value `O` decided in this branch.
    pub decided: Val,
    /// What the distinguished process `p_x` returned.
    pub px_returned: Val,
    /// Total invocations of `O` before `p_x` invoked.
    pub invocations_before_px: u32,
}

/// The full Fig. 6 construction for `P` processors and consensus number
/// `C` (`P ≤ C < 2P`, so `Q = 2P − C ≥ 1`).
#[derive(Clone, Debug)]
pub struct Fig6 {
    /// Number of processors.
    pub p: u32,
    /// Consensus number of `O`.
    pub c: u32,
    /// The quantum `Q = 2P − C` the theorem says is insufficient.
    pub q: u32,
    /// Branch where the first invoker proposes `x`.
    pub x_branch: BranchOutcome,
    /// Branch where the first invoker proposes `y`.
    pub y_branch: BranchOutcome,
}

impl Fig6 {
    /// Whether the construction exhibits the contradiction: the decided
    /// values differ across branches, yet `p_x` returned the same value in
    /// both (it could not distinguish them).
    pub fn contradiction(&self) -> bool {
        self.x_branch.decided != self.y_branch.decided
            && self.x_branch.px_returned == self.y_branch.px_returned
    }

    /// A human-readable narrative of the construction (printed by the
    /// `lowerbound_demo` example).
    pub fn narrative(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "Theorem 3 witness: P = {}, C = {}, Q = 2P − C = {}\n",
            self.p, self.c, self.q
        ));
        s.push_str(&format!(
            "O invoked {} times before p_x in each branch (consensus number C = {}),\n",
            self.x_branch.invocations_before_px, self.c
        ));
        s.push_str(&format!(
            "so p_x receives ⊥ in both branches and returns {} in both.\n",
            self.x_branch.px_returned
        ));
        s.push_str(&format!(
            "But branch X decided {} and branch Y decided {} — p_x disagrees in at \
             least one branch: no algorithm can be a wait-free consensus\n",
            self.x_branch.decided, self.y_branch.decided
        ));
        s
    }
}

/// Runs one branch: the `first` process invokes `O` first, then the
/// staggered initial processes, then the late pairs, then `p_x`.
fn run_branch(p: u32, c: u32, first_is_x: bool) -> BranchOutcome {
    let q = 2 * p - c;
    let spec = SystemSpec::hybrid(q.max(1)).with_adversarial_alignment().with_history();
    let mut k = Kernel::new(OMem { o: CConsensus::new(c) }, spec);

    // Initial staggered processes p₁¹ … p₁^Q on processors 0..Q, inputs
    // 100+i. The branch point: in branch X, process on cpu 0 has input X
    // (= 1000); in branch Y a different process (cpu 1 if available,
    // otherwise a second process on cpu 0) carries Y (= 2000) and invokes
    // first.
    let x_val: Val = 1000;
    let y_val: Val = 2000;
    let mut initial = Vec::new();
    for cpu in 0..q {
        let input = if cpu == 0 { x_val } else if cpu == 1 { y_val } else { 100 + u64::from(cpu) };
        initial.push(k.add_held_process(ProcessorId(cpu), Priority(1), invoker(input)));
    }
    // If Q = 1, the Y proposer is a second (quantum-preempting) process on
    // cpu 0 — the paper's p₂¹ preempting p₁¹ at the boundary.
    let y_alt = if q == 1 {
        Some(k.add_held_process(ProcessorId(0), Priority(1), invoker(y_val)))
    } else {
        None
    };
    // Late processes: two per processor Q..P (the paper's p₁^{Q+1}, p₂^{Q+1}, …).
    let mut late = Vec::new();
    for cpu in q..p {
        late.push(k.add_held_process(ProcessorId(cpu), Priority(1), invoker(300 + u64::from(cpu))));
        late.push(k.add_held_process(ProcessorId(cpu), Priority(1), invoker(400 + u64::from(cpu))));
    }
    // The distinguished process p_x: one more on the last processor.
    let px_input: Val = 777;
    let px = k.add_held_process(ProcessorId(p - 1), Priority(1), invoker(px_input));

    let mut d = RoundRobin::new();
    let mut run_one = |k: &mut Kernel<OMem>, pid: ProcessId| {
        k.release(pid);
        while !k.is_finished(pid) {
            k.step(&mut d).expect("released process must run");
        }
    };

    // Branch order: first invoker decides O.
    let first = if first_is_x {
        initial[0]
    } else if let Some(alt) = y_alt {
        alt
    } else {
        initial[1]
    };
    run_one(&mut k, first);
    // Remaining initial processes (the staggered set) invoke.
    for &pid in initial.iter() {
        if pid != first {
            run_one(&mut k, pid);
        }
    }
    if !first_is_x {
        if let Some(alt) = y_alt {
            debug_assert!(k.is_finished(alt));
        }
    } else if let Some(alt) = y_alt {
        run_one(&mut k, alt);
    }
    // Late pairs, exhausting O up to C invocations.
    for &pid in &late {
        run_one(&mut k, pid);
    }
    let invocations_before_px = k.mem.o.invocations();
    run_one(&mut k, px);

    BranchOutcome {
        history: k.history().clone(),
        decided: k.mem.o.decided().expect("O decided"),
        px_returned: k.output(px).expect("p_x finished"),
        invocations_before_px,
    }
}

/// Builds the Fig. 6 construction for `P` processors and a `C`-consensus
/// object, `P ≤ C < 2P`.
///
/// # Panics
///
/// Panics unless `P ≤ C < 2P` (the regime the lower bound addresses).
pub fn construct(p: u32, c: u32) -> Fig6 {
    assert!(p >= 1 && c >= p && c < 2 * p, "construction needs P ≤ C < 2P");
    let q = 2 * p - c;
    Fig6 {
        p,
        c,
        q,
        x_branch: run_branch(p, c, true),
        y_branch: run_branch(p, c, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contradiction_for_p2_c2() {
        // P = 2, C = 2 ⇒ Q = 2: the classic case.
        let f = construct(2, 2);
        assert_eq!(f.q, 2);
        assert_eq!(f.x_branch.decided, 1000);
        assert_eq!(f.y_branch.decided, 2000);
        // O exhausted before p_x in both branches:
        assert!(f.x_branch.invocations_before_px >= f.c);
        assert!(f.y_branch.invocations_before_px >= f.c);
        // p_x returns its own input in both — indistinguishable.
        assert_eq!(f.x_branch.px_returned, 777);
        assert_eq!(f.y_branch.px_returned, 777);
        assert!(f.contradiction());
    }

    #[test]
    fn contradiction_across_the_regime() {
        for p in 2..=4u32 {
            for c in p..2 * p {
                let f = construct(p, c);
                assert!(f.contradiction(), "P={p} C={c}: no contradiction exhibited");
            }
        }
    }

    #[test]
    fn q1_uses_quantum_preemption_on_cpu0() {
        // P = 2, C = 3 ⇒ Q = 1: the Y branch preempts p₁¹ with p₂¹.
        let f = construct(2, 3);
        assert_eq!(f.q, 1);
        assert!(f.contradiction());
    }

    #[test]
    fn histories_are_recorded() {
        let f = construct(2, 2);
        assert!(!f.x_branch.history.events.is_empty());
        assert!(!f.y_branch.history.events.is_empty());
    }

    #[test]
    fn narrative_mentions_the_bottom() {
        let f = construct(2, 2);
        let n = f.narrative();
        assert!(n.contains("⊥"));
        assert!(n.contains("Q = 2P − C = 2"));
    }

    #[test]
    #[should_panic(expected = "P ≤ C < 2P")]
    fn rejects_c_at_2p() {
        let _ = construct(2, 4);
    }
}
