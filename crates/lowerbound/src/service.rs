//! The service grid behind `experiments --service`: long-lived
//! request-serving runs of the universal construction.
//!
//! This is the data layer for the ROADMAP's production-shaped artifact: a
//! deterministic grid of (object, arrival) configurations, each a
//! [`sched_sim::service::Service`] of sharded universal objects —
//! [`hybrid_wf::service::SessionMachine`] workers multiplexing the
//! configured client population — fanned over the sweep worker pool with
//! the standard bit-identical parallel == serial guarantee.
//!
//! The objects are the three `WordOp` workloads of
//! [`hybrid_wf::generic`] (the motivation section's RTOS-shared objects):
//!
//! * **counter** — fetch-and-add; clients add small per-client constants;
//! * **queue** — FIFO; each client alternates enqueue and dequeue so the
//!   replica stays bounded under any interleaving;
//! * **cas** — the C&S + Read register; three C&S attempts per read.
//!
//! Each object runs under both arrival schedules: a **closed loop** whose
//! clients think for a fixed statement count between requests, and an
//! **open loop** releasing worker cohorts on a fixed period. The full
//! grid's flagship configuration streams over a million requests from a
//! thousand clients through eight shards; `--smoke` keeps the same shape
//! at CI scale.
//!
//! Artifact lines follow `report::SERVICE_SCHEMA`: per-shard
//! `service_shard` lines plus a `service_total` summary per configuration,
//! carrying the deterministic throughput figure (`steps_per_request`) and
//! p50/p90/p99 request-latency percentiles overall and per priority level.
//! Wall-clock times ride along only until the artifact writer splits them
//! into the `.timing.json` sidecar.

use std::sync::Arc;

use hybrid_wf::generic::WordOp;
use hybrid_wf::oracle::{CasRegOp, CasRegisterSpec, QueueOp, QueueSpec};
use hybrid_wf::service::{session_mem, OpGen, SessionMachine};
use hybrid_wf::universal::{CounterSpec, UniversalMem};
use sched_sim::kernel::SystemSpec;
use sched_sim::report::Json;
use sched_sim::scenario::Scenario;
use sched_sim::service::{Arrival, Service, ServiceSpec, ShardPlan};

/// The quantum every service shard runs at (ample for the construction's
/// one-statement consensus operations; matches the stress tests).
pub const SERVICE_Q: u32 = 8;

/// One (object, arrival) configuration of the service grid.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Object name: `"counter"`, `"queue"`, or `"cas"`.
    pub object: &'static str,
    /// The arrival schedule.
    pub arrival: Arrival,
    /// Object shards (one kernel each).
    pub shards: u32,
    /// Simulated clients across the service.
    pub clients: u64,
    /// Worker processes per shard.
    pub workers: u32,
    /// Total request invocations.
    pub requests: u64,
}

/// The grid: each object under a thinking closed loop and a cohort-release
/// open loop. The full-scale counter configurations stream 2²⁰ requests
/// (over a million) from 1024 clients through 8 shards; the queue runs at
/// 2¹⁸ (its replica replay clones a `Vec` per applied op, an intentional
/// cost difference the throughput figures surface). `--smoke` keeps every
/// (object, arrival) pair at CI scale.
pub fn grid(smoke: bool) -> Vec<ServiceConfig> {
    let (shards, clients, workers) = if smoke { (4, 64, 2) } else { (8, 1024, 4) };
    let closed = Arrival::ClosedLoop { think: 8 };
    let open = Arrival::OpenLoop {
        cohorts: 4,
        period: if smoke { 512 } else { 4096 },
    };
    let requests = |full: u64| if smoke { 1 << 12 } else { full };
    let mut out = Vec::new();
    for arrival in [closed, open] {
        out.push(ServiceConfig {
            object: "counter",
            arrival,
            shards,
            clients,
            workers,
            requests: requests(1 << 20),
        });
        out.push(ServiceConfig {
            object: "queue",
            arrival,
            shards,
            clients,
            workers,
            requests: requests(1 << 18),
        });
        out.push(ServiceConfig {
            object: "cas",
            arrival,
            shards,
            clients,
            workers,
            requests: requests(1 << 20),
        });
    }
    out
}

/// The op mix of the counter object: a small per-client addend, so the
/// final state oracle is an easy closed-form sum.
pub(crate) fn counter_gen() -> OpGen<CounterSpec> {
    Arc::new(|client, _seq| (client % 1000) + 1)
}

/// The op mix of the queue object: strict per-client alternation between
/// enqueue (value = packed `(client, seq)`) and dequeue, so the queue's
/// length stays bounded by the live client count under any interleaving.
fn queue_gen() -> OpGen<QueueSpec> {
    Arc::new(|client, seq| {
        if seq % 2 == 0 {
            QueueOp::Enq((client << 21) | (seq & 0x1f_ffff))
        } else {
            QueueOp::Deq
        }
    })
}

/// The op mix of the CAS register: three C&S attempts per read, operands
/// folded into 10 bits (well inside the 31-bit packing limit).
fn cas_gen() -> OpGen<CasRegisterSpec> {
    Arc::new(|client, seq| {
        if seq % 4 == 3 {
            CasRegOp::Read
        } else {
            let v = client + seq;
            CasRegOp::Cas { old: v % 1024, new: (v + 1) % 1024 }
        }
    })
}

/// Builds one shard's scenario: pre-sized shared memory (see
/// [`session_mem`]) and one [`SessionMachine`] per worker, placed by the
/// plan (single processor, cycled priorities, held open-loop cohorts).
pub(crate) fn shard_scenario<S>(spec: S, gen: &OpGen<S>, plan: &ShardPlan) -> Scenario<UniversalMem<S>>
where
    S: WordOp + Clone + Send + Sync + 'static,
    S::State: std::hash::Hash + Send + Sync + 'static,
    S::Op: std::hash::Hash + Eq + Send + Sync + 'static,
{
    let reqs: Vec<u64> = (0..plan.workers).map(|w| plan.worker_requests(w)).collect();
    let mut s = Scenario::new(session_mem::<S>(&reqs), SystemSpec::hybrid(SERVICE_Q));
    for w in 0..plan.workers {
        let m = SessionMachine::new(
            spec.clone(),
            w,
            plan.workers,
            plan.worker_requests(w),
            plan.think(),
            plan.worker_clients(w),
            gen.clone(),
        );
        plan.add_worker(&mut s, w, Box::new(m));
    }
    s
}

/// Runs one configuration over `jobs` sweep workers and renders its
/// artifact lines.
pub fn run_config(cfg: &ServiceConfig, jobs: usize) -> Vec<Json> {
    let spec = ServiceSpec::new(cfg.shards, cfg.clients, cfg.requests)
        .workers_per_shard(cfg.workers)
        .arrival(cfg.arrival);
    let base = [
        ("object", Json::from(cfg.object)),
        ("arrival", Json::from(cfg.arrival.name())),
        ("clients", Json::from(cfg.clients)),
        ("workers", Json::from(cfg.workers)),
        ("requests", Json::from(cfg.requests)),
    ];
    match cfg.object {
        "counter" => {
            let gen = counter_gen();
            Service::new(spec, move |plan| shard_scenario(CounterSpec, &gen, plan))
                .run(jobs)
                .report_lines(&base)
        }
        "queue" => {
            let gen = queue_gen();
            Service::new(spec, move |plan| shard_scenario(QueueSpec, &gen, plan))
                .run(jobs)
                .report_lines(&base)
        }
        "cas" => {
            let gen = cas_gen();
            Service::new(spec, move |plan| {
                shard_scenario(CasRegisterSpec { init: 0 }, &gen, plan)
            })
            .run(jobs)
            .report_lines(&base)
        }
        other => panic!("unknown service object {other:?}"),
    }
}

/// Runs the whole grid and concatenates the artifact lines in grid order.
/// Deterministic for any `jobs` (modulo the `wall_ms` values the artifact
/// writer strips into the timing sidecar).
pub fn run_grid(jobs: usize, smoke: bool) -> Vec<Json> {
    grid(smoke).iter().flat_map(|cfg| run_config(cfg, jobs)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_sim::report::split_timing;

    fn canonical(lines: &[Json]) -> Vec<String> {
        lines.iter().map(|l| split_timing(l).0.to_string()).collect()
    }

    #[test]
    fn smoke_grid_completes_every_request_deterministically() {
        let serial = run_grid(1, true);
        let configs = grid(true);
        // One total line per config, plus one line per shard.
        let shard_lines: usize = configs.iter().map(|c| c.shards as usize).sum();
        assert_eq!(serial.len(), shard_lines + configs.len());
        let mut totals = 0u64;
        for line in &serial {
            let kind = line.get("kind").and_then(Json::as_str).unwrap();
            assert_eq!(
                line.get("all_finished"),
                Some(&Json::Bool(true)),
                "{line}"
            );
            if kind == "service_total" {
                totals += 1;
                assert!(line.get("p99").and_then(Json::as_u64).is_some());
            }
        }
        assert_eq!(totals, configs.len() as u64);
        // Every config served its full request count.
        let served: u64 = serial
            .iter()
            .filter(|l| l.get("kind").and_then(Json::as_str) == Some("service_total"))
            .map(|l| l.get("requests").and_then(Json::as_u64).unwrap())
            .sum();
        let planned: u64 = configs.iter().map(|c| c.requests).sum();
        assert_eq!(served, planned);

        let parallel = run_grid(2, true);
        assert_eq!(canonical(&serial), canonical(&parallel));
    }

    #[test]
    fn generators_respect_packing_limits() {
        // The queue/cas encodings assert their bounds; exercise the
        // extremes of the flagship population directly.
        let q = queue_gen();
        let c = cas_gen();
        for client in [0u64, 1023] {
            for seq in [0u64, 1, (1 << 20) - 1] {
                let _ = QueueSpec::encode_op(&q(client, seq));
                let _ = CasRegisterSpec::encode_op(&c(client, seq));
            }
        }
    }
}
