//! The exhaustive-exploration grid (`BENCH_explore.json`): Lemma 1
//! verified by complete schedule enumeration, at the largest
//! configurations each explorer mode can finish.
//!
//! Each workload is a Fig. 3 consensus configuration (or a sharded pair of
//! them); each row runs one explorer mode over it — serial, parallel
//! ([`sched_sim::explore::explore_parallel`]), and reduced (symmetry
//! and/or partial-order reduction per [`ExploreConfig`]) — and checks
//! **agreement** and **validity** at every quiescent state. A row is
//! `verified` when every terminal satisfied both properties and no bound
//! truncated the search, i.e. the cell's Lemma 1 claim is established over
//! the *entire* schedule tree, not a sample.
//!
//! The grid is the committed evidence for the explorer's scaling claims:
//!
//! * the symmetric workload (`fig3_q8_4p_sym`, four interchangeable
//!   proposers) shrinks its visited-state set by the orbit sizes of the
//!   process-permutation group;
//! * the sharded pair workloads commute whole cross-object interleavings
//!   away by footprint, collapsing a product-sized tree to roughly a sum;
//! * the largest pair cell is sized so its **unreduced** tree cannot
//!   finish inside the step budget — the configuration that exhaustive
//!   verification newly reaches through reduction.

use std::sync::Mutex;

use hybrid_wf::uni::consensus::{
    append_decide, decide_machine, ConsensusCell, UniConsensusLocals, UniConsensusMem,
    MIN_QUANTUM,
};
use sched_sim::explore::{explore_parallel, ExploreBounds, ExploreStats, Verdict};
use sched_sim::ids::{ProcessId, ProcessorId, Priority};
use sched_sim::kernel::{Kernel, SystemSpec};
use sched_sim::machine::Footprint;
use sched_sim::program::{ProgMachine, ProgramBuilder};
use sched_sim::report::Json;
use sched_sim::scenario::Scenario;

/// Two independent Fig. 3 consensus objects in one shared memory — the
/// partial-order-reduction showcase: processes of different objects run on
/// different processors and touch disjoint cells, so their statements
/// commute and one representative interleaving covers all cross-object
/// schedules.
#[derive(Clone, Debug, Default, Hash, PartialEq, Eq)]
pub struct PairMem {
    /// Object A's `P[1..3]` (footprint bit 0).
    pub a: ConsensusCell,
    /// Object B's `P[1..3]` (footprint bit 1).
    pub b: ConsensusCell,
}

/// The shape of one grid workload.
#[derive(Clone, Copy, Debug)]
pub enum Flavor {
    /// All processes on one processor deciding one Fig. 3 object, one
    /// process per proposal listed.
    Uni {
        /// The proposals, in process order (repeats make the
        /// configuration symmetric).
        proposals: &'static [u64],
    },
    /// Two independent Fig. 3 objects ([`PairMem`]), `per_object`
    /// processes each, object A on processor 0 and object B on
    /// processor 1.
    Pair {
        /// Deciders per object.
        per_object: u32,
    },
}

/// One workload of the grid.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Workload name (the `workload` cell key).
    pub name: &'static str,
    /// Process/object layout.
    pub flavor: Flavor,
    /// Scheduling quantum.
    pub q: u32,
    /// Whether symmetry reduction is sound *and useful* here: equal
    /// priorities, value-indexed memory, symmetric property, and repeated
    /// proposals (distinct proposals leave every orbit trivial). The
    /// sharded pair workloads are excluded — swapping processors would
    /// have to swap the memory shards too — so they reduce by footprints
    /// alone.
    pub symmetric_ok: bool,
    /// Step budget for the *unreduced* modes; the reduced modes always run
    /// with the default budget. A workload whose unreduced tree exceeds
    /// this bound shows up truncated + unverified — committed evidence of
    /// where plain exploration stops and reduction carries on.
    pub unreduced_budget: u64,
}

impl ExploreConfig {
    /// Total processes.
    pub fn procs(&self) -> u32 {
        match self.flavor {
            Flavor::Uni { proposals } => proposals.len() as u32,
            Flavor::Pair { per_object } => 2 * per_object,
        }
    }

    /// Processors.
    pub fn cpus(&self) -> u32 {
        match self.flavor {
            Flavor::Uni { .. } => 1,
            Flavor::Pair { .. } => 2,
        }
    }
}

/// The grid: every workload's reduced mode completes; in the full grid the
/// largest pair cell's unreduced modes are expected to truncate at
/// `unreduced_budget`.
pub fn grid(smoke: bool) -> Vec<ExploreConfig> {
    let mut out = vec![
        ExploreConfig {
            name: "fig3_q8_2p",
            flavor: Flavor::Uni { proposals: &[1, 2] },
            q: MIN_QUANTUM,
            symmetric_ok: true,
            unreduced_budget: 50_000_000,
        },
        ExploreConfig {
            name: "fig3_q8_3p",
            flavor: Flavor::Uni { proposals: &[1, 2, 3] },
            q: MIN_QUANTUM,
            symmetric_ok: true,
            unreduced_budget: 50_000_000,
        },
        ExploreConfig {
            name: "fig3_q8_4p_sym",
            flavor: Flavor::Uni { proposals: &[7, 7, 7, 7] },
            q: MIN_QUANTUM,
            symmetric_ok: true,
            unreduced_budget: 50_000_000,
        },
        ExploreConfig {
            name: "fig3_pair_2x1",
            flavor: Flavor::Pair { per_object: 1 },
            q: MIN_QUANTUM,
            symmetric_ok: false,
            unreduced_budget: 50_000_000,
        },
    ];
    if !smoke {
        out.push(ExploreConfig {
            name: "fig3_pair_2x2",
            flavor: Flavor::Pair { per_object: 2 },
            q: MIN_QUANTUM,
            symmetric_ok: false,
            unreduced_budget: 50_000_000,
        });
        out.push(ExploreConfig {
            name: "fig3_pair_2x3",
            flavor: Flavor::Pair { per_object: 3 },
            q: MIN_QUANTUM,
            symmetric_ok: false,
            unreduced_budget: 50_000_000,
        });
    }
    out
}

/// All-processes-on-one-processor Fig. 3 at equal priority, adversarial
/// quantum alignment, one process per proposal.
pub fn fig3_kernel(q: u32, proposals: &[u64]) -> Kernel<UniConsensusMem> {
    let mut s = Scenario::new(
        UniConsensusMem::default(),
        SystemSpec::hybrid(q).with_adversarial_alignment(),
    );
    for &v in proposals {
        s.add_process(ProcessorId(0), Priority(1), Box::new(decide_machine(v)));
    }
    s.into_kernel()
}

/// The proposals of one pair-workload object: object A (index 0) proposes
/// `1..=n`, object B `n+1..=2n`.
fn pair_proposals(per_object: u32, object: usize) -> Vec<u64> {
    let base = object as u64 * u64::from(per_object);
    (1..=u64::from(per_object)).map(|v| base + v).collect()
}

/// The sharded pair: object A (cells `a`, footprint bit 0) decided by
/// `per_object` processes on processor 0, object B (cells `b`, bit 1) by
/// `per_object` on processor 1. Each machine declares its object's
/// footprint as its may-footprint, which is what entitles the explorer to
/// commute cross-object steps.
pub fn pair_kernel(q: u32, per_object: u32) -> Kernel<PairMem> {
    let mut b = ProgramBuilder::<UniConsensusLocals, PairMem>::new();
    let decide_a = append_decide(
        &mut b,
        "decide-a",
        0b01,
        |m: &mut PairMem, _l: &UniConsensusLocals| &mut m.a,
        |l| l.val,
        |l| &mut l.s,
    );
    let decide_b = append_decide(
        &mut b,
        "decide-b",
        0b10,
        |m: &mut PairMem, _l: &UniConsensusLocals| &mut m.b,
        |l| l.val,
        |l| &mut l.s,
    );
    let prog = b.build();
    let mut s =
        Scenario::new(PairMem::default(), SystemSpec::hybrid(q).with_adversarial_alignment());
    for (object, entry) in [decide_a, decide_b].into_iter().enumerate() {
        for input in pair_proposals(per_object, object) {
            let m = ProgMachine::single_shot(
                &prog,
                UniConsensusLocals { val: input, s: Default::default() },
                entry,
            )
            .with_output(|l| l.s.ret)
            .with_may_footprint(Footprint::rw(1 << object));
            s.add_process(ProcessorId(object as u32), Priority(1), Box::new(m));
        }
    }
    s.into_kernel()
}

/// Checks agreement + validity for one group of processes deciding one
/// object: all finished, all outputs equal, and the decision is one of the
/// group's proposals. Permutation-invariant, so it stays a valid property
/// under symmetry reduction. Returns a violation description or `None`.
fn group_violation<M>(
    k: &Kernel<M>,
    pids: std::ops::Range<u32>,
    proposals: &[u64],
) -> Option<String> {
    let outs: Vec<Option<u64>> = pids.clone().map(|p| k.output(ProcessId(p))).collect();
    if outs.iter().any(Option::is_none) {
        return Some(format!("process in {pids:?} unfinished at quiescence"));
    }
    let first = outs[0];
    if outs.iter().any(|o| *o != first) {
        return Some(format!("agreement violated: {outs:?}"));
    }
    let v = first.expect("checked above");
    if !proposals.contains(&v) {
        return Some(format!("validity violated: decided {v} ∉ {proposals:?}"));
    }
    None
}

/// One explorer mode of one workload: runs it, checks the property at
/// every terminal, and renders the artifact row.
fn run_mode<M: Clone + std::hash::Hash + Send>(
    cfg: &ExploreConfig,
    kernel: &Kernel<M>,
    kind: &str,
    reduction: &str,
    bounds: ExploreBounds,
    jobs: usize,
    check: impl Fn(&Kernel<M>) -> Option<String> + Sync,
) -> (Json, ExploreStats) {
    let violations = Mutex::new(0u64);
    let t0 = std::time::Instant::now();
    let stats = explore_parallel(kernel, bounds, jobs, |k| {
        if check(k).is_some() {
            *violations.lock().expect("violation counter poisoned") += 1;
        }
        Verdict::KeepGoing
    });
    let wall = t0.elapsed();
    let violations = violations.into_inner().expect("violation counter poisoned");
    let verified = violations == 0 && !stats.truncated();
    let secs = wall.as_secs_f64();
    let rate = if secs > 0.0 { (stats.steps as f64 / secs).round() } else { 0.0 };
    let row = Json::obj([
        ("kind", Json::from(kind)),
        (
            "cell",
            Json::obj([
                ("workload", Json::from(cfg.name)),
                ("procs", Json::from(cfg.procs())),
                ("cpus", Json::from(cfg.cpus())),
                ("q", Json::from(cfg.q)),
                ("jobs", Json::from(jobs as u64)),
                ("reduction", Json::from(reduction)),
            ]),
        ),
        ("steps", Json::from(stats.steps)),
        ("terminals", Json::from(stats.terminals)),
        ("deduped", Json::from(stats.deduped)),
        ("por_pruned", Json::from(stats.por_pruned)),
        ("visited", Json::from(stats.peak_visited)),
        ("truncation", Json::from(stats.truncation.name())),
        ("verified", Json::Bool(verified)),
        ("steps_per_sec", Json::from(rate)),
        ("wall_ms", Json::from(secs * 1e3)),
    ]);
    (row, stats)
}

/// Runs every mode of one workload and returns its artifact rows in mode
/// order (`explore_serial`, `explore_parallel`, `explore_reduced`,
/// `explore_reduced_par`).
pub fn run_config(cfg: &ExploreConfig, jobs: usize) -> Vec<Json> {
    let unreduced =
        ExploreBounds { max_total_steps: cfg.unreduced_budget, ..ExploreBounds::default() };
    let reduced = ExploreBounds {
        por: true,
        symmetry: cfg.symmetric_ok,
        wide_hash: true,
        ..ExploreBounds::default()
    };
    let red_name = if cfg.symmetric_ok { "sym+por" } else { "por" };
    let par_jobs = jobs.max(2);

    let mut rows = Vec::new();
    let mut push = |(row, _stats): (Json, ExploreStats)| rows.push(row);
    match cfg.flavor {
        Flavor::Uni { proposals } => {
            let k = fig3_kernel(cfg.q, proposals);
            let check =
                |k: &Kernel<UniConsensusMem>| group_violation(k, 0..cfg.procs(), proposals);
            push(run_mode(cfg, &k, "explore_serial", "none", unreduced, 1, check));
            push(run_mode(cfg, &k, "explore_parallel", "none", unreduced, par_jobs, check));
            push(run_mode(cfg, &k, "explore_reduced", red_name, reduced, 1, check));
            push(run_mode(cfg, &k, "explore_reduced_par", red_name, reduced, par_jobs, check));
        }
        Flavor::Pair { per_object } => {
            let k = pair_kernel(cfg.q, per_object);
            let check = move |k: &Kernel<PairMem>| {
                group_violation(k, 0..per_object, &pair_proposals(per_object, 0)).or_else(|| {
                    group_violation(
                        k,
                        per_object..2 * per_object,
                        &pair_proposals(per_object, 1),
                    )
                })
            };
            push(run_mode(cfg, &k, "explore_serial", "none", unreduced, 1, check));
            push(run_mode(cfg, &k, "explore_parallel", "none", unreduced, par_jobs, check));
            push(run_mode(cfg, &k, "explore_reduced", red_name, reduced, 1, check));
            push(run_mode(cfg, &k, "explore_reduced_par", red_name, reduced, par_jobs, check));
        }
    }
    rows
}

/// Runs the whole grid in workload order. Deterministic apart from
/// `wall_ms`/`steps_per_sec` (stripped or treated as pinned baselines by
/// the artifact machinery).
pub fn run_grid(jobs: usize, smoke: bool) -> Vec<Json> {
    grid(smoke).iter().flat_map(|cfg| run_config(cfg, jobs)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_rows_verify_and_agree_across_modes() {
        let rows = run_grid(2, true);
        assert_eq!(rows.len(), grid(true).len() * 4);
        for row in &rows {
            let kind = row.get("kind").and_then(Json::as_str).unwrap().to_string();
            let workload = row
                .get("cell")
                .and_then(|c| c.get("workload"))
                .and_then(Json::as_str)
                .unwrap()
                .to_string();
            assert_eq!(
                row.get("verified"),
                Some(&Json::Bool(true)),
                "{workload}/{kind} failed verification: {row}"
            );
        }
        // Serial and parallel stats are bit-identical mode for mode, and
        // reduction never grows the state space.
        for cfg in grid(true) {
            let of = |kind: &str, key: &str| -> u64 {
                rows.iter()
                    .find(|r| {
                        r.get("kind").and_then(Json::as_str) == Some(kind)
                            && r.get("cell")
                                .and_then(|c| c.get("workload"))
                                .and_then(Json::as_str)
                                == Some(cfg.name)
                    })
                    .and_then(|r| r.get(key))
                    .and_then(Json::as_u64)
                    .unwrap()
            };
            for key in ["steps", "terminals", "deduped", "visited"] {
                assert_eq!(
                    of("explore_serial", key),
                    of("explore_parallel", key),
                    "{} {key}",
                    cfg.name
                );
                assert_eq!(
                    of("explore_reduced", key),
                    of("explore_reduced_par", key),
                    "{} {key}",
                    cfg.name
                );
            }
            assert!(
                of("explore_reduced", "visited") <= of("explore_serial", "visited"),
                "{}: reduction grew the state space",
                cfg.name
            );
        }
        // The showcase workloads actually reduce.
        let visited = |name: &str, kind: &str| {
            rows.iter()
                .find(|r| {
                    r.get("kind").and_then(Json::as_str) == Some(kind)
                        && r.get("cell").and_then(|c| c.get("workload")).and_then(Json::as_str)
                            == Some(name)
                })
                .and_then(|r| r.get("visited"))
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert!(
            visited("fig3_q8_4p_sym", "explore_serial")
                >= 5 * visited("fig3_q8_4p_sym", "explore_reduced"),
            "symmetry must shrink the symmetric 4p workload ≥ 5×"
        );
        assert!(
            visited("fig3_pair_2x1", "explore_serial")
                > visited("fig3_pair_2x1", "explore_reduced"),
            "POR must shrink the sharded pair workload"
        );
    }

    #[test]
    fn pair_workload_is_por_reducible() {
        let k = pair_kernel(MIN_QUANTUM, 1);
        let plain = explore_parallel(&k, ExploreBounds::default(), 1, |_| Verdict::KeepGoing);
        let por = explore_parallel(
            &k,
            ExploreBounds { por: true, ..ExploreBounds::default() },
            1,
            |_| Verdict::KeepGoing,
        );
        assert_eq!(plain.terminals, por.terminals, "POR must preserve terminals");
        assert!(por.por_pruned > 0, "disjoint shards must commute");
        assert!(
            por.peak_visited * 5 <= plain.peak_visited,
            "expected ≥ 5× visited-state shrink: {} vs {}",
            plain.peak_visited,
            por.peak_visited
        );
    }
}
