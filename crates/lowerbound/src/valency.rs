//! Valency analysis (the paper's Appendix A / Fig. 10 machinery): classify
//! reachable states of a small simulated consensus execution as uni- or
//! bi-valent, and search for deep bivalent chains.
//!
//! A state is *`v`-valent* if every completion from it decides `v`, and
//! *bivalent* if completions deciding different values are reachable. The
//! lower-bound proof shows that with `Q ≤ 2P − C` the adversary can keep a
//! run bivalent forever; [`bivalent_chain_depth`] witnesses this on finite
//! prefixes by finding, level by level, a successor state that is still
//! bivalent.

use std::collections::BTreeSet;
use std::hash::Hash;
use std::sync::Mutex;

use sched_sim::explore::{explore, explore_parallel, ExploreBounds, Verdict};
use sched_sim::ids::ProcessId;
use sched_sim::kernel::{Kernel, StepAttempt};

/// The set of decision values reachable from a state (a state's *valence*).
///
/// Decisions are read as the output of process 0 at quiescence — by
/// agreement, any process's output works for a correct algorithm; for an
/// *incorrect* one (the interesting case) process 0's view still defines a
/// valid valence notion for the argument.
pub fn reachable_decisions<M: Clone + Hash>(k: &Kernel<M>, bounds: ExploreBounds) -> BTreeSet<u64> {
    let mut steps = 0u64;
    decisions_counting(k, bounds, &mut steps)
}

/// [`reachable_decisions`] plus an accumulator for the statements the
/// exploration executed, so probes can report throughput.
fn decisions_counting<M: Clone + Hash>(
    k: &Kernel<M>,
    bounds: ExploreBounds,
    steps: &mut u64,
) -> BTreeSet<u64> {
    let mut out = BTreeSet::new();
    let stats = explore(k, bounds, |k| {
        if let Some(v) = k.output(ProcessId(0)) {
            out.insert(v);
        }
        Verdict::KeepGoing
    });
    *steps += stats.steps;
    out
}

/// [`reachable_decisions`] with each valence exploration fanned out over
/// `jobs` workers of [`explore_parallel`].
///
/// Partial-order reduction ([`ExploreBounds::por`]) is sound here — the
/// valence is a function of the quiescent-state set, which POR preserves
/// exactly. Symmetry reduction is **not**: the valence reads the output of
/// process 0 specifically, which is not invariant under process
/// permutation, so callers must leave [`ExploreBounds::symmetry`] off.
pub fn reachable_decisions_jobs<M: Clone + Hash + Send>(
    k: &Kernel<M>,
    bounds: ExploreBounds,
    jobs: usize,
) -> BTreeSet<u64> {
    let mut steps = 0u64;
    decisions_counting_jobs(k, bounds, jobs, &mut steps)
}

/// Parallel twin of [`decisions_counting`]: same valence, `jobs` workers.
fn decisions_counting_jobs<M: Clone + Hash + Send>(
    k: &Kernel<M>,
    bounds: ExploreBounds,
    jobs: usize,
    steps: &mut u64,
) -> BTreeSet<u64> {
    let out = Mutex::new(BTreeSet::new());
    let stats = explore_parallel(k, bounds, jobs, |k| {
        if let Some(v) = k.output(ProcessId(0)) {
            out.lock().expect("valence set poisoned").insert(v);
        }
        Verdict::KeepGoing
    });
    *steps += stats.steps;
    out.into_inner().expect("valence set poisoned")
}

/// Whether the state is bivalent (at least two reachable decisions).
pub fn is_bivalent<M: Clone + Hash>(k: &Kernel<M>, bounds: ExploreBounds) -> bool {
    reachable_decisions(k, bounds).len() >= 2
}

/// Searches for a chain of bivalent states of the given `depth`: from each
/// bivalent state, tries every one-statement successor (over all scheduler
/// choices) and descends into one that is still bivalent.
///
/// Returns the depth actually reached (== `depth` when the adversary can
/// keep the execution bivalent that long — the finite witness of the
/// paper's "infinite sequence of bi-valent states").
pub fn bivalent_chain_depth<M: Clone + Hash>(
    k: &Kernel<M>,
    depth: u32,
    bounds: ExploreBounds,
) -> u32 {
    bivalent_chain_probe(k, depth, bounds).depth
}

/// Result of a [`bivalent_chain_probe`]: the depth reached and the total
/// simulated statements it took to establish it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChainProbe {
    /// Bivalent chain depth actually reached (see [`bivalent_chain_depth`]).
    pub depth: u32,
    /// Statements executed across every valence exploration and successor
    /// probe — the work metric behind the Fig. 10 throughput numbers.
    pub steps: u64,
}

/// [`bivalent_chain_depth`] with work accounting: identical search, but also
/// reports how many statements the probe executed in total.
pub fn bivalent_chain_probe<M: Clone + Hash>(
    k: &Kernel<M>,
    depth: u32,
    bounds: ExploreBounds,
) -> ChainProbe {
    chain_probe_with(k, depth, |k2, steps| decisions_counting(k2, bounds, steps))
}

/// [`bivalent_chain_probe`] with each valence exploration fanned out over
/// `jobs` workers. The chain search itself stays serial (each level depends
/// on the previous one); the parallelism is inside the per-state valence
/// explorations, which dominate the work. Same symmetry caveat as
/// [`reachable_decisions_jobs`].
pub fn bivalent_chain_probe_jobs<M: Clone + Hash + Send>(
    k: &Kernel<M>,
    depth: u32,
    bounds: ExploreBounds,
    jobs: usize,
) -> ChainProbe {
    chain_probe_with(k, depth, |k2, steps| decisions_counting_jobs(k2, bounds, jobs, steps))
}

/// The level-by-level chain search, generic over how a state's valence is
/// computed (serial or parallel exploration).
fn chain_probe_with<M: Clone + Hash>(
    k: &Kernel<M>,
    depth: u32,
    mut valence: impl FnMut(&Kernel<M>, &mut u64) -> BTreeSet<u64>,
) -> ChainProbe {
    let mut steps = 0u64;
    let mut cur = k.clone();
    for d in 0..depth {
        if valence(&cur, &mut steps).len() < 2 {
            return ChainProbe { depth: d, steps };
        }
        // Enumerate one-statement successors across all choices.
        let mut found = None;
        let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
        while let Some(script) = frontier.pop() {
            let mut k2 = cur.clone();
            match k2.step_scripted(&script) {
                StepAttempt::Stepped(_) => {
                    steps += 1;
                    if valence(&k2, &mut steps).len() >= 2 {
                        found = Some(k2);
                        break;
                    }
                }
                StepAttempt::NeedChoice { arity, .. } => {
                    for c in 0..arity {
                        let mut s = script.clone();
                        s.push(c);
                        frontier.push(s);
                    }
                }
                StepAttempt::Quiescent => {}
            }
        }
        match found {
            Some(k2) => cur = k2,
            None => return ChainProbe { depth: d, steps },
        }
    }
    ChainProbe { depth, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_wf::uni::consensus::{decide_machine, UniConsensusMem, MIN_QUANTUM};
    use sched_sim::ids::{ProcessorId, Priority};
    use sched_sim::kernel::SystemSpec;

    fn fig3_kernel(q: u32) -> Kernel<UniConsensusMem> {
        let spec = SystemSpec::hybrid(q).with_adversarial_alignment();
        let mut k = Kernel::new(UniConsensusMem::default(), spec);
        k.add_process(ProcessorId(0), Priority(1), Box::new(decide_machine(1)));
        k.add_process(ProcessorId(0), Priority(1), Box::new(decide_machine(2)));
        k
    }

    #[test]
    fn initial_state_is_bivalent() {
        // Either proposal can win depending on the schedule.
        let k = fig3_kernel(MIN_QUANTUM);
        let d = reachable_decisions(&k, ExploreBounds::default());
        assert_eq!(d.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn parallel_valence_matches_serial() {
        let k = fig3_kernel(MIN_QUANTUM);
        let serial = reachable_decisions(&k, ExploreBounds::default());
        for jobs in [1, 2, 4] {
            assert_eq!(
                reachable_decisions_jobs(&k, ExploreBounds::default(), jobs),
                serial,
                "jobs={jobs}"
            );
        }
        let probe = bivalent_chain_probe(&k, 8, ExploreBounds::default());
        assert_eq!(bivalent_chain_probe_jobs(&k, 8, ExploreBounds::default(), 4), probe);
    }

    #[test]
    fn por_preserves_valence() {
        // POR preserves the quiescent-state set, hence the valence — and
        // with it every chain-probe depth.
        let k = fig3_kernel(MIN_QUANTUM);
        let plain = reachable_decisions(&k, ExploreBounds::default());
        let por = ExploreBounds { por: true, ..ExploreBounds::default() };
        assert_eq!(reachable_decisions(&k, por), plain);
        assert_eq!(
            bivalent_chain_depth(&k, 16, por),
            bivalent_chain_depth(&k, 16, ExploreBounds::default())
        );
    }

    #[test]
    fn correct_algorithm_becomes_univalent() {
        // With Q ≥ 8 the Fig. 3 algorithm decides: at quiescence the
        // valence is a single value, and a bivalent chain cannot run past
        // the point where the decisive write lands.
        let k = fig3_kernel(MIN_QUANTUM);
        let total_steps = 2 * 8; // two 8-statement invocations
        let reached = bivalent_chain_depth(&k, total_steps, ExploreBounds::default());
        assert!(
            reached < total_steps,
            "a correct consensus cannot stay bivalent to the very end ({reached})"
        );
    }

    #[test]
    fn broken_quantum_sustains_deep_bivalence() {
        // With Q = 1 (free interleaving) the adversary keeps the run
        // bivalent strictly longer than with Q = 8 — the Fig. 10 argument
        // in miniature.
        let ok = bivalent_chain_depth(&fig3_kernel(MIN_QUANTUM), 16, ExploreBounds::default());
        let broken = bivalent_chain_depth(&fig3_kernel(1), 16, ExploreBounds::default());
        assert!(
            broken > ok,
            "expected deeper bivalence at Q=1 ({broken}) than at Q=8 ({ok})"
        );
    }
}
