//! Consensus objects: the `C`-consensus primitive of Herlihy's hierarchy and
//! the modeled-atomic uniprocessor consensus object.

use crate::Val;

/// An object with consensus number exactly `C`.
///
/// This models a synchronization primitive of "power" `C` in Herlihy's
/// wait-free hierarchy, following the convention the paper adopts in
/// Sec. 4.1: the object solves consensus among its first `C` invocations —
/// every one of them returns the value proposed by the first — and **every
/// invocation after the `C`-th returns `⊥`** (here [`None`]), i.e. no useful
/// information.
///
/// Real hardware only offers objects at the extremes of the hierarchy
/// (registers at 1, compare-and-swap at ∞); this model realizes every
/// intermediate rung so that Table 1 of the paper can be explored across
/// the whole `(P, C, Q)` grid.
///
/// # Examples
///
/// ```
/// use wfmem::CConsensus;
///
/// let mut o = CConsensus::new(3);
/// assert_eq!(o.invoke(10), Some(10)); // first proposal wins
/// assert_eq!(o.invoke(20), Some(10));
/// assert_eq!(o.invoke(30), Some(10));
/// assert_eq!(o.invoke(40), None);     // exhausted: ⊥
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CConsensus {
    cap: u32,
    decided: Option<Val>,
    invocations: u32,
}

impl CConsensus {
    /// Creates an undecided `C`-consensus object with capacity `cap = C`.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`; an object that can never be invoked usefully
    /// has no consensus number.
    pub fn new(cap: u32) -> Self {
        assert!(cap > 0, "consensus number must be at least 1");
        CConsensus { cap, decided: None, invocations: 0 }
    }

    /// Atomically invokes the object with proposal `v`.
    ///
    /// Returns the decided value for the first `cap` invocations and `None`
    /// (the paper's `⊥`) afterwards.
    pub fn invoke(&mut self, v: Val) -> Option<Val> {
        self.invocations += 1;
        if self.invocations > self.cap {
            return None;
        }
        Some(*self.decided.get_or_insert(v))
    }

    /// The consensus number `C` of this object.
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// The number of invocations performed so far.
    pub fn invocations(&self) -> u32 {
        self.invocations
    }

    /// The decided value, if any invocation has occurred.
    pub fn decided(&self) -> Option<Val> {
        self.decided
    }
}

/// A modeled-atomic uniprocessor consensus object.
///
/// The paper proves (Theorem 1) that consensus for any number of processes
/// can be implemented from reads and writes on a hybrid-scheduled
/// uniprocessor with `Q ≥ 8`, and Fig. 7 uses such objects as
/// `local-consensus` to elect at most one port owner. `LocalConsensus`
/// models that implemented object as one atomic statement; the
/// `hybrid-wf::uni::consensus` module provides the actual Fig. 3
/// read/write implementation, and the two are interchangeable (an ablation
/// exercised by the test suite).
///
/// Unlike [`CConsensus`] there is no invocation cap: the read/write
/// implementation works for any number of processes *on one processor*.
///
/// # Examples
///
/// ```
/// use wfmem::LocalConsensus;
///
/// let mut o = LocalConsensus::new();
/// assert_eq!(o.decide(4), 4);
/// assert_eq!(o.decide(5), 4);
/// assert!(o.is_decided());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct LocalConsensus {
    decided: Option<Val>,
    invocations: u32,
}

impl LocalConsensus {
    /// Creates an undecided object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically proposes `v`; returns the decided value.
    pub fn decide(&mut self, v: Val) -> Val {
        self.invocations += 1;
        *self.decided.get_or_insert(v)
    }

    /// Reads the decided value without proposing (`⊥` if undecided).
    pub fn read(&self) -> Option<Val> {
        self.decided
    }

    /// Whether a decision has been reached.
    pub fn is_decided(&self) -> bool {
        self.decided.is_some()
    }

    /// The number of `decide` invocations performed so far.
    pub fn invocations(&self) -> u32 {
        self.invocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_proposal_wins() {
        let mut o = CConsensus::new(4);
        assert_eq!(o.invoke(9), Some(9));
        for v in [1, 2, 3] {
            assert_eq!(o.invoke(v), Some(9));
        }
    }

    #[test]
    fn exhaustion_returns_bottom() {
        let mut o = CConsensus::new(2);
        assert_eq!(o.invoke(1), Some(1));
        assert_eq!(o.invoke(2), Some(1));
        assert_eq!(o.invoke(3), None);
        assert_eq!(o.invoke(4), None);
        assert_eq!(o.invocations(), 4);
    }

    #[test]
    fn decided_visible_without_invoking() {
        let mut o = CConsensus::new(1);
        assert_eq!(o.decided(), None);
        o.invoke(5);
        assert_eq!(o.decided(), Some(5));
    }

    #[test]
    #[should_panic(expected = "consensus number")]
    fn zero_capacity_rejected() {
        let _ = CConsensus::new(0);
    }

    #[test]
    fn consensus_number_one_still_decides_once() {
        let mut o = CConsensus::new(1);
        assert_eq!(o.invoke(8), Some(8));
        assert_eq!(o.invoke(9), None);
    }

    #[test]
    fn local_consensus_unbounded_invocations() {
        let mut o = LocalConsensus::new();
        assert_eq!(o.decide(3), 3);
        for v in 0..100 {
            assert_eq!(o.decide(v), 3);
        }
        assert_eq!(o.invocations(), 101);
    }

    #[test]
    fn local_consensus_read_is_bottom_until_decided() {
        let mut o = LocalConsensus::new();
        assert_eq!(o.read(), None);
        o.decide(1);
        assert_eq!(o.read(), Some(1));
    }
}
