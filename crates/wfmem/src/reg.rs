//! Atomic read/write registers with access accounting.

use core::fmt;

/// An atomic read/write register holding a `T`.
///
/// In the simulated execution model one register access corresponds to one
/// atomic statement; the register counts its reads and writes so experiments
/// can audit the step-complexity claims of the paper (e.g. that the Fig. 3
/// consensus algorithm performs a constant number of accesses per
/// invocation).
///
/// # Examples
///
/// ```
/// use wfmem::Reg;
///
/// let mut r = Reg::new(0u64);
/// r.write(5);
/// assert_eq!(r.read(), 5);
/// assert_eq!(r.reads(), 1);
/// assert_eq!(r.writes(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Reg<T> {
    value: T,
    reads: u64,
    writes: u64,
}

impl<T: Clone> Reg<T> {
    /// Creates a register holding `value`.
    pub fn new(value: T) -> Self {
        Reg { value, reads: 0, writes: 0 }
    }

    /// Atomically reads the register.
    pub fn read(&mut self) -> T {
        self.reads += 1;
        self.value.clone()
    }

    /// Atomically writes `value` to the register.
    pub fn write(&mut self, value: T) {
        self.writes += 1;
        self.value = value;
    }

    /// Reads the register without counting the access.
    ///
    /// For test oracles and trace renderers only; algorithm code must use
    /// [`Reg::read`] so step accounting stays accurate.
    pub fn peek(&self) -> &T {
        &self.value
    }

    /// Number of counted reads performed so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of counted writes performed so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

impl<T: Clone + fmt::Display> fmt::Display for Reg<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut r = Reg::new(1u64);
        assert_eq!(r.read(), 1);
        r.write(2);
        assert_eq!(r.read(), 2);
    }

    #[test]
    fn accounting_counts_each_access() {
        let mut r = Reg::new(0u64);
        for i in 0..10 {
            r.write(i);
        }
        for _ in 0..7 {
            r.read();
        }
        assert_eq!(r.writes(), 10);
        assert_eq!(r.reads(), 7);
    }

    #[test]
    fn peek_does_not_count() {
        let r = Reg::new(3u64);
        assert_eq!(*r.peek(), 3);
        assert_eq!(r.reads(), 0);
    }

    #[test]
    fn default_is_default_value() {
        let r: Reg<u64> = Reg::default();
        assert_eq!(*r.peek(), 0);
    }
}
