//! Modeled-atomic uniprocessor compare-and-swap and fetch-and-increment.
//!
//! Fig. 7 of the paper uses `local-C&S` and `local-F&I` objects on each
//! processor. These are implementable from reads and writes in constant
//! time on a quantum-scheduled uniprocessor (Anderson, Jain & Ott, DISC
//! 1998) because each such variable is written only by processes of a
//! single priority level, which are quantum-scheduled with respect to one
//! another. The types here model the *implemented* objects as one atomic
//! statement each; `hybrid-wf::uni::quantum` provides the expanded
//! read/write constructions, and both are exercised by the tests
//! (`LocalOpMode` ablation).

use crate::Val;

/// A modeled-atomic compare-and-swap word.
///
/// # Examples
///
/// ```
/// use wfmem::ModeledCas;
///
/// let mut w = ModeledCas::new(0);
/// assert!(w.cas(0, 7));
/// assert!(!w.cas(0, 9));
/// assert_eq!(w.read(), 7);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct ModeledCas {
    value: Val,
    invocations: u64,
    successes: u64,
}

impl ModeledCas {
    /// Creates a word holding `value`.
    pub fn new(value: Val) -> Self {
        ModeledCas { value, invocations: 0, successes: 0 }
    }

    /// Atomically: if the word equals `old`, set it to `new` and return
    /// `true`; otherwise return `false`.
    pub fn cas(&mut self, old: Val, new: Val) -> bool {
        self.invocations += 1;
        if self.value == old {
            self.value = new;
            self.successes += 1;
            true
        } else {
            false
        }
    }

    /// Atomically reads the word.
    pub fn read(&self) -> Val {
        self.value
    }

    /// Number of `cas` invocations so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Number of successful `cas` invocations so far.
    pub fn successes(&self) -> u64 {
        self.successes
    }
}

/// A modeled-atomic fetch-and-increment counter.
///
/// # Examples
///
/// ```
/// use wfmem::ModeledFai;
///
/// let mut c = ModeledFai::new(1);
/// assert_eq!(c.fetch_inc(), 1);
/// assert_eq!(c.fetch_inc(), 2);
/// assert_eq!(c.read(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct ModeledFai {
    value: Val,
    invocations: u64,
}

impl ModeledFai {
    /// Creates a counter starting at `value`.
    pub fn new(value: Val) -> Self {
        ModeledFai { value, invocations: 0 }
    }

    /// Atomically returns the current value and increments the counter.
    pub fn fetch_inc(&mut self) -> Val {
        self.invocations += 1;
        let v = self.value;
        self.value += 1;
        v
    }

    /// Atomically reads the counter.
    pub fn read(&self) -> Val {
        self.value
    }

    /// Number of `fetch_inc` invocations so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_success_and_failure() {
        let mut w = ModeledCas::new(5);
        assert!(w.cas(5, 6));
        assert!(!w.cas(5, 7));
        assert_eq!(w.read(), 6);
        assert_eq!(w.invocations(), 2);
        assert_eq!(w.successes(), 1);
    }

    #[test]
    fn cas_aba_is_permitted_by_model() {
        // Plain CAS does not detect ABA; the paper's algorithms avoid ABA
        // with tags, which is what the Fig. 5 tag machinery is for.
        let mut w = ModeledCas::new(1);
        assert!(w.cas(1, 2));
        assert!(w.cas(2, 1));
        assert!(w.cas(1, 3));
        assert_eq!(w.read(), 3);
    }

    #[test]
    fn fai_sequence_is_dense() {
        let mut c = ModeledFai::new(0);
        let got: Vec<Val> = (0..5).map(|_| c.fetch_inc()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(c.read(), 5);
    }

    #[test]
    fn fai_counts_invocations() {
        let mut c = ModeledFai::new(10);
        c.fetch_inc();
        c.fetch_inc();
        assert_eq!(c.invocations(), 2);
    }
}
