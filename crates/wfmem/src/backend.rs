//! The memory-backend abstraction: write an algorithm once, run it on the
//! deterministic simulator cells *and* on real `std::sync::atomic` cells.
//!
//! Everything else in this crate models shared objects as plain data mutated
//! one atomic statement at a time by the `sched-sim` kernel. That is the
//! paper's own execution model, and it is what makes exhaustive schedule
//! exploration and deterministic replay possible — but nothing written
//! against `&mut CConsensus` can ever execute on two hardware threads at
//! once. [`MemBackend`] closes that gap: it is the minimal vocabulary of
//! shared cells the paper's algorithms need (atomic registers, a C&S word,
//! and a first-wins consensus cell), expressed through `&self` methods so
//! the same algorithm text can be instantiated over
//!
//! * [`SimBackend`] (this module) — single-threaded, deterministic,
//!   invocation-accounted wrappers around [`Reg`], [`ModeledCas`] and
//!   [`LocalConsensus`]; every access is counted as one atomic statement,
//!   so step-complexity claims (e.g. Fig. 3's eight statements per
//!   `decide`) stay auditable, and
//! * the `native` crate's backends — cache-line-padded
//!   `std::sync::atomic` cells driven by real OS threads, either *free*
//!   (whatever interleaving the hardware and the commodity scheduler
//!   produce) or *lockstep* (a deterministic seeded token-passing scheduler
//!   that enforces the paper's hybrid axioms at statement granularity).
//!
//! The backend-generic algorithms themselves live in
//! `hybrid_wf::generic`; `BACKENDS.md` at the repository root documents the
//! full trait contract, per-backend guarantees, and memory-ordering
//! choices.
//!
//! # The step contract
//!
//! The paper counts *atomic statements*: one shared-memory access per
//! statement, quanta measured in statements (Axiom 2). The trait mirrors
//! that accounting:
//!
//! 1. **Every cell access performs exactly one [`MemBackend::step`]**
//!    internally, before the access takes effect. A backend may use the
//!    hook to count the statement ([`SimBackend`]), to park the calling
//!    thread until a scheduler grants it the statement (native lockstep),
//!    or to do nothing at all (native free).
//! 2. **Counted local statements call [`MemBackend::step`] explicitly.**
//!    Fig. 3's statement 1 (`v := val`) touches no shared cell but is one
//!    of the eight statements Lemma 1 counts; the generic implementation
//!    calls `step()` for it so a quantum of `Q = 8` means exactly what it
//!    means in the paper.
//!
//! Between two of its `step()` calls a process performs only private
//! computation plus the single cell access the second `step()` licenses —
//! which is precisely the paper's "one atomic statement" granularity.
//!
//! # Examples
//!
//! ```
//! use wfmem::backend::{MemBackend, RegCell, SimBackend};
//!
//! let b = SimBackend::new();
//! let r = b.reg();
//! assert_eq!(r.read(), None);     // ⊥ initially
//! r.write(7);
//! assert_eq!(r.read(), Some(7));
//! assert_eq!(b.steps(), 3);       // every access counted one statement
//! ```

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::{CConsensus, LocalConsensus, ModeledCas, OptVal, Reg, Val};

/// An atomic read/write register holding a value or `⊥`.
///
/// The cell the paper's read/write algorithms (Fig. 3, the announce array
/// of the universal construction) are built from. Methods take `&self`
/// because on a native backend many threads share one cell; interior
/// mutability is the implementation's concern.
pub trait RegCell {
    /// Atomically reads the register (`None` is the paper's `⊥`).
    fn read(&self) -> OptVal;

    /// Atomically writes `v` to the register.
    fn write(&self, v: Val);
}

/// An atomic compare-and-swap word.
///
/// The consensus-number-∞ primitive real multiprocessors offer; backends
/// map it either to [`ModeledCas`] (simulator) or to a hardware
/// `compare_exchange` (native).
pub trait CasCell {
    /// Atomically: if the word equals `old`, set it to `new` and return
    /// `true`; otherwise return `false`.
    fn cas(&self, old: Val, new: Val) -> bool;

    /// Atomically reads the word.
    fn read(&self) -> Val;
}

/// A first-wins consensus cell with unbounded invocations.
///
/// The `local-consensus` object of Fig. 7 and the per-slot decision object
/// of the universal construction's log: every `decide` returns the value
/// proposed by the first. Theorem 1 justifies modeling it as one atomic
/// statement on a hybrid uniprocessor; the native backends realize it with
/// a single `compare_exchange` (consensus number ∞ covers the unbounded
/// case outright).
pub trait ConsCell {
    /// Atomically proposes `v`; returns the decided value (first proposal
    /// wins).
    fn decide(&self, v: Val) -> Val;

    /// Reads the decided value without proposing (`⊥` if undecided).
    fn read(&self) -> OptVal;
}

/// A family of shared-memory cells plus the process-local step hook.
///
/// Implementations must uphold the step contract described in the
/// [module docs](self): one internal [`step`](MemBackend::step) per cell
/// access, and sequentially-consistent behavior of the cells themselves
/// (see `BACKENDS.md` for the per-backend memory-ordering argument).
pub trait MemBackend {
    /// This backend's atomic register cell.
    type Reg: RegCell;
    /// This backend's compare-and-swap cell.
    type Cas: CasCell;
    /// This backend's first-wins consensus cell.
    type Cons: ConsCell;

    /// Creates a register initialized to `⊥`.
    fn reg(&self) -> Self::Reg;

    /// Creates a C&S word initialized to `init`.
    fn cas(&self, init: Val) -> Self::Cas;

    /// Creates an undecided consensus cell.
    fn cons(&self) -> Self::Cons;

    /// The process-local step hook: one call = one counted atomic
    /// statement of the calling process.
    ///
    /// Cell accesses call this internally; algorithms call it directly
    /// only for counted *local* statements (Fig. 3's statement 1).
    fn step(&self);

    /// A short human-readable backend name for reports (`"sim"`,
    /// `"native-free"`, `"native-lockstep"`).
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// The simulator backend
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct SimInner {
    steps: Cell<u64>,
}

impl SimInner {
    fn bump(&self) {
        self.steps.set(self.steps.get() + 1);
    }
}

/// The deterministic single-threaded backend over the simulator cells.
///
/// Cells wrap [`Reg`], [`ModeledCas`] and [`LocalConsensus`], keeping
/// their per-cell invocation accounting, and additionally count every
/// access (and every explicit [`step`](MemBackend::step)) into a shared
/// statement counter — [`steps`](SimBackend::steps) — so backend-generic
/// algorithms remain step-auditable exactly like their statement-level
/// `ProgMachine` twins.
///
/// This backend is `!Send` by construction (cells share an [`Rc`]): a
/// backend-generic algorithm runs on it sequentially, in program order,
/// which is itself a legal hybrid schedule (no preemptions at all).
/// Interleaved executions of the *same generic code* are the native
/// lockstep backend's job; exhaustive interleaving of the statement-level
/// twins remains the `sched-sim` explorer's.
///
/// # Examples
///
/// ```
/// use wfmem::backend::{ConsCell, MemBackend, SimBackend};
///
/// let b = SimBackend::new();
/// let c = b.cons();
/// assert_eq!(c.decide(4), 4);
/// assert_eq!(c.decide(9), 4); // first proposal won
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimBackend {
    inner: Rc<SimInner>,
}

impl SimBackend {
    /// Creates a backend with a zeroed statement counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total counted statements across all processes and cells.
    pub fn steps(&self) -> u64 {
        self.inner.steps.get()
    }
}

/// [`SimBackend`]'s register cell (a step-counted [`Reg<OptVal>`]).
#[derive(Debug)]
pub struct SimReg {
    hook: Rc<SimInner>,
    cell: RefCell<Reg<OptVal>>,
}

impl RegCell for SimReg {
    fn read(&self) -> OptVal {
        self.hook.bump();
        self.cell.borrow_mut().read()
    }

    fn write(&self, v: Val) {
        self.hook.bump();
        self.cell.borrow_mut().write(Some(v));
    }
}

impl SimReg {
    /// Counted reads and writes of this cell (accounting audit hook).
    pub fn accesses(&self) -> (u64, u64) {
        let c = self.cell.borrow();
        (c.reads(), c.writes())
    }
}

/// [`SimBackend`]'s compare-and-swap cell (a step-counted [`ModeledCas`]).
#[derive(Debug)]
pub struct SimCas {
    hook: Rc<SimInner>,
    cell: RefCell<ModeledCas>,
}

impl CasCell for SimCas {
    fn cas(&self, old: Val, new: Val) -> bool {
        self.hook.bump();
        self.cell.borrow_mut().cas(old, new)
    }

    fn read(&self) -> Val {
        self.hook.bump();
        self.cell.borrow().read()
    }
}

impl SimCas {
    /// `(invocations, successes)` of the underlying [`ModeledCas`].
    pub fn accesses(&self) -> (u64, u64) {
        let c = self.cell.borrow();
        (c.invocations(), c.successes())
    }
}

/// [`SimBackend`]'s consensus cell (a step-counted [`LocalConsensus`]).
#[derive(Debug)]
pub struct SimCons {
    hook: Rc<SimInner>,
    cell: RefCell<LocalConsensus>,
}

impl ConsCell for SimCons {
    fn decide(&self, v: Val) -> Val {
        self.hook.bump();
        self.cell.borrow_mut().decide(v)
    }

    fn read(&self) -> OptVal {
        self.hook.bump();
        self.cell.borrow().read()
    }
}

impl SimCons {
    /// `decide` invocations of the underlying [`LocalConsensus`].
    pub fn invocations(&self) -> u32 {
        self.cell.borrow().invocations()
    }
}

impl MemBackend for SimBackend {
    type Reg = SimReg;
    type Cas = SimCas;
    type Cons = SimCons;

    fn reg(&self) -> SimReg {
        SimReg { hook: self.inner.clone(), cell: RefCell::new(Reg::new(None)) }
    }

    fn cas(&self, init: Val) -> SimCas {
        SimCas { hook: self.inner.clone(), cell: RefCell::new(ModeledCas::new(init)) }
    }

    fn cons(&self) -> SimCons {
        SimCons { hook: self.inner.clone(), cell: RefCell::new(LocalConsensus::new()) }
    }

    fn step(&self) {
        self.inner.bump();
    }

    fn name(&self) -> &'static str {
        "sim"
    }
}

/// A step-counted capped `C`-consensus cell over [`CConsensus`], for
/// backend-generic code that needs the *capped* (Fig. 7 port) semantics.
///
/// Not part of the [`MemBackend`] trait — the capped object is specific to
/// the Fig. 7 port discipline, and the native twin
/// (`native::objects::AtomicCConsensus`) predates the trait — but provided
/// so simulator-side code can mirror that discipline over the same hook.
#[derive(Debug)]
pub struct SimCCons {
    hook: Rc<SimInner>,
    cell: RefCell<CConsensus>,
}

impl SimCCons {
    /// Creates a capped cell with consensus number `cap` counting into
    /// `backend`'s statement counter.
    pub fn new(backend: &SimBackend, cap: u32) -> Self {
        SimCCons { hook: backend.inner.clone(), cell: RefCell::new(CConsensus::new(cap)) }
    }

    /// Atomically invokes the object with proposal `v` (counted).
    pub fn invoke(&self, v: Val) -> Option<Val> {
        self.hook.bump();
        self.cell.borrow_mut().invoke(v)
    }

    /// The number of invocations performed so far.
    pub fn invocations(&self) -> u32 {
        self.cell.borrow().invocations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_access_counts_one_step() {
        let b = SimBackend::new();
        let r = b.reg();
        let w = b.cas(0);
        let c = b.cons();
        r.write(1); // 1
        r.read(); // 2
        w.cas(0, 5); // 3
        w.read(); // 4
        c.decide(9); // 5
        c.read(); // 6
        b.step(); // 7: a counted local statement
        assert_eq!(b.steps(), 7);
    }

    #[test]
    fn reg_initially_bottom() {
        let b = SimBackend::new();
        let r = b.reg();
        assert_eq!(r.read(), None);
        r.write(3);
        assert_eq!(r.read(), Some(3));
        assert_eq!(r.accesses(), (2, 1));
    }

    #[test]
    fn cas_cell_matches_modeled_semantics() {
        let b = SimBackend::new();
        let w = b.cas(2);
        assert!(!w.cas(0, 1));
        assert!(w.cas(2, 7));
        assert_eq!(w.read(), 7);
        assert_eq!(w.accesses(), (2, 1));
    }

    #[test]
    fn cons_cell_first_wins() {
        let b = SimBackend::new();
        let c = b.cons();
        assert_eq!(c.read(), None);
        assert_eq!(c.decide(4), 4);
        assert_eq!(c.decide(6), 4);
        assert_eq!(c.read(), Some(4));
        assert_eq!(c.invocations(), 2);
    }

    #[test]
    fn capped_cell_returns_bottom_after_cap() {
        let b = SimBackend::new();
        let c = SimCCons::new(&b, 2);
        assert_eq!(c.invoke(1), Some(1));
        assert_eq!(c.invoke(2), Some(1));
        assert_eq!(c.invoke(3), None);
        assert_eq!(b.steps(), 3);
    }

    #[test]
    fn cells_share_one_counter_per_backend() {
        let a = SimBackend::new();
        let b = SimBackend::new();
        a.reg().write(1);
        b.reg().write(1);
        b.reg().read();
        assert_eq!(a.steps(), 1);
        assert_eq!(b.steps(), 2);
    }
}
