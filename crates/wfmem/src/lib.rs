//! Shared-memory object models for wait-free synchronization experiments.
//!
//! This crate provides the *objects* that the algorithms of Anderson & Moir,
//! "Wait-Free Synchronization in Multiprogrammed Systems: Integrating
//! Priority-Based and Quantum-Based Scheduling" (PODC 1999) are built from:
//!
//! * [`Reg`] — an atomic read/write register with access accounting,
//! * [`CConsensus`] — an object with consensus number exactly `C` in
//!   Herlihy's wait-free hierarchy, modeled by the paper's own convention:
//!   the first `C` invocations agree on the first proposed value, and every
//!   invocation after the `C`-th returns `⊥` (modeled as [`None`]),
//! * [`LocalConsensus`], [`ModeledCas`], [`ModeledFai`] — *modeled-atomic*
//!   uniprocessor objects. The paper proves (Theorems 1 and 2, plus the
//!   quantum-based algorithms of Anderson, Jain & Ott) that these can be
//!   implemented from reads and writes on a hybrid-scheduled uniprocessor;
//!   the modeled versions let higher-level algorithms treat them as a single
//!   atomic statement, while the `hybrid-wf` crate also provides the fully
//!   expanded read/write implementations.
//!
//! All objects count their invocations so experiments can audit step and
//! space complexity claims: the port discipline of the Fig. 7 algorithm
//! (never invoke a level's `C`-consensus object more than `C` times) and
//! the access-failure accounting of Lemmas 2/3 are both checked against
//! these counters rather than trusted.
//!
//! This crate is scheduler-agnostic on purpose — objects are plain data
//! mutated one atomic statement at a time by whatever machine the
//! `sched-sim` kernel is stepping. Nothing here knows about priorities,
//! quanta, or histories; that separation is what lets the same object
//! models serve the simulator, the exhaustive explorer, and the
//! `native` real-atomics port (which re-implements them over
//! `std::sync::atomic` with the same invocation accounting).
//!
//! The [`backend`] module abstracts over that split: [`MemBackend`] is the
//! cell vocabulary (register / C&S / consensus cell plus a process-local
//! step hook) that lets the Fig. 3 and universal-construction algorithms
//! in `hybrid-wf::generic` be written once and instantiated both on
//! [`SimBackend`] (deterministic, step-counted, built from the cells
//! above) and on the `native` crate's cache-padded atomic backends. See
//! `BACKENDS.md` at the repository root for the trait contract and the
//! per-backend guarantees.
//!
//! # Examples
//!
//! ```
//! use wfmem::CConsensus;
//!
//! // A 2-consensus object: two invocations agree, the third gets ⊥.
//! let mut o = CConsensus::new(2);
//! assert_eq!(o.invoke(7), Some(7));
//! assert_eq!(o.invoke(9), Some(7));
//! assert_eq!(o.invoke(3), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod consensus;
mod modeled;
mod reg;

pub use backend::{CasCell, ConsCell, MemBackend, RegCell, SimBackend};
pub use consensus::{CConsensus, LocalConsensus};
pub use modeled::{ModeledCas, ModeledFai};
pub use reg::Reg;

/// The value domain used by the algorithm implementations.
///
/// The paper's `valtype` is an arbitrary type; the implementations in this
/// workspace fix it to `u64`, which is wide enough to pack every compound
/// word the algorithms need (head descriptors, cell pointers, port numbers)
/// while keeping the simulator monomorphic.
pub type Val = u64;

/// The paper's `⊥` ("no value yet") is modeled as [`Option::None`]; a
/// present value is `Some(v)`.
pub type OptVal = Option<Val>;
