//! Baseline comparators: the exponential priority-only construction the
//! paper improves on, and the lock-based objects wait-freedom replaces.

pub mod exponential;
pub mod locks;
