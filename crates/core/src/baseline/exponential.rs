//! An exponential-space priority-based consensus baseline, in the style of
//! Ramamurthy, Moir & Anderson (PODC 1996).
//!
//! The paper's complexity claim: "the main multiprocessor algorithm given
//! previously by Ramamurthy et al. for priority-based systems (a subclass
//! of the hybrid systems we consider) requires exponential space and time",
//! whereas the Fig. 7 algorithm is polynomial. That prior algorithm is not
//! reproduced in the paper, so this module provides a *representative*
//! comparator with the same asymptotic shape: a consensus construction
//! whose level structure is indexed by **subsets of the process set**
//! (`2^N − 1` levels) rather than by ports, with one consensus object per
//! subset. It is correct in the same model — each process walks the
//! subsets containing it in increasing numeric order, adopting published
//! values — but its space and per-process time grow as `Θ(2^N)`.
//!
//! The `poly_vs_exp` benchmark sweeps `N` and reports both constructions'
//! space (objects allocated) and time (statements executed), reproducing
//! the paper's polynomial-vs-exponential comparison. See DESIGN.md for the
//! substitution note.

use std::sync::Arc;

use sched_sim::program::{Flow, ProgMachine, Program, ProgramBuilder};
use wfmem::{LocalConsensus, Val};

/// Shared memory: one consensus object and one published value per
/// nonempty subset of the `N` processes (indexed by bitmask `1..2^N`).
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct ExpMem {
    /// Number of processes (`N ≤ 20` keeps the allocation sane).
    pub n: u32,
    /// One consensus object per subset.
    pub cons: Vec<LocalConsensus>,
    /// Published value per subset.
    pub outval: Vec<Option<Val>>,
}

impl ExpMem {
    /// Allocates the `2^N − 1` subset objects.
    ///
    /// # Panics
    ///
    /// Panics if `n > 20` (the allocation would exceed a million objects —
    /// which is the point of the comparison, but not of your RAM).
    pub fn new(n: u32) -> Self {
        assert!(n <= 20, "exponential baseline capped at N = 20");
        let size = 1usize << n;
        ExpMem {
            n,
            cons: vec![LocalConsensus::new(); size],
            outval: vec![None; size],
        }
    }

    /// Number of shared objects allocated — the space-complexity metric
    /// reported by the benchmarks.
    pub fn objects(&self) -> usize {
        self.cons.len() - 1
    }
}

/// Locals of the subset-walk.
#[derive(Clone, Debug, Default, Hash, PartialEq, Eq)]
pub struct ExpLocals {
    /// Process id.
    pub me: u32,
    /// Proposal.
    pub val: Val,
    /// Current working value.
    pub cur: Val,
    /// Subset cursor (bitmask).
    pub mask: u32,
    /// Decision.
    pub ret: Option<Val>,
}

/// Builds the subset-walk consensus program: visit every subset containing
/// `me` in increasing numeric order (the full set comes last), deciding
/// each subset's object and adopting its value; the full-set object's
/// decision is returned.
pub fn build_program() -> (Arc<Program<ExpLocals, ExpMem>>, sched_sim::program::ProcRef) {
    let mut b = ProgramBuilder::<ExpLocals, ExpMem>::new();
    let decide = b.proc("exp-decide");

    b.free(decide, "init cursor", |l, _m| {
        l.cur = l.val;
        l.mask = 0;
        Flow::Next
    });
    let loop_top = b.here(decide);
    b.stmt(decide, "walk: decide subset object, adopt value", move |l, m| {
        // Advance to the next subset containing me.
        let me_bit = 1u32 << l.me;
        loop {
            l.mask += 1;
            if l.mask >= (1 << m.n) {
                l.ret = Some(l.cur);
                return Flow::Return;
            }
            if l.mask & me_bit != 0 {
                break;
            }
        }
        let w = m.cons[l.mask as usize].decide(l.cur);
        m.outval[l.mask as usize] = Some(w);
        l.cur = w;
        Flow::Goto(loop_top)
    });

    (b.build(), decide)
}

/// A single-shot machine proposing `val`.
pub fn decide_machine(me: u32, val: Val) -> ProgMachine<ExpLocals, ExpMem> {
    let (prog, entry) = build_program();
    ProgMachine::single_shot(
        &prog,
        ExpLocals { me, val, ..ExpLocals::default() },
        entry,
    )
    .with_output(|l| l.ret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_sim::decision::{RoundRobin, SeededRandom};
    use sched_sim::ids::{ProcessId, ProcessorId, Priority};
    use sched_sim::kernel::{Kernel, SystemSpec};

    fn run(n: u32, seed: Option<u64>) -> Kernel<ExpMem> {
        let mut k = Kernel::new(ExpMem::new(n), SystemSpec::hybrid(4));
        for pid in 0..n {
            // Distinct priorities: the priority-based model this baseline
            // belongs to.
            k.add_process(
                ProcessorId(0),
                Priority(pid + 1),
                Box::new(decide_machine(pid, u64::from(pid) + 10)),
            );
        }
        match seed {
            Some(s) => k.run(&mut SeededRandom::new(s), 100_000_000),
            None => k.run(&mut RoundRobin::new(), 100_000_000),
        };
        k
    }

    #[test]
    fn agreement_under_priority_scheduling() {
        for seed in 0..20 {
            let k = run(4, Some(seed));
            assert!(k.all_finished());
            let first = k.output(ProcessId(0)).unwrap();
            for pid in 0..4 {
                assert_eq!(k.output(ProcessId(pid)), Some(first), "seed {seed}");
            }
            assert!((10..14).contains(&first));
        }
    }

    #[test]
    fn space_grows_exponentially() {
        assert_eq!(ExpMem::new(3).objects(), 7);
        assert_eq!(ExpMem::new(10).objects(), 1023);
    }

    #[test]
    fn time_grows_exponentially() {
        let steps = |n: u32| {
            let k = run(n, None);
            k.stats(ProcessId(0)).own_steps
        };
        let (s4, s8) = (steps(4), steps(8));
        // Each added process roughly doubles the subsets walked.
        assert!(s8 > 10 * s4, "expected exponential growth: {s4} vs {s8}");
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn refuses_unpayable_allocations() {
        let _ = ExpMem::new(21);
    }
}
