//! Lock-based baseline objects — what the paper's wait-free constructions
//! replace, and why.
//!
//! The introduction's motivation is real-time systems (QNX, IRIX REACT,
//! VxWorks) where mixed-priority tasks share objects. The classical
//! alternative to wait-freedom is a lock, and under hybrid scheduling a
//! naive test-and-set lock exhibits exactly the pathologies the paper's
//! algorithms avoid:
//!
//! * **Priority inversion / deadlock**: if a low-priority process is
//!   preempted while holding the lock by a higher-priority process that
//!   then spins on the same lock, Axiom 1 keeps the holder off the
//!   processor forever — the system livelocks.
//! * **Unbounded blocking**: even without inversion, a process's own-step
//!   count to complete one operation is unbounded (it depends on every
//!   other process's scheduling), i.e. the lock-based object is not
//!   wait-free.
//!
//! The benches use this module to quantify blocking versus the universal
//! construction; the `rtos_tasks` example demonstrates the inversion
//! livelock and its absence under the wait-free queue.

use std::sync::Arc;

use sched_sim::program::{Flow, InvocationPlan, ProgMachine, Program, ProgramBuilder};
use wfmem::Val;

/// Shared memory: a test-and-set lock guarding a counter.
#[derive(Clone, Debug, Default, Hash, PartialEq, Eq)]
pub struct LockMem {
    /// The lock word: `None` = free, `Some(pid)` = held.
    pub lock: Option<u32>,
    /// The protected counter.
    pub counter: Val,
    /// Times any process found the lock taken (contention metric).
    pub spins: u64,
}

/// Locals for a lock-based increment.
#[derive(Clone, Debug, Default, Hash, PartialEq, Eq)]
pub struct LockLocals {
    /// Process id.
    pub me: u32,
    /// Result of the completed increment (value before the add).
    pub ret: Option<Val>,
    /// Work statements to execute inside the critical section.
    pub hold: u32,
    /// Remaining critical-section work.
    pub left: u32,
}

/// Builds a fetch-and-increment over a test-and-set spin lock. The
/// critical section executes `hold` extra statements, widening the window
/// in which preemption causes inversion.
pub fn build_program() -> (Arc<Program<LockLocals, LockMem>>, sched_sim::program::ProcRef) {
    let mut b = ProgramBuilder::<LockLocals, LockMem>::new();
    let inc = b.proc("lock-inc");

    let acquire = b.here(inc);
    b.stmt(inc, "acquire: test-and-set", move |l, m| {
        match m.lock {
            None => {
                m.lock = Some(l.me);
                l.left = l.hold;
                Flow::Next
            }
            Some(_) => {
                m.spins += 1;
                Flow::Goto(acquire)
            }
        }
    });
    let work = b.here(inc);
    b.stmt(inc, "critical section work", move |l, _m| {
        if l.left > 0 {
            l.left -= 1;
            Flow::Goto(work)
        } else {
            Flow::Next
        }
    });
    b.stmt(inc, "increment", |l, m| {
        l.ret = Some(m.counter);
        m.counter += 1;
        Flow::Next
    });
    b.stmt(inc, "release", |_l, m| {
        m.lock = None;
        Flow::Return
    });

    (b.build(), inc)
}

/// A machine performing `ops` lock-based increments, holding the lock for
/// `hold` extra statements each time.
pub fn inc_machine(me: u32, ops: u32, hold: u32) -> ProgMachine<LockLocals, LockMem> {
    let (prog, entry) = build_program();
    let plan: InvocationPlan<LockLocals> = Arc::new(move |l, k| {
        if k < ops {
            l.ret = None;
            l.hold = hold;
            Some(entry)
        } else {
            None
        }
    });
    ProgMachine::with_plan(&prog, LockLocals { me, ..LockLocals::default() }, plan)
        .with_output(|l| l.ret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_sim::decision::{RoundRobin, SeededRandom};
    use sched_sim::ids::{ProcessId, ProcessorId, Priority};
    use sched_sim::kernel::{Kernel, SystemSpec};

    #[test]
    fn uncontended_increments_work() {
        let mut k = Kernel::new(LockMem::default(), SystemSpec::hybrid(8));
        k.add_process(ProcessorId(0), Priority(1), Box::new(inc_machine(0, 5, 0)));
        k.run(&mut RoundRobin::new(), 10_000);
        assert!(k.all_finished());
        assert_eq!(k.mem.counter, 5);
        assert_eq!(k.mem.spins, 0);
    }

    #[test]
    fn equal_priority_contention_is_safe_but_slow() {
        for seed in 0..20 {
            let mut k = Kernel::new(
                LockMem::default(),
                SystemSpec::hybrid(4).with_adversarial_alignment(),
            );
            for pid in 0..3 {
                k.add_process(ProcessorId(0), Priority(1), Box::new(inc_machine(pid, 4, 2)));
            }
            k.run(&mut SeededRandom::new(seed), 1_000_000);
            assert!(k.all_finished(), "seed {seed}");
            assert_eq!(k.mem.counter, 12, "seed {seed}: lost update");
        }
    }

    /// The inversion livelock: a high-priority spinner starves the
    /// lock-holding low-priority process forever under Axiom 1.
    #[test]
    fn priority_inversion_livelocks() {
        let mut k = Kernel::new(LockMem::default(), SystemSpec::hybrid(8));
        let lo = k.add_process(ProcessorId(0), Priority(1), Box::new(inc_machine(0, 1, 10)));
        let hi = k.add_held_process(ProcessorId(0), Priority(2), Box::new(inc_machine(1, 1, 0)));
        let mut d = RoundRobin::new();
        // Let the low-priority process take the lock…
        k.step(&mut d);
        k.step(&mut d);
        // …then release the high-priority process: it spins forever.
        k.release(hi);
        let executed = k.run(&mut d, 50_000);
        assert_eq!(executed, 50_000, "expected a livelock consuming the step budget");
        assert!(!k.is_finished(lo));
        assert!(!k.is_finished(hi));
        assert!(k.mem.spins > 10_000);
    }

    /// Contrast: lock-based blocking is unbounded in own-steps, unlike the
    /// wait-free constructions whose tests assert fixed step caps.
    #[test]
    fn own_steps_grow_with_contention() {
        let steps_with = |others: u32| {
            let mut k = Kernel::new(LockMem::default(), SystemSpec::hybrid(4));
            for pid in 0..=others {
                k.add_process(ProcessorId(0), Priority(1), Box::new(inc_machine(pid, 2, 4)));
            }
            k.run(&mut RoundRobin::new(), 1_000_000);
            assert!(k.all_finished());
            (0..=others)
                .map(|p| k.stats(ProcessId(p)).own_steps)
                .max()
                .unwrap()
        };
        assert!(steps_with(5) > steps_with(0));
    }
}
