//! The paper's algorithms written **once**, generic over
//! [`wfmem::backend::MemBackend`].
//!
//! Everything else in this crate is a statement-level `ProgMachine`
//! program: ideal for the simulator's exhaustive explorer and deterministic
//! replay, but unable to run on two hardware threads. This module is the
//! other half of the backend split (see `BACKENDS.md`): direct-style
//! implementations of Fig. 3 consensus, the Fig. 5-interface C&S + Read
//! object, and the Herlihy universal construction, written against the
//! [`MemBackend`] cell vocabulary so the *same function bodies* execute on
//!
//! * [`wfmem::SimBackend`] — sequential, deterministic, step-counted (the
//!   cross-check against the statement-level twins), and
//! * the `native` crate's backends — real `std::sync::atomic` cells on OS
//!   threads, either freely scheduled or under the deterministic lockstep
//!   scheduler that enforces the paper's hybrid axioms.
//!
//! Step accounting is preserved exactly: [`fig3_decide`] performs eight
//! counted statements per invocation — the same
//! [`STATEMENTS_PER_DECIDE`](crate::uni::consensus::STATEMENTS_PER_DECIDE)
//! the Lemma 1 analysis and the `Q ≥ 8` threshold rest on.
//!
//! # What stays simulator-only
//!
//! The O(V) *read/write implementation* of Fig. 5 ([`crate::uni::cas`])
//! depends on the quantum axiom for its helping discipline, so its
//! statement-level program remains the only implementation; the
//! backend-generic [`CasObject`] here provides the same object *interface*
//! (`C&S` + `Read`, Theorem 2's specification) over the backend's C&S
//! cell, which is what a real multiprocessor offers anyway. The honest
//! boundary between "algorithm ported" and "interface re-based" is drawn
//! in `BACKENDS.md` and EXPERIMENTS.md ("Native execution").

use wfmem::backend::{CasCell, ConsCell, MemBackend, RegCell};
use wfmem::Val;

use crate::oracle::{CasRegOp, CasRegisterSpec, QueueOp, SeqSpec};
use crate::universal::CounterSpec;

// ---------------------------------------------------------------------------
// Fig. 3 — consensus from reads and writes
// ---------------------------------------------------------------------------

/// The shared state of one Fig. 3 consensus object: `P[1..3]`, all `⊥`.
pub struct Fig3Cell<B: MemBackend> {
    /// The paper's `P[1..3]`.
    pub p: [B::Reg; 3],
}

impl<B: MemBackend> Fig3Cell<B> {
    /// Allocates the three-slot array on `backend`.
    pub fn new(backend: &B) -> Self {
        Fig3Cell { p: [backend.reg(), backend.reg(), backend.reg()] }
    }
}

/// Fig. 3 `decide(val)`: wait-free consensus from reads and writes.
///
/// The body is the paper's eight atomic statements, with the backend's
/// step hook marking each one: statement 1 (`v := val`, a *counted local*
/// statement, hence the explicit [`step`](MemBackend::step)), then per
/// slot a read (statement 3) and a test-or-write (statements 4–6 — one
/// counted statement whichever branch runs), then the final read
/// (statement 7). On a hybrid-scheduled backend with `Q ≥ 8` each process
/// is preempted at most once per invocation, which is Lemma 1's
/// hypothesis; on a freely-scheduled native backend no such bound exists
/// and agreement **can** fail — that failure is measured, not assumed
/// away (see EXPERIMENTS.md, "Native execution").
pub fn fig3_decide<B: MemBackend>(backend: &B, cell: &Fig3Cell<B>, val: Val) -> Val {
    backend.step(); // 1: v := val (counted local statement)
    let mut v = val;
    for slot in &cell.p {
        let w = slot.read(); // 3: w := P[i]
        match w {
            Some(w) => {
                backend.step(); // 4-5: if w ≠ ⊥ then v := w (counted local)
                v = w;
            }
            None => slot.write(v), // 4,6: else P[i] := v
        }
    }
    // 7: return P[3]
    cell.p[2].read().expect("P[3] is set before any process reaches statement 7")
}

// ---------------------------------------------------------------------------
// Fig. 5 interface — C&S + Read
// ---------------------------------------------------------------------------

/// The Fig. 5 object *interface* — `C&S(old, new)` plus `Read()` — over a
/// backend C&S cell.
///
/// Theorem 2's specification, one counted statement per operation. The
/// O(V) read/write *implementation* of that interface stays
/// statement-level ([`crate::uni::cas`]): its helping discipline is
/// exactly what the quantum axiom buys, and commodity schedulers do not
/// provide it.
pub struct CasObject<B: MemBackend> {
    cell: B::Cas,
}

impl<B: MemBackend> CasObject<B> {
    /// Creates the object holding `init`.
    pub fn new(backend: &B, init: Val) -> Self {
        CasObject { cell: backend.cas(init) }
    }

    /// `C&S(old, new)`: installs `new` and returns `true` iff the value
    /// equals `old`.
    pub fn cas(&self, old: Val, new: Val) -> bool {
        self.cell.cas(old, new)
    }

    /// `Read()`: the current value.
    pub fn read(&self) -> Val {
        self.cell.read()
    }

    /// Applies `op`, returning the result encoded the way
    /// [`CasRegisterSpec`] expects (booleans as 0/1).
    pub fn apply(&self, op: &CasRegOp) -> Val {
        match *op {
            CasRegOp::Cas { old, new } => u64::from(self.cas(old, new)),
            CasRegOp::Read => self.read(),
        }
    }
}

// ---------------------------------------------------------------------------
// Word-packed operation descriptors
// ---------------------------------------------------------------------------

/// Sequential specs whose operations pack into a single shared-memory
/// word, so the universal construction can publish them through backend
/// register cells.
///
/// `decode_op(encode_op(op)) == op` must hold for every op the workload
/// uses; implementations assert their packing bounds.
pub trait WordOp: SeqSpec {
    /// Packs `op` into one word.
    fn encode_op(op: &Self::Op) -> Val;
    /// Unpacks a word produced by [`encode_op`](WordOp::encode_op).
    fn decode_op(w: Val) -> Self::Op;
}

impl WordOp for CounterSpec {
    fn encode_op(op: &Val) -> Val {
        *op
    }

    fn decode_op(w: Val) -> Val {
        w
    }
}

impl WordOp for crate::oracle::QueueSpec {
    fn encode_op(op: &QueueOp) -> Val {
        match *op {
            QueueOp::Deq => 0,
            QueueOp::Enq(v) => {
                assert!(v < 1 << 63, "queue values must fit in 63 bits");
                (v << 1) | 1
            }
        }
    }

    fn decode_op(w: Val) -> QueueOp {
        if w & 1 == 0 {
            QueueOp::Deq
        } else {
            QueueOp::Enq(w >> 1)
        }
    }
}

impl WordOp for CasRegisterSpec {
    // Layout: bit 0 = is-C&S; C&S packs old into bits 2..33 and new into
    // bits 33..64 (31 bits each — ample for the workloads, asserted).
    fn encode_op(op: &CasRegOp) -> Val {
        match *op {
            CasRegOp::Read => 0,
            CasRegOp::Cas { old, new } => {
                assert!(old < 1 << 31 && new < 1 << 31, "C&S operands must fit in 31 bits");
                1 | (old << 2) | (new << 33)
            }
        }
    }

    fn decode_op(w: Val) -> CasRegOp {
        if w & 1 == 0 {
            CasRegOp::Read
        } else {
            CasRegOp::Cas { old: (w >> 2) & ((1 << 31) - 1), new: w >> 33 }
        }
    }
}

// ---------------------------------------------------------------------------
// The universal construction
// ---------------------------------------------------------------------------

/// An operation token: `(pid, seq)` identifies the `seq`-th operation of
/// process `pid`, offset by one so a raw `0` register read is never a
/// valid token.
fn op_token(pid: u32, seq: u32) -> Val {
    ((u64::from(pid) << 32) | u64::from(seq)) + 1
}

fn token_pid(tok: Val) -> u32 {
    ((tok - 1) >> 32) as u32
}

fn token_seq(tok: Val) -> u32 {
    ((tok - 1) & 0xffff_ffff) as u32
}

/// The shared state of a backend-generic Herlihy universal object.
///
/// The same construction as [`crate::universal`], re-based on backend
/// cells so many threads can share it:
///
/// * `announce[p]` — a register holding process `p`'s pending operation
///   *token* (or `⊥`);
/// * `published[p][s]` — a write-once register holding the word-packed
///   descriptor of `p`'s `s`-th operation, written **before** the token is
///   announced, so any process that learns a token can fetch its
///   operation;
/// * `log[k]` — a first-wins consensus cell deciding which token occupies
///   log slot `k`.
///
/// Helping is the classical round-robin discipline: slot `k`'s proposal is
/// preferentially the announced token of process `k mod n`, so every
/// announced operation is decided within `n` slots — wait-freedom does not
/// depend on the scheduler.
pub struct Universal<B: MemBackend, S: WordOp> {
    n: u32,
    announce: Vec<B::Reg>,
    published: Vec<Vec<B::Reg>>,
    log: Vec<B::Cons>,
    spec: S,
}

/// Per-process session state for a [`Universal`] object: the private
/// replica plus the replay cursor (`k`), the per-process duplicate filter
/// (`applied`), and telemetry.
pub struct UniversalSession<S: SeqSpec> {
    me: u32,
    seq: u32,
    k: u32,
    applied: Vec<u32>,
    state: S::State,
    /// Log slots decided to an already-applied token and skipped during
    /// replay (the helping-retry count of the simulator's `AlgCounters`).
    pub duplicate_retries: u64,
    /// Proposals that helped another process's announced operation.
    pub helped_proposals: u64,
}

impl<B: MemBackend, S: WordOp + Clone> Universal<B, S> {
    /// Allocates the shared state on `backend` for `n` processes, at most
    /// `per_process` operations each.
    ///
    /// The log gets `2 * n * per_process + n + 1` slots: every operation
    /// consumes one slot for its first decision, and in the worst case one
    /// more when a helper re-proposes an already-decided token into the
    /// next slot; the `n + 1` covers the final round of helpers probing
    /// past the last operation.
    pub fn new(backend: &B, spec: S, n: u32, per_process: u32) -> Self {
        let slots = 2 * (n as usize) * (per_process as usize) + n as usize + 1;
        Universal {
            n,
            announce: (0..n).map(|_| backend.reg()).collect(),
            published: (0..n)
                .map(|_| (0..per_process).map(|_| backend.reg()).collect())
                .collect(),
            log: (0..slots).map(|_| backend.cons()).collect(),
            spec: spec.clone(),
        }
    }

    /// Starts a session for process `me` (its private replica at `init`).
    pub fn session(&self, me: u32) -> UniversalSession<S> {
        assert!(me < self.n);
        UniversalSession {
            me,
            seq: 0,
            k: 0,
            applied: vec![0; self.n as usize],
            state: self.spec.init(),
            duplicate_retries: 0,
            helped_proposals: 0,
        }
    }

    /// Applies `op` for the session's process, returning its result.
    ///
    /// Publish → announce → propose-and-replay until the own token is
    /// decided → retract the announcement. Wait-free: decided within `n`
    /// log slots of the announcement regardless of scheduling.
    pub fn apply(&self, s: &mut UniversalSession<S>, op: &S::Op) -> Val {
        let me = s.me as usize;
        let my_token = op_token(s.me, s.seq);
        self.published[me][s.seq as usize].write(S::encode_op(op));
        self.announce[me].write(my_token);
        s.seq += 1;
        loop {
            // Helping: prefer the announced pending op of process k mod n.
            let helpee = (s.k % self.n) as usize;
            let proposal = match self.announce[helpee].read() {
                // `⊥` (never announced) and RETRACTED (announcement
                // withdrawn) both mean "nothing to help".
                Some(tok) if tok != RETRACTED => {
                    if tok != my_token {
                        s.helped_proposals += 1;
                    }
                    tok
                }
                _ => my_token,
            };
            let slot = s.k as usize;
            assert!(slot < self.log.len(), "universal log capacity exceeded");
            let decided = self.log[slot].decide(proposal);
            s.k += 1;
            let (winner, wseq) = (token_pid(decided), token_seq(decided));
            if wseq != s.applied[winner as usize] {
                // Duplicate slot (a helper re-proposed an applied token):
                // skip it in the replay.
                debug_assert!(wseq < s.applied[winner as usize]);
                s.duplicate_retries += 1;
                continue;
            }
            // First occurrence: replay on the private replica.
            let word = self.published[winner as usize][wseq as usize]
                .read()
                .expect("operations are published before their token is proposed");
            let op = S::decode_op(word);
            let (next, result) = self.spec.apply(&s.state, &op);
            s.state = next;
            s.applied[winner as usize] += 1;
            if decided == my_token {
                // Retract the announcement. RegCell has no `⊥` write, so
                // retraction writes RETRACTED (never a valid token; see
                // `op_token`), which helpers treat exactly like `⊥`.
                self.announce[me].write(RETRACTED);
                return result;
            }
        }
    }

    /// The decided log prefix as operation tokens (oracle use; uncounted).
    pub fn decided_prefix(&self) -> Vec<Val> {
        self.log.iter().map_while(|c| c.read()).collect()
    }
}

/// The announce-slot value meaning "no pending operation" after a retract
/// (never a valid token: tokens encode `((pid << 32) | seq) + 1`, so they
/// start at 1).
pub const RETRACTED: Val = 0;

impl<S: SeqSpec> UniversalSession<S> {
    /// The session's private replica state (for final-state oracles).
    pub fn state(&self) -> &S::State {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{QueueSpec, EMPTY};
    use crate::uni::consensus::STATEMENTS_PER_DECIDE;
    use wfmem::SimBackend;

    #[test]
    fn fig3_sequential_first_process_wins() {
        let b = SimBackend::new();
        let cell = Fig3Cell::new(&b);
        assert_eq!(fig3_decide(&b, &cell, 10), 10);
        assert_eq!(fig3_decide(&b, &cell, 20), 10);
        assert_eq!(fig3_decide(&b, &cell, 30), 10);
    }

    #[test]
    fn fig3_counts_exactly_eight_statements_per_decide() {
        let b = SimBackend::new();
        let cell = Fig3Cell::new(&b);
        fig3_decide(&b, &cell, 5);
        assert_eq!(b.steps(), u64::from(STATEMENTS_PER_DECIDE));
        fig3_decide(&b, &cell, 6);
        assert_eq!(b.steps(), 2 * u64::from(STATEMENTS_PER_DECIDE));
    }

    #[test]
    fn cas_object_interface() {
        let b = SimBackend::new();
        let o = CasObject::new(&b, 3);
        assert_eq!(o.read(), 3);
        assert!(!o.cas(0, 9));
        assert!(o.cas(3, 9));
        assert_eq!(o.apply(&CasRegOp::Read), 9);
        assert_eq!(o.apply(&CasRegOp::Cas { old: 9, new: 1 }), 1);
    }

    #[test]
    fn word_ops_roundtrip() {
        for op in [QueueOp::Deq, QueueOp::Enq(0), QueueOp::Enq(12345)] {
            assert_eq!(QueueSpec::decode_op(QueueSpec::encode_op(&op)), op);
        }
        for op in [
            CasRegOp::Read,
            CasRegOp::Cas { old: 0, new: 0 },
            CasRegOp::Cas { old: 77, new: (1 << 31) - 1 },
        ] {
            assert_eq!(CasRegisterSpec::decode_op(CasRegisterSpec::encode_op(&op)), op);
        }
        assert_eq!(CounterSpec::decode_op(CounterSpec::encode_op(&41)), 41);
    }

    #[test]
    fn universal_counter_sequential() {
        let b = SimBackend::new();
        let u: Universal<SimBackend, CounterSpec> = Universal::new(&b, CounterSpec, 2, 3);
        let mut s0 = u.session(0);
        let mut s1 = u.session(1);
        // Fetch-and-add: result is the value before the add.
        assert_eq!(u.apply(&mut s0, &5), 0);
        assert_eq!(u.apply(&mut s1, &7), 5);
        assert_eq!(u.apply(&mut s0, &1), 12);
        assert_eq!(*s0.state(), 13);
        // s1's replica lags until its next operation replays the log.
        assert_eq!(u.apply(&mut s1, &0), 13);
    }

    #[test]
    fn universal_queue_sequential_fifo() {
        let b = SimBackend::new();
        let u: Universal<SimBackend, QueueSpec> = Universal::new(&b, QueueSpec, 2, 4);
        let mut p = u.session(0);
        let mut c = u.session(1);
        for v in [10, 20, 30] {
            u.apply(&mut p, &QueueOp::Enq(v));
        }
        assert_eq!(u.apply(&mut c, &QueueOp::Deq), 10);
        assert_eq!(u.apply(&mut c, &QueueOp::Deq), 20);
        assert_eq!(u.apply(&mut c, &QueueOp::Deq), 30);
        assert_eq!(u.apply(&mut c, &QueueOp::Deq), EMPTY);
    }

    #[test]
    fn universal_log_tokens_are_unique_first_appearances() {
        let b = SimBackend::new();
        let u: Universal<SimBackend, CounterSpec> = Universal::new(&b, CounterSpec, 3, 2);
        let mut sessions: Vec<_> = (0..3).map(|p| u.session(p)).collect();
        for round in 0..2 {
            for s in sessions.iter_mut() {
                u.apply(s, &(round + 1));
            }
        }
        let log = u.decided_prefix();
        assert_eq!(log.len(), 6, "six ops, sequential run admits no duplicates");
        let mut seen = std::collections::HashSet::new();
        for tok in log {
            assert_ne!(tok, RETRACTED);
            assert!(seen.insert(tok), "token decided into two slots");
        }
    }
}
