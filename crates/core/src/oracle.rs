//! Linearizability checking for concurrent object histories.
//!
//! The correctness claim behind Theorem 2 (and behind every universal
//! construction) is that the implemented object is *linearizable*: every
//! concurrent history has a sequential witness that respects real-time
//! order and the object's sequential specification. This module implements
//! the classical Wing–Gong search with memoization: feasible for the dozens
//! of operations the simulated stress tests produce.
//!
//! # Examples
//!
//! ```
//! use hybrid_wf::oracle::{check_linearizable, CasRegisterSpec, TimedOp};
//! use hybrid_wf::oracle::CasRegOp;
//!
//! // Two CAS(0→1) racing: one succeeds, one fails. Linearizable.
//! let ops = vec![
//!     TimedOp { start: 0, end: 5, op: CasRegOp::Cas { old: 0, new: 1 }, result: 1 },
//!     TimedOp { start: 1, end: 6, op: CasRegOp::Cas { old: 0, new: 1 }, result: 0 },
//! ];
//! check_linearizable(&CasRegisterSpec { init: 0 }, &ops).unwrap();
//! ```

use std::collections::HashSet;
use std::fmt::Debug;
use std::fs;
use std::hash::Hash;
use std::path::{Path, PathBuf};

use sched_sim::kernel::OpRecord;
use sched_sim::obs::Trace;
use wfmem::Val;

/// Converts the kernel's completed-invocation log into oracle-ready
/// [`TimedOp`]s.
///
/// `op_of(pid, inv_index)` names the operation the process performed on
/// that invocation (the caller knows its own op plans); records whose
/// machine reported no output are skipped, since an operation without an
/// observed result constrains no linearization in our completed-history
/// model. This is the bridge the fuzzer uses to run
/// [`check_linearizable`] against any [`sched_sim::scenario::RunResult`].
pub fn timed_ops<O>(
    records: &[OpRecord],
    mut op_of: impl FnMut(u32, u32) -> O,
) -> Vec<TimedOp<O>> {
    records
        .iter()
        .filter_map(|r| {
            r.output.map(|out| TimedOp {
                start: r.start,
                end: r.t,
                op: op_of(r.pid.0, r.inv_index),
                result: out,
            })
        })
        .collect()
}

/// A completed operation with its real-time interval and observed result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimedOp<O> {
    /// Time of the operation's first statement.
    pub start: u64,
    /// Time of its last statement. An operation `a` precedes `b` in real
    /// time iff `a.end < b.start`.
    pub end: u64,
    /// The operation performed.
    pub op: O,
    /// The result the caller observed (booleans encoded 0/1).
    pub result: Val,
}

/// A sequential object specification.
pub trait SeqSpec {
    /// Operation descriptor type.
    type Op: Clone + Debug;
    /// Abstract state type.
    type State: Clone + Eq + Hash;

    /// The initial state.
    fn init(&self) -> Self::State;

    /// Applies `op` to `state`, returning the successor state and the
    /// result a sequential execution would return.
    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Val);
}

/// Checks that `ops` is linearizable with respect to `spec`.
///
/// # Errors
///
/// Returns a description of the violation when no valid linearization
/// exists. The search is exponential in the worst case; intended for
/// histories of at most a few dozen operations.
pub fn check_linearizable<S: SeqSpec>(spec: &S, ops: &[TimedOp<S::Op>]) -> Result<(), String> {
    assert!(ops.len() <= 63, "oracle supports at most 63 operations");
    let n = ops.len();
    let full: u64 = if n == 64 { !0 } else { (1u64 << n) - 1 };
    // dead set: (remaining-mask, state) pairs known to admit no witness.
    let mut dead: HashSet<(u64, S::State)> = HashSet::new();

    fn dfs<S: SeqSpec>(
        spec: &S,
        ops: &[TimedOp<S::Op>],
        remaining: u64,
        state: &S::State,
        dead: &mut HashSet<(u64, S::State)>,
    ) -> bool {
        if remaining == 0 {
            return true;
        }
        if dead.contains(&(remaining, state.clone())) {
            return false;
        }
        // An op may linearize next iff no *remaining* op precedes it in
        // real time.
        let min_end = ops
            .iter()
            .enumerate()
            .filter(|(i, _)| remaining & (1 << i) != 0)
            .map(|(_, o)| o.end)
            .min()
            .expect("remaining nonempty");
        for i in 0..ops.len() {
            if remaining & (1 << i) == 0 {
                continue;
            }
            let o = &ops[i];
            if o.start > min_end {
                continue; // some remaining op really finished before o began
            }
            let (next, expected) = spec.apply(state, &o.op);
            if expected != o.result {
                continue;
            }
            if dfs(spec, ops, remaining & !(1 << i), &next, dead) {
                return true;
            }
        }
        dead.insert((remaining, state.clone()));
        false
    }

    if dfs(spec, ops, full, &spec.init(), &mut dead) {
        Ok(())
    } else {
        Err(format!("no linearization exists for {} operations: {ops:?}", n))
    }
}

/// Checks linearizability and, on failure, dumps the captured `trace` as a
/// replayable artifact, appending its path to the error message.
///
/// This is the hook stress tests use so that a failing randomized run is
/// never lost: capture the run with [`sched_sim::kernel::Kernel::attach_obs`],
/// and on violation the full decision script lands on disk. Reload it with
/// [`Trace::from_text`] and replay via [`Trace::scripted`] against an
/// identically constructed kernel to reproduce the failure bit-identically
/// (see EXPERIMENTS.md for a worked example).
///
/// # Errors
///
/// As [`check_linearizable`], with the artifact path (or the reason the
/// dump itself failed) appended.
pub fn check_linearizable_traced<S: SeqSpec>(
    spec: &S,
    ops: &[TimedOp<S::Op>],
    trace: &Trace,
    tag: &str,
) -> Result<(), String> {
    check_linearizable(spec, ops).map_err(|e| match dump_trace(trace, tag) {
        Ok(path) => format!("{e}\nreplayable trace dumped to {}", path.display()),
        Err(io) => format!("{e}\n(trace dump failed: {io})"),
    })
}

/// Writes `trace` to `target/obs/<tag>.trace` relative to the working
/// directory (falling back to the system temp directory when `target/` is
/// not writable), returning the artifact path. `tag` must be a plain file
/// stem — no path separators.
///
/// # Errors
///
/// Propagates the underlying I/O error when neither location is writable.
pub fn dump_trace(trace: &Trace, tag: &str) -> std::io::Result<PathBuf> {
    assert!(
        !tag.contains(['/', '\\']),
        "trace tag must be a plain file stem"
    );
    let preferred = Path::new("target").join("obs");
    let dir = if fs::create_dir_all(&preferred).is_ok() {
        preferred
    } else {
        let fallback = std::env::temp_dir().join("sched-sim-obs");
        fs::create_dir_all(&fallback)?;
        fallback
    };
    let path = dir.join(format!("{tag}.trace"));
    fs::write(&path, trace.to_text())?;
    Ok(path)
}

/// Operations of a compare-and-swap register (the Fig. 5 object).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CasRegOp {
    /// `C&S(old, new)`: returns 1 and installs `new` iff the value equals
    /// `old`; otherwise returns 0.
    Cas {
        /// Expected value.
        old: Val,
        /// Replacement value.
        new: Val,
    },
    /// `Read()`: returns the current value.
    Read,
}

/// Sequential specification of a CAS register.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CasRegisterSpec {
    /// Initial register value.
    pub init: Val,
}

impl SeqSpec for CasRegisterSpec {
    type Op = CasRegOp;
    type State = Val;

    fn init(&self) -> Val {
        self.init
    }

    fn apply(&self, state: &Val, op: &CasRegOp) -> (Val, Val) {
        match *op {
            CasRegOp::Cas { old, new } => {
                if *state == old {
                    (new, 1)
                } else {
                    (*state, 0)
                }
            }
            CasRegOp::Read => (*state, *state),
        }
    }
}

/// Operations of a FIFO queue over `Val`s (used by the universal
/// construction tests). `Deq` returns [`EMPTY`] when the queue is empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueueOp {
    /// Enqueue a value (result is always 0).
    Enq(Val),
    /// Dequeue; returns the value or [`EMPTY`].
    Deq,
}

/// Sentinel returned by [`QueueOp::Deq`] on an empty queue.
pub const EMPTY: Val = u64::MAX;

/// Sequential specification of a FIFO queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct QueueSpec;

impl SeqSpec for QueueSpec {
    type Op = QueueOp;
    type State = Vec<Val>;

    fn init(&self) -> Vec<Val> {
        Vec::new()
    }

    fn apply(&self, state: &Vec<Val>, op: &QueueOp) -> (Vec<Val>, Val) {
        match *op {
            QueueOp::Enq(v) => {
                let mut s = state.clone();
                s.push(v);
                (s, 0)
            }
            QueueOp::Deq => {
                if state.is_empty() {
                    (state.clone(), EMPTY)
                } else {
                    let mut s = state.clone();
                    let v = s.remove(0);
                    (s, v)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_sim::ids::ProcessId;

    #[test]
    fn timed_ops_maps_records_and_skips_missing_outputs() {
        let records = vec![
            OpRecord { start: 0, t: 5, pid: ProcessId(0), inv_index: 0, output: Some(1) },
            OpRecord { start: 2, t: 9, pid: ProcessId(1), inv_index: 0, output: None },
            OpRecord { start: 6, t: 8, pid: ProcessId(0), inv_index: 1, output: Some(100) },
        ];
        let ops = timed_ops(&records, |pid, inv| (pid, inv));
        assert_eq!(
            ops,
            vec![
                TimedOp { start: 0, end: 5, op: (0, 0), result: 1 },
                TimedOp { start: 6, end: 8, op: (0, 1), result: 100 },
            ]
        );
    }

    fn cas(start: u64, end: u64, old: Val, new: Val, ok: bool) -> TimedOp<CasRegOp> {
        TimedOp { start, end, op: CasRegOp::Cas { old, new }, result: u64::from(ok) }
    }

    fn read(start: u64, end: u64, v: Val) -> TimedOp<CasRegOp> {
        TimedOp { start, end, op: CasRegOp::Read, result: v }
    }

    #[test]
    fn empty_history_is_linearizable() {
        check_linearizable(&CasRegisterSpec { init: 0 }, &[]).unwrap();
    }

    #[test]
    fn sequential_history() {
        let ops = vec![cas(0, 1, 0, 5, true), read(2, 3, 5), cas(4, 5, 5, 7, true), read(6, 7, 7)];
        check_linearizable(&CasRegisterSpec { init: 0 }, &ops).unwrap();
    }

    #[test]
    fn racing_cas_one_winner() {
        let ops = vec![cas(0, 10, 0, 1, true), cas(0, 10, 0, 2, false), read(11, 12, 1)];
        check_linearizable(&CasRegisterSpec { init: 0 }, &ops).unwrap();
    }

    #[test]
    fn detects_two_winners() {
        let ops = vec![cas(0, 10, 0, 1, true), cas(0, 10, 0, 2, true)];
        assert!(check_linearizable(&CasRegisterSpec { init: 0 }, &ops).is_err());
    }

    #[test]
    fn detects_stale_read() {
        // CAS finished before the read started, yet the read saw the old
        // value: not linearizable.
        let ops = vec![cas(0, 1, 0, 1, true), read(2, 3, 0)];
        assert!(check_linearizable(&CasRegisterSpec { init: 0 }, &ops).is_err());
    }

    #[test]
    fn concurrent_read_may_see_either() {
        let ops = vec![cas(0, 10, 0, 1, true), read(5, 6, 0)];
        check_linearizable(&CasRegisterSpec { init: 0 }, &ops).unwrap();
        let ops = vec![cas(0, 10, 0, 1, true), read(5, 6, 1)];
        check_linearizable(&CasRegisterSpec { init: 0 }, &ops).unwrap();
    }

    #[test]
    fn respects_real_time_order_among_cas() {
        // CAS(0→1) ok, then strictly later CAS(0→2) ok: impossible.
        let ops = vec![cas(0, 1, 0, 1, true), cas(2, 3, 0, 2, true)];
        assert!(check_linearizable(&CasRegisterSpec { init: 0 }, &ops).is_err());
        // But CAS(1→2) ok is fine.
        let ops = vec![cas(0, 1, 0, 1, true), cas(2, 3, 1, 2, true)];
        check_linearizable(&CasRegisterSpec { init: 0 }, &ops).unwrap();
    }

    #[test]
    fn failed_cas_must_be_explainable() {
        // Solo failed CAS whose old matches init: not linearizable.
        let ops = vec![cas(0, 1, 0, 1, false)];
        assert!(check_linearizable(&CasRegisterSpec { init: 0 }, &ops).is_err());
    }

    #[test]
    fn queue_fifo_order_enforced() {
        let ops = vec![
            TimedOp { start: 0, end: 1, op: QueueOp::Enq(1), result: 0 },
            TimedOp { start: 2, end: 3, op: QueueOp::Enq(2), result: 0 },
            TimedOp { start: 4, end: 5, op: QueueOp::Deq, result: 1 },
            TimedOp { start: 6, end: 7, op: QueueOp::Deq, result: 2 },
        ];
        check_linearizable(&QueueSpec, &ops).unwrap();
        let bad = vec![
            TimedOp { start: 0, end: 1, op: QueueOp::Enq(1), result: 0 },
            TimedOp { start: 2, end: 3, op: QueueOp::Enq(2), result: 0 },
            TimedOp { start: 4, end: 5, op: QueueOp::Deq, result: 2 },
        ];
        assert!(check_linearizable(&QueueSpec, &bad).is_err());
    }

    #[test]
    fn queue_empty_sentinel() {
        let ops = vec![TimedOp { start: 0, end: 1, op: QueueOp::Deq, result: EMPTY }];
        check_linearizable(&QueueSpec, &ops).unwrap();
    }

    #[test]
    fn concurrent_enqueues_either_order() {
        let ops = vec![
            TimedOp { start: 0, end: 10, op: QueueOp::Enq(1), result: 0 },
            TimedOp { start: 0, end: 10, op: QueueOp::Enq(2), result: 0 },
            TimedOp { start: 11, end: 12, op: QueueOp::Deq, result: 2 },
            TimedOp { start: 13, end: 14, op: QueueOp::Deq, result: 1 },
        ];
        check_linearizable(&QueueSpec, &ops).unwrap();
    }
}
