//! Fig. 9: multiprocessor consensus with *fair* quantum allocation and a
//! constant-size quantum.
//!
//! ```text
//! shared variable Output : valtype ∪ {⊥} initially ⊥
//!
//! procedure decide(val: valtype) returns valtype
//!   1: if local-consensus(pr(p), priority(p), p) ≠ p then
//!   2:     while Output = ⊥ do od;
//!   3:     return Output;
//!   4: output := global-PB-consensus(val);
//!   5: Output := output;
//!   6: return output
//! ```
//!
//! One process per (processor, priority level) is *elected* via a local
//! uniprocessor consensus object; losers spin until a decision appears.
//! Because quantum allocation is fair, each loser waits only finite time —
//! and, counted in its **own** steps (the definition of wait-freedom the
//! paper adopts for this algorithm), the spin is bounded by the winners'
//! progress. The election winners have pairwise-distinct priorities on each
//! processor, so they form a *priority-based* multiprogrammed system; the
//! Fig. 7 algorithm run among them needs only a constant-size quantum.
//!
//! This trades the large `Q` of Theorem 4 for a fairness assumption —
//! the paper's Sec. 5 observation that `P`-consensus primitives suffice
//! with a constant quantum under fair scheduling.

use std::sync::Arc;

use sched_sim::program::{Flow, ProcRef, ProgMachine, Program, ProgramBuilder};
use wfmem::{LocalConsensus, Val};

use crate::multi::consensus::{
    append_decide_proc, AsMultiMem, LocalMode, MultiLocals, MultiMem,
};

/// Shared memory of a Fig. 9 instance: a Fig. 7 instance plus the
/// `Output` variable and per-(processor, priority) election objects.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct FairMem {
    /// The embedded Fig. 7 memory (used by election winners only).
    pub inner: MultiMem,
    /// The paper's `Output` variable.
    pub output: Option<Val>,
    /// Election objects per (processor, priority level).
    pub election: Vec<Vec<LocalConsensus>>,
}

impl FairMem {
    /// Wraps a Fig. 7 memory.
    pub fn new(inner: MultiMem) -> Self {
        let p = inner.layout.p as usize;
        let v = inner.v as usize;
        FairMem {
            inner,
            output: None,
            election: vec![vec![LocalConsensus::new(); v + 1]; p],
        }
    }
}

impl AsMultiMem for FairMem {
    fn mm(&mut self) -> &mut MultiMem {
        &mut self.inner
    }
}

/// Builds the Fig. 9 `decide` program (spinning losers, Fig. 7 for the
/// election winners).
pub fn build_program(mode: LocalMode) -> (Arc<Program<MultiLocals, FairMem>>, ProcRef) {
    let mut b = ProgramBuilder::<MultiLocals, FairMem>::new();
    let inner_decide = append_decide_proc(&mut b, mode);

    let decide = b.proc("fair-decide");
    let spin = b.label();
    let winner_path = b.label();
    let after_inner = b.label();

    {
        let winner = winner_path;
        b.stmt(decide, "1: if local-consensus(pr(p), priority(p), p) ≠ p", move |l, m| {
            let w = m.election[l.cpu as usize][l.pri as usize].decide(u64::from(l.me));
            if w == u64::from(l.me) {
                Flow::Goto(winner)
            } else {
                Flow::Next
            }
        });
    }
    b.bind(decide, spin);
    {
        let spinc = spin;
        b.stmt(decide, "2: while Output = ⊥ do od", move |_l, m| {
            if m.output.is_none() {
                Flow::Goto(spinc)
            } else {
                Flow::Next
            }
        });
    }
    b.stmt(decide, "3: return Output", |l, m| {
        l.ret = m.output;
        Flow::Return
    });
    b.bind(decide, winner_path);
    {
        let after = after_inner;
        b.free(decide, "4: output := global-PB-consensus(val)", move |_l, _m| {
            Flow::CallThen { proc: inner_decide, resume: after }
        });
    }
    b.bind(decide, after_inner);
    b.stmt(decide, "5: Output := output", |l, m| {
        m.output = l.ret;
        Flow::Next
    });
    b.stmt(decide, "6: return output", |_l, _m| Flow::Return);

    (b.build(), decide)
}

/// Builds a single-shot Fig. 9 `decide(val)` machine.
pub fn decide_machine(
    me: u32,
    cpu: u32,
    pri: u32,
    val: Val,
    mode: LocalMode,
) -> ProgMachine<MultiLocals, FairMem> {
    let (prog, entry) = build_program(mode);
    ProgMachine::single_shot(&prog, MultiLocals::new(me, cpu, pri, val), entry)
        .with_output(|l| l.ret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::ports::PortLayout;
    use sched_sim::decision::{RoundRobin, SeededRandom};
    use sched_sim::ids::{ProcessId, ProcessorId, Priority};
    use sched_sim::kernel::{Kernel, SystemSpec};

    /// Builds a Fig. 9 kernel: `procs[pid] = (cpu, priority, input)`.
    fn kernel(q: u32, p: u32, v: u32, procs: &[(u32, u32, Val)]) -> Kernel<FairMem> {
        let prio: Vec<u32> = procs.iter().map(|&(_, pr, _)| pr).collect();
        let cpus: Vec<u32> = procs.iter().map(|&(c, _, _)| c).collect();
        let m = (0..p)
            .map(|c| cpus.iter().filter(|&&x| x == c).count() as u32)
            .max()
            .unwrap()
            .max(1);
        // Winners form a priority-scheduled system: at most V per cpu.
        let layout = PortLayout::new(p, 2 * p, m.max(v));
        let mem = FairMem::new(MultiMem::new(layout, v, &prio, &cpus));
        let mut k = Kernel::new(mem, SystemSpec::hybrid(q));
        for (pid, &(cpu, pr, val)) in procs.iter().enumerate() {
            k.add_process(
                ProcessorId(cpu),
                Priority(pr),
                Box::new(decide_machine(pid as u32, cpu, pr, val, LocalMode::Modeled)),
            );
        }
        k
    }

    fn assert_agreement(k: &Kernel<FairMem>, inputs: &[Val]) {
        let n = k.n_processes();
        let first = k.output(ProcessId(0)).expect("decided");
        for pid in 0..n as u32 {
            assert_eq!(k.output(ProcessId(pid)), Some(first), "disagreement at p{pid}");
        }
        assert!(inputs.contains(&first), "invalid decision {first}");
    }

    #[test]
    fn single_processor_two_levels() {
        let procs = [(0, 1, 10), (0, 1, 20), (0, 2, 30), (0, 2, 40)];
        let mut k = kernel(4, 1, 2, &procs);
        k.run(&mut RoundRobin::new(), 1_000_000);
        assert!(k.all_finished());
        assert_agreement(&k, &[10, 20, 30, 40]);
    }

    #[test]
    fn constant_quantum_suffices_under_fairness() {
        // The headline of Fig. 9: Q as small as 2 works with fair
        // round-robin allocation (losers spin but winners share quanta).
        for q in [2u32, 3, 4] {
            let procs = [
                (0, 1, 10),
                (0, 1, 11),
                (0, 2, 12),
                (1, 1, 13),
                (1, 1, 14),
                (1, 2, 15),
            ];
            let mut k = kernel(q, 2, 2, &procs);
            k.run(&mut RoundRobin::new(), 2_000_000);
            assert!(k.all_finished(), "Q = {q} did not terminate under fairness");
            assert_agreement(&k, &[10, 11, 12, 13, 14, 15]);
        }
    }

    #[test]
    fn random_fairish_schedules_agree() {
        // Seeded random holder choices are fair with probability 1 over
        // finite runs: every process keeps getting chances.
        for seed in 0..40 {
            let procs = [(0, 1, 1), (0, 1, 2), (1, 1, 3), (1, 2, 4), (1, 2, 5)];
            let mut k = kernel(3, 2, 2, &procs);
            k.run(&mut SeededRandom::new(seed), 4_000_000);
            assert!(k.all_finished(), "seed {seed} did not terminate");
            assert_agreement(&k, &[1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn losers_return_the_winners_decision() {
        let procs = [(0, 1, 7), (0, 1, 8), (0, 1, 9)];
        let mut k = kernel(4, 1, 1, &procs);
        k.run(&mut RoundRobin::new(), 1_000_000);
        assert!(k.all_finished());
        // Exactly one process won the election (it ran Fig. 7); all got
        // the same value.
        assert_agreement(&k, &[7, 8, 9]);
        let elected = k.mem.election[0][1].read().expect("election decided");
        assert!(elected < 3);
    }
}
