//! Multiprocessor algorithms (Sec. 4 of the paper): wait-free consensus for
//! any number of processes on `P` processors from `C`-consensus objects,
//! the fair-scheduler variant, and access-failure accounting.

pub mod consensus;
pub mod failures;
pub mod fair;
pub mod ports;
