//! Fig. 8: the consensus-level / port layout of the multiprocessor
//! algorithm.
//!
//! The Fig. 7 algorithm arranges `L` *consensus levels*, each backed by one
//! `C`-consensus object with `C = P + K` (`0 ≤ K ≤ P`). A process may
//! invoke a level's object only through a *port*: processors `1..=K` own
//! two ports per level, processors `K+1..=P` own one — `P + K = C` ports
//! in total, so the object is never invoked more than `C` times.
//!
//! On each processor, ports are numbered consecutively across levels
//! starting at 1, so the level a port belongs to is
//! `((port − 1) div numports) + 1`.
//!
//! The number of levels is chosen so a *deciding level* (one with no access
//! failure on any processor) is guaranteed to exist (Lemma 3):
//!
//! ```text
//! L = (K + 1)·M·(1 + P − K) + (P − K)²·M + 1
//! ```
//!
//! where `M` bounds the number of processes per processor.

use core::fmt;

/// The level/port geometry for a Fig. 7 instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PortLayout {
    /// Number of processors `P`.
    pub p: u32,
    /// `K = C − P` (number of processors with two ports per level).
    pub k: u32,
    /// Maximum processes per processor `M`.
    pub m: u32,
    /// Number of consensus levels `L`.
    pub l: u32,
}

impl PortLayout {
    /// Builds the layout for `P` processors, `C`-consensus objects, and at
    /// most `M` processes per processor.
    ///
    /// `C` is clamped to `2P`: for stronger objects the `C = 2P` algorithm
    /// applies unchanged (the paper, Sec. 4.2).
    ///
    /// # Panics
    ///
    /// Panics if `C < P` (universality is impossible below `P` by
    /// Herlihy's hierarchy), or if `P == 0` or `M == 0`.
    pub fn new(p: u32, c: u32, m: u32) -> Self {
        assert!(p > 0, "at least one processor");
        assert!(m > 0, "at least one process per processor");
        assert!(c >= p, "an object with consensus number C < P cannot be universal");
        let k = c.min(2 * p) - p;
        let l = (k + 1) * m * (1 + p - k) + (p - k) * (p - k) * m + 1;
        PortLayout { p, k, m, l }
    }

    /// The consensus number `C = P + K` actually used.
    pub fn c(&self) -> u32 {
        self.p + self.k
    }

    /// The number of consensus levels `L`.
    pub fn levels(&self) -> u32 {
        self.l
    }

    /// Ports per level on `cpu` (0-based): 2 on processors `0..K`, 1 on
    /// `K..P`.
    pub fn ports_per_level(&self, cpu: u32) -> u32 {
        assert!(cpu < self.p, "no such processor");
        if cpu < self.k {
            2
        } else {
            1
        }
    }

    /// The level (1-based) a port number (1-based) on `cpu` belongs to.
    /// Overshoot ports (beyond level `L`) map to levels `> L`, which the
    /// algorithm's `while level ≤ L` guard filters out.
    pub fn level_of_port(&self, cpu: u32, port: u32) -> u32 {
        assert!(port >= 1, "ports are numbered from 1");
        (port - 1) / self.ports_per_level(cpu) + 1
    }

    /// Upper bound on port numbers including the `+M` overshoot slack
    /// (the paper's `Port : 1..2L + M`).
    pub fn max_port(&self, cpu: u32) -> u32 {
        self.ports_per_level(cpu) * self.l + self.m
    }

    /// Total ports per level across all processors — always `C`, so a
    /// level's `C`-consensus object is never exhausted by port holders.
    pub fn total_ports_per_level(&self) -> u32 {
        2 * self.k + (self.p - self.k)
    }
}

impl fmt::Display for PortLayout {
    /// Renders the Fig. 8 diagram: levels stacked, ports per processor.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 8 layout: P = {}, C = {} (K = {}), M = {}, L = {} levels",
            self.p,
            self.c(),
            self.k,
            self.m,
            self.l
        )?;
        writeln!(
            f,
            "processors 1..{}: 2 ports/level   processors {}..{}: 1 port/level",
            self.k,
            self.k + 1,
            self.p
        )?;
        let show = self.l.min(4);
        for lvl in 1..=show {
            write!(f, "level {lvl:>3}: ")?;
            for cpu in 0..self.p {
                let ports = self.ports_per_level(cpu);
                write!(f, "[cpu{cpu}: ")?;
                for q in 0..ports {
                    let port = (lvl - 1) * ports + q + 1;
                    write!(f, "p{port} ")?;
                }
                write!(f, "] ")?;
            }
            writeln!(f, "  ← a {}-consensus object", self.c())?;
        }
        if self.l > show {
            writeln!(f, "   ⋮ ({} more levels)", self.l - show)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_formula_for_l() {
        // C = 2P (K = P): L = (P+1)·M + 1.
        let l = PortLayout::new(4, 8, 3);
        assert_eq!(l.levels(), (4 + 1) * 3 + 1);
        // C = P (K = 0): L = M(1+P) + P²M + 1.
        let l = PortLayout::new(4, 4, 3);
        assert_eq!(l.levels(), 3 * 5 + 16 * 3 + 1);
        // Intermediate: P = 3, C = 4 (K = 1), M = 2:
        // L = 2·2·(1+2) + 4·2 + 1 = 12 + 8 + 1 = 21.
        let l = PortLayout::new(3, 4, 2);
        assert_eq!(l.levels(), 21);
    }

    #[test]
    fn c_above_2p_is_clamped() {
        let l = PortLayout::new(2, 100, 1);
        assert_eq!(l.c(), 4);
        assert_eq!(l.k, 2);
    }

    #[test]
    fn ports_per_level_split() {
        let l = PortLayout::new(4, 6, 1); // K = 2
        assert_eq!(l.ports_per_level(0), 2);
        assert_eq!(l.ports_per_level(1), 2);
        assert_eq!(l.ports_per_level(2), 1);
        assert_eq!(l.ports_per_level(3), 1);
        assert_eq!(l.total_ports_per_level(), 6);
    }

    #[test]
    fn total_ports_equal_c() {
        for p in 1..=5 {
            for c in p..=2 * p {
                let l = PortLayout::new(p, c, 2);
                assert_eq!(l.total_ports_per_level(), c, "P={p} C={c}");
            }
        }
    }

    #[test]
    fn level_of_port_math() {
        let l = PortLayout::new(2, 3, 1); // cpu0: 2 ports, cpu1: 1 port
        assert_eq!(l.level_of_port(0, 1), 1);
        assert_eq!(l.level_of_port(0, 2), 1);
        assert_eq!(l.level_of_port(0, 3), 2);
        assert_eq!(l.level_of_port(0, 4), 2);
        assert_eq!(l.level_of_port(1, 1), 1);
        assert_eq!(l.level_of_port(1, 2), 2);
    }

    #[test]
    #[should_panic(expected = "cannot be universal")]
    fn c_below_p_rejected() {
        let _ = PortLayout::new(4, 3, 1);
    }

    #[test]
    fn display_renders_diagram() {
        let s = PortLayout::new(3, 4, 2).to_string();
        assert!(s.contains("Fig. 8 layout"));
        assert!(s.contains("level   1"));
        assert!(s.contains("4-consensus object"));
    }
}
