//! Access-failure accounting: Lemmas 2, 3, B.1, and B.2 of the paper,
//! verified on concrete runs.
//!
//! An *access failure* at level `l` on processor `i` occurs when a process
//! finds every port of level `l` claimed while no decision value has been
//! published for `l` — the port winner(s) were preempted inside lines
//! 21–33 of Fig. 7 before publishing. Failures are *same-priority* or
//! *different-priority* according to the priorities of the processes
//! involved. The paper bounds them:
//!
//! * **Lemma 2** — `AF_diff ≤ M` (per processor): lower-priority processes
//!   cannot preempt higher-priority ones, so each process pays at most one
//!   different-priority failure.
//! * **Lemma 3** — `AF_same ≤ K·M + (P−K)(L + M(P−K)) / (1 + P − K)`,
//!   provided `Q` is large enough that each process is preempted at most
//!   once by equal-priority processes while accessing any `P − K + 1`
//!   consecutive levels. Moreover, if
//!   `L > (K+1)·M·(1+P−K) + (P−K)²·M`, a **deciding level** exists — a
//!   level with no access failure on any processor — which is what makes
//!   the algorithm's decision unique.
//!
//! These bounds are checked against the oracle instrumentation that
//! [`MultiMem`] records during runs.

use crate::multi::consensus::MultiMem;

/// Aggregate access-failure statistics extracted from a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AfSummary {
    /// Per-processor count of levels with a same-priority access failure.
    pub same_per_cpu: Vec<u32>,
    /// Per-processor count of levels with a different-priority access
    /// failure.
    pub diff_per_cpu: Vec<u32>,
    /// Total levels with same-priority failures (the paper's `AF_same`).
    pub same: u32,
    /// Total levels with different-priority failures (`AF_diff`).
    pub diff: u32,
    /// Levels (1-based) with no access failure on any processor.
    pub clean_levels: Vec<u32>,
}

/// Summarizes the access failures recorded in `m`.
pub fn summarize(m: &MultiMem) -> AfSummary {
    let p = m.layout.p as usize;
    let l = m.layout.l;
    let mut s = AfSummary {
        same_per_cpu: vec![0; p],
        diff_per_cpu: vec![0; p],
        ..AfSummary::default()
    };
    for lvl in 1..=l {
        let mut clean = true;
        for cpu in 0..p {
            let f = m.af[cpu][lvl as usize];
            if f.same {
                s.same_per_cpu[cpu] += 1;
                s.same += 1;
                clean = false;
            }
            if f.diff {
                s.diff_per_cpu[cpu] += 1;
                s.diff += 1;
                clean = false;
            }
        }
        if clean {
            s.clean_levels.push(lvl);
        }
    }
    s
}

/// Lemma 2's bound: at most `M` different-priority access-failure levels
/// per processor.
pub fn lemma2_holds(m: &MultiMem) -> bool {
    summarize(m).diff_per_cpu.iter().all(|&d| d <= m.layout.m)
}

/// Lemma 3's bound on `AF_same`, as an integer inequality
/// (`AF_same · (1+P−K) ≤ KM(1+P−K) + (P−K)(L + M(P−K))`).
pub fn lemma3_bound_holds(m: &MultiMem) -> bool {
    let s = summarize(m);
    let (p, k, mm, l) =
        (u64::from(m.layout.p), u64::from(m.layout.k), u64::from(m.layout.m), u64::from(m.layout.l));
    let lhs = u64::from(s.same) * (1 + p - k);
    let rhs = k * mm * (1 + p - k) + (p - k) * (l + mm * (p - k));
    lhs <= rhs
}

/// Lemma 3's existence claim: with `L` as defined in Fig. 7, some level has
/// no access failure on any processor.
pub fn deciding_level_exists(m: &MultiMem) -> bool {
    !summarize(m).clean_levels.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::consensus::AfFlags;
    use crate::multi::ports::PortLayout;

    fn mem(p: u32, c: u32, m: u32) -> MultiMem {
        let layout = PortLayout::new(p, c, m);
        let n = (p * m) as usize;
        let prio: Vec<u32> = vec![1; n];
        let cpu: Vec<u32> = (0..n as u32).map(|i| i % p).collect();
        MultiMem::new(layout, 1, &prio, &cpu)
    }

    #[test]
    fn clean_run_has_all_levels_clean() {
        let m = mem(2, 3, 2);
        let s = summarize(&m);
        assert_eq!(s.same, 0);
        assert_eq!(s.diff, 0);
        assert_eq!(s.clean_levels.len() as u32, m.layout.l);
        assert!(lemma2_holds(&m));
        assert!(lemma3_bound_holds(&m));
        assert!(deciding_level_exists(&m));
    }

    #[test]
    fn injected_failures_are_counted() {
        let mut m = mem(2, 3, 2);
        m.af[0][1] = AfFlags { same: true, diff: false };
        m.af[1][1] = AfFlags { same: false, diff: true };
        m.af[0][2] = AfFlags { same: true, diff: true };
        let s = summarize(&m);
        assert_eq!(s.same, 2);
        assert_eq!(s.diff, 2);
        assert_eq!(s.same_per_cpu, vec![2, 0]);
        assert_eq!(s.diff_per_cpu, vec![1, 1]);
        assert!(!s.clean_levels.contains(&1));
        assert!(!s.clean_levels.contains(&2));
        assert!(s.clean_levels.contains(&3));
    }

    #[test]
    fn lemma2_violation_detected() {
        let mut m = mem(1, 1, 1); // M = 1: a single diff failure is the max
        m.af[0][1].diff = true;
        assert!(lemma2_holds(&m));
        m.af[0][2].diff = true;
        assert!(!lemma2_holds(&m));
    }

    #[test]
    fn lemma3_violation_detected() {
        let mut m = mem(1, 1, 1);
        // P = 1, K = 0, M = 1: bound is AF_same·2 ≤ 0 + 1·(L + 1).
        let l = m.layout.l;
        for lvl in 1..=l {
            m.af[0][lvl as usize].same = true;
        }
        // AF_same = L; 2L ≤ L + 1 fails for L > 1.
        assert!(!lemma3_bound_holds(&m));
    }

    #[test]
    fn deciding_level_requires_a_clean_level() {
        let mut m = mem(1, 2, 1);
        let l = m.layout.l;
        for lvl in 1..=l {
            m.af[0][lvl as usize].same = true;
        }
        assert!(!deciding_level_exists(&m));
    }
}
