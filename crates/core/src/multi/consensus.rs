//! Fig. 7: wait-free multiprocessor consensus for any number of processes
//! from `C`-consensus objects (`C ≥ P`), in polynomial space and time
//! (Theorem 4).
//!
//! Each process works through a series of consensus levels (Fig. 8 layout,
//! [`crate::multi::ports::PortLayout`]): at each level it claims a *port*
//! on its processor (bounding the level's `C`-consensus object to `C`
//! invocations), passes the election for that port (a uniprocessor
//! consensus object), invokes the level's `C`-consensus object with the
//! most recent published value on its processor as input, publishes the
//! result in `Outval[i, level]`, and advances `Lastpub[i, v]`.
//!
//! Per-priority `Port[i, v]` / `Lastpub[i, v]` counters are written only by
//! priority-`v` processes on processor `i`, so the paper implements their
//! `local-C&S` / `local-F&I` from reads and writes with the constant-time
//! quantum-scheduled algorithms of Anderson–Jain–Ott; here they are modeled as one atomic
//! statement each (see DESIGN.md, reconstruction boundary). The per-port
//! `local-consensus` election is available in **two modes**
//! ([`LocalMode`]): modeled-atomic, or fully expanded into the Fig. 3
//! read/write algorithm (eight statements), exercising the paper's actual
//! layering.
//!
//! A preempted port winner causes an *access failure* (Lemmas 2/3/B.1/B.2);
//! the shared memory carries oracle-only instrumentation that records
//! access failures so the lemma bounds can be verified on real runs
//! (`crate::multi::failures`).
//!
//! If `Q` is too small (below the Table 1 threshold), expanded-mode local
//! elections can misbehave, admitting multiple winners per port; the
//! level's `C`-consensus object then exhausts and returns `⊥`, which this
//! implementation maps to "no useful information" (the process falls back
//! to its current input — the paper's adversarial-return convention).
//! Disagreement then becomes observable, which is exactly the behaviour the
//! Theorem 3 lower bound predicts; the `experiments` crate sweeps this
//! threshold to regenerate Table 1.

use std::sync::Arc;

use sched_sim::program::{Flow, ProcRef, ProgMachine, Program, ProgramBuilder};
use wfmem::{CConsensus, LocalConsensus, Val};

use crate::multi::ports::PortLayout;
use crate::uni::consensus::{append_decide, ConsensusCell, DecideScratch};

/// How the per-port `local-consensus` election is implemented.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LocalMode {
    /// One atomic statement per election (justified by Theorem 1).
    #[default]
    Modeled,
    /// The actual Fig. 3 read/write algorithm (8 statements per election);
    /// correct only when `Q` meets the Theorem 1 bound, which is the point:
    /// this is where the quantum requirement physically lives.
    Expanded,
}

/// Oracle-only access-failure flags for one (processor, level) pair.
#[derive(Clone, Copy, Debug, Default, Hash, PartialEq, Eq)]
pub struct AfFlags {
    /// A same-priority access failure occurred here.
    pub same: bool,
    /// A different-priority access failure occurred here.
    pub diff: bool,
}

/// Shared memory of one Fig. 7 instance.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct MultiMem {
    /// The level/port geometry.
    pub layout: PortLayout,
    /// Number of priority levels `V` per processor.
    pub v: u32,
    /// `Lastpub[i][v]`: highest level with a published value by priority
    /// `≤ v` on processor `i` (index 1..=V).
    pub lastpub: Vec<Vec<Val>>,
    /// `Outval[i][l]`: published consensus value of level `l` on processor
    /// `i` (index 1..=L; index 0 unused and always `⊥`).
    pub outval: Vec<Vec<Option<Val>>>,
    /// `Port[i][v]`: next available port for priority `v` on processor `i`.
    pub port: Vec<Vec<Val>>,
    /// The `C`-consensus object of each level (index 1..=L).
    pub cons: Vec<CConsensus>,
    /// Modeled per-port election objects, per processor.
    pub local_cons: Vec<Vec<LocalConsensus>>,
    /// Expanded-mode per-port election cells (Fig. 3 three-slot objects).
    pub local_cells: Vec<Vec<ConsensusCell>>,
    /// Static priority map `pid → level`.
    pub prio_of: Vec<u32>,
    /// Static processor map `pid → cpu`.
    pub cpu_of: Vec<u32>,
    // ---- oracle-only instrumentation (never read by the algorithm) ----
    /// Port claims: `(winner pid, winner priority)` per (cpu, port).
    pub port_claims: Vec<Vec<Option<(u32, u32)>>>,
    /// Access-failure flags per (cpu, level 1..=L).
    pub af: Vec<Vec<AfFlags>>,
}

impl MultiMem {
    /// Creates the instance for the given layout, `V` priority levels, and
    /// static process maps.
    pub fn new(layout: PortLayout, v: u32, prio_of: &[u32], cpu_of: &[u32]) -> Self {
        assert_eq!(prio_of.len(), cpu_of.len());
        assert!(prio_of.iter().all(|&x| (1..=v).contains(&x)), "priorities in 1..=V");
        assert!(cpu_of.iter().all(|&x| x < layout.p), "cpus in 0..P");
        for cpu in 0..layout.p {
            let on_cpu = cpu_of.iter().filter(|&&c| c == cpu).count() as u32;
            assert!(on_cpu <= layout.m, "more than M processes on cpu {cpu}");
        }
        let p = layout.p as usize;
        let l = layout.l as usize;
        // Port-number slack: counters stay below 2L + 3M + 4 (monotone,
        // bounded overshoot).
        let ports_len = 2 * l + 3 * layout.m as usize + 4;
        MultiMem {
            layout,
            v,
            lastpub: vec![vec![0; v as usize + 1]; p],
            outval: vec![vec![None; l + 1]; p],
            port: vec![vec![1; v as usize + 1]; p],
            cons: (0..=l).map(|_| CConsensus::new(layout.c())).collect(),
            local_cons: vec![vec![LocalConsensus::new(); ports_len]; p],
            local_cells: vec![vec![[None; 3]; ports_len]; p],
            prio_of: prio_of.to_vec(),
            cpu_of: cpu_of.to_vec(),
            port_claims: vec![vec![None; ports_len]; p],
            af: vec![vec![AfFlags::default(); l + 1]; p],
        }
    }

    /// Oracle-only: records the election outcome of `port` on `cpu` (once)
    /// and scans, from `observer`'s perspective, all levels below the
    /// port's level for access failures visible right now (every port
    /// claimed, nothing published — the paper's "inaccessible to p yet no
    /// decision value has been published").
    fn record_claim_and_scan(&mut self, cpu: u32, port: u32, winner: u32, observer: u32) {
        let slot = &mut self.port_claims[cpu as usize][port as usize];
        if slot.is_none() {
            *slot = Some((winner, self.prio_of[winner as usize]));
        }
        let my_level = self.layout.level_of_port(cpu, port);
        let obs_prio = self.prio_of[observer as usize];
        let numports = self.layout.ports_per_level(cpu);
        for l in 1..my_level.min(self.layout.l + 1) {
            if self.outval[cpu as usize][l as usize].is_some() {
                continue;
            }
            // Ports of level l on this cpu: (l-1)*numports+1 ..= l*numports.
            let claims: Vec<(u32, u32)> = (1..=numports)
                .filter_map(|q| {
                    let pn = (l - 1) * numports + q;
                    self.port_claims[cpu as usize][pn as usize]
                })
                .collect();
            if claims.len() == numports as usize {
                // Level l is inaccessible to `observer` yet unpublished:
                // an access failure caused by the preempted winners at l.
                for &(_, wprio) in &claims {
                    if wprio == obs_prio {
                        self.af[cpu as usize][l as usize].same = true;
                    } else {
                        self.af[cpu as usize][l as usize].diff = true;
                    }
                }
            }
        }
    }
}


/// Projects a [`MultiMem`] out of a larger shared-memory type, so the
/// Fig. 7 procedure can be embedded in bigger programs (Fig. 9 wraps it
/// with an election and an `Output` variable).
pub trait AsMultiMem: 'static {
    /// The embedded Fig. 7 memory.
    fn mm(&mut self) -> &mut MultiMem;
}

impl AsMultiMem for MultiMem {
    fn mm(&mut self) -> &mut MultiMem {
        self
    }
}

/// Process-local state of a Fig. 7 `decide` invocation.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct MultiLocals {
    /// Process id `p`.
    pub me: u32,
    /// Processor `pr(p)`.
    pub cpu: u32,
    /// Priority `priority(p)`.
    pub pri: u32,
    /// Proposal `val`.
    pub val: Val,
    /// Ports per consensus object on this processor.
    pub numports: u32,
    /// Input value for the next level.
    pub input: Val,
    /// Output of the last `C`-consensus invocation.
    pub output: Val,
    /// `lastval` (line 1/15).
    pub lastval: Option<Val>,
    /// Current and previous level.
    pub level: u32,
    /// Level accessed in the previous while-iteration.
    pub prevlevel: u32,
    /// Port numbers.
    pub port: Val,
    /// `newport` (line 20).
    pub newport: Val,
    /// `lowerport` (line 6).
    pub lowerport: Val,
    /// `publevel` / `lowerpublevel`.
    pub publevel: Val,
    /// Published level observed at a lower priority (line 10).
    pub lowerpublevel: Val,
    /// Priority-merge loop index `v`.
    pub vv: u32,
    /// Whether this process won the current port election.
    pub won: bool,
    /// The decision (set on return).
    pub ret: Option<Val>,
    /// Scratch for expanded-mode local elections.
    pub dec: DecideScratch,
}

impl MultiLocals {
    /// Fresh locals for process `me` on `cpu` at priority `pri`, proposing
    /// `val`.
    pub fn new(me: u32, cpu: u32, pri: u32, val: Val) -> Self {
        MultiLocals {
            me,
            cpu,
            pri,
            val,
            numports: 1,
            input: 0,
            output: 0,
            lastval: None,
            level: 0,
            prevlevel: 0,
            port: 1,
            newport: 0,
            lowerport: 0,
            publevel: 0,
            lowerpublevel: 0,
            vv: 0,
            won: false,
            ret: None,
            dec: DecideScratch::default(),
        }
    }
}

/// Builds the Fig. 7 `decide` program in the given [`LocalMode`].
pub fn build_program(mode: LocalMode) -> (Arc<Program<MultiLocals, MultiMem>>, ProcRef) {
    let mut b = ProgramBuilder::<MultiLocals, MultiMem>::new();
    let decide = append_decide_proc(&mut b, mode);
    (b.build(), decide)
}

/// Appends the Fig. 7 `decide` procedure to a program over any memory
/// embedding a [`MultiMem`] (see [`AsMultiMem`]); used directly by the
/// Fig. 9 fair-scheduler wrapper.
#[allow(clippy::too_many_lines)]
pub fn append_decide_proc<M: AsMultiMem>(
    b: &mut ProgramBuilder<MultiLocals, M>,
    mode: LocalMode,
) -> ProcRef {

    // Expanded-mode local election: Fig. 3 decide on the port's cell,
    // proposing the caller's id.
    let local_decide = append_decide(
        b,
        "local-consensus (Fig. 3)",
        u64::MAX, // per-(cpu, port) cell chosen at run time: whole memory
        |m: &mut M, l: &MultiLocals| {
            &mut m.mm().local_cells[l.cpu as usize][l.port as usize]
        },
        |l| u64::from(l.me),
        |l| &mut l.dec,
    );

    let decide = b.proc("decide");
    let l_merge_top = b.label();
    let l_merge_lastpub = b.label();
    let l_merge_inc = b.label();
    let l_while = b.label();
    let l_24 = b.label();
    let l_26 = b.label();
    let l_29 = b.label();
    let l_30b = b.label();
    let l_34 = b.label();
    let l_35 = b.label();

    b.stmt(decide, "1: lastval := Outval[pr(p), L]", |l, m| {
        let m = m.mm();
        l.lastval = m.outval[l.cpu as usize][m.layout.l as usize];
        Flow::Next
    });
    b.stmt(decide, "2: if lastval ≠ ⊥ then return lastval", |l, _m| {
        if let Some(v) = l.lastval {
            l.ret = Some(v);
            Flow::Return
        } else {
            Flow::Next
        }
    });
    b.free(decide, "3: numports := (pr(p) ≤ K) ? 2 : 1", |l, m| {
        l.numports = m.mm().layout.ports_per_level(l.cpu);
        Flow::Next
    });
    b.free(decide, "4: input, prevlevel, level := val, 0, 0", |l, _m| {
        l.input = l.val;
        l.prevlevel = 0;
        l.level = 0;
        Flow::Next
    });
    {
        let l_whilec = l_while;
        b.free(decide, "5: for v := 1 to priority(p) − 1", move |l, _m| {
            l.vv = 1;
            if l.vv < l.pri {
                Flow::Next
            } else {
                Flow::Goto(l_whilec)
            }
        });
    }
    b.bind(decide, l_merge_top);
    b.stmt(decide, "6: lowerport := Port[pr(p), v]", |l, m| {
        l.lowerport = m.mm().port[l.cpu as usize][l.vv as usize];
        Flow::Next
    });
    b.stmt(decide, "7: port := Port[pr(p), priority(p)]", |l, m| {
        l.port = m.mm().port[l.cpu as usize][l.pri as usize];
        Flow::Next
    });
    {
        let l_mlc = l_merge_lastpub;
        b.free(decide, "8: if lowerport > port", move |l, _m| {
            if l.lowerport > l.port {
                Flow::Next
            } else {
                Flow::Goto(l_mlc)
            }
        });
    }
    b.stmt(decide, "9: local-C&S(&Port[pr(p), pri], port, lowerport)", |l, m| {
        let slot = &mut m.mm().port[l.cpu as usize][l.pri as usize];
        if *slot == l.port {
            *slot = l.lowerport;
        }
        Flow::Next
    });
    b.bind(decide, l_merge_lastpub);
    b.stmt(decide, "10: lowerpublevel := Lastpub[pr(p), v]", |l, m| {
        l.lowerpublevel = m.mm().lastpub[l.cpu as usize][l.vv as usize];
        Flow::Next
    });
    b.stmt(decide, "11: publevel := Lastpub[pr(p), priority(p)]", |l, m| {
        l.publevel = m.mm().lastpub[l.cpu as usize][l.pri as usize];
        Flow::Next
    });
    {
        let l_mic = l_merge_inc;
        b.free(decide, "12: if lowerpublevel > publevel", move |l, _m| {
            if l.lowerpublevel > l.publevel {
                Flow::Next
            } else {
                Flow::Goto(l_mic)
            }
        });
    }
    b.stmt(decide, "13: local-C&S(&Lastpub[pr(p), pri], publevel, lowerpublevel)", |l, m| {
        let slot = &mut m.mm().lastpub[l.cpu as usize][l.pri as usize];
        if *slot == l.publevel {
            *slot = l.lowerpublevel;
        }
        Flow::Next
    });
    b.bind(decide, l_merge_inc);
    {
        let l_mtc = l_merge_top;
        b.free(decide, "5b: v := v + 1", move |l, _m| {
            l.vv += 1;
            if l.vv < l.pri {
                Flow::Goto(l_mtc)
            } else {
                Flow::Next
            }
        });
    }
    b.bind(decide, l_while);
    {
        let l_35c = l_35;
        b.free(decide, "14: while level ≤ L", move |l, m| {
            if l.level <= m.mm().layout.l {
                Flow::Next
            } else {
                Flow::Goto(l_35c)
            }
        });
    }
    b.stmt(decide, "15: lastval := Outval[pr(p), L]", |l, m| {
        let m = m.mm();
        l.lastval = m.outval[l.cpu as usize][m.layout.l as usize];
        Flow::Next
    });
    b.stmt(decide, "16: if lastval ≠ ⊥ then return lastval", |l, _m| {
        if let Some(v) = l.lastval {
            l.ret = Some(v);
            Flow::Return
        } else {
            Flow::Next
        }
    });
    b.stmt(decide, "17: port := Port[pr(p), priority(p)]", |l, m| {
        l.port = m.mm().port[l.cpu as usize][l.pri as usize];
        Flow::Next
    });
    b.free(decide, "18: level := ((port − 1) div numports) + 1", |l, _m| {
        l.level = ((l.port - 1) / u64::from(l.numports) + 1) as u32;
        Flow::Next
    });
    {
        let l_24c = l_24;
        b.free(decide, "19: if prevlevel = level", move |l, _m| {
            if l.prevlevel == l.level {
                Flow::Next
            } else {
                Flow::Goto(l_24c)
            }
        });
    }
    b.free(decide, "20: newport := port + numports", |l, _m| {
        l.newport = l.port + u64::from(l.numports);
        Flow::Next
    });
    {
        let l_26c = l_26;
        b.stmt(decide, "21-22: if local-C&S(&Port, port, newport+1) then port := newport", move |l, m| {
            let slot = &mut m.mm().port[l.cpu as usize][l.pri as usize];
            if *slot == l.port {
                *slot = l.newport + 1;
                l.port = l.newport;
                Flow::Goto(l_26c)
            } else {
                Flow::Next
            }
        });
    }
    {
        let l_26c = l_26;
        b.stmt(decide, "23: port := local-F&I(&Port[pr(p), pri])", move |l, m| {
            let slot = &mut m.mm().port[l.cpu as usize][l.pri as usize];
            l.port = *slot;
            *slot += 1;
            Flow::Goto(l_26c)
        });
    }
    b.bind(decide, l_24);
    b.stmt(decide, "25: port := local-F&I(&Port[pr(p), pri])", |l, m| {
        let slot = &mut m.mm().port[l.cpu as usize][l.pri as usize];
        l.port = *slot;
        *slot += 1;
        Flow::Next
    });
    b.bind(decide, l_26);
    b.free(decide, "26: level := ((port − 1) div numports) + 1", |l, _m| {
        l.level = ((l.port - 1) / u64::from(l.numports) + 1) as u32;
        Flow::Next
    });
    b.stmt(decide, "27: publevel := Lastpub[pr(p), priority(p)]", |l, m| {
        l.publevel = m.mm().lastpub[l.cpu as usize][l.pri as usize];
        Flow::Next
    });
    b.stmt(decide, "28: if publevel ≠ 0 then input := Outval[pr(p), publevel]", |l, m| {
        if l.publevel != 0 {
            if let Some(v) = m.mm().outval[l.cpu as usize][l.publevel as usize] {
                l.input = v;
            }
        }
        Flow::Next
    });
    b.bind(decide, l_29);
    {
        let l_34c = l_34;
        b.free(decide, "29: if level ≤ L", move |l, m| {
            if l.level <= m.mm().layout.l {
                Flow::Next
            } else {
                Flow::Goto(l_34c)
            }
        });
    }
    // ---- line 30: the port election, in the configured mode ----
    match mode {
        LocalMode::Modeled => {
            b.stmt(decide, "30: if local-consensus(pr(p), port, p) = p", |l, m| {
                let m = m.mm();
                let w = m.local_cons[l.cpu as usize][l.port as usize].decide(u64::from(l.me));
                m.record_claim_and_scan(l.cpu, l.port as u32, w as u32, l.me);
                l.won = w == u64::from(l.me);
                Flow::Next
            });
        }
        LocalMode::Expanded => {
            b.free(decide, "30: local-consensus(pr(p), port, p) — Fig. 3", move |_l, _m| {
                Flow::Call(local_decide)
            });
            b.free(decide, "30a: record winner", |l, m| {
                let w = l.dec.ret.expect("Fig. 3 decide always returns");
                m.mm().record_claim_and_scan(l.cpu, l.port as u32, w as u32, l.me);
                l.won = w == u64::from(l.me);
                Flow::Next
            });
        }
    }
    {
        let l_34c = l_34;
        b.bind(decide, l_30b);
        b.free(decide, "30b: … = p ?", move |l, _m| {
            if l.won {
                Flow::Next
            } else {
                Flow::Goto(l_34c)
            }
        });
    }
    b.stmt(decide, "31: output := C-consensus(level, input)", |l, m| {
        let r = m.mm().cons[l.level as usize].invoke(l.input);
        // ⊥ (object exhausted) only happens when elections misbehaved
        // below the quantum bound; it carries no useful information, so
        // the process keeps its current input as "output".
        l.output = r.unwrap_or(l.input);
        Flow::Next
    });
    b.stmt(decide, "32: Outval[pr(p), level] := output", |l, m| {
        m.mm().outval[l.cpu as usize][l.level as usize] = Some(l.output);
        Flow::Next
    });
    b.stmt(decide, "33: local-C&S(&Lastpub[pr(p), pri], publevel, level)", |l, m| {
        let slot = &mut m.mm().lastpub[l.cpu as usize][l.pri as usize];
        if *slot == l.publevel {
            *slot = u64::from(l.level);
        }
        Flow::Next
    });
    b.bind(decide, l_34);
    {
        let l_whilec = l_while;
        b.free(decide, "34: prevlevel := level", move |l, _m| {
            l.prevlevel = l.level;
            Flow::Goto(l_whilec)
        });
    }
    b.bind(decide, l_35);
    b.stmt(decide, "35: publevel := Lastpub[pr(p), priority(p)]", |l, m| {
        l.publevel = m.mm().lastpub[l.cpu as usize][l.pri as usize];
        Flow::Next
    });
    b.stmt(decide, "36: return Outval[pr(p), publevel]", |l, m| {
        l.ret = if l.publevel == 0 {
            None
        } else {
            m.mm().outval[l.cpu as usize][l.publevel as usize]
        };
        Flow::Return
    });

    decide
}

/// Builds a single-shot `decide(val)` machine for process `me` on `cpu` at
/// priority `pri`. Its output is the decision (`None` would indicate a
/// correctness failure and trips the test oracles).
pub fn decide_machine(
    me: u32,
    cpu: u32,
    pri: u32,
    val: Val,
    mode: LocalMode,
) -> ProgMachine<MultiLocals, MultiMem> {
    let (prog, entry) = build_program(mode);
    ProgMachine::single_shot(&prog, MultiLocals::new(me, cpu, pri, val), entry)
        .with_output(|l| l.ret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::failures::{
        deciding_level_exists, lemma2_holds, lemma3_bound_holds, summarize,
    };
    use sched_sim::decision::{RoundRobin, SeededRandom};
    use sched_sim::ids::{ProcessId, ProcessorId, Priority};
    use sched_sim::kernel::{Kernel, SystemSpec};

    /// Builds a kernel: `procs[pid] = (cpu, priority, input)`.
    fn kernel(
        spec: SystemSpec,
        p: u32,
        c: u32,
        v: u32,
        procs: &[(u32, u32, Val)],
        mode: LocalMode,
    ) -> Kernel<MultiMem> {
        let prio: Vec<u32> = procs.iter().map(|&(_, pr, _)| pr).collect();
        let cpus: Vec<u32> = procs.iter().map(|&(cc, _, _)| cc).collect();
        let m = (0..p)
            .map(|cc| cpus.iter().filter(|&&x| x == cc).count() as u32)
            .max()
            .unwrap()
            .max(1);
        let layout = PortLayout::new(p, c, m);
        let mem = MultiMem::new(layout, v, &prio, &cpus);
        let mut k = Kernel::new(mem, spec);
        for (pid, &(cpu, pr, val)) in procs.iter().enumerate() {
            k.add_process(
                ProcessorId(cpu),
                Priority(pr),
                Box::new(decide_machine(pid as u32, cpu, pr, val, mode)),
            );
        }
        k
    }

    fn check_agreement(k: &Kernel<MultiMem>, inputs: &[Val]) -> Result<Val, String> {
        let n = k.n_processes();
        let first = k
            .output(ProcessId(0))
            .ok_or_else(|| "p0 returned ⊥".to_string())?;
        for pid in 0..n as u32 {
            match k.output(ProcessId(pid)) {
                Some(v) if v == first => {}
                Some(v) => return Err(format!("disagreement: p{pid} got {v}, p0 got {first}")),
                None => return Err(format!("p{pid} returned ⊥")),
            }
        }
        if !inputs.contains(&first) {
            return Err(format!("invalid decision {first}"));
        }
        Ok(first)
    }

    #[test]
    fn single_process_decides_own_value() {
        let mut k = kernel(SystemSpec::hybrid(64), 1, 1, 1, &[(0, 1, 42)], LocalMode::Modeled);
        k.run(&mut RoundRobin::new(), 100_000);
        assert!(k.all_finished());
        assert_eq!(k.output(ProcessId(0)), Some(42));
    }

    /// Sweep the whole (P, C) triangle of Table 1's upper-bound column with
    /// fair scheduling and a generous quantum: agreement must always hold.
    #[test]
    fn agreement_across_p_c_grid_fair() {
        for p in 1..=3u32 {
            for c in p..=2 * p {
                let mut procs = Vec::new();
                let mut val = 1;
                for cpu in 0..p {
                    for pr in 1..=2u32 {
                        procs.push((cpu, pr, val));
                        val += 1;
                    }
                }
                let inputs: Vec<Val> = procs.iter().map(|&(_, _, x)| x).collect();
                let mut k =
                    kernel(SystemSpec::hybrid(64), p, c, 2, &procs, LocalMode::Modeled);
                k.run(&mut RoundRobin::new(), 10_000_000);
                assert!(k.all_finished(), "P={p} C={c} did not finish");
                check_agreement(&k, &inputs).unwrap_or_else(|e| panic!("P={p} C={c}: {e}"));
            }
        }
    }

    #[test]
    fn agreement_random_schedules_many_seeds() {
        for seed in 0..60 {
            let procs = [(0, 1, 10), (0, 2, 20), (1, 1, 30), (1, 1, 40), (1, 2, 50)];
            let inputs = [10, 20, 30, 40, 50];
            let mut k = kernel(
                SystemSpec::hybrid(64).with_adversarial_alignment(),
                2,
                3,
                2,
                &procs,
                LocalMode::Modeled,
            );
            k.run(&mut SeededRandom::new(seed), 10_000_000);
            assert!(k.all_finished(), "seed {seed} did not finish");
            check_agreement(&k, &inputs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    /// The port discipline caps every C-consensus object at C invocations.
    #[test]
    fn consensus_objects_never_exhausted() {
        for seed in 0..40 {
            let procs = [(0, 1, 1), (0, 1, 2), (1, 1, 3), (1, 2, 4)];
            let mut k = kernel(
                SystemSpec::hybrid(64).with_adversarial_alignment(),
                2,
                3,
                2,
                &procs,
                LocalMode::Modeled,
            );
            k.run(&mut SeededRandom::new(seed), 10_000_000);
            assert!(k.all_finished());
            let c = k.mem.layout.c();
            for (lvl, o) in k.mem.cons.iter().enumerate().skip(1) {
                assert!(
                    o.invocations() <= c,
                    "seed {seed}: level {lvl} invoked {} > C = {c}",
                    o.invocations()
                );
            }
        }
    }

    /// Theorem 4's complexity claim: polynomial (here: explicitly bounded)
    /// work per process, across adversarial random schedules.
    #[test]
    fn wait_free_step_bound() {
        let mut max_steps = 0;
        for seed in 0..40 {
            let procs = [(0, 1, 1), (0, 2, 2), (1, 1, 3), (1, 2, 4)];
            let mut k = kernel(
                SystemSpec::hybrid(64).with_adversarial_alignment(),
                2,
                2,
                2,
                &procs,
                LocalMode::Modeled,
            );
            k.run(&mut SeededRandom::new(seed), 10_000_000);
            assert!(k.all_finished());
            for pid in 0..4u32 {
                max_steps = max_steps.max(k.stats(ProcessId(pid)).own_steps);
            }
        }
        // L = 21 for (P=2, K=0, M=2); with ~8 counted statements per
        // iteration and ≤ 2L iterations the bound below is generous but
        // fixed — wait-freedom is an absolute cap, not an expectation.
        assert!(max_steps <= 2_000, "own-step bound blown: {max_steps}");
    }

    /// Lemmas 2 and 3 hold on every adversarial run with an adequate
    /// quantum, and a deciding level exists.
    #[test]
    fn access_failure_lemmas_hold() {
        for seed in 0..60 {
            let procs = [(0, 1, 1), (0, 1, 2), (0, 2, 3), (1, 1, 4), (1, 1, 5), (1, 2, 6)];
            let mut k = kernel(
                SystemSpec::hybrid(64).with_adversarial_alignment(),
                2,
                3,
                2,
                &procs,
                LocalMode::Modeled,
            );
            k.run(&mut SeededRandom::new(seed), 10_000_000);
            assert!(k.all_finished());
            let s = summarize(&k.mem);
            assert!(lemma2_holds(&k.mem), "seed {seed}: Lemma 2 violated: {s:?}");
            assert!(lemma3_bound_holds(&k.mem), "seed {seed}: Lemma 3 violated: {s:?}");
            assert!(
                deciding_level_exists(&k.mem),
                "seed {seed}: no deciding level: {s:?}"
            );
        }
    }

    /// Ablation (DESIGN.md §6.2): the fully expanded Fig. 3 port elections
    /// behave identically to the modeled-atomic ones when Q respects the
    /// Theorem 1 bound.
    #[test]
    fn expanded_local_mode_agrees() {
        for seed in 0..40 {
            let procs = [(0, 1, 10), (0, 1, 20), (1, 1, 30), (1, 2, 40)];
            let inputs = [10, 20, 30, 40];
            let mut k = kernel(
                SystemSpec::hybrid(64).with_adversarial_alignment(),
                2,
                3,
                2,
                &procs,
                LocalMode::Expanded,
            );
            k.run(&mut SeededRandom::new(seed), 20_000_000);
            assert!(k.all_finished(), "seed {seed} did not finish");
            check_agreement(&k, &inputs)
                .unwrap_or_else(|e| panic!("expanded mode, seed {seed}: {e}"));
        }
    }

    /// Degenerations: pure priority scheduling (distinct priorities
    /// everywhere) and pure quantum scheduling (one level) both stay
    /// correct — the paper's "resilient to the specific type of scheduler"
    /// property.
    #[test]
    fn degenerations_pure_priority_and_pure_quantum() {
        for seed in 0..30 {
            // Pure priority: one process per (cpu, level).
            let procs = [(0, 1, 1), (0, 2, 2), (1, 1, 3), (1, 2, 4)];
            let mut k = kernel(SystemSpec::pure_priority(), 2, 3, 2, &procs, LocalMode::Modeled);
            k.run(&mut SeededRandom::new(seed), 10_000_000);
            assert!(k.all_finished());
            check_agreement(&k, &[1, 2, 3, 4])
                .unwrap_or_else(|e| panic!("pure-priority seed {seed}: {e}"));

            // Pure quantum: everyone at level 1.
            let procs = [(0, 1, 1), (0, 1, 2), (1, 1, 3), (1, 1, 4)];
            let mut k = kernel(
                SystemSpec::pure_quantum(64).with_adversarial_alignment(),
                2,
                3,
                1,
                &procs,
                LocalMode::Modeled,
            );
            k.run(&mut SeededRandom::new(seed), 10_000_000);
            assert!(k.all_finished());
            check_agreement(&k, &[1, 2, 3, 4])
                .unwrap_or_else(|e| panic!("pure-quantum seed {seed}: {e}"));
        }
    }

    /// Lower-priority progress is merged at startup (lines 5–13): a process
    /// arriving after lower-priority processes decided returns their value.
    #[test]
    fn late_higher_priority_process_adopts_decision() {
        let procs = [(0, 1, 7)];
        let k = kernel(SystemSpec::hybrid(64), 1, 1, 2, &procs, LocalMode::Modeled);
        // Note: kernel() sized M from procs; rebuild with room for the
        // latecomer.
        let layout = PortLayout::new(1, 1, 2);
        let mem = MultiMem::new(layout, 2, &[1, 2], &[0, 0]);
        let mut k2 = Kernel::new(mem, SystemSpec::hybrid(64));
        k2.add_process(
            ProcessorId(0),
            Priority(1),
            Box::new(decide_machine(0, 0, 1, 7, LocalMode::Modeled)),
        );
        let hi = k2.add_held_process(
            ProcessorId(0),
            Priority(2),
            Box::new(decide_machine(1, 0, 2, 9, LocalMode::Modeled)),
        );
        let mut d = RoundRobin::new();
        k2.run(&mut d, 1_000_000); // low-priority process decides 7
        assert_eq!(k2.output(ProcessId(0)), Some(7));
        k2.release(hi);
        k2.run(&mut d, 1_000_000);
        assert!(k2.all_finished());
        assert_eq!(k2.output(hi), Some(7), "latecomer must adopt the decision");
        drop(k);
    }

    /// A mid-operation arrival of a higher-priority process preempts
    /// immediately (Axiom 1); the preempted process still agrees.
    #[test]
    fn preemption_by_late_higher_priority() {
        for release_at in [1u64, 5, 10, 20, 40, 80] {
            let layout = PortLayout::new(2, 3, 2);
            let mem = MultiMem::new(layout, 2, &[1, 2, 1], &[0, 0, 1]);
            let mut k = Kernel::new(mem, SystemSpec::hybrid(64));
            k.add_process(
                ProcessorId(0),
                Priority(1),
                Box::new(decide_machine(0, 0, 1, 10, LocalMode::Modeled)),
            );
            let hi = k.add_held_process(
                ProcessorId(0),
                Priority(2),
                Box::new(decide_machine(1, 0, 2, 20, LocalMode::Modeled)),
            );
            k.add_process(
                ProcessorId(1),
                Priority(1),
                Box::new(decide_machine(2, 1, 1, 30, LocalMode::Modeled)),
            );
            let mut d = RoundRobin::new();
            for _ in 0..release_at {
                k.step(&mut d);
            }
            k.release(hi);
            k.run(&mut d, 10_000_000);
            assert!(k.all_finished(), "release_at {release_at}");
            check_agreement(&k, &[10, 20, 30])
                .unwrap_or_else(|e| panic!("release_at {release_at}: {e}"));
        }
    }
}
