//! Universality: wait-free objects of arbitrary type built from consensus.
//!
//! The paper's headline is that an object with consensus number `P` is
//! *universal* on `P` processors: consensus for any number of processes
//! (Theorems 1 and 4) plus Herlihy's universal construction yields a
//! wait-free implementation of **any** object. This module provides that
//! last step: a log-based Herlihy universal construction over the
//! uniprocessor consensus objects the paper implements from reads and
//! writes (Theorem 1 justifies modeling each `decide` as one atomic
//! statement on a hybrid-scheduled uniprocessor; `uni::consensus` is the
//! statement-level implementation).
//!
//! The construction: operations are agreed into a shared **log**, one
//! consensus object per log slot. Each process replays the decided prefix
//! against its private replica of the sequential object to compute its
//! results — no process ever waits on another. *Helping* makes it
//! wait-free rather than merely lock-free: every process announces its
//! pending operation, and slot `k`'s proposal is preferentially the
//! announced operation of process `k mod N`, so an operation is decided
//! within `N` slots of its announcement (the classical round-robin
//! helping discipline).
//!
//! The objects provided — FIFO queue, counter, CAS register — are the
//! workloads the motivation section's real-time systems (QNX, IRIX REACT,
//! VxWorks) share between mixed-priority tasks.

use std::sync::Arc;

use sched_sim::program::{Flow, InvocationPlan, ProgMachine, Program, ProgramBuilder};
use wfmem::{LocalConsensus, Val};

use crate::counters::AlgCounters;
use crate::oracle::{QueueOp, SeqSpec};
#[cfg(test)]
use crate::oracle::EMPTY;

/// An operation descriptor in the announce array: `(pid, seq)` identifies
/// the `seq`-th operation of process `pid`.
fn op_token(pid: u32, seq: u32) -> Val {
    (u64::from(pid) << 32) | u64::from(seq)
}

fn token_pid(tok: Val) -> u32 {
    (tok >> 32) as u32
}

fn token_seq(tok: Val) -> u32 {
    (tok & 0xffff_ffff) as u32
}

/// Shared memory of a universal object for `n` processes.
///
/// `S::Op` descriptors are announced in `announce[pid]`; the log of
/// consensus objects (`log[k]`) decides which announced operation occupies
/// slot `k`. The sequential state itself is **not** shared: every process
/// replays the log privately.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct UniversalMem<S: SeqSpec>
where
    S::Op: std::hash::Hash + Eq,
{
    /// Number of processes.
    pub n: u32,
    /// Announced pending operation of each process: `(token, op)`.
    pub announce: Vec<Option<(Val, S::Op)>>,
    /// The log: slot `k`'s consensus object decides an operation token.
    pub log: Vec<LocalConsensus>,
    /// Every operation ever announced, by `(pid, seq)` — write-once, so
    /// replays never race with announce-array clearing.
    pub ops: Vec<Vec<S::Op>>,
    /// Helping/retry telemetry (ignored by `==` and hashing; see
    /// [`crate::counters`]).
    pub counters: AlgCounters,
}

impl<S: SeqSpec> UniversalMem<S>
where
    S::Op: std::hash::Hash + Eq,
{
    /// Creates shared memory for `n` processes with room for `capacity`
    /// log slots (one per operation that will ever be applied).
    pub fn new(n: u32, capacity: usize) -> Self {
        UniversalMem {
            n,
            announce: vec![None; n as usize],
            log: vec![LocalConsensus::new(); capacity],
            ops: vec![Vec::new(); n as usize],
            counters: AlgCounters::default(),
        }
    }

    /// The decided log prefix as operation tokens (oracle use).
    pub fn decided_log(&self) -> Vec<Val> {
        self.log.iter().map_while(|c| c.read()).collect()
    }
}

/// Process-local state: the private replica plus the apply loop registers.
///
/// `applied[w]` is the next sequence number of process `w` this replica
/// expects; log slots deciding an older token are *duplicates* (a helper
/// re-proposed a token that had already won an earlier slot) and are
/// skipped during replay — the dedup that makes helping safe.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct UniversalLocals<S: SeqSpec>
where
    S::State: std::hash::Hash,
    S::Op: std::hash::Hash,
{
    /// Process id.
    pub me: u32,
    /// The sequential specification (replay rules).
    pub spec_state: S::State,
    /// Next log slot this process has not yet replayed.
    pub k: u32,
    /// This invocation's operation and token.
    pub my_op: Option<S::Op>,
    /// Token of the pending operation.
    pub my_token: Val,
    /// Sequence number of the next operation.
    pub seq: u32,
    /// Next expected sequence number per process (duplicate filtering).
    pub applied: Vec<u32>,
    /// Result of the completed invocation.
    pub ret: Option<Val>,
}

/// Builds the universal-object program for spec `S`.
///
/// The `apply` procedure announces the staged operation (`my_op`), then
/// repeatedly proposes into log slots — helping the announced operation of
/// process `k mod N` first — replaying each decided slot on the private
/// replica, until its own operation is decided; the replica then yields
/// the result.
pub fn build_program<S>(spec: S) -> (Arc<Program<UniversalLocals<S>, UniversalMem<S>>>, sched_sim::program::ProcRef)
where
    S: SeqSpec + Clone + Send + Sync + 'static,
    S::State: std::hash::Hash + Send + Sync,
    S::Op: std::hash::Hash + Eq + Send + Sync,
{
    let mut b = ProgramBuilder::<UniversalLocals<S>, UniversalMem<S>>::new();
    let apply = b.proc("universal-apply");

    b.stmt(apply, "a1: announce[p] := (token, op)", |l, m| {
        let op = l.my_op.clone().expect("operation staged");
        // Push-once: a crash-and-restart re-runs this statement with the
        // same token, and the op log is indexed by sequence number — a
        // second push would shift every later op of this process. The
        // re-announce is idempotent (same token, same op).
        let row = &mut m.ops[l.me as usize];
        if row.len() as u32 == token_seq(l.my_token) {
            row.push(op.clone());
        } else {
            debug_assert!(row.len() as u32 > token_seq(l.my_token));
        }
        m.announce[l.me as usize] = Some((l.my_token, op));
        Flow::Next
    });
    let loop_top = b.here(apply);
    {
        let spec = spec.clone();
        b.stmt(apply, "a2: decide(log[k], help ?: own)", move |l, m| {
            // Helping: prefer the announced pending op of process k mod N.
            let helpee = (l.k % m.n) as usize;
            let proposal = match &m.announce[helpee] {
                Some((tok, _)) => *tok,
                None => l.my_token,
            };
            if proposal == l.my_token {
                m.counters.own_proposals += 1;
            } else {
                m.counters.helped_proposals += 1;
            }
            let slot = l.k as usize;
            assert!(slot < m.log.len(), "universal log capacity exceeded");
            let decided = m.log[slot].decide(proposal);
            l.k += 1;
            let (winner, wseq) = (token_pid(decided), token_seq(decided));
            if wseq != l.applied[winner as usize] {
                // Duplicate slot (helper re-proposed an applied token):
                // skip it in the replay.
                debug_assert!(wseq < l.applied[winner as usize]);
                m.counters.duplicate_retries += 1;
                return Flow::Goto(loop_top);
            }
            // First occurrence: replay on the private replica.
            let op = m.ops[winner as usize][wseq as usize].clone();
            let (next, result) = spec.apply(&l.spec_state, &op);
            l.spec_state = next;
            l.applied[winner as usize] += 1;
            if decided == l.my_token {
                l.ret = Some(result);
                Flow::Next
            } else {
                Flow::Goto(loop_top)
            }
        });
    }
    b.stmt(apply, "a3: announce[p] := ⊥; return result", |l, m| {
        m.announce[l.me as usize] = None;
        Flow::Return
    });

    (b.build(), apply)
}

/// Builds a machine performing `ops` in sequence against the universal
/// object. Per-invocation output is the operation's result.
pub fn op_machine<S>(
    spec: S,
    me: u32,
    n: u32,
    ops: Vec<S::Op>,
) -> ProgMachine<UniversalLocals<S>, UniversalMem<S>>
where
    S: SeqSpec + Clone + Send + Sync + 'static,
    S::State: std::hash::Hash + Send + Sync + 'static,
    S::Op: std::hash::Hash + Eq + Send + Sync + 'static,
{
    let init = spec.init();
    let (prog, apply) = build_program(spec);
    let plan: InvocationPlan<UniversalLocals<S>> = Arc::new(move |l, inv| {
        let op = ops.get(inv as usize)?.clone();
        l.my_op = Some(op);
        l.my_token = op_token(l.me, l.seq);
        l.seq += 1;
        l.ret = None;
        Some(apply)
    });
    ProgMachine::with_plan(
        &prog,
        UniversalLocals {
            me,
            spec_state: init,
            k: 0,
            my_op: None,
            my_token: 0,
            seq: 0,
            applied: vec![0; n as usize],
            ret: None,
        },
        plan,
    )
    .with_output(|l| l.ret)
}

/// A convenience sequential replay: folds the decided log (with duplicate
/// filtering, as every replica does) through the spec — the "ground truth"
/// final state for oracles.
pub fn replay_final_state<S>(spec: &S, m: &UniversalMem<S>) -> S::State
where
    S: SeqSpec,
    S::Op: std::hash::Hash + Eq + Clone,
{
    let mut st = spec.init();
    let mut applied = vec![0u32; m.n as usize];
    for tok in m.decided_log() {
        let (w, ws) = (token_pid(tok), token_seq(tok));
        if ws != applied[w as usize] {
            continue;
        }
        applied[w as usize] += 1;
        let op = m.ops[w as usize][ws as usize].clone();
        st = spec.apply(&st, &op).0;
    }
    st
}

/// Sequential specification of a fetch-and-add counter (op = addend;
/// result = value before the add).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct CounterSpec;

impl SeqSpec for CounterSpec {
    type Op = Val;
    type State = Val;

    fn init(&self) -> Val {
        0
    }

    fn apply(&self, state: &Val, op: &Val) -> (Val, Val) {
        (state + op, *state)
    }
}

/// Re-export of the FIFO queue spec for universal-queue construction.
pub use crate::oracle::QueueSpec;

/// Builds the op list for a queue producer (enqueues `vals`).
pub fn producer_ops(vals: &[Val]) -> Vec<QueueOp> {
    vals.iter().map(|&v| QueueOp::Enq(v)).collect()
}

/// Builds the op list for a queue consumer (`n` dequeues).
pub fn consumer_ops(n: usize) -> Vec<QueueOp> {
    vec![QueueOp::Deq; n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{check_linearizable, TimedOp};
    use sched_sim::decision::{RoundRobin, SeededRandom};
    use sched_sim::ids::{ProcessId, ProcessorId, Priority};
    use sched_sim::kernel::{Kernel, SystemSpec};

    fn queue_kernel(
        spec: SystemSpec,
        plans: &[(u32, Vec<QueueOp>)],
    ) -> Kernel<UniversalMem<QueueSpec>> {
        let n = plans.len() as u32;
        let cap = 4 * plans.iter().map(|(_, o)| o.len()).sum::<usize>() + 4;
        let mut k = Kernel::new(UniversalMem::new(n, cap), spec);
        for (pid, (prio, ops)) in plans.iter().enumerate() {
            k.add_process(
                ProcessorId(0),
                Priority(*prio),
                Box::new(op_machine(QueueSpec, pid as u32, n, ops.clone())),
            );
        }
        k
    }

    fn check_queue_linearizable(
        k: &Kernel<UniversalMem<QueueSpec>>,
        plans: &[(u32, Vec<QueueOp>)],
    ) {
        assert!(k.all_finished());
        let ops: Vec<TimedOp<QueueOp>> = k
            .ops()
            .iter()
            .map(|r| TimedOp {
                start: r.start,
                end: r.t,
                op: plans[r.pid.index()].1[r.inv_index as usize],
                result: r.output.expect("op completed"),
            })
            .collect();
        check_linearizable(&QueueSpec, &ops).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn queue_spsc_fifo() {
        let plans = vec![
            (1, producer_ops(&[1, 2, 3, 4])),
            (1, consumer_ops(4)),
        ];
        let mut k = queue_kernel(SystemSpec::hybrid(8), &plans);
        k.run(&mut RoundRobin::new(), 1_000_000);
        check_queue_linearizable(&k, &plans);
    }

    #[test]
    fn queue_mpmc_random_schedules() {
        for seed in 0..60 {
            let plans = vec![
                (1, producer_ops(&[1, 2])),
                (1, producer_ops(&[10, 20])),
                (2, consumer_ops(3)),
                (2, consumer_ops(2)),
            ];
            let mut k = queue_kernel(
                SystemSpec::hybrid(8).with_adversarial_alignment(),
                &plans,
            );
            k.run(&mut SeededRandom::new(seed), 1_000_000);
            assert!(k.all_finished(), "seed {seed}");
            check_queue_linearizable(&k, &plans);
        }
    }

    #[test]
    fn queue_empty_returns_sentinel() {
        let plans = vec![(1, consumer_ops(1))];
        let mut k = queue_kernel(SystemSpec::hybrid(8), &plans);
        k.run(&mut RoundRobin::new(), 1_000);
        assert_eq!(k.ops()[0].output, Some(EMPTY));
    }

    #[test]
    fn counter_sums_exactly_once_per_op() {
        for seed in 0..40 {
            let n = 4u32;
            let per = 5u32;
            let mut k = Kernel::new(
                UniversalMem::<CounterSpec>::new(n, 4 * (n * per) as usize + 4),
                SystemSpec::hybrid(8).with_adversarial_alignment(),
            );
            let mut total = 0;
            for pid in 0..n {
                let ops: Vec<Val> = (0..per).map(|i| u64::from(pid * 100 + i + 1)).collect();
                total += ops.iter().sum::<Val>();
                k.add_process(
                    ProcessorId(0),
                    Priority(1 + pid % 2),
                    Box::new(op_machine(CounterSpec, pid, n, ops)),
                );
            }
            k.run(&mut SeededRandom::new(seed), 1_000_000);
            assert!(k.all_finished(), "seed {seed}");
            // Every op applied exactly once (duplicates filtered): the
            // replayed final state is the exact sum of all addends.
            assert_eq!(
                replay_final_state(&CounterSpec, &k.mem),
                total,
                "seed {seed}"
            );
            // And all n·per distinct tokens were decided somewhere.
            let mut uniq = k.mem.decided_log();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), (n * per) as usize, "seed {seed}");
        }
    }

    /// Wait-freedom with helping: an operation completes within N log
    /// slots of its announcement, so per-op own-steps are bounded.
    #[test]
    fn helping_bounds_op_latency() {
        for seed in 0..40 {
            let n = 5u32;
            let mut k = Kernel::new(
                UniversalMem::<CounterSpec>::new(n, 100),
                SystemSpec::hybrid(8).with_adversarial_alignment(),
            );
            for pid in 0..n {
                k.add_process(
                    ProcessorId(0),
                    Priority(1),
                    Box::new(op_machine(CounterSpec, pid, n, vec![1, 1, 1])),
                );
            }
            k.run(&mut SeededRandom::new(seed), 1_000_000);
            assert!(k.all_finished());
            for pid in 0..n {
                let steps = k.stats(ProcessId(pid)).own_steps;
                // 3 ops; each decided within N slots of announcement, plus
                // duplicate slots: a generous fixed cap.
                assert!(steps <= 200, "seed {seed}: {steps} steps");
            }
        }
    }

    #[test]
    fn mixed_priority_queue_under_preemption() {
        // The RTOS motivation: a high-priority task preempts mid-operation;
        // the queue stays consistent.
        let plans = vec![
            (1, producer_ops(&[1, 2, 3])),
            (3, consumer_ops(2)),
            (2, producer_ops(&[9])),
        ];
        let mut k = queue_kernel(SystemSpec::hybrid(8), &plans);
        k.run(&mut RoundRobin::new(), 1_000_000);
        check_queue_linearizable(&k, &plans);
    }

    /// The observability counters tell the universal construction's story:
    /// every planned operation completes (kernel counters), the round-robin
    /// helping discipline proposes other processes' announced operations,
    /// and duplicate log slots really occur and are retried (object
    /// counters) — the mechanism that makes the construction wait-free
    /// rather than merely lock-free.
    #[test]
    fn obs_counters_track_universal_helping() {
        let mut helped_total = 0u64;
        let mut dup_total = 0u64;
        for seed in 0..20 {
            let n = 4u32;
            let per = 3u32;
            let mut k = Kernel::new(
                UniversalMem::<CounterSpec>::new(n, 4 * (n * per) as usize + 4),
                SystemSpec::hybrid(8).with_adversarial_alignment(),
            );
            for pid in 0..n {
                k.add_process(
                    ProcessorId(0),
                    Priority(1 + pid % 2),
                    Box::new(op_machine(CounterSpec, pid, n, vec![1; per as usize])),
                );
            }
            k.run(&mut SeededRandom::new(seed), 1_000_000);
            assert!(k.all_finished(), "seed {seed}");

            let c = k.counters();
            assert_eq!(c.invocations_completed, u64::from(n * per), "seed {seed}");
            let own: u64 = (0..n).map(|p| k.stats(ProcessId(p)).own_steps).sum();
            assert_eq!(c.statements, own, "seed {seed}");

            // Each a2 execution makes exactly one proposal; the split into
            // helped/own must account for all of them.
            let a = k.mem.counters;
            assert!(a.proposals() > 0, "seed {seed}");
            helped_total += a.helped_proposals;
            dup_total += a.duplicate_retries;
        }
        assert!(helped_total > 0, "helping never fired across 20 seeds");
        assert!(dup_total > 0, "no duplicate slot across 20 seeds");
    }

    #[test]
    fn token_encoding_roundtrip() {
        assert_eq!(token_pid(op_token(7, 9)), 7);
        assert_ne!(op_token(1, 2), op_token(2, 1));
    }
}
