//! # hybrid-wf
//!
//! A reproduction of **Anderson & Moir, "Wait-Free Synchronization in
//! Multiprogrammed Systems: Integrating Priority-Based and Quantum-Based
//! Scheduling" (PODC 1999)** as a Rust library.
//!
//! The paper studies multiprogrammed systems whose per-processor schedulers
//! are *hybrid*: they always run a maximal-priority ready process (Axiom 1)
//! and allocate time among equal-priority processes in quanta of `Q` atomic
//! statements (Axiom 2). Its central result: **any object with consensus
//! number `P` is universal for any number of processes on `P` processors**,
//! provided `Q` is large enough — with an asymptotically tight
//! characterization of "large enough" (the paper's Table 1).
//!
//! ## Crate layout
//!
//! * [`uni::consensus`] — Fig. 3: constant-time consensus from reads and
//!   writes on a hybrid uniprocessor (`Q ≥ 8`), i.e. reads/writes are
//!   universal there (Theorem 1).
//! * [`uni::quantum`] — the quantum-scheduled `Q-C&S` substrate
//!   (Anderson–Jain–Ott) used to update head variables.
//! * [`uni::cas`] — Fig. 5: `O(V)`-time compare-and-swap and read from
//!   reads and writes (Theorem 2), built on Herlihy's append-to-list
//!   universal construction.
//! * [`multi::ports`] — Fig. 8: the consensus-level / port layout.
//! * [`multi::consensus`] — Fig. 7: wait-free multiprocessor consensus for
//!   any number of processes from `C`-consensus objects, `C ≥ P`, in
//!   polynomial space and time (Theorem 4).
//! * [`multi::fair`] — Fig. 9: constant-quantum consensus under fair
//!   schedulers.
//! * [`multi::failures`] — access-failure accounting (Lemmas 2, 3, B.1,
//!   B.2).
//! * [`universal`] — Herlihy-style universal construction on top of
//!   consensus: wait-free queues, counters, and registers.
//! * [`service`] — long-lived worker sessions over the same construction:
//!   on-demand operation generation for multiplexed clients and optional
//!   think-time, the machine behind `experiments --service`.
//! * [`generic`] — Fig. 3, the Fig. 5 object interface, and the universal
//!   construction written once against [`wfmem::backend::MemBackend`], so
//!   the same function bodies run on the deterministic simulator cells
//!   and on the `native` crate's real-atomics backends (see BACKENDS.md).
//! * [`baseline`] — comparators: an exponential-space priority-only
//!   construction in the style of Ramamurthy–Moir–Anderson, and lock-based
//!   objects.
//!
//! All algorithms run on the [`sched_sim`] execution model — one atomic
//! statement per step, quantum as statement count — which is the paper's
//! own model. The lower bounds (Theorem 3) live in the sibling
//! `lowerbound` crate.
//!
//! ## Quick start
//!
//! Solve consensus among five processes of mixed priorities on one
//! processor, using only reads and writes:
//!
//! ```
//! use hybrid_wf::uni::consensus::{decide_machine, UniConsensusMem, MIN_QUANTUM};
//! use sched_sim::{Kernel, SystemSpec, ProcessorId, Priority, ProcessId, RoundRobin};
//!
//! let mut k = Kernel::new(UniConsensusMem::default(), SystemSpec::hybrid(MIN_QUANTUM));
//! for (input, prio) in [(10, 1), (20, 1), (30, 2), (40, 2), (50, 3)] {
//!     k.add_process(ProcessorId(0), Priority(prio), Box::new(decide_machine(input)));
//! }
//! k.run(&mut RoundRobin::new(), 10_000);
//! let decision = k.output(ProcessId(0)).unwrap();
//! for pid in 0..5 {
//!     assert_eq!(k.output(ProcessId(pid)), Some(decision));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod counters;
pub mod generic;
pub mod multi;
pub mod oracle;
pub mod service;
pub mod uni;
pub mod universal;

pub use wfmem::{OptVal, Val};
