//! Algorithm-level event counters: helping and retry accounting inside the
//! wait-free algorithms themselves.
//!
//! The kernel's [`sched_sim::obs::ObsCounters`] count *scheduler* events
//! (preemptions, windows, statements). The counters here sit one layer up
//! and count *algorithmic* events the paper's analysis talks about: how
//! often the universal construction helps another process's announced
//! operation, how often a log slot turns out to be a duplicate and is
//! retried, how often a Fig. 5 `Q-C&S` loop has to repeat because of
//! interference, and how often the Seen-helping path actually serves a
//! preempted reader.
//!
//! The counters live inside the shared-memory structs ([`super::universal::
//! UniversalMem`], [`super::uni::cas::CasMem`]) because that is where the
//! events happen — but they are *instrumentation*, not state: the manual
//! [`PartialEq`]/[`Hash`] implementations treat every pair of counter
//! blocks as equal, so exhaustive schedule exploration
//! ([`sched_sim::explore`]) deduplicates states exactly as before, and
//! capture/replay equality checks compare algorithm state, not telemetry.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Helping/retry event counts for one shared object instance.
///
/// All fields are cumulative over the object's lifetime. See the module
/// docs for why `==` and hashing ignore them.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlgCounters {
    /// Universal construction: log-slot proposals that helped another
    /// process's announced operation (the round-robin helping discipline).
    pub helped_proposals: u64,
    /// Universal construction: log-slot proposals of the process's own
    /// pending operation.
    pub own_proposals: u64,
    /// Universal construction: decided slots skipped as duplicates (a
    /// helper re-proposed an already-applied token), each causing one
    /// retry iteration of the apply loop.
    pub duplicate_retries: u64,
    /// Fig. 5: `Q-C&S` repeat-loop iterations beyond the first — the
    /// "repeats at most once" interference retries of lines 32–43.
    pub qcs_retries: u64,
    /// Fig. 5: writes to `Seen[i]` (line 29) — a `C&S` recording a helping
    /// value for readers it may preempt.
    pub seen_helps: u64,
    /// Fig. 5: `Read` invocations that returned via the `Seen` helping
    /// path (lines 50 and 61) instead of their own scan.
    pub helped_reads: u64,
}

impl AlgCounters {
    /// Total log-slot proposals made (helped + own).
    pub fn proposals(&self) -> u64 {
        self.helped_proposals + self.own_proposals
    }
}

// Instrumentation only: never part of object identity.
impl PartialEq for AlgCounters {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for AlgCounters {}

impl Hash for AlgCounters {
    fn hash<H: Hasher>(&self, _: &mut H) {}
}

impl fmt::Display for AlgCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  helped proposals      {:>8}", self.helped_proposals)?;
        writeln!(f, "  own proposals         {:>8}", self.own_proposals)?;
        writeln!(f, "  duplicate retries     {:>8}", self.duplicate_retries)?;
        writeln!(f, "  q-c&s retries         {:>8}", self.qcs_retries)?;
        writeln!(f, "  seen helps            {:>8}", self.seen_helps)?;
        write!(f, "  helped reads          {:>8}", self.helped_reads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    #[test]
    fn counters_are_identity_neutral() {
        let a = AlgCounters::default();
        let mut b = AlgCounters::default();
        b.helped_proposals = 99;
        b.qcs_retries = 7;
        assert_eq!(a, b, "counters must not affect equality");
        let hash = |c: &AlgCounters| {
            let mut h = DefaultHasher::new();
            c.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b), "counters must not affect hashing");
    }

    #[test]
    fn proposals_sums_both_kinds() {
        let c = AlgCounters { helped_proposals: 3, own_proposals: 4, ..Default::default() };
        assert_eq!(c.proposals(), 7);
    }
}
