//! Quantum-based uniprocessor primitives (the Anderson–Jain–Ott substrate).
//!
//! Fig. 5 of the paper updates its per-priority-level head variables with a
//! compare-and-swap denoted `Q-C&S`, citing the constant-time
//! quantum-scheduled algorithms of Anderson, Jain & Ott (DISC 1998,
//! summarized in the paper's Appendix C, which the extended abstract does
//! not reproduce). Each head variable is *written* only by processes of one
//! priority level — which are quantum-scheduled with respect to one another
//! — and *read* by other levels with a single load.
//!
//! This module reconstructs that substrate with the *announce / attempt /
//! validate / retry* structure those algorithms are built on (the paper:
//! "if a process can ever detect that it has crossed a quantum boundary,
//! then it can be sure that the next few instructions it executes will be
//! performed without preemption"):
//!
//! ```text
//! Q-C&S(addr, old, new) by process p:           // X = announce word
//!   q1: X := p
//!   q2: v := *addr
//!   q3: if v = old then *addr := new  (ok := v = old)
//!   q4: if X = p then return ok else goto q1    // boundary crossed: retry
//! ```
//!
//! One attempt is four atomic statements. If the validation at `q4` fails,
//! `p` was quantum-preempted during the attempt; having just resumed, its
//! next `Q ≥ 8` statements are free of same-level preemption, so the retry
//! validates — **at most one retry** under the quantum sizes the paper
//! assumes.
//!
//! ## Semantic contract (and the stale-overwrite anomaly)
//!
//! When no same-level preemption hits an attempt, the attempt is atomic
//! with respect to every other same-level operation on the word (they all
//! announce in `X` first). When an attempt *is* preempted between `q2` and
//! `q3`, the write at `q3` may overwrite a newer value installed by the
//! preemptor, and `p` then observes `X ≠ p` and retries (reporting
//! failure). `Q-C&S` therefore guarantees:
//!
//! 1. **at most one** concurrent `Q-C&S` on the same word returns `true`,
//!    and a `true` return implies the winning attempt itself was free of
//!    same-level interference — its `old → new` transition really occurred;
//! 2. an attempt that *was* preempted can lose entirely or overwrite one
//!    newer value with its stale write, and the preempted process *knows*
//!    (it observed `X ≠ p` and retried). In particular two concurrently
//!    preempted attempts can both fail while still writing the word.
//!
//! Exactly this weaker contract is what Fig. 5 is engineered around: its
//! head variables are **hints** — the nested `repeat/until` loops re-read
//! the head, the `last` field detects interference, and readers tolerate
//! heads that are "off by one" by chasing one `nxt` pointer (Fig. 5 lines
//! 19–24 and 53–58). The list of cells linked by consensus-decided `nxt`
//! pointers, not the head hints, is the object's ground truth. The
//! end-to-end linearizability of the Fig. 5 object under this contract is
//! verified exhaustively in `uni::cas`.

use std::sync::Arc;

use sched_sim::program::{Flow, ProcRef, ProgramBuilder};
use wfmem::Val;

/// Scratch registers for one `Q-C&S` invocation.
#[derive(Clone, Debug, Default, Hash, PartialEq, Eq)]
pub struct QcsScratch {
    /// Value read from the word (`v`).
    pub v: Val,
    /// The `(old, new)` operands, staged by the caller.
    pub old: Val,
    /// The value to install.
    pub new: Val,
    /// Whether the comparison at `q3` succeeded.
    pub ok: bool,
    /// The invocation's return value.
    pub ret: bool,
    /// Attempt counter (diagnostics; bounded by 2 under adequate `Q`).
    pub attempts: u32,
}

/// The number of counted statements in one unpreempted `Q-C&S` attempt.
pub const STATEMENTS_PER_QCS_ATTEMPT: u32 = 4;

/// Appends a `Q-C&S` procedure operating on a word selected by `word`,
/// with announce variable selected by `announce`.
///
/// * `word` / `announce` — select the target word and its announce word
///   (the announce word must be shared by **all same-level writers** of the
///   target and by nobody else);
/// * `me` — the caller's announce token (any value unique per process and
///   distinct from the announce word's initial value);
/// * `scratch` — projects the [`QcsScratch`]; the caller stages `old` and
///   `new` in it before the call, and reads `ret` after.
pub fn append_qcs<L, M>(
    b: &mut ProgramBuilder<L, M>,
    name: &str,
    word: impl for<'a> Fn(&'a mut M, &L) -> &'a mut Val + Send + Sync + 'static,
    announce: impl for<'a> Fn(&'a mut M, &L) -> &'a mut Val + Send + Sync + 'static,
    me: impl Fn(&L) -> Val + Send + Sync + 'static,
    scratch: impl Fn(&mut L) -> &mut QcsScratch + Send + Sync + 'static,
) -> ProcRef
where
    L: 'static,
    M: 'static,
{
    let word = Arc::new(word);
    let announce = Arc::new(announce);
    let me = Arc::new(me);
    let scratch = Arc::new(scratch);
    let p = b.proc(name);

    let retry = b.here(p);
    {
        let announce = announce.clone();
        let me = me.clone();
        let scratch = scratch.clone();
        b.stmt(p, "q1: X := p", move |l, m| {
            let tok = me(l);
            *announce(m, l) = tok;
            scratch(l).attempts += 1;
            Flow::Next
        });
    }
    {
        let word = word.clone();
        let scratch = scratch.clone();
        b.stmt(p, "q2: v := *addr", move |l, m| {
            let v = *word(m, l);
            scratch(l).v = v;
            Flow::Next
        });
    }
    {
        let word = word.clone();
        let scratch = scratch.clone();
        b.stmt(p, "q3: if v = old then *addr := new", move |l, m| {
            let s = scratch(l);
            let (v, old, new) = (s.v, s.old, s.new);
            let ok = v == old;
            if ok {
                *word(m, l) = new;
            }
            scratch(l).ok = ok;
            Flow::Next
        });
    }
    {
        let announce = announce.clone();
        let me = me.clone();
        let scratch = scratch.clone();
        b.stmt(p, "q4: if X = p then return ok else retry", move |l, m| {
            let x = *announce(m, l);
            let tok = me(l);
            let s = scratch(l);
            if x == tok {
                s.ret = s.ok;
                Flow::Return
            } else {
                Flow::Goto(retry)
            }
        });
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_sim::decision::{RoundRobin, SeededRandom};
    use sched_sim::explore::{check_all_schedules, explore, ExploreBounds, Verdict};
    use sched_sim::ids::{ProcessId, ProcessorId, Priority};
    use sched_sim::kernel::{Kernel, SystemSpec};
    use sched_sim::program::ProgMachine;

    /// Announce word initial value: no process token equals this.
    const X0: Val = u64::MAX;

    #[derive(Clone, Debug, Default, Hash, PartialEq, Eq)]
    struct Mem {
        word: Val,
        x: Val,
    }

    #[derive(Clone, Debug, Hash, PartialEq, Eq)]
    struct L {
        me: Val,
        s: QcsScratch,
    }

    fn qcs_machine(me: Val, old: Val, new: Val) -> ProgMachine<L, Mem> {
        let mut b = ProgramBuilder::<L, Mem>::new();
        let p = append_qcs(
            &mut b,
            "qcs",
            |m, _| &mut m.word,
            |m, _| &mut m.x,
            |l| l.me,
            |l| &mut l.s,
        );
        let prog = b.build();
        ProgMachine::single_shot(
            &prog,
            L { me, s: QcsScratch { old, new, ..QcsScratch::default() } },
            p,
        )
        .with_output(|l| Some(u64::from(l.s.ret)))
    }

    fn fresh_kernel(q: u32) -> Kernel<Mem> {
        Kernel::new(
            Mem { word: 0, x: X0 },
            SystemSpec::hybrid(q).with_adversarial_alignment(),
        )
    }

    #[test]
    fn solo_cas_succeeds() {
        let mut k = fresh_kernel(8);
        let p = k.add_process(ProcessorId(0), Priority(1), Box::new(qcs_machine(1, 0, 7)));
        k.run(&mut RoundRobin::new(), 100);
        assert_eq!(k.output(p), Some(1));
        assert_eq!(k.mem.word, 7);
    }

    #[test]
    fn solo_cas_fails_on_mismatch() {
        let mut k = fresh_kernel(8);
        let p = k.add_process(ProcessorId(0), Priority(1), Box::new(qcs_machine(1, 5, 7)));
        k.run(&mut RoundRobin::new(), 100);
        assert_eq!(k.output(p), Some(0));
        assert_eq!(k.mem.word, 0);
    }

    /// Two same-level writers CASing 0→a and 0→b with Q ≥ 8, exhaustively:
    /// the documented contract holds in every schedule — at most one
    /// winner, the word always holds a value some attempt wrote, and when
    /// no quantum preemption occurred the outcome is exactly that of an
    /// atomic CAS pair (one winner, word = winner's value).
    #[test]
    fn contract_holds_exhaustively_q8() {
        let base = {
            let mut k = fresh_kernel(8);
            k.add_process(ProcessorId(0), Priority(1), Box::new(qcs_machine(1, 0, 11)));
            k.add_process(ProcessorId(0), Priority(1), Box::new(qcs_machine(2, 0, 22)));
            k
        };
        let mut some_both_failed = false;
        check_all_schedules(&base, ExploreBounds::default(), |k| {
            let a = k.output(ProcessId(0)).unwrap() == 1;
            let b = k.output(ProcessId(1)).unwrap() == 1;
            let w = k.mem.word;
            if a && b {
                return Some("two winners on one word".to_string());
            }
            if w != 11 && w != 22 {
                return Some(format!("word {w} written by nobody"));
            }
            let preempted = k.stats(ProcessId(0)).quantum_preemptions
                + k.stats(ProcessId(1)).quantum_preemptions;
            if preempted == 0 {
                // Atomic-CAS behaviour required.
                if !(a ^ b) {
                    return Some(format!(
                        "unpreempted run must have one winner (a={a}, b={b})"
                    ));
                }
                let winner_val = if a { 11 } else { 22 };
                if w != winner_val {
                    return Some(format!("unpreempted run: word {w} ≠ {winner_val}"));
                }
            }
            if !a && !b {
                some_both_failed = true; // contract point 2: possible
            }
            None
        })
        .expect("Q-C&S contract");
        assert!(
            some_both_failed,
            "expected the both-preempted both-fail schedule to be reachable"
        );
    }

    /// With a full quantum covering one attempt and no preemption, two
    /// sequential CASes behave exactly like atomic CAS.
    #[test]
    fn unpreempted_attempts_are_atomic() {
        let mut k = fresh_kernel(64);
        let p1 = k.add_process(ProcessorId(0), Priority(1), Box::new(qcs_machine(1, 0, 11)));
        let p2 = k.add_process(ProcessorId(0), Priority(1), Box::new(qcs_machine(2, 0, 22)));
        k.run(&mut RoundRobin::new(), 1000);
        assert_eq!(k.output(p1), Some(1));
        assert_eq!(k.output(p2), Some(0)); // saw 11, not 0
        assert_eq!(k.mem.word, 11);
    }

    /// Retries are bounded: with Q ≥ 2 × attempt length, no invocation
    /// takes more than two attempts, under any schedule.
    #[test]
    fn at_most_two_attempts_q8() {
        for seed in 0..200 {
            let mut k = fresh_kernel(8);
            k.add_process(ProcessorId(0), Priority(1), Box::new(qcs_machine(1, 0, 11)));
            k.add_process(ProcessorId(0), Priority(1), Box::new(qcs_machine(2, 0, 22)));
            k.add_process(ProcessorId(0), Priority(1), Box::new(qcs_machine(3, 0, 33)));
            k.run(&mut SeededRandom::new(seed), 10_000);
            for pid in 0..3u32 {
                // Own steps ≤ 2 attempts × 4 statements.
                assert!(
                    k.stats(ProcessId(pid)).own_steps <= 8,
                    "seed {seed}: {} steps",
                    k.stats(ProcessId(pid)).own_steps
                );
            }
        }
    }

    /// The documented anomaly is real: with free interleaving (Q = 1) there
    /// exists a schedule where a completed update is overwritten by a stale
    /// write. This is why Fig. 5 treats head variables as hints.
    #[test]
    fn stale_overwrite_anomaly_exists_at_q1() {
        let base = {
            let mut k = fresh_kernel(1);
            k.add_process(ProcessorId(0), Priority(1), Box::new(qcs_machine(1, 0, 11)));
            k.add_process(ProcessorId(0), Priority(1), Box::new(qcs_machine(2, 0, 22)));
            k
        };
        let mut anomaly = false;
        explore(&base, ExploreBounds::default(), |k| {
            let a = k.output(ProcessId(0)).unwrap() == 1;
            let b = k.output(ProcessId(1)).unwrap() == 1;
            let w = k.mem.word;
            // Winner's value overwritten by the loser's stale write:
            let overwritten = (a && !b && w == 22) || (b && !a && w == 11);
            if overwritten {
                anomaly = true;
                Verdict::Stop
            } else {
                Verdict::KeepGoing
            }
        });
        assert!(anomaly, "expected the stale-overwrite anomaly at Q = 1");
    }

    /// Higher-priority readers see a single-word value at every instant
    /// (reads never block or spin): simulated by interleaving a reader that
    /// loads the word once.
    #[test]
    fn single_load_read_by_other_level() {
        use sched_sim::machine::{FnMachine, StepOutcome};
        let mut k = fresh_kernel(8);
        k.add_process(ProcessorId(0), Priority(1), Box::new(qcs_machine(1, 0, 11)));
        let r = k.add_process(
            ProcessorId(0),
            Priority(2),
            Box::new(FnMachine::new(|m: &mut Mem, _| {
                (StepOutcome::Finished, Some(m.word))
            })),
        );
        k.run(&mut RoundRobin::new(), 100);
        // The higher-priority reader ran first and saw the initial value.
        assert_eq!(k.output(r), Some(0));
    }
}
