//! Uniprocessor algorithms (Sec. 3 of the paper): consensus and
//! compare-and-swap from reads and writes under hybrid scheduling, plus the
//! quantum-based primitives of Anderson, Jain & Ott that the paper builds
//! on.

pub mod cas;
pub mod consensus;
pub mod quantum;
